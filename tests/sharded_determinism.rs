//! Determinism of the sharded parallel engine: for random workloads, the
//! sharded monitor (`S ∈ {2, 4, 8}`) must report **bit-identical** results,
//! changed sets, and per-cycle metrics totals to the sequential engine —
//! parallelism may move work between threads, never change it.

use cpm_suite::core::{CpmEngine, PointQuery, ShardedCpmEngine, SpecEvent};
use cpm_suite::geom::{ObjectId, Point, QueryId};
use cpm_suite::grid::ObjectEvent;
use cpm_suite::sim::{verify_sharded_determinism, SimParams, SimulationInput, WorkloadKind};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Moving-query (`update_spec`) churn under sharding: every cycle moves a
/// large fraction of the queries — alone, and interleaved with object
/// updates that land inside the old and new influence regions in the same
/// batch (the "ignored during update handling" path of Section 3.3 must
/// be shard-invariant too). Heavier and more targeted than the general
/// churn test below, which moves at most a couple of queries per cycle.
#[test]
fn sharded_matches_sequential_under_heavy_query_movement() {
    let shard_counts = [2usize, 4, 8];
    for trial in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(0x5EEA_0000 + trial);
        let dim = [8u32, 16, 64][trial as usize % 3];

        let mut sequential: CpmEngine<PointQuery> = CpmEngine::new(dim);
        let mut sharded: Vec<ShardedCpmEngine<PointQuery>> = shard_counts
            .iter()
            .map(|&s| ShardedCpmEngine::new(dim, s))
            .collect();

        let n_obj = 150u32;
        let objects: Vec<(ObjectId, Point)> = (0..n_obj)
            .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
            .collect();
        sequential.populate(objects.iter().copied());
        for m in sharded.iter_mut() {
            m.populate(objects.iter().copied());
        }

        let n_qry = 16u32;
        for qi in 0..n_qry {
            let p = Point::new(rng.gen(), rng.gen());
            let k = 1 + qi as usize % 5;
            sequential
                .install(QueryId(qi), PointQuery(p), k)
                .expect("fresh query id");
            for m in sharded.iter_mut() {
                m.install(QueryId(qi), PointQuery(p), k)
                    .expect("fresh query id");
            }
        }

        for cycle in 0..25 {
            // Move roughly half the queries every cycle (f_qry far above
            // the paper's 30% default, on purpose).
            let mut query_events: Vec<SpecEvent<PointQuery>> = Vec::new();
            for qi in 0..n_qry {
                if rng.gen_bool(0.5) {
                    query_events.push(SpecEvent::Update {
                        id: QueryId(qi),
                        spec: PointQuery(Point::new(rng.gen(), rng.gen())),
                    });
                }
            }
            // Interleave object moves in every other cycle so records and
            // pending query events target the same cells within a batch.
            let mut object_events = Vec::new();
            if cycle % 2 == 0 {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..rng.gen_range(5..20) {
                    let id = rng.gen_range(0..n_obj);
                    if seen.insert(id) {
                        object_events.push(ObjectEvent::Move {
                            id: ObjectId(id),
                            to: Point::new(rng.gen(), rng.gen()),
                        });
                    }
                }
            }

            let mut changed_seq = sequential.process_cycle(&object_events, &query_events);
            changed_seq.sort_unstable();
            let metrics_seq = sequential.take_metrics();
            for (m, &shards) in sharded.iter_mut().zip(&shard_counts) {
                let changed = m.process_cycle(&object_events, &query_events);
                assert_eq!(
                    changed_seq, changed,
                    "changed diverged at cycle {cycle} with {shards} shards"
                );
                assert_eq!(
                    metrics_seq,
                    m.take_metrics(),
                    "metrics diverged at cycle {cycle} with {shards} shards"
                );
                m.check_invariants();
                for qi in 0..n_qry {
                    assert_eq!(
                        sequential.result(QueryId(qi)).unwrap(),
                        m.result(QueryId(qi)).unwrap(),
                        "result diverged for q{qi} at cycle {cycle} with {shards} shards"
                    );
                }
            }
            sequential.check_invariants();
        }
    }
}

/// The sim-level cross-check on the paper's workload shapes: network,
/// uniform and skewed movement, with moving queries.
#[test]
fn sharded_matches_sequential_on_generated_workloads() {
    for (seed, workload) in [
        (11u64, WorkloadKind::Network { grid_streets: 8 }),
        (12, WorkloadKind::Uniform),
        (13, WorkloadKind::Skewed { hotspots: 3 }),
    ] {
        let params = SimParams {
            n_objects: 300,
            n_queries: 12,
            k: 4,
            timestamps: 10,
            grid_dim: 32,
            seed,
            workload,
            ..SimParams::default()
        };
        verify_sharded_determinism(&SimulationInput::generate(&params), &[2, 4, 8]);
    }
}

/// Engine-level property test over the full event vocabulary, including
/// object appear/disappear and query install/update/terminate (which the
/// generated workloads do not exercise): random streams into the
/// sequential `CpmEngine` and sharded engines must agree on every query's
/// result (ids *and* distance bits), on the changed sets, and on the
/// metrics totals at every cycle.
#[test]
fn random_streams_with_churn_are_shard_invariant() {
    let shard_counts = [2usize, 4, 8];
    for trial in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xD17E_0000 + trial);
        let dim = [8u32, 16, 64][trial as usize % 3];

        let mut sequential: CpmEngine<PointQuery> = CpmEngine::new(dim);
        let mut sharded: Vec<ShardedCpmEngine<PointQuery>> = shard_counts
            .iter()
            .map(|&s| ShardedCpmEngine::new(dim, s))
            .collect();

        let n_obj = 120u32;
        let objects: Vec<(ObjectId, Point)> = (0..n_obj)
            .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
            .collect();
        sequential.populate(objects.iter().copied());
        for m in sharded.iter_mut() {
            m.populate(objects.iter().copied());
        }

        let mut live_objects: Vec<u32> = (0..n_obj).collect();
        let mut next_oid = n_obj;
        let mut live_queries: Vec<u32> = Vec::new();
        let mut next_qid = 0u32;

        for _cycle in 0..25 {
            // Random object churn: moves, appearances, disappearances
            // (each object at most once per batch).
            let mut object_events = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(0..12) {
                match rng.gen_range(0..10) {
                    0 if !live_objects.is_empty() => {
                        let at = rng.gen_range(0..live_objects.len());
                        let id = live_objects.swap_remove(at);
                        if seen.insert(id) {
                            object_events.push(ObjectEvent::Disappear { id: ObjectId(id) });
                        } else {
                            live_objects.push(id);
                        }
                    }
                    1 => {
                        let id = next_oid;
                        next_oid += 1;
                        live_objects.push(id);
                        seen.insert(id);
                        object_events.push(ObjectEvent::Appear {
                            id: ObjectId(id),
                            pos: Point::new(rng.gen(), rng.gen()),
                        });
                    }
                    _ if !live_objects.is_empty() => {
                        let id = live_objects[rng.gen_range(0..live_objects.len())];
                        if seen.insert(id) {
                            object_events.push(ObjectEvent::Move {
                                id: ObjectId(id),
                                to: Point::new(rng.gen(), rng.gen()),
                            });
                        }
                    }
                    _ => {}
                }
            }

            // Random query churn (each query at most once per batch).
            let mut query_events: Vec<SpecEvent<PointQuery>> = Vec::new();
            for _ in 0..rng.gen_range(0..4) {
                match rng.gen_range(0..3) {
                    0 => {
                        let id = next_qid;
                        next_qid += 1;
                        live_queries.push(id);
                        query_events.push(SpecEvent::Install {
                            id: QueryId(id),
                            spec: PointQuery(Point::new(rng.gen(), rng.gen())),
                            k: 1 + rng.gen_range(0..5),
                        });
                    }
                    1 if !live_queries.is_empty() => {
                        let at = rng.gen_range(0..live_queries.len());
                        let id = live_queries[at];
                        if query_events.iter().all(|ev| ev.id() != QueryId(id)) {
                            query_events.push(SpecEvent::Update {
                                id: QueryId(id),
                                spec: PointQuery(Point::new(rng.gen(), rng.gen())),
                            });
                        }
                    }
                    _ if !live_queries.is_empty() => {
                        let at = rng.gen_range(0..live_queries.len());
                        let id = live_queries.swap_remove(at);
                        if query_events.iter().all(|ev| ev.id() != QueryId(id)) {
                            query_events.push(SpecEvent::Terminate { id: QueryId(id) });
                        } else {
                            live_queries.push(id);
                        }
                    }
                    _ => {}
                }
            }

            let mut changed_seq = sequential.process_cycle(&object_events, &query_events);
            changed_seq.sort_unstable();
            let metrics_seq = sequential.take_metrics();

            for (m, &shards) in sharded.iter_mut().zip(&shard_counts) {
                let changed = m.process_cycle(&object_events, &query_events);
                assert_eq!(changed_seq, changed, "changed diverged at {shards} shards");
                assert_eq!(
                    metrics_seq,
                    m.take_metrics(),
                    "metrics diverged at {shards} shards"
                );
                m.check_invariants();
                for &qid in &live_queries {
                    let a = sequential
                        .result(QueryId(qid))
                        .expect("sequential lost query");
                    let b = m
                        .result(QueryId(qid))
                        .unwrap_or_else(|| panic!("{shards}-shard engine lost query {qid}"));
                    assert_eq!(a, b, "result diverged for query {qid} at {shards} shards");
                }
            }
            sequential.check_invariants();
        }
    }
}
