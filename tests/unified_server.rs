//! Mixed-kind conformance for the unified [`CpmServer`] facade: one
//! server hosting k-NN, range, aggregate-NN, constrained and reverse-NN
//! queries on **one grid with one ingest pass per cycle** must be
//! bit-identical to the dedicated per-kind monitors/engines and correct
//! against brute-force oracles — for shard counts S ∈ {1, 4}, with moving
//! queries and mid-stream install/terminate.
//!
//! [`CpmServer`]: cpm_suite::core::CpmServer

use cpm_suite::core::ann::{AggregateFn, AnnQuery, CpmAnnMonitor};
use cpm_suite::core::constrained::{ConstrainedQuery, CpmConstrainedMonitor};
use cpm_suite::core::range::{CpmRangeMonitor, RangeQuery};
use cpm_suite::core::server::QueryHandle;
use cpm_suite::core::{
    AnyQuerySpec, CpmError, CpmKnnMonitor, CpmServerBuilder, PointQuery, SpecEvent,
};
use cpm_suite::geom::{ObjectId, Point, QueryId, Rect};
use cpm_suite::grid::{ObjectEvent, QueryKind};
use cpm_suite::sim::verify_unified_server;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 2] = [1, 4];

/// The full sim-harness sweep: server vs dedicated single-kind engines vs
/// brute force, with object churn, moving queries of every kind, and a
/// transient mid-stream k-NN query — at S ∈ {1, 4}.
#[test]
fn unified_server_matches_dedicated_engines_and_oracles() {
    verify_unified_server(90, 28, 16, &SHARD_COUNTS);
}

/// A denser grid and larger population, fewer cycles (CI budget).
#[test]
fn unified_server_conformance_on_fine_grid() {
    verify_unified_server(220, 10, 64, &SHARD_COUNTS);
}

/// The acceptance criterion, asserted via metrics: a cycle over a server
/// hosting every kind performs exactly one `apply_events` pass — the
/// ingest counter equals the event count, while three dedicated monitors
/// together pay it three times.
#[test]
fn one_cycle_one_ingest_regardless_of_kind_count() {
    for shards in SHARD_COUNTS {
        let mut server = CpmServerBuilder::new(32).shards(shards).build();
        let objects: Vec<(ObjectId, Point)> = (0..200u32)
            .map(|i| {
                let t = i as f64 / 200.0;
                (ObjectId(i), Point::new(t, (t * 13.0) % 1.0))
            })
            .collect();
        server.populate(objects.iter().copied());
        let _ = server
            .install_knn(QueryId(0), Point::new(0.4, 0.4), 4)
            .unwrap();
        let _ = server
            .install_range(
                QueryId(1),
                RangeQuery::rect(Rect::new(Point::new(0.1, 0.1), Point::new(0.5, 0.5))),
            )
            .unwrap();
        let _ = server
            .install_constrained(
                QueryId(2),
                ConstrainedQuery::northeast_of(Point::new(0.5, 0.5)),
                4,
            )
            .unwrap();
        let _ = server
            .install_ann(
                QueryId(3),
                AnnQuery::new(
                    vec![Point::new(0.2, 0.8), Point::new(0.7, 0.2)],
                    AggregateFn::Max,
                ),
                2,
            )
            .unwrap();
        let _ = server
            .install_rnn(QueryId(4), Point::new(0.6, 0.6))
            .unwrap();
        server.take_metrics();

        let events: Vec<ObjectEvent> = (0..50u32)
            .map(|i| ObjectEvent::Move {
                id: ObjectId(i * 4),
                to: Point::new((i as f64 * 0.019) % 1.0, (i as f64 * 0.037) % 1.0),
            })
            .collect();
        server.process_cycle(&events, &[]).unwrap();
        let unified = server.take_metrics();
        assert_eq!(
            unified.updates_applied,
            events.len() as u64,
            "one server cycle must ingest the batch exactly once (shards={shards})"
        );

        // Contrast: one dedicated monitor per kind pays the ingest per
        // kind. (This is the workload the server exists to collapse.)
        let mut knn = CpmKnnMonitor::new(32);
        let mut range = CpmRangeMonitor::new(32);
        let mut con = CpmConstrainedMonitor::new(32);
        knn.populate(objects.iter().copied());
        range.populate(objects.iter().copied());
        con.populate(objects.iter().copied());
        knn.install_query(QueryId(0), Point::new(0.4, 0.4), 4);
        range.install_query(
            QueryId(1),
            RangeQuery::rect(Rect::new(Point::new(0.1, 0.1), Point::new(0.5, 0.5))),
        );
        con.install_query(
            QueryId(2),
            ConstrainedQuery::northeast_of(Point::new(0.5, 0.5)),
            4,
        );
        knn.take_metrics();
        range.take_metrics();
        con.take_metrics();
        knn.process_cycle(&events, &[]);
        range.process_cycle(&events, &[]);
        con.process_cycle(&events, &[]);
        let mut split = knn.take_metrics();
        split.merge(&range.take_metrics());
        split.merge(&con.take_metrics());
        assert_eq!(
            split.updates_applied,
            3 * events.len() as u64,
            "three dedicated monitors pay the ingest three times"
        );
    }
}

/// Server results must be bit-identical to the per-kind monitors (the
/// compat shims the old API exposed) on a shared random stream.
#[test]
fn server_results_match_per_kind_monitors() {
    let mut rng = StdRng::seed_from_u64(0x0DD);
    for shards in SHARD_COUNTS {
        let objects: Vec<(ObjectId, Point)> = (0..70u32)
            .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
            .collect();
        let mut server = CpmServerBuilder::new(16).shards(shards).build();
        let mut knn = CpmKnnMonitor::new(16);
        let mut range = CpmRangeMonitor::new_sharded(16, shards);
        let mut ann = CpmAnnMonitor::new_sharded(16, shards);
        let mut con = CpmConstrainedMonitor::new_sharded(16, shards);
        server.populate(objects.iter().copied());
        knn.populate(objects.iter().copied());
        range.populate(objects.iter().copied());
        ann.populate(objects.iter().copied());
        con.populate(objects.iter().copied());

        let knn_h = server
            .install_knn(QueryId(0), Point::new(0.35, 0.65), 5)
            .unwrap();
        knn.install_query(QueryId(0), Point::new(0.35, 0.65), 5);
        let range_q = RangeQuery::circle(Point::new(0.5, 0.5), 0.25);
        let range_h = server.install_range(QueryId(1), range_q).unwrap();
        range.install_query(QueryId(1), range_q);
        let ann_q = AnnQuery::new(
            vec![Point::new(0.2, 0.2), Point::new(0.8, 0.6)],
            AggregateFn::Sum,
        );
        let ann_h = server.install_ann(QueryId(2), ann_q.clone(), 3).unwrap();
        ann.install_query(QueryId(2), ann_q, 3);
        let con_q = ConstrainedQuery::new(
            Point::new(0.5, 0.5),
            Rect::new(Point::new(0.4, 0.0), Point::new(1.0, 0.6)),
        );
        let con_h = server
            .install_constrained(QueryId(3), con_q.clone(), 3)
            .unwrap();
        con.install_query(QueryId(3), con_q, 3);

        for _cycle in 0..25 {
            let mut events = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(1..10) {
                let id = rng.gen_range(0..70u32);
                if seen.insert(id) {
                    events.push(ObjectEvent::Move {
                        id: ObjectId(id),
                        to: Point::new(rng.gen(), rng.gen()),
                    });
                }
            }
            server.process_cycle(&events, &[]).unwrap();
            knn.process_cycle(&events, &[]);
            range.process_cycle(&events, &[]);
            ann.process_cycle(&events, &[]);
            con.process_cycle(&events, &[]);
            assert_eq!(
                server.result(knn_h).unwrap(),
                knn.result(QueryId(0)).unwrap(),
                "k-NN diverged from CpmKnnMonitor (shards={shards})"
            );
            assert_eq!(
                server.result(range_h).unwrap(),
                range.result(QueryId(1)).unwrap(),
                "range diverged (shards={shards})"
            );
            assert_eq!(
                server.result(ann_h).unwrap(),
                ann.result(QueryId(2)).unwrap(),
                "ANN diverged (shards={shards})"
            );
            assert_eq!(
                server.result(con_h).unwrap(),
                con.result(QueryId(3)).unwrap(),
                "constrained diverged (shards={shards})"
            );
            server.check_invariants();
        }
    }
}

/// Handles carry their kind; the registry reports confusion as typed
/// errors and the changed list reflects mid-stream install/terminate.
#[test]
fn registry_errors_and_midstream_churn() {
    let mut server = CpmServerBuilder::new(16).shards(4).build();
    server.populate((0..50u32).map(|i| (ObjectId(i), Point::new(i as f64 / 50.0, 0.5))));
    let h = server
        .install_knn(QueryId(0), Point::new(0.1, 0.5), 3)
        .unwrap();
    assert_eq!(h.id(), QueryId(0));
    assert_eq!(h.kind(), QueryKind::Knn);
    assert_eq!(server.kind_of(QueryId(0)), Some(QueryKind::Knn));

    // Mid-stream install + terminate through the event batch.
    let changed = server
        .process_cycle(
            &[],
            &[SpecEvent::Install {
                id: QueryId(1),
                spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.9, 0.5))),
                k: 2,
            }],
        )
        .unwrap();
    assert_eq!(changed, vec![QueryId(1)]);
    assert_eq!(server.query_count(), 2);
    let changed = server
        .process_cycle(&[], &[SpecEvent::Terminate { id: QueryId(1) }])
        .unwrap();
    assert!(changed.is_empty());
    assert_eq!(server.query_count(), 1);
    assert_eq!(
        server.process_cycle(&[], &[SpecEvent::Terminate { id: QueryId(1) }]),
        Err(CpmError::UnknownQuery(QueryId(1)))
    );

    // Kind confusion through the untyped surface.
    assert_eq!(
        server.update_spec(
            QueryId(0),
            AnyQuerySpec::Range(RangeQuery::circle(Point::new(0.5, 0.5), 0.1)),
        ),
        Err(CpmError::KindMismatch {
            id: QueryId(0),
            expected: QueryKind::Range,
            actual: QueryKind::Knn,
        })
    );
    server.check_invariants();
}

/// A unified server with delta capture streams mixed-kind deltas whose
/// folds match the authoritative snapshots (the hub-level path is covered
/// in `cpm-sub`; this exercises the server's own delta cycle).
#[test]
fn unified_delta_cycles_fold_losslessly() {
    use cpm_suite::core::CycleDeltas;
    use cpm_suite::sub::Replica;
    let mut rng = StdRng::seed_from_u64(0xDE17A);
    for shards in SHARD_COUNTS {
        let mut server = CpmServerBuilder::new(16)
            .shards(shards)
            .deltas(true)
            .build();
        server.populate((0..40u32).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
        let mut out = CycleDeltas::default();
        server
            .process_cycle_with_deltas_into(
                &[],
                &[
                    SpecEvent::Install {
                        id: QueryId(0),
                        spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.3, 0.3))),
                        k: 4,
                    },
                    SpecEvent::Install {
                        id: QueryId(1),
                        spec: AnyQuerySpec::Range(RangeQuery::circle(Point::new(0.6, 0.6), 0.3)),
                        k: 1,
                    },
                ],
                &mut out,
            )
            .unwrap();
        let mut replicas = [Replica::new(), Replica::new()];
        for (qid, delta) in &out.deltas {
            replicas[qid.0 as usize].apply(delta);
        }
        for _ in 0..15 {
            let events: Vec<ObjectEvent> = (0..6)
                .map(|_| ObjectEvent::Move {
                    id: ObjectId(rng.gen_range(0..40u32)),
                    to: Point::new(rng.gen(), rng.gen()),
                })
                .collect();
            let mut dedup = events.clone();
            dedup.sort_by_key(|e| match e {
                ObjectEvent::Move { id, .. } => id.0,
                _ => u32::MAX,
            });
            dedup.dedup_by_key(|e| match e {
                ObjectEvent::Move { id, .. } => id.0,
                _ => u32::MAX,
            });
            server
                .process_cycle_with_deltas_into(&dedup, &[], &mut out)
                .unwrap();
            for (qid, delta) in &out.deltas {
                replicas[qid.0 as usize].apply(delta);
            }
            for (i, replica) in replicas.iter().enumerate() {
                assert_eq!(
                    replica.result(),
                    server.result(QueryId(i as u32)).unwrap(),
                    "replica {i} diverged (shards={shards})"
                );
            }
        }
        server.check_invariants();
    }
}
