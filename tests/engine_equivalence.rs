//! The generic CPM engine and the specialized k-NN monitor implement the
//! same algorithm: a constrained query whose region is the whole workspace
//! must report exactly the same result distances as the dedicated
//! `CpmKnnMonitor` on identical streams — and a single-point aggregate
//! query likewise, for every aggregate function.

use cpm_suite::core::ann::{AggregateFn, AnnQuery, CpmAnnMonitor};
use cpm_suite::core::constrained::{ConstrainedQuery, CpmConstrainedMonitor};
use cpm_suite::core::CpmKnnMonitor;
use cpm_suite::geom::{Point, QueryId, Rect};
use cpm_suite::sim::{SimParams, SimulationInput, WorkloadKind};

fn params(seed: u64) -> SimParams {
    SimParams {
        n_objects: 500,
        n_queries: 0, // queries installed manually below
        k: 5,
        timestamps: 15,
        grid_dim: 32,
        seed,
        workload: WorkloadKind::Network { grid_streets: 10 },
        ..SimParams::default()
    }
}

fn query_points(seed: u64) -> Vec<Point> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..8).map(|_| Point::new(rng.gen(), rng.gen())).collect()
}

#[test]
fn workspace_constrained_equals_plain_knn() {
    let input = SimulationInput::generate(&params(42));
    let points = query_points(7);

    let mut plain = CpmKnnMonitor::new(input.params.grid_dim);
    let mut constrained = CpmConstrainedMonitor::new(input.params.grid_dim);
    plain.populate(input.initial_objects.iter().copied());
    constrained.populate(input.initial_objects.iter().copied());

    for (i, &p) in points.iter().enumerate() {
        let qid = QueryId(i as u32);
        plain.install_query(qid, p, 5);
        constrained.install_query(qid, ConstrainedQuery::new(p, Rect::WORKSPACE), 5);
    }

    for tick in &input.ticks {
        plain.process_cycle(&tick.object_events, &[]);
        constrained.process_cycle(&tick.object_events, &[]);
        for i in 0..points.len() as u32 {
            let a: Vec<f64> = plain
                .result(QueryId(i))
                .unwrap()
                .iter()
                .map(|n| n.dist)
                .collect();
            let b: Vec<f64> = constrained
                .result(QueryId(i))
                .unwrap()
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12, "q{i}: {a:?} vs {b:?}");
            }
        }
    }
}

#[test]
fn singleton_aggregate_equals_plain_knn() {
    for f in [AggregateFn::Sum, AggregateFn::Min, AggregateFn::Max] {
        let input = SimulationInput::generate(&params(43));
        let points = query_points(11);

        let mut plain = CpmKnnMonitor::new(input.params.grid_dim);
        let mut ann = CpmAnnMonitor::new(input.params.grid_dim);
        plain.populate(input.initial_objects.iter().copied());
        ann.populate(input.initial_objects.iter().copied());

        for (i, &p) in points.iter().enumerate() {
            let qid = QueryId(i as u32);
            plain.install_query(qid, p, 4);
            ann.install_query(qid, AnnQuery::new(vec![p], f), 4);
        }

        for tick in &input.ticks {
            plain.process_cycle(&tick.object_events, &[]);
            ann.process_cycle(&tick.object_events, &[]);
            for i in 0..points.len() as u32 {
                let a: Vec<_> = plain
                    .result(QueryId(i))
                    .unwrap()
                    .iter()
                    .map(|n| n.id)
                    .collect();
                let b: Vec<_> = ann
                    .result(QueryId(i))
                    .unwrap()
                    .iter()
                    .map(|n| n.id)
                    .collect();
                assert_eq!(a, b, "{f:?} q{i}");
            }
        }
    }
}

#[test]
fn engine_metrics_match_specialized_shape() {
    // Work counters need not be identical (the generic engine en-heaps
    // base blocks differently), but the big picture must agree: same
    // searches, same order of magnitude of cell accesses.
    let input = SimulationInput::generate(&params(44));
    let points = query_points(13);

    let mut plain = CpmKnnMonitor::new(input.params.grid_dim);
    let mut constrained = CpmConstrainedMonitor::new(input.params.grid_dim);
    plain.populate(input.initial_objects.iter().copied());
    constrained.populate(input.initial_objects.iter().copied());
    for (i, &p) in points.iter().enumerate() {
        plain.install_query(QueryId(i as u32), p, 5);
        constrained.install_query(
            QueryId(i as u32),
            ConstrainedQuery::new(p, Rect::WORKSPACE),
            5,
        );
    }
    for tick in &input.ticks {
        plain.process_cycle(&tick.object_events, &[]);
        constrained.process_cycle(&tick.object_events, &[]);
    }
    let a = plain.metrics();
    let b = constrained.metrics();
    assert_eq!(a.computations, b.computations);
    assert_eq!(a.recomputations, b.recomputations);
    assert_eq!(a.merge_resolutions, b.merge_resolutions);
    assert_eq!(a.cell_accesses, b.cell_accesses);
}
