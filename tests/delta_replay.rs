//! Delta-replay conformance: folding the subscription layer's delta
//! stream over the initial result must reconstruct the full per-epoch
//! results **bit-identically** — against the hub's authoritative
//! snapshots, against brute-force ground truth, and identically across
//! shard counts (sequential and S ∈ {2, 4, 8}) — under object, query,
//! and moving-query churn, for both k-NN and range subscriptions.

use cpm_suite::core::{Neighbor, NeighborDelta, RangeQuery};
use cpm_suite::geom::{ObjectId, Point, QueryId, Rect};
use cpm_suite::grid::ObjectEvent;
use cpm_suite::sim::{
    brute_force_range, verify_delta_replay, SimParams, SimulationInput, WorkloadKind,
};
use cpm_suite::sub::{KnnSubscriptionHub, RangeSubscriptionHub, Replica};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Per-test case budget: `PROPTEST_CASES` (the CI conformance job's
/// wall-time bound) can only *cap* these heavyweight properties — each
/// case replays 20 cycles across four shard lanes with per-epoch oracle
/// checks, so raising the global budget must not multiply them.
fn case_budget(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(default_cases, |cap: u32| cap.min(default_cases))
}

/// The sim-level harness on the paper's workload shapes (network, uniform,
/// skewed — all with moving queries): replicas must equal the brute-force
/// oracle at every epoch, and the delta streams must be identical across
/// shard counts.
#[test]
fn delta_replay_matches_oracle_on_generated_workloads() {
    for (seed, workload) in [
        (21u64, WorkloadKind::Network { grid_streets: 8 }),
        (22, WorkloadKind::Uniform),
        (23, WorkloadKind::Skewed { hotspots: 3 }),
    ] {
        let params = SimParams {
            n_objects: 300,
            n_queries: 12,
            k: 4,
            timestamps: 10,
            grid_dim: 32,
            seed,
            workload,
            ..SimParams::default()
        };
        verify_delta_replay(&SimulationInput::generate(&params), &SHARD_COUNTS);
    }
}

/// Random object-event batch over `live`: moves, appearances,
/// disappearances, each object at most once per batch.
fn random_object_events(
    rng: &mut StdRng,
    live: &mut Vec<u32>,
    next_oid: &mut u32,
    max_events: usize,
) -> Vec<ObjectEvent> {
    let mut events = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.gen_range(0..=max_events) {
        match rng.gen_range(0..10) {
            0 if live.len() > 4 => {
                let at = rng.gen_range(0..live.len());
                let id = live.swap_remove(at);
                if seen.insert(id) {
                    events.push(ObjectEvent::Disappear { id: ObjectId(id) });
                } else {
                    live.push(id);
                }
            }
            1 => {
                let id = *next_oid;
                *next_oid += 1;
                live.push(id);
                seen.insert(id);
                events.push(ObjectEvent::Appear {
                    id: ObjectId(id),
                    pos: Point::new(rng.gen(), rng.gen()),
                });
            }
            _ if !live.is_empty() => {
                let id = live[rng.gen_range(0..live.len())];
                if seen.insert(id) {
                    events.push(ObjectEvent::Move {
                        id: ObjectId(id),
                        to: Point::new(rng.gen(), rng.gen()),
                    });
                }
            }
            _ => {}
        }
    }
    events
}

/// Brute-force k-NN over a hub's live population, in the engine's
/// canonical `(dist, id)` order with distances computed the same way —
/// so equality can be asserted bit-for-bit.
fn brute_force_knn(hub: &KnnSubscriptionHub, q: Point, k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = hub
        .grid()
        .iter_objects()
        .map(|(id, p)| Neighbor {
            id,
            dist: q.dist(p),
        })
        .collect();
    all.sort_unstable_by(|a, b| {
        (a.dist, a.id)
            .partial_cmp(&(b.dist, b.id))
            .expect("finite distances")
    });
    all.truncate(k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig { cases: case_budget(8), ..ProptestConfig::default() })]

    /// Engine-level k-NN replay under full churn: random object streams
    /// plus subscribe/move/unsubscribe subscription churn. Every epoch,
    /// every lane's folded replica must equal the hub snapshot, the
    /// brute-force k-NN, and lane 0's delta stream.
    #[test]
    fn knn_delta_replay_reconstructs_results_under_churn(
        seed in 0u64..1 << 32,
        dim_ix in 0usize..3,
        n_obj in 60u32..140,
    ) {
        let dim = [8u32, 16, 64][dim_ix];
        let mut rng = StdRng::seed_from_u64(0xDE17A ^ seed);
        let objects: Vec<(ObjectId, Point)> = (0..n_obj)
            .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
            .collect();

        struct Lane {
            hub: KnnSubscriptionHub,
            replicas: std::collections::BTreeMap<QueryId, Replica>,
        }
        let mut lanes: Vec<Lane> = SHARD_COUNTS
            .iter()
            .map(|&s| {
                let mut hub = KnnSubscriptionHub::new(dim, s);
                hub.populate(objects.iter().copied());
                Lane { hub, replicas: std::collections::BTreeMap::new() }
            })
            .collect();

        let mut live_objects: Vec<u32> = (0..n_obj).collect();
        let mut next_oid = n_obj;
        // Live subscriptions and their current (position, k).
        let mut subs: std::collections::BTreeMap<u32, (Point, usize)> =
            std::collections::BTreeMap::new();
        let mut next_qid = 0u32;

        for cycle in 0..20 {
            let object_events =
                random_object_events(&mut rng, &mut live_objects, &mut next_oid, 10);

            // Subscription churn: subscribe / move / unsubscribe, at most
            // one event per subscription per cycle (hub contract).
            let mut touched: Vec<u32> = Vec::new();
            for _ in 0..rng.gen_range(0..4) {
                match rng.gen_range(0..4) {
                    0 | 1 => {
                        let id = next_qid;
                        next_qid += 1;
                        let pos = Point::new(rng.gen(), rng.gen());
                        let k = 1 + rng.gen_range(0..5);
                        subs.insert(id, (pos, k));
                        touched.push(id);
                        for lane in lanes.iter_mut() {
                            lane.hub.subscribe_knn(QueryId(id), pos, k);
                            lane.replicas.insert(QueryId(id), Replica::new());
                        }
                    }
                    2 if !subs.is_empty() => {
                        let &id = subs.keys().nth(rng.gen_range(0..subs.len())).unwrap();
                        if touched.contains(&id) {
                            continue;
                        }
                        touched.push(id);
                        let pos = Point::new(rng.gen(), rng.gen());
                        subs.get_mut(&id).unwrap().0 = pos;
                        for lane in lanes.iter_mut() {
                            lane.hub.move_knn(QueryId(id), pos);
                        }
                    }
                    3 if !subs.is_empty() => {
                        let &id = subs.keys().nth(rng.gen_range(0..subs.len())).unwrap();
                        if touched.contains(&id) {
                            continue;
                        }
                        touched.push(id);
                        subs.remove(&id);
                        for lane in lanes.iter_mut() {
                            lane.hub.unsubscribe(QueryId(id));
                            lane.replicas.remove(&QueryId(id));
                        }
                    }
                    _ => {}
                }
            }

            let mut reference: Option<Vec<(QueryId, Vec<NeighborDelta>)>> = None;
            for (lane, &shards) in lanes.iter_mut().zip(&SHARD_COUNTS) {
                lane.hub.push_updates(object_events.iter().copied());
                lane.hub.commit();
                let mut drained = Vec::new();
                for (&qid, replica) in lane.replicas.iter_mut() {
                    let deltas = lane.hub.drain(qid);
                    for d in &deltas {
                        replica.apply(d);
                    }
                    let (_, snapshot) = lane.hub.snapshot(qid).expect("subscribed");
                    prop_assert_eq!(
                        replica.result(), snapshot,
                        "replica != hub for {} at cycle {} with {} shards",
                        qid, cycle, shards
                    );
                    let (pos, k) = subs[&qid.0];
                    let truth = brute_force_knn(&lane.hub, pos, k);
                    prop_assert_eq!(
                        replica.result(), truth.as_slice(),
                        "replica != brute force for {} at cycle {} with {} shards",
                        qid, cycle, shards
                    );
                    drained.push((qid, deltas));
                }
                lane.hub.check_invariants();
                match &reference {
                    None => reference = Some(drained),
                    Some(first) => prop_assert_eq!(
                        first, &drained,
                        "delta streams diverged at cycle {} with {} shards",
                        cycle, shards
                    ),
                }
            }
        }
    }

    /// Range-subscription replay under the same churn model, with moving
    /// regions (rectangles and circles): replicas must equal the hub
    /// snapshot and the range oracle at every epoch, across shard counts.
    #[test]
    fn range_delta_replay_reconstructs_results_under_churn(
        seed in 0u64..1 << 32,
        dim_ix in 0usize..3,
        n_obj in 60u32..140,
    ) {
        let dim = [8u32, 16, 64][dim_ix];
        let mut rng = StdRng::seed_from_u64(0x4A46E ^ seed);
        let objects: Vec<(ObjectId, Point)> = (0..n_obj)
            .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
            .collect();

        fn random_region(rng: &mut StdRng) -> RangeQuery {
            if rng.gen_bool(0.5) {
                let lo = Point::new(rng.gen_range(0.0..0.7), rng.gen_range(0.0..0.7));
                let w = rng.gen_range(0.05..0.3);
                let h = rng.gen_range(0.05..0.3);
                RangeQuery::rect(Rect::new(
                    lo,
                    Point::new((lo.x + w).min(1.0), (lo.y + h).min(1.0)),
                ))
            } else {
                RangeQuery::circle(
                    Point::new(rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9)),
                    rng.gen_range(0.02..0.25),
                )
            }
        }

        struct Lane {
            hub: RangeSubscriptionHub,
            replicas: std::collections::BTreeMap<QueryId, Replica>,
        }
        let mut lanes: Vec<Lane> = SHARD_COUNTS
            .iter()
            .map(|&s| {
                let mut hub = RangeSubscriptionHub::new(dim, s);
                hub.populate(objects.iter().copied());
                Lane { hub, replicas: std::collections::BTreeMap::new() }
            })
            .collect();

        let mut live_objects: Vec<u32> = (0..n_obj).collect();
        let mut next_oid = n_obj;
        let mut subs: std::collections::BTreeMap<u32, RangeQuery> =
            std::collections::BTreeMap::new();
        let mut next_qid = 0u32;

        for cycle in 0..20 {
            let object_events =
                random_object_events(&mut rng, &mut live_objects, &mut next_oid, 10);

            let mut touched: Vec<u32> = Vec::new();
            for _ in 0..rng.gen_range(0..4) {
                match rng.gen_range(0..4) {
                    0 | 1 => {
                        let id = next_qid;
                        next_qid += 1;
                        let query = random_region(&mut rng);
                        subs.insert(id, query);
                        touched.push(id);
                        for lane in lanes.iter_mut() {
                            lane.hub.subscribe_region(QueryId(id), query);
                            lane.replicas.insert(QueryId(id), Replica::new());
                        }
                    }
                    2 if !subs.is_empty() => {
                        let &id = subs.keys().nth(rng.gen_range(0..subs.len())).unwrap();
                        if touched.contains(&id) {
                            continue;
                        }
                        touched.push(id);
                        let query = random_region(&mut rng);
                        subs.insert(id, query);
                        for lane in lanes.iter_mut() {
                            lane.hub.move_region(QueryId(id), query);
                        }
                    }
                    3 if !subs.is_empty() => {
                        let &id = subs.keys().nth(rng.gen_range(0..subs.len())).unwrap();
                        if touched.contains(&id) {
                            continue;
                        }
                        touched.push(id);
                        subs.remove(&id);
                        for lane in lanes.iter_mut() {
                            lane.hub.unsubscribe(QueryId(id));
                            lane.replicas.remove(&QueryId(id));
                        }
                    }
                    _ => {}
                }
            }

            let mut reference: Option<Vec<(QueryId, Vec<NeighborDelta>)>> = None;
            for (lane, &shards) in lanes.iter_mut().zip(&SHARD_COUNTS) {
                lane.hub.push_updates(object_events.iter().copied());
                lane.hub.commit();
                let mut drained = Vec::new();
                for (&qid, replica) in lane.replicas.iter_mut() {
                    let deltas = lane.hub.drain(qid);
                    for d in &deltas {
                        replica.apply(d);
                    }
                    let (_, snapshot) = lane.hub.snapshot(qid).expect("subscribed");
                    prop_assert_eq!(
                        replica.result(), snapshot,
                        "replica != hub for {} at cycle {} with {} shards",
                        qid, cycle, shards
                    );
                    let truth =
                        brute_force_range(lane.hub.grid().iter_objects(), &subs[&qid.0]);
                    prop_assert_eq!(
                        replica.result(), truth.as_slice(),
                        "replica != range oracle for {} at cycle {} with {} shards",
                        qid, cycle, shards
                    );
                    drained.push((qid, deltas));
                }
                lane.hub.check_invariants();
                match &reference {
                    None => reference = Some(drained),
                    Some(first) => prop_assert_eq!(
                        first, &drained,
                        "delta streams diverged at cycle {} with {} shards",
                        cycle, shards
                    ),
                }
            }
        }
    }
}
