//! Re-grid conformance suite (oracle-backed).
//!
//! Online re-gridding must be **observationally invisible**: k-NN results
//! are δ-independent, so an engine that re-grids mid-stream has to keep
//! reporting bit-identical results, changed lists and delta streams —
//! against a never-re-gridded engine, against an engine built at the new
//! δ from scratch ([`verify_regrid`]), against the brute-force oracle,
//! and across shard counts. The object store must ride through every
//! re-grid untouched.

use std::collections::BTreeMap;

use cpm_suite::core::{AutoRegridConfig, RegridPolicy, ShardedKnnMonitor};
use cpm_suite::geom::{ObjectId, Point, QueryId};
use cpm_suite::grid::{ObjectEvent, QueryEvent};
use cpm_suite::sim::{verify_regrid, SimParams, SimulationInput, WorkloadKind};
use cpm_suite::sub::KnnSubscriptionHub;
use proptest::prelude::*;

/// Shard counts the re-gridding lanes run at (the satellite spec's
/// `S ∈ {1, 4}`).
const SHARD_COUNTS: [usize; 2] = [1, 4];

/// Per-test case budget, capped by `PROPTEST_CASES` (the CI conformance
/// job's wall-time bound) but never raised by it — each case replays a
/// multi-cycle stream across several engine lanes with oracle checks.
fn case_budget(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(default_cases, |cap: u32| cap.min(default_cases))
}

/// A symbolic step; resolved against the live-object set when applied.
#[derive(Debug, Clone)]
enum Action {
    MoveObject {
        slot: usize,
        x: f64,
        y: f64,
    },
    AppearObject {
        x: f64,
        y: f64,
    },
    DisappearObject {
        slot: usize,
    },
    MoveQuery {
        slot: usize,
        x: f64,
        y: f64,
    },
    /// End the current cycle and re-grid to `dims[slot % dims.len()]`
    /// before the next one.
    Regrid {
        slot: usize,
    },
    /// End the current cycle without a re-grid.
    EndCycle,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        6 => (any::<usize>(), 0.0..1.0f64, 0.0..1.0f64)
            .prop_map(|(slot, x, y)| Action::MoveObject { slot, x, y }),
        1 => (0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y)| Action::AppearObject { x, y }),
        1 => any::<usize>().prop_map(|slot| Action::DisappearObject { slot }),
        1 => (any::<usize>(), 0.0..1.0f64, 0.0..1.0f64)
            .prop_map(|(slot, x, y)| Action::MoveQuery { slot, x, y }),
        1 => any::<usize>().prop_map(|slot| Action::Regrid { slot }),
        2 => Just(Action::EndCycle),
    ]
}

/// The canonical k-NN answer: ascending `(dist, id)`, truncated to `k` —
/// exactly what `NeighborList` maintains, computed from first principles.
fn oracle_knn(model: &BTreeMap<u32, Point>, q: Point, k: usize) -> Vec<(ObjectId, f64)> {
    let mut all: Vec<(ObjectId, f64)> = model
        .iter()
        .map(|(&id, &p)| (ObjectId(id), q.dist(p)))
        .collect();
    all.sort_by(|a, b| {
        (a.1, a.0)
            .partial_cmp(&(b.1, b.0))
            .expect("finite distances")
    });
    all.truncate(k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: case_budget(12), ..ProptestConfig::default()
    })]

    /// The satellite property: `ObjectStore` contents and query results
    /// are invariant under a random sequence of re-grids interleaved with
    /// updates, at S ∈ {1, 4} — checked against a never-re-gridded pinned
    /// engine every cycle and against the brute-force oracle (bitwise,
    /// ids and distance bits) at every cycle end.
    #[test]
    fn regrids_never_change_results(
        actions in proptest::collection::vec(action_strategy(), 10..120),
        n_queries in 2usize..8,
    ) {
        let dims = [8u32, 16, 32, 64, 128];
        let mut pinned = ShardedKnnMonitor::new(16, 1);
        let mut lanes: Vec<ShardedKnnMonitor> = SHARD_COUNTS
            .iter()
            .map(|&s| ShardedKnnMonitor::new(16, s))
            .collect();

        // Initial population and queries.
        let mut model: BTreeMap<u32, Point> = BTreeMap::new();
        let mut next_id = 0u32;
        for i in 0..30u32 {
            let p = Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.73) % 1.0);
            model.insert(next_id, p);
            next_id += 1;
        }
        let mut queries: Vec<(QueryId, Point, usize)> = (0..n_queries)
            .map(|i| {
                let q = Point::new((i as f64 * 0.31) % 1.0, (i as f64 * 0.57) % 1.0);
                (QueryId(i as u32), q, 1 + i % 4)
            })
            .collect();
        for m in lanes.iter_mut().chain([&mut pinned]) {
            m.populate(model.iter().map(|(&id, &p)| (ObjectId(id), p)));
            for &(qid, q, k) in &queries {
                m.install_query(qid, q, k);
            }
        }

        let mut object_events: Vec<ObjectEvent> = Vec::new();
        let mut query_events: Vec<QueryEvent> = Vec::new();
        let mut touched: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut touched_queries: std::collections::HashSet<u32> = std::collections::HashSet::new();

        fn run_cycle(
            object_events: &mut Vec<ObjectEvent>,
            query_events: &mut Vec<QueryEvent>,
            regrid_dim: Option<u32>,
            pinned: &mut ShardedKnnMonitor,
            lanes: &mut [ShardedKnnMonitor],
            model: &BTreeMap<u32, Point>,
            queries: &[(QueryId, Point, usize)],
        ) -> Result<(), proptest::test_runner::TestCaseError> {
            if let Some(dim) = regrid_dim {
                for lane in lanes.iter_mut() {
                    let migrated = lane.regrid_to(dim);
                    // A genuine dim change migrates exactly the live set.
                    prop_assert!(migrated == 0 || migrated == lane.grid().len());
                    lane.check_invariants();
                }
            }
            let changed_pinned = pinned.process_cycle(object_events, query_events);
            for lane in lanes.iter_mut() {
                let changed = lane.process_cycle(object_events, query_events);
                prop_assert_eq!(&changed_pinned, &changed, "changed lists diverged");
                lane.check_invariants();
                // Store invariance: the re-gridded lane's object table is
                // the model, bit for bit.
                let got: Vec<(u32, Point)> =
                    lane.grid().iter_objects().map(|(o, p)| (o.0, p)).collect();
                let want: Vec<(u32, Point)> = model.iter().map(|(&id, &p)| (id, p)).collect();
                prop_assert_eq!(got, want, "object store diverged from the model");
                for &(qid, q, k) in queries {
                    let result = lane.result(qid).expect("installed query");
                    prop_assert_eq!(
                        pinned.result(qid).expect("installed query"),
                        result,
                        "results diverged from the pinned engine for {}", qid
                    );
                    // Oracle, bitwise: same ids, same distance bits.
                    let truth = oracle_knn(model, q, k);
                    prop_assert_eq!(result.len(), truth.len().min(k));
                    for (n, (oid, dist)) in result.iter().zip(&truth) {
                        prop_assert_eq!(n.id, *oid, "oracle id mismatch for {}", qid);
                        prop_assert_eq!(
                            n.dist.to_bits(),
                            dist.to_bits(),
                            "oracle distance bits mismatch for {}", qid
                        );
                    }
                }
            }
            object_events.clear();
            query_events.clear();
            Ok(())
        }

        for action in actions {
            match action {
                Action::MoveObject { slot, x, y } => {
                    let ids: Vec<u32> = model.keys().copied().collect();
                    let id = ids[slot % ids.len()];
                    if touched.insert(id) {
                        let p = Point::new(x, y);
                        model.insert(id, p);
                        object_events.push(ObjectEvent::Move { id: ObjectId(id), to: p });
                    }
                }
                Action::AppearObject { x, y } => {
                    let p = Point::new(x, y);
                    model.insert(next_id, p);
                    touched.insert(next_id);
                    object_events.push(ObjectEvent::Appear { id: ObjectId(next_id), pos: p });
                    next_id += 1;
                }
                Action::DisappearObject { slot } => {
                    if model.len() <= 4 {
                        continue;
                    }
                    let ids: Vec<u32> = model.keys().copied().collect();
                    let id = ids[slot % ids.len()];
                    if touched.insert(id) {
                        model.remove(&id);
                        object_events.push(ObjectEvent::Disappear { id: ObjectId(id) });
                    }
                }
                Action::MoveQuery { slot, x, y } => {
                    let at = slot % queries.len();
                    let qid = queries[at].0;
                    if touched_queries.insert(qid.0) {
                        let to = Point::new(x, y);
                        queries[at].1 = to;
                        query_events.push(QueryEvent::Move { id: qid, to });
                    }
                }
                Action::Regrid { slot } => {
                    run_cycle(
                        &mut object_events,
                        &mut query_events,
                        Some(dims[slot % dims.len()]),
                        &mut pinned,
                        &mut lanes,
                        &model,
                        &queries,
                    )?;
                    touched.clear();
                    touched_queries.clear();
                }
                Action::EndCycle => {
                    run_cycle(
                        &mut object_events,
                        &mut query_events,
                        None,
                        &mut pinned,
                        &mut lanes,
                        &model,
                        &queries,
                    )?;
                    touched.clear();
                    touched_queries.clear();
                }
            }
        }
        // Flush the trailing partial cycle.
        run_cycle(
            &mut object_events,
            &mut query_events,
            None,
            &mut pinned,
            &mut lanes,
            &model,
            &queries,
        )?;
    }

    #[test]
    fn from_scratch_conformance_on_random_regrid_schedules(
        seed in 0u64..1000,
        at_a in 1usize..5,
        at_b in 5usize..9,
        dim_a in prop_oneof![Just(24u32), Just(64u32), Just(128u32)],
        dim_b in prop_oneof![Just(16u32), Just(48u32), Just(96u32)],
    ) {
        let params = SimParams {
            n_objects: 220,
            n_queries: 10,
            k: 3,
            timestamps: 10,
            grid_dim: 32,
            workload: WorkloadKind::Drift { peak_factor: 5.0 },
            seed,
            ..SimParams::default()
        };
        let input = SimulationInput::generate(&params);
        verify_regrid(&input, &[(at_a, dim_a), (at_b, dim_b)], &SHARD_COUNTS);
    }
}

/// The auto policy on the drifting-hotspot stream: it must actually
/// re-grid, thread its counters through `Metrics`, and stay bit-identical
/// to a fixed-δ engine the whole way.
#[test]
fn auto_policy_adapts_and_stays_bit_identical() {
    let params = SimParams {
        n_objects: 400,
        n_queries: 60,
        k: 4,
        timestamps: 30,
        grid_dim: 16,
        workload: WorkloadKind::Drift { peak_factor: 8.0 },
        seed: 7,
        ..SimParams::default()
    };
    let input = SimulationInput::generate(&params);

    let build = |auto: bool| {
        let mut m = ShardedKnnMonitor::new(params.grid_dim, 2);
        if auto {
            m.set_regrid_policy(RegridPolicy::Auto(AutoRegridConfig {
                check_every: 3,
                cooldown: 6,
                ..AutoRegridConfig::default()
            }));
            assert!(m.regrid_policy().is_auto());
        }
        m.populate(input.initial_objects.iter().copied());
        for &(qid, pos, k) in &input.initial_queries {
            m.install_query(qid, pos, k);
        }
        m
    };
    let mut fixed = build(false);
    let mut adaptive = build(true);
    let mut dims_seen = std::collections::BTreeSet::new();
    for (t, tick) in input.ticks.iter().enumerate() {
        let a = fixed.process_cycle(&tick.object_events, &tick.query_events);
        let b = adaptive.process_cycle(&tick.object_events, &tick.query_events);
        dims_seen.insert(adaptive.grid().dim());
        assert_eq!(a, b, "changed lists diverged at t={t}");
        for &(qid, _, _) in &input.initial_queries {
            assert_eq!(
                fixed.result(qid).unwrap(),
                adaptive.result(qid).unwrap(),
                "results diverged at t={t} for {qid}"
            );
        }
        adaptive.check_invariants();
    }
    let m = adaptive.metrics();
    assert!(m.regrids >= 1, "8x population swing never re-gridded");
    assert!(m.regrid_objects_migrated > 0);
    assert!(m.regrid_queries_recomputed >= 60);
    // The resolution genuinely moved during the run (the triangle-wave
    // population often brings it back to the provisioned dim by the end —
    // refine on the way up, coarsen on the way down — which is the policy
    // doing its job, so the *final* dim proves nothing).
    assert!(
        dims_seen.len() >= 2,
        "resolution never moved: {dims_seen:?}"
    );
    // The fixed lane's counters must not contain re-grid work.
    let f = fixed.metrics();
    assert_eq!(f.regrids, 0);
    assert_eq!(f.regrid_objects_migrated, 0);
    assert_eq!(f.regrid_queries_recomputed, 0);
}

/// Re-grid cycles must not leak spurious deltas through `cpm-sub`: a hub
/// that re-grids ships the exact delta stream of a hub that never does —
/// and a quiet commit right after a re-grid ships nothing at all.
#[test]
fn regrids_emit_no_spurious_deltas_through_the_hub() {
    let objects: Vec<(ObjectId, Point)> = (0..80u32)
        .map(|i| {
            (
                ObjectId(i),
                Point::new((i as f64 * 0.29) % 1.0, (i as f64 * 0.53) % 1.0),
            )
        })
        .collect();
    let build = || {
        let mut hub = KnnSubscriptionHub::new(32, 2);
        hub.populate(objects.iter().copied());
        for qi in 0..12u32 {
            hub.subscribe_knn(
                QueryId(qi),
                Point::new((qi as f64 * 0.41) % 1.0, 0.5),
                1 + qi as usize % 3,
            );
        }
        hub.commit();
        hub
    };
    let mut plain = build();
    let mut regridding = build();
    // Drain the subscription install deltas on both sides.
    for qi in 0..12u32 {
        assert_eq!(
            plain.drain(QueryId(qi)),
            regridding.drain(QueryId(qi)),
            "install deltas diverged"
        );
    }

    // A quiet commit straddling a re-grid ships zero deltas.
    regridding.regrid_to(128);
    plain.commit();
    regridding.commit();
    for qi in 0..12u32 {
        assert!(
            regridding.drain(QueryId(qi)).is_empty(),
            "re-grid cycle shipped a spurious delta for query {qi}"
        );
        assert!(plain.drain(QueryId(qi)).is_empty());
    }

    // Under churn, the streams stay bit-identical across further regrids.
    for step in 0..12u32 {
        if step == 4 {
            regridding.regrid_to(16);
        }
        if step == 8 {
            regridding.regrid_to(64);
        }
        for mv in 0..6u32 {
            let id = (step * 6 + mv) % 80;
            let to = Point::new(
                ((step as f64 + 1.0) * 0.13 + mv as f64 * 0.07) % 1.0,
                ((step as f64 + 1.0) * 0.11 + mv as f64 * 0.05) % 1.0,
            );
            plain.push_update(ObjectEvent::Move {
                id: ObjectId(id),
                to,
            });
            regridding.push_update(ObjectEvent::Move {
                id: ObjectId(id),
                to,
            });
        }
        plain.commit();
        regridding.commit();
        for qi in 0..12u32 {
            assert_eq!(
                plain.drain(QueryId(qi)),
                regridding.drain(QueryId(qi)),
                "delta streams diverged at step {step} for query {qi}"
            );
        }
        regridding.check_invariants();
    }
    assert_eq!(regridding.grid().dim(), 64);
    assert!(regridding.metrics().regrids >= 3);
}
