//! Hardware-independent versions of the paper's comparative claims
//! (Sections 4.2 and 6), asserted on work counters rather than wall time
//! so they are stable in CI:
//!
//! * CPM never scans more cells than YPK-CNN or SEA-CNN on the default
//!   maintenance workload (Figs. 6.1-6.3).
//! * CPM's work is insensitive to object speed, while YPK-CNN's grows
//!   with it (Fig. 6.4a).
//! * With static queries and in-region churn, CPM resolves results from
//!   the update stream alone (Fig. 4.3a's contrast).

use cpm_suite::gen::SpeedClass;
use cpm_suite::sim::{run, AlgoKind, SimParams, SimulationInput, WorkloadKind};

fn base() -> SimParams {
    SimParams {
        n_objects: 3_000,
        n_queries: 60,
        k: 8,
        timestamps: 20,
        grid_dim: 64,
        workload: WorkloadKind::Network { grid_streets: 16 },
        ..SimParams::default()
    }
}

#[test]
fn cpm_scans_fewest_cells_on_default_workload() {
    let input = SimulationInput::generate(&base());
    let cpm = run(AlgoKind::Cpm, &input);
    let ypk = run(AlgoKind::Ypk, &input);
    let sea = run(AlgoKind::Sea, &input);
    assert!(
        cpm.metrics.cell_accesses < ypk.metrics.cell_accesses,
        "CPM {} vs YPK {}",
        cpm.metrics.cell_accesses,
        ypk.metrics.cell_accesses
    );
    assert!(
        cpm.metrics.cell_accesses < sea.metrics.cell_accesses,
        "CPM {} vs SEA {}",
        cpm.metrics.cell_accesses,
        sea.metrics.cell_accesses
    );
    // And by a wide margin, as the paper reports (≥ 5× here; the paper
    // shows one or more orders of magnitude at full scale).
    assert!(cpm.metrics.cell_accesses * 5 < ypk.metrics.cell_accesses);
}

#[test]
fn cpm_work_is_insensitive_to_object_speed_fig_6_4a() {
    let mut accesses = Vec::new();
    let mut ypk_accesses = Vec::new();
    for speed in SpeedClass::ALL {
        let params = SimParams {
            object_speed: speed,
            f_qry: 0.0, // isolate object-update handling
            ..base()
        };
        let input = SimulationInput::generate(&params);
        accesses.push(run(AlgoKind::Cpm, &input).metrics.cell_accesses);
        ypk_accesses.push(run(AlgoKind::Ypk, &input).metrics.cell_accesses);
    }
    // CPM: flat in speed (allow 3× wiggle — churn differs per stream).
    let (cpm_slow, cpm_fast) = (accesses[0].max(1), accesses[2].max(1));
    assert!(
        cpm_fast < 3 * cpm_slow,
        "CPM slow {cpm_slow} vs fast {cpm_fast}"
    );
    // YPK-CNN: clearly grows with speed (d_max grows with displacement).
    assert!(
        ypk_accesses[2] > 2 * ypk_accesses[0],
        "YPK slow {} vs fast {}",
        ypk_accesses[0],
        ypk_accesses[2]
    );
    // And CPM stays below YPK at every speed.
    for (c, y) in accesses.iter().zip(&ypk_accesses) {
        assert!(c < y);
    }
}

#[test]
fn static_queries_resolve_mostly_without_search_fig_6_6b() {
    let params = SimParams {
        f_qry: 0.0,
        // Match the paper's object density per cell (N/dim² ≈ 100K/128²
        // ≈ 6): at 3K objects that means a 22² grid; 32² keeps
        // best_dist within about one cell radius as in the paper.
        grid_dim: 32,
        ..base()
    };
    let input = SimulationInput::generate(&params);
    let cpm = run(AlgoKind::Cpm, &input);
    // A substantial share of affected queries is maintained by merging
    // the update batch alone (no grid access); the rest fall to the cheap
    // re-computation module. At medium speed the in/out balance is close
    // to even (movers typically cross the whole influence region).
    let merges = cpm.metrics.merge_resolutions;
    let recomputes = cpm.metrics.recomputations;
    assert!(
        merges * 3 >= recomputes,
        "merges {merges} vs recomputations {recomputes}"
    );
    // Re-computations resume the stored visit list: their amortized cost
    // stays at a handful of cell accesses per query per timestamp
    // (Fig. 6.3b shows < 1 for small k; k = 8 here).
    assert!(
        cpm.cell_accesses_per_query_per_cycle() < 8.0,
        "cells/query/cycle {}",
        cpm.cell_accesses_per_query_per_cycle()
    );
    // No from-scratch computations beyond the initial installs (counted
    // before process_cycle, so zero inside the run's cycles).
    assert_eq!(
        cpm.metrics.computations,
        input.initial_queries.len() as u64,
        "static queries must never be recomputed from scratch"
    );
}

#[test]
fn ypk_reevaluates_everything_even_when_idle() {
    // Zero agility: nothing moves at all.
    let params = SimParams {
        f_obj: 0.0,
        f_qry: 0.0,
        ..base()
    };
    let input = SimulationInput::generate(&params);
    let cpm = run(AlgoKind::Cpm, &input);
    let ypk = run(AlgoKind::Ypk, &input);
    let sea = run(AlgoKind::Sea, &input);

    // CPM and SEA-CNN are event-driven: after the initial evaluations,
    // an idle stream costs them nothing.
    assert_eq!(
        cpm.metrics.computations as usize,
        input.initial_queries.len()
    );
    assert_eq!(cpm.metrics.recomputations, 0);
    assert_eq!(cpm.metrics.merge_resolutions, 0);
    assert_eq!(sea.metrics.recomputations, 0);

    // YPK-CNN still re-scans every query every timestamp ("it does not
    // include a mechanism for detecting queries influenced by updates").
    let evaluations = (input.initial_queries.len() * input.ticks.len()) as u64;
    assert!(
        ypk.metrics.recomputations >= evaluations,
        "YPK recomputed {} times for {} query-timestamps",
        ypk.metrics.recomputations,
        evaluations
    );
}

#[test]
fn sea_moving_query_cost_grows_with_query_speed_fig_6_4b() {
    let mut sea_work = Vec::new();
    let mut cpm_work = Vec::new();
    for speed in SpeedClass::ALL {
        let params = SimParams {
            query_speed: speed,
            f_obj: 0.1, // keep object churn small to isolate query motion
            ..base()
        };
        let input = SimulationInput::generate(&params);
        sea_work.push(run(AlgoKind::Sea, &input).metrics.objects_processed);
        cpm_work.push(run(AlgoKind::Cpm, &input).metrics.objects_processed);
    }
    // SEA-CNN's search region r = best_dist + dist(q, q′) grows with query
    // displacement; CPM computes moving queries from scratch at a cost
    // independent of the displacement.
    assert!(
        sea_work[2] > sea_work[0],
        "SEA slow {} vs fast {}",
        sea_work[0],
        sea_work[2]
    );
    let (c_slow, c_fast) = (cpm_work[0].max(1), cpm_work[2].max(1));
    assert!(
        c_fast < 2 * c_slow && c_slow < 2 * c_fast,
        "CPM slow {c_slow} vs fast {c_fast}"
    );
}
