//! The qualitative head-to-head scenarios of Section 4.2 (Figures 4.2 and
//! 4.3), encoded as paired counter assertions: the same hand-built
//! situation is replayed into two monitors and the paper's claimed work
//! relation must hold.

use cpm_suite::baselines::{SeaCnnMonitor, YpkCnnMonitor};
use cpm_suite::core::CpmKnnMonitor;
use cpm_suite::geom::{ObjectId, Point, QueryId};
use cpm_suite::grid::{ObjectEvent, QueryEvent};

/// Figure 4.3a: the only update is an object moving *inside* the
/// best_dist circle. CPM compares one distance and touches no cells;
/// SEA-CNN re-scans its whole answer region.
#[test]
fn incomer_within_best_dist_fig_4_3a() {
    let objects = [
        (ObjectId(1), Point::new(0.52, 0.55)), // current NN
        (ObjectId(6), Point::new(0.70, 0.50)), // will come closer
        (ObjectId(2), Point::new(0.30, 0.40)),
    ];
    let q = (QueryId(0), Point::new(0.5, 0.5), 1);

    let mut cpm = CpmKnnMonitor::new(16);
    let mut sea = SeaCnnMonitor::new(16);
    cpm.populate(objects);
    sea.populate(objects);
    cpm.install_query(q.0, q.1, q.2);
    sea.install_query(q.0, q.1, q.2);
    cpm.take_metrics();
    sea.take_metrics();

    let update = [ObjectEvent::Move {
        id: ObjectId(6),
        to: Point::new(0.51, 0.52), // closer than the current NN
    }];
    let c1 = cpm.process_cycle(&update, &[]);
    let c2 = sea.process_cycle(&update, &[]);
    assert_eq!(c1, vec![QueryId(0)]);
    assert_eq!(c2, vec![QueryId(0)]);
    assert_eq!(cpm.result(QueryId(0)).unwrap()[0].id, ObjectId(6));
    assert_eq!(sea.result(QueryId(0)).unwrap()[0].id, ObjectId(6));

    // "CPM directly compares dist(p'6, q) with best_dist and sets p'6 as
    // the result without visiting any cells."
    assert_eq!(cpm.metrics().cell_accesses, 0, "CPM must not search");
    assert_eq!(cpm.metrics().merge_resolutions, 1);
    // SEA-CNN scans the answer region for the same conclusion.
    assert!(
        sea.metrics().cell_accesses > 0,
        "SEA-CNN rescans the region"
    );
}

/// Figure 4.2b / 2.2a: the current NN moves away. CPM resumes its visit
/// list; YPK-CNN and SEA-CNN scan a d_max-sized region whose cost grows
/// with how far the old NN moved.
#[test]
fn outgoing_nn_cost_grows_with_distance_for_baselines_fig_4_2b() {
    // Place a second-best object near q and spectators farther out; the
    // NN then moves progressively farther in two scenarios.
    let objects = [
        (ObjectId(1), Point::new(0.50, 0.53)), // NN
        (ObjectId(2), Point::new(0.46, 0.47)), // next best
        (ObjectId(3), Point::new(0.60, 0.60)),
        (ObjectId(4), Point::new(0.40, 0.65)),
        (ObjectId(5), Point::new(0.70, 0.35)),
    ];
    let run = |dest: Point| {
        let mut cpm = CpmKnnMonitor::new(32);
        let mut ypk = YpkCnnMonitor::new(32);
        cpm.populate(objects);
        ypk.populate(objects);
        cpm.install_query(QueryId(0), Point::new(0.5, 0.5), 1);
        ypk.install_query(QueryId(0), Point::new(0.5, 0.5), 1);
        cpm.take_metrics();
        ypk.take_metrics();
        let update = [ObjectEvent::Move {
            id: ObjectId(1),
            to: dest,
        }];
        cpm.process_cycle(&update, &[]);
        ypk.process_cycle(&update, &[]);
        assert_eq!(cpm.result(QueryId(0)).unwrap()[0].id, ObjectId(2));
        assert_eq!(ypk.result(QueryId(0)).unwrap()[0].id, ObjectId(2));
        (cpm.metrics().cell_accesses, ypk.metrics().cell_accesses)
    };

    let (cpm_near, ypk_near) = run(Point::new(0.56, 0.56));
    let (cpm_far, ypk_far) = run(Point::new(0.95, 0.95));
    // "The unnecessary computations increase with dist(p'2, q)" — for
    // YPK-CNN. CPM's re-computation is independent of the move distance.
    assert!(
        ypk_far > ypk_near,
        "YPK d_max cost must grow: {ypk_near} -> {ypk_far}"
    );
    assert_eq!(
        cpm_near, cpm_far,
        "CPM re-computation cost is independent of the NN's displacement"
    );
    assert!(cpm_far < ypk_far, "CPM processes fewer cells");
}

/// Figure 4.3b: the query moves. CPM recomputes from scratch at a cost
/// independent of the displacement; SEA-CNN's circle grows with it.
#[test]
fn query_displacement_cost_fig_4_3b() {
    // Deterministic scatter over the whole workspace (low-discrepancy
    // lattice), so a longer query hop sweeps strictly more objects.
    let objects: Vec<(ObjectId, Point)> = (0..60u32)
        .map(|i| {
            (
                ObjectId(i),
                Point::new(
                    (i as f64 * 0.618_033_988_75) % 1.0,
                    (i as f64 * 0.754_877_666_25) % 1.0,
                ),
            )
        })
        .collect();
    let run = |dest: Point| {
        let mut cpm = CpmKnnMonitor::new(32);
        let mut sea = SeaCnnMonitor::new(32);
        cpm.populate(objects.iter().copied());
        sea.populate(objects.iter().copied());
        cpm.install_query(QueryId(0), Point::new(0.5, 0.5), 2);
        sea.install_query(QueryId(0), Point::new(0.5, 0.5), 2);
        cpm.take_metrics();
        sea.take_metrics();
        let mv = [QueryEvent::Move {
            id: QueryId(0),
            to: dest,
        }];
        cpm.process_cycle(&[], &mv);
        sea.process_cycle(&[], &mv);
        (
            cpm.metrics().objects_processed,
            sea.metrics().objects_processed,
        )
    };
    let (_, sea_near) = run(Point::new(0.52, 0.52));
    let (_, sea_far) = run(Point::new(0.80, 0.78));
    assert!(
        sea_far > sea_near,
        "SEA-CNN's search region grows with query displacement: {sea_near} -> {sea_far}"
    );
}

/// Section 4.2 summary: "the speed of the objects does not affect the
/// running time of CPM since update handling is restricted to the
/// influence regions of the queries" — counter version with a single
/// update of varying length that never touches the influence region.
#[test]
fn far_updates_are_completely_ignored() {
    let objects = [
        (ObjectId(1), Point::new(0.50, 0.52)),
        (ObjectId(2), Point::new(0.48, 0.47)),
        (ObjectId(3), Point::new(0.05, 0.05)), // far away
    ];
    let mut cpm = CpmKnnMonitor::new(32);
    cpm.populate(objects);
    cpm.install_query(QueryId(0), Point::new(0.5, 0.5), 2);
    cpm.take_metrics();
    // The far object jumps across the whole workspace, far from q.
    for dest in [Point::new(0.95, 0.05), Point::new(0.05, 0.95)] {
        let changed = cpm.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(3),
                to: dest,
            }],
            &[],
        );
        assert!(changed.is_empty());
    }
    let m = cpm.metrics();
    assert_eq!(m.cell_accesses, 0);
    assert_eq!(m.objects_processed, 0);
    assert_eq!(m.merge_resolutions + m.recomputations, 0);
    assert_eq!(m.updates_applied, 2, "index updates still happen");
}
