//! Property-based integration test: arbitrary event streams (moves,
//! appearances, disappearances, query moves) must keep CPM in exact
//! agreement with the brute-force oracle, with all internal invariants
//! intact at every step.

use cpm_suite::core::CpmKnnMonitor;
use cpm_suite::geom::{ObjectId, Point, QueryId};
use cpm_suite::grid::{ObjectEvent, QueryEvent};
use cpm_suite::sim::{KnnMonitorAlgo, OracleMonitor};
use proptest::prelude::*;

/// A symbolic event the strategy generates; resolved against the set of
/// live objects when applied (so streams are always consistent).
#[derive(Debug, Clone)]
enum Action {
    MoveObject { slot: usize, x: f64, y: f64 },
    AppearObject { x: f64, y: f64 },
    DisappearObject { slot: usize },
    MoveQuery { slot: usize, x: f64, y: f64 },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        5 => (any::<usize>(), 0.0..1.0f64, 0.0..1.0f64)
            .prop_map(|(slot, x, y)| Action::MoveObject { slot, x, y }),
        1 => (0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y)| Action::AppearObject { x, y }),
        1 => any::<usize>().prop_map(|slot| Action::DisappearObject { slot }),
        1 => (any::<usize>(), 0.0..1.0f64, 0.0..1.0f64)
            .prop_map(|(slot, x, y)| Action::MoveQuery { slot, x, y }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    #[test]
    fn cpm_matches_oracle_on_arbitrary_streams(
        dim in prop_oneof![Just(4u32), Just(16u32), Just(48u32)],
        k in 1usize..6,
        initial in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 5..40),
        query_pts in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..4),
        batches in proptest::collection::vec(
            proptest::collection::vec(action_strategy(), 0..8), 1..12),
    ) {
        let mut cpm = CpmKnnMonitor::new(dim);
        let mut oracle = OracleMonitor::new();
        let objects: Vec<(ObjectId, Point)> = initial
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (ObjectId(i as u32), Point::new(x, y)))
            .collect();
        cpm.populate(objects.iter().copied());
        KnnMonitorAlgo::populate(&mut oracle, &objects);

        let queries: Vec<QueryId> = query_pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                let qid = QueryId(i as u32);
                cpm.install_query(qid, Point::new(x, y), k);
                KnnMonitorAlgo::install_query(&mut oracle, qid, Point::new(x, y), k);
                qid
            })
            .collect();

        let mut live: Vec<u32> = (0..objects.len() as u32).collect();
        let mut next_id = objects.len() as u32;

        for batch in &batches {
            let mut obj_events = Vec::new();
            let mut qry_events = Vec::new();
            let mut used = std::collections::HashSet::new();
            let mut used_q = std::collections::HashSet::new();
            for action in batch {
                match *action {
                    Action::MoveObject { slot, x, y } if !live.is_empty() => {
                        let id = live[slot % live.len()];
                        if used.insert(id) {
                            obj_events.push(ObjectEvent::Move {
                                id: ObjectId(id),
                                to: Point::new(x, y),
                            });
                        }
                    }
                    Action::AppearObject { x, y } => {
                        let id = next_id;
                        next_id += 1;
                        live.push(id);
                        used.insert(id);
                        obj_events.push(ObjectEvent::Appear {
                            id: ObjectId(id),
                            pos: Point::new(x, y),
                        });
                    }
                    Action::DisappearObject { slot } if !live.is_empty() => {
                        let idx = slot % live.len();
                        let id = live[idx];
                        if used.insert(id) {
                            live.swap_remove(idx);
                            obj_events.push(ObjectEvent::Disappear { id: ObjectId(id) });
                        }
                    }
                    Action::MoveQuery { slot, x, y } => {
                        let qid = queries[slot % queries.len()];
                        if used_q.insert(qid) {
                            qry_events.push(QueryEvent::Move {
                                id: qid,
                                to: Point::new(x, y),
                            });
                        }
                    }
                    _ => {}
                }
            }
            cpm.process_cycle(&obj_events, &qry_events);
            KnnMonitorAlgo::process_cycle(&mut oracle, &obj_events, &qry_events);
            cpm.check_invariants();

            for qid in &queries {
                let truth: Vec<f64> = KnnMonitorAlgo::result(&oracle, *qid)
                    .unwrap()
                    .iter()
                    .map(|n| n.dist)
                    .collect();
                let got: Vec<f64> = cpm
                    .result(*qid)
                    .unwrap()
                    .iter()
                    .map(|n| n.dist)
                    .collect();
                prop_assert_eq!(got.len(), truth.len());
                for (g, e) in got.iter().zip(&truth) {
                    prop_assert!((g - e).abs() < 1e-9,
                        "{:?} vs {:?} at {:?}", got, truth, qid);
                }
            }
        }
    }
}
