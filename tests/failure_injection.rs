//! Failure injection and degenerate configurations: disappearance bursts,
//! mass teleports, single-cell pile-ups, workspace corners/edges,
//! out-of-range coordinates, and malformed event batches rejected at the
//! unified server's ingest boundary.

use cpm_suite::core::{CpmError, CpmKnnMonitor, CpmServer, CpmServerBuilder};
use cpm_suite::geom::{ObjectId, Point, QueryId};
use cpm_suite::grid::{ObjectEvent, QueryEvent};
use cpm_suite::sim::{run, AlgoKind, KnnMonitorAlgo, OracleMonitor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_all_match(
    monitors: &mut [Box<dyn KnnMonitorAlgo>],
    oracle: &OracleMonitor,
    queries: &[QueryId],
) {
    for qid in queries {
        let truth: Vec<f64> = oracle
            .result(*qid)
            .unwrap()
            .iter()
            .map(|n| n.dist)
            .collect();
        for m in monitors.iter() {
            let got: Vec<f64> = m.result(*qid).unwrap().iter().map(|n| n.dist).collect();
            assert_eq!(got.len(), truth.len(), "{} on {qid}", m.name());
            for (g, e) in got.iter().zip(&truth) {
                assert!((g - e).abs() < 1e-9, "{} on {qid}", m.name());
            }
        }
    }
}

fn harness(
    objects: &[(ObjectId, Point)],
    queries: &[(QueryId, Point, usize)],
) -> (Vec<Box<dyn KnnMonitorAlgo>>, OracleMonitor, Vec<QueryId>) {
    let mut monitors: Vec<Box<dyn KnnMonitorAlgo>> =
        AlgoKind::CONTENDERS.iter().map(|&a| a.build(32)).collect();
    let mut oracle = OracleMonitor::new();
    for m in monitors.iter_mut() {
        m.populate(objects);
    }
    oracle.populate(objects);
    for &(qid, p, k) in queries {
        for m in monitors.iter_mut() {
            m.install_query(qid, p, k);
        }
        oracle.install_query(qid, p, k);
    }
    let qids = queries.iter().map(|&(q, _, _)| q).collect();
    (monitors, oracle, qids)
}

fn step(
    monitors: &mut [Box<dyn KnnMonitorAlgo>],
    oracle: &mut OracleMonitor,
    obj: &[ObjectEvent],
    qry: &[QueryEvent],
) {
    for m in monitors.iter_mut() {
        m.process_cycle(obj, qry);
    }
    oracle.process_cycle(obj, qry);
}

#[test]
fn disappearance_burst_wipes_out_every_result_member() {
    let objects: Vec<(ObjectId, Point)> = (0..40u32)
        .map(|i| {
            let t = i as f64 / 40.0;
            (ObjectId(i), Point::new(0.3 + 0.4 * t, 0.5))
        })
        .collect();
    let queries = [(QueryId(0), Point::new(0.5, 0.5), 8)];
    let (mut monitors, mut oracle, qids) = harness(&objects, &queries);

    // Kill the 20 objects nearest the query in one batch.
    let mut by_dist: Vec<(f64, u32)> = objects
        .iter()
        .map(|&(id, p)| (p.dist(Point::new(0.5, 0.5)), id.0))
        .collect();
    by_dist.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let burst: Vec<ObjectEvent> = by_dist[..20]
        .iter()
        .map(|&(_, id)| ObjectEvent::Disappear { id: ObjectId(id) })
        .collect();
    step(&mut monitors, &mut oracle, &burst, &[]);
    assert_all_match(&mut monitors, &oracle, &qids);

    // And a second burst that drops the population below k.
    let burst2: Vec<ObjectEvent> = by_dist[20..35]
        .iter()
        .map(|&(_, id)| ObjectEvent::Disappear { id: ObjectId(id) })
        .collect();
    step(&mut monitors, &mut oracle, &burst2, &[]);
    assert_all_match(&mut monitors, &oracle, &qids);

    // Population recovers.
    let revive: Vec<ObjectEvent> = (100..130u32)
        .map(|id| ObjectEvent::Appear {
            id: ObjectId(id),
            pos: Point::new(0.45 + (id as f64 - 100.0) / 300.0, 0.52),
        })
        .collect();
    step(&mut monitors, &mut oracle, &revive, &[]);
    assert_all_match(&mut monitors, &oracle, &qids);
}

#[test]
fn mass_teleport_across_the_workspace() {
    let mut rng = StdRng::seed_from_u64(31337);
    let objects: Vec<(ObjectId, Point)> = (0..60u32)
        .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
        .collect();
    let queries = [
        (QueryId(0), Point::new(0.25, 0.25), 4),
        (QueryId(1), Point::new(0.75, 0.75), 4),
    ];
    let (mut monitors, mut oracle, qids) = harness(&objects, &queries);
    for _ in 0..5 {
        // Everybody teleports to a fresh uniform position at once.
        let burst: Vec<ObjectEvent> = (0..60u32)
            .map(|id| ObjectEvent::Move {
                id: ObjectId(id),
                to: Point::new(rng.gen(), rng.gen()),
            })
            .collect();
        step(&mut monitors, &mut oracle, &burst, &[]);
        assert_all_match(&mut monitors, &oracle, &qids);
    }
}

#[test]
fn single_cell_pileup_and_dispersal() {
    // All objects collapse into one cell, then scatter.
    let objects: Vec<(ObjectId, Point)> = (0..30u32)
        .map(|i| (ObjectId(i), Point::new(0.1 + 0.025 * i as f64, 0.8)))
        .collect();
    let queries = [(QueryId(0), Point::new(0.515, 0.515), 5)];
    let (mut monitors, mut oracle, qids) = harness(&objects, &queries);

    let collapse: Vec<ObjectEvent> = (0..30u32)
        .map(|id| ObjectEvent::Move {
            id: ObjectId(id),
            to: Point::new(0.51 + id as f64 * 1e-4, 0.51),
        })
        .collect();
    step(&mut monitors, &mut oracle, &collapse, &[]);
    assert_all_match(&mut monitors, &oracle, &qids);

    let scatter: Vec<ObjectEvent> = (0..30u32)
        .map(|id| ObjectEvent::Move {
            id: ObjectId(id),
            to: Point::new((id as f64 * 0.033) % 1.0, (id as f64 * 0.071) % 1.0),
        })
        .collect();
    step(&mut monitors, &mut oracle, &scatter, &[]);
    assert_all_match(&mut monitors, &oracle, &qids);
}

#[test]
fn queries_on_corners_edges_and_cell_boundaries() {
    let mut rng = StdRng::seed_from_u64(8);
    let objects: Vec<(ObjectId, Point)> = (0..50u32)
        .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
        .collect();
    // Corners, edges and exact cell-boundary coordinates of a 32-grid.
    let spots = [
        Point::new(0.0, 0.0),
        Point::new(0.999999, 0.999999),
        Point::new(0.0, 0.999999),
        Point::new(0.5, 0.0),
        Point::new(0.25, 0.25),   // exact cell corner (8/32, 8/32)
        Point::new(0.5, 0.71875), // exact cell edge x
    ];
    let queries: Vec<(QueryId, Point, usize)> = spots
        .iter()
        .enumerate()
        .map(|(i, &p)| (QueryId(i as u32), p, 3))
        .collect();
    let (mut monitors, mut oracle, qids) = harness(&objects, &queries);
    for _ in 0..6 {
        let mut burst = Vec::new();
        for id in 0..50u32 {
            if rng.gen_bool(0.4) {
                burst.push(ObjectEvent::Move {
                    id: ObjectId(id),
                    to: Point::new(rng.gen(), rng.gen()),
                });
            }
        }
        step(&mut monitors, &mut oracle, &burst, &[]);
        assert_all_match(&mut monitors, &oracle, &qids);
    }
}

#[test]
fn out_of_range_coordinates_are_clamped_not_fatal() {
    let mut m = CpmKnnMonitor::new(16);
    m.populate([(ObjectId(0), Point::new(0.5, 0.5))]);
    m.install_query(QueryId(0), Point::new(0.5, 0.5), 1);
    // An update wildly outside the workspace is snapped to the boundary.
    m.process_cycle(
        &[ObjectEvent::Move {
            id: ObjectId(0),
            to: Point::new(7.3, -2.0),
        }],
        &[],
    );
    let n = &m.result(QueryId(0)).unwrap()[0];
    let clamped = m.grid().position(ObjectId(0)).unwrap();
    assert!(clamped.x < 1.0 && clamped.y == 0.0);
    assert!((n.dist - Point::new(0.5, 0.5).dist(clamped)).abs() < 1e-9);
    m.check_invariants();
}

/// A populated server with one k-NN query, for ingest-rejection tests.
fn small_server() -> CpmServer {
    let mut s = CpmServerBuilder::new(16).shards(2).build();
    s.populate((0..20u32).map(|i| (ObjectId(i), Point::new(f64::from(i) / 20.0, 0.5))));
    let _ = s.install_knn(QueryId(0), Point::new(0.5, 0.5), 3).unwrap();
    s
}

/// Malformed batches are rejected with typed errors *before* the cycle
/// runs: the epoch does not advance and results are untouched — poisoned
/// upstream data cannot corrupt (or crash) the server.
#[test]
fn server_rejects_malformed_event_batches_typed() {
    let mut s = small_server();
    let baseline = s.result(QueryId(0)).unwrap().to_vec();

    let cases: Vec<(ObjectEvent, CpmError)> = vec![
        (
            ObjectEvent::Move {
                id: ObjectId(3),
                to: Point::new(f64::NAN, 0.5),
            },
            CpmError::NonFiniteCoordinate(ObjectId(3)),
        ),
        (
            ObjectEvent::Appear {
                id: ObjectId(90),
                pos: Point::new(0.2, f64::INFINITY),
            },
            CpmError::NonFiniteCoordinate(ObjectId(90)),
        ),
        (
            ObjectEvent::Move {
                id: ObjectId(4),
                to: Point::new(7.3, -2.0),
            },
            CpmError::OutOfWorkspace(ObjectId(4)),
        ),
        (
            ObjectEvent::Appear {
                id: ObjectId(91),
                pos: Point::new(1.0000001, 0.5),
            },
            CpmError::OutOfWorkspace(ObjectId(91)),
        ),
    ];
    for (bad, want) in cases {
        let err = s.process_cycle(&[bad], &[]).unwrap_err();
        assert_eq!(err, want);
        assert!(!err.to_string().is_empty());
    }

    // Duplicate ids within one batch — even across event variants.
    let err = s
        .process_cycle(
            &[
                ObjectEvent::Move {
                    id: ObjectId(5),
                    to: Point::new(0.1, 0.1),
                },
                ObjectEvent::Disappear { id: ObjectId(5) },
            ],
            &[],
        )
        .unwrap_err();
    assert_eq!(err, CpmError::DuplicateObject(ObjectId(5)));

    // A bad event anywhere in the batch rejects the whole batch.
    let err = s
        .process_cycle(
            &[
                ObjectEvent::Move {
                    id: ObjectId(6),
                    to: Point::new(0.4, 0.4),
                },
                ObjectEvent::Move {
                    id: ObjectId(7),
                    to: Point::new(0.5, f64::NEG_INFINITY),
                },
            ],
            &[],
        )
        .unwrap_err();
    assert_eq!(err, CpmError::NonFiniteCoordinate(ObjectId(7)));

    // Nothing ran: epoch still 0, result untouched, invariants hold.
    assert_eq!(s.epoch(), 0);
    assert_eq!(s.result(QueryId(0)).unwrap(), baseline.as_slice());
    s.check_invariants();

    // The boundary coordinates themselves remain legal (closed unit
    // square; the grid clamps 1.0 into the last cell internally).
    let changed = s
        .process_cycle(
            &[
                ObjectEvent::Move {
                    id: ObjectId(8),
                    to: Point::new(0.0, 1.0),
                },
                ObjectEvent::Move {
                    id: ObjectId(9),
                    to: Point::new(1.0, 0.0),
                },
            ],
            &[],
        )
        .unwrap();
    assert_eq!(s.epoch(), 1);
    let _ = changed;
    s.check_invariants();
}

#[test]
fn wall_time_reports_are_monotone_in_workload() {
    // Sanity for the harness itself: more work -> more measured time.
    use cpm_suite::sim::{SimParams, SimulationInput, WorkloadKind};
    let small = SimulationInput::generate(&SimParams {
        n_objects: 300,
        n_queries: 10,
        timestamps: 8,
        grid_dim: 32,
        workload: WorkloadKind::Uniform,
        ..SimParams::default()
    });
    let big = SimulationInput::generate(&SimParams {
        n_objects: 3_000,
        n_queries: 100,
        timestamps: 8,
        grid_dim: 32,
        workload: WorkloadKind::Uniform,
        ..SimParams::default()
    });
    let a = run(AlgoKind::Cpm, &small);
    let b = run(AlgoKind::Cpm, &big);
    assert!(b.metrics.updates_applied > a.metrics.updates_applied);
    assert!(b.metrics.cell_accesses >= a.metrics.cell_accesses);
}
