//! Index-matrix conformance suite: the spatial-index backend behind the
//! grid facade is an implementation detail the paper's algorithm cannot
//! observe. Every lane of the matrix — backend ∈ {uniform `CellIndex`,
//! adaptive `QuadtreeIndex`} × shards S ∈ {1, 4} — must report results,
//! changed lists and delta streams **bit-identical** to the uniform
//! reference, including across mid-run re-grids and a full
//! snapshot → restore round-trip, and for *every* exact query kind via
//! the unified server sweep.

use cpm_suite::core::{CpmError, CpmServerBuilder, EngineSnapshot, PointQuery, ShardedCpmEngine};
use cpm_suite::geom::{ObjectId, Point, QueryId};
use cpm_suite::grid::{GridBuilder, IndexKind, SpatialIndex};
use cpm_suite::sim::{
    verify_index, verify_unified_server_with, SimParams, SimulationInput, WorkloadKind,
};
use proptest::prelude::*;

/// Shard counts each backend runs at (the acceptance spec's S ∈ {1, 4}).
const SHARD_COUNTS: [usize; 2] = [1, 4];

/// The full backend matrix every suite below sweeps.
const BACKENDS: [IndexKind; 2] = [IndexKind::Uniform, IndexKind::quadtree()];

/// Per-test case budget, capped by `PROPTEST_CASES` (the CI conformance
/// job's wall-time bound) but never raised by it.
fn case_budget(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(default_cases, |cap: u32| cap.min(default_cases))
}

fn drift_params() -> SimParams {
    SimParams {
        n_objects: 250,
        n_queries: 10,
        k: 4,
        timestamps: 12,
        grid_dim: 32,
        workload: WorkloadKind::Drift { peak_factor: 4.0 },
        ..SimParams::default()
    }
}

/// The acceptance sweep: both backends × S ∈ {1, 4} on the drifting
/// hotspot workload, re-gridding mid-run (refine then coarsen) and
/// round-tripping every lane through a snapshot between the two re-grid
/// points — all bit-identical to the uniform reference and anchored to
/// the brute-force oracle.
#[test]
fn index_matrix_is_bit_identical_across_regrids_and_snapshots() {
    let input = SimulationInput::generate(&drift_params());
    verify_index(
        &input,
        &BACKENDS,
        &[(3, 64), (8, 16)],
        &SHARD_COUNTS,
        Some(5),
    );
}

/// Every exact query kind — k-NN, range, aggregate-NN, constrained and
/// reverse-NN — on a quadtree-backed unified server matches the dedicated
/// uniform-grid engines bit-for-bit and the brute-force oracles, at
/// S ∈ {1, 4}. This is the cross-backend leg of the unified-server
/// conformance sweep (`tests/unified_server.rs` runs the uniform leg).
#[test]
fn unified_server_on_quadtree_matches_uniform_dedicated_engines() {
    verify_unified_server_with(IndexKind::quadtree(), 90, 14, 16, &SHARD_COUNTS);
}

/// A denser grid sharpens the quadtree's bucket structure (deeper splits,
/// more partially-occupied internal nodes); results must not care.
#[test]
fn unified_server_on_quadtree_conformance_on_fine_grid() {
    verify_unified_server_with(IndexKind::quadtree(), 220, 6, 64, &SHARD_COUNTS);
}

/// Restoring a snapshot under a different configured backend is a typed
/// refusal at every API level; restoring under the recorded backend
/// resumes bit-identically (the engine-level round-trip inside
/// [`verify_index`] covers mid-stream state — this covers the error
/// surface end to end, including a non-default split threshold).
#[test]
fn snapshot_restore_refuses_backend_swaps() {
    let kind = IndexKind::Quadtree {
        split_threshold: 16,
    };
    let grid = GridBuilder::new(32).index(kind).build();
    let mut engine: ShardedCpmEngine<PointQuery, _> = ShardedCpmEngine::with_grid(grid, 2);
    engine.populate((0..64u32).map(|i| {
        let t = f64::from(i) / 64.0;
        (ObjectId(i), Point::new(t, (t * 7.0) % 1.0))
    }));
    engine
        .install(QueryId(0), PointQuery(Point::new(0.3, 0.6)), 5)
        .unwrap();
    engine.process_cycle(&[], &[]);

    let snap = EngineSnapshot::capture(&engine);
    match snap.restore_expecting(IndexKind::Uniform) {
        Err(CpmError::IndexMismatch { expected, actual }) => {
            assert_eq!(expected, kind);
            assert_eq!(actual, IndexKind::Uniform);
        }
        other => panic!("expected an index mismatch, got {other:?}"),
    }
    // The default-threshold quadtree is a *different* backend config too.
    assert!(matches!(
        snap.restore_expecting(IndexKind::quadtree()),
        Err(CpmError::IndexMismatch { .. })
    ));
    let restored = snap.restore_expecting(kind).unwrap();
    assert_eq!(restored.grid().index().kind(), kind);
    assert_eq!(
        restored.result(QueryId(0)).unwrap(),
        engine.result(QueryId(0)).unwrap()
    );
}

/// The server builder surfaces backend misconfiguration as a typed error
/// (quadtrees need power-of-two resolutions), and the panicking `build`
/// matches it.
#[test]
fn builder_rejects_non_power_of_two_quadtree_dims() {
    let err = CpmServerBuilder::new(48)
        .index(IndexKind::quadtree())
        .try_build()
        .unwrap_err();
    assert!(matches!(err, CpmError::InvalidDim(_)), "got {err:?}");
    // Uniform grids accept any dim ≥ 1.
    let server = CpmServerBuilder::new(48).try_build().unwrap();
    assert_eq!(server.grid().dim(), 48);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: case_budget(12), ..ProptestConfig::default()
    })]

    /// Randomized index-matrix sweep: arbitrary seeds, populations and
    /// grid resolutions (power-of-two, so the whole matrix is buildable)
    /// must stay bit-identical across backends — no re-grid schedule, one
    /// shard per backend, so shrinking stays tractable.
    #[test]
    fn random_streams_are_backend_independent(
        seed in 0u64..1_000_000,
        n_objects in 40usize..160,
        dim_pow in 3u32..7,
        snapshot in 0u32..2,
    ) {
        let params = SimParams {
            n_objects,
            n_queries: 6,
            k: 3,
            timestamps: 6,
            grid_dim: 1 << dim_pow,
            workload: WorkloadKind::Drift { peak_factor: 3.0 },
            seed,
            ..SimParams::default()
        };
        let input = SimulationInput::generate(&params);
        let snapshot_at = (snapshot == 1).then_some(3);
        verify_index(&input, &BACKENDS, &[], &[1], snapshot_at);
    }
}
