//! Scalar-vs-batched engine equivalence: running the full CPM machinery
//! with the vectorized distance kernel must be observationally identical
//! — same result bits, same changed lists, same delta streams — to the
//! scalar per-object path, across shard counts and index backends.
//!
//! The scalar lane is reconstructed via a wrapper spec that forwards
//! every [`QuerySpec`] method but deliberately does *not* override
//! `dist_batch`, so it runs the trait's default per-object fallback —
//! exactly the pre-kernel code path. The batched lane is the stock
//! [`PointQuery`], whose `dist_batch` is the kernel.

use cpm_suite::core::{
    CpmEngine, Direction, Pinwheel, PointQuery, QuerySpec, ShardedCpmEngine, SpecEvent,
};
use cpm_suite::geom::{ObjectId, Point, QueryId};
use cpm_suite::grid::{CellCoord, GridBuilder, GridGeom, IndexKind, ObjectEvent};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// [`PointQuery`] with the batched-kernel override masked off: the
/// default `dist_batch` (scalar loop over `dist`) runs instead.
#[derive(Debug, Clone, Copy)]
struct ScalarPoint(PointQuery);

impl QuerySpec for ScalarPoint {
    fn dist(&self, p: Point) -> f64 {
        self.0.dist(p)
    }
    fn base_block(&self, geom: GridGeom) -> (CellCoord, CellCoord) {
        self.0.base_block(geom)
    }
    fn cell_key(&self, geom: GridGeom, cell: CellCoord) -> f64 {
        self.0.cell_key(geom, cell)
    }
    fn strip_key(&self, pw: &Pinwheel, dir: Direction, lvl: u32) -> f64 {
        self.0.strip_key(pw, dir, lvl)
    }
    fn strip_increment(&self, delta: f64) -> f64 {
        self.0.strip_increment(delta)
    }
    // No `dist_batch` override — that is the whole point.
}

fn churn(rng: &mut StdRng, live: &mut Vec<u32>, next: &mut u32) -> Vec<ObjectEvent> {
    let mut events = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.gen_range(0..16) {
        match rng.gen_range(0..8) {
            0 if live.len() > 8 => {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                if seen.insert(id) {
                    events.push(ObjectEvent::Disappear { id: ObjectId(id) });
                } else {
                    live.push(id);
                }
            }
            1 => {
                live.push(*next);
                seen.insert(*next);
                events.push(ObjectEvent::Appear {
                    id: ObjectId(*next),
                    pos: Point::new(rng.gen(), rng.gen()),
                });
                *next += 1;
            }
            _ if !live.is_empty() => {
                let id = live[rng.gen_range(0..live.len())];
                if seen.insert(id) {
                    events.push(ObjectEvent::Move {
                        id: ObjectId(id),
                        to: Point::new(rng.gen(), rng.gen()),
                    });
                }
            }
            _ => {}
        }
    }
    events
}

const N_OBJ: u32 = 120;
const N_QUERIES: u32 = 8;
const CYCLES: usize = 25;

fn objects(rng: &mut StdRng) -> Vec<(ObjectId, Point)> {
    (0..N_OBJ)
        .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
        .collect()
}

/// One churn stream through a scalar-lane engine and batched-lane engines
/// at S ∈ {1, 4} on both index backends: changed lists and delta streams
/// must match the scalar reference exactly, results bit-for-bit.
#[test]
fn batched_kernel_is_observationally_identical_to_scalar() {
    let mut rng = StdRng::seed_from_u64(0xD157);
    let objs = objects(&mut rng);

    let mut scalar: CpmEngine<ScalarPoint> = CpmEngine::new(32);
    scalar.enable_deltas();
    scalar.populate(objs.iter().copied());

    let kinds = [IndexKind::Uniform, IndexKind::quadtree()];
    let shard_counts = [1usize, 4];
    let mut batched = Vec::new();
    for &kind in &kinds {
        for &s in &shard_counts {
            let grid = GridBuilder::new(32).index(kind).build();
            let mut engine: ShardedCpmEngine<PointQuery, _> = ShardedCpmEngine::with_grid(grid, s);
            engine.enable_deltas();
            engine.populate(objs.iter().copied());
            batched.push(((kind, s), engine));
        }
    }

    let mut q_points = Vec::new();
    for qi in 0..N_QUERIES {
        let p = Point::new(rng.gen(), rng.gen());
        let k = 1 + qi as usize % 5;
        scalar
            .install(QueryId(qi), ScalarPoint(PointQuery(p)), k)
            .unwrap();
        for (_, engine) in batched.iter_mut() {
            engine.install(QueryId(qi), PointQuery(p), k).unwrap();
        }
        q_points.push(p);
    }

    let mut live: Vec<u32> = (0..N_OBJ).collect();
    let mut next = N_OBJ;
    for cycle in 0..CYCLES {
        let events = churn(&mut rng, &mut live, &mut next);
        // Moving queries most cycles, as terminate-free Update events.
        let moved: Option<(u32, Point)> = rng.gen_bool(0.6).then(|| {
            (
                rng.gen_range(0..N_QUERIES),
                Point::new(rng.gen(), rng.gen()),
            )
        });
        let scalar_qev: Vec<SpecEvent<ScalarPoint>> = moved
            .iter()
            .map(|&(qi, p)| SpecEvent::Update {
                id: QueryId(qi),
                spec: ScalarPoint(PointQuery(p)),
            })
            .collect();
        let batched_qev: Vec<SpecEvent<PointQuery>> = moved
            .iter()
            .map(|&(qi, p)| SpecEvent::Update {
                id: QueryId(qi),
                spec: PointQuery(p),
            })
            .collect();

        let want = scalar.process_cycle_with_deltas(&events, &scalar_qev);
        for ((kind, s), engine) in batched.iter_mut() {
            let got = engine.process_cycle_with_deltas(&events, &batched_qev);
            assert_eq!(
                got.changed, want.changed,
                "changed lists diverged at cycle {cycle} ({kind:?}, S={s})"
            );
            assert_eq!(
                got, want,
                "delta streams diverged at cycle {cycle} ({kind:?}, S={s})"
            );
            for qi in 0..N_QUERIES {
                let a = scalar.result(QueryId(qi)).unwrap();
                let b = engine.result(QueryId(qi)).unwrap();
                assert_eq!(a.len(), b.len(), "cycle {cycle} q{qi} ({kind:?}, S={s})");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.id, y.id, "cycle {cycle} q{qi} ({kind:?}, S={s})");
                    assert_eq!(
                        x.dist.to_bits(),
                        y.dist.to_bits(),
                        "cycle {cycle} q{qi} ({kind:?}, S={s}): result bits diverged"
                    );
                }
            }
            engine.check_invariants();
        }
        scalar.check_invariants();
    }
}
