//! Book-keeping invariants of the CPM monitor under sustained load:
//! sorted visit lists, influence-region prefixes in lockstep with the
//! influence table, ≤ 4 boundary boxes, live and distance-fresh results.

use cpm_suite::core::CpmKnnMonitor;
use cpm_suite::gen::{NetworkWorkload, RoadNetwork, SpeedClass, WorkloadConfig};
use cpm_suite::geom::QueryId;
use cpm_suite::grid::QueryEvent;

fn run_with_invariants(config: WorkloadConfig, grid_dim: u32, ticks: usize) -> CpmKnnMonitor {
    let net = RoadNetwork::grid_city(10, 10, 0.25, 0.15, 5, config.seed);
    let mut w = NetworkWorkload::new(net, config);
    let mut m = CpmKnnMonitor::new(grid_dim);
    m.populate(w.initial_objects());
    for (qid, pos, k) in w.initial_queries() {
        m.install_query(qid, pos, k);
    }
    m.check_invariants();
    for _ in 0..ticks {
        let tick = w.tick();
        m.process_cycle(&tick.object_events, &tick.query_events);
        m.check_invariants();
    }
    m
}

#[test]
fn invariants_hold_through_default_workload() {
    let config = WorkloadConfig {
        n_objects: 500,
        n_queries: 25,
        k: 8,
        ..WorkloadConfig::default()
    };
    run_with_invariants(config, 64, 25);
}

#[test]
fn invariants_hold_with_fast_objects_and_queries() {
    let config = WorkloadConfig {
        n_objects: 400,
        n_queries: 20,
        k: 4,
        object_speed: SpeedClass::Fast,
        query_speed: SpeedClass::Fast,
        f_obj: 0.9,
        f_qry: 0.8,
        seed: 77,
    };
    run_with_invariants(config, 32, 25);
}

#[test]
fn invariants_hold_on_coarse_grid() {
    let config = WorkloadConfig {
        n_objects: 300,
        n_queries: 15,
        k: 6,
        seed: 5,
        ..WorkloadConfig::default()
    };
    run_with_invariants(config, 4, 20);
}

#[test]
fn query_churn_leaves_no_dangling_bookkeeping() {
    let config = WorkloadConfig {
        n_objects: 300,
        n_queries: 10,
        k: 4,
        seed: 9,
        ..WorkloadConfig::default()
    };
    let net = RoadNetwork::grid_city(8, 8, 0.2, 0.1, 4, 9);
    let mut w = NetworkWorkload::new(net, config);
    let mut m = CpmKnnMonitor::new(64);
    m.populate(w.initial_objects());
    for (qid, pos, k) in w.initial_queries() {
        m.install_query(qid, pos, k);
    }
    // Terminate and re-install queries while objects stream.
    for round in 0..10u32 {
        let tick = w.tick();
        let mut qev = tick.query_events.clone();
        let victim = QueryId(round % 10);
        qev.push(QueryEvent::Terminate { id: victim });
        m.process_cycle(&tick.object_events, &qev);
        m.check_invariants();
        let st = w
            .initial_queries()
            .nth(victim.index())
            .expect("query exists");
        m.install_query(victim, st.1, st.2);
        m.check_invariants();
    }
    // Tear everything down: all book-keeping must vanish.
    let all: Vec<QueryId> = m.query_ids().collect();
    for qid in all {
        assert!(m.terminate_query(qid));
    }
    assert_eq!(m.query_count(), 0);
    assert_eq!(m.space_units(), m.grid().space_units());
    m.check_invariants();
}

/// The Section 3.1 correctness/optimality claim, made executable: after a
/// search, the registered influence region is *exactly* the set of grid
/// cells whose mindist is within best_dist (every cell intersecting the
/// influence circle, and no cell beyond it gets registered).
#[test]
fn influence_region_is_exactly_the_circle_cover() {
    use cpm_suite::geom::{ObjectId, Point, QueryId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0x1F1);
    for dim in [8u32, 16, 32] {
        let mut m = CpmKnnMonitor::new(dim);
        m.populate((0..60u32).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
        for qi in 0..5u32 {
            m.install_query(QueryId(qi), Point::new(rng.gen(), rng.gen()), 4);
        }
        // Also exercise the region after maintenance, not just after the
        // initial computation.
        let events: Vec<cpm_suite::grid::ObjectEvent> = (0..20u32)
            .map(|i| cpm_suite::grid::ObjectEvent::Move {
                id: ObjectId(i),
                to: Point::new(rng.gen(), rng.gen()),
            })
            .collect();
        m.process_cycle(&events, &[]);

        for qi in 0..5u32 {
            let st = m.query_state(QueryId(qi)).unwrap();
            let bd = st.best_dist();
            assert!(bd.is_finite());
            let registered: std::collections::HashSet<_> = st.visit_list[..st.influence_len]
                .iter()
                .map(|&(c, _)| c)
                .collect();
            for row in 0..dim {
                for col in 0..dim {
                    let cell = cpm_suite::grid::CellCoord::new(col, row);
                    let inside = m.grid().mindist(cell, st.q) <= bd;
                    assert_eq!(
                        registered.contains(&cell),
                        inside,
                        "dim {dim} q{qi} cell {cell}: mindist {} vs bd {bd}",
                        m.grid().mindist(cell, st.q),
                    );
                }
            }
        }
    }
}

#[test]
fn space_accounting_tracks_analysis_order_of_magnitude() {
    let config = WorkloadConfig {
        n_objects: 2_000,
        n_queries: 50,
        k: 8,
        seed: 123,
        ..WorkloadConfig::default()
    };
    let m = run_with_invariants(config, 64, 10);
    let model = cpm_suite::core::CostModel {
        n_objects: 2_000,
        n_queries: 50,
        k: 8,
        delta: 1.0 / 64.0,
        f_obj: 0.5,
        f_qry: 0.3,
        skew: 1.0,
    };
    let measured = m.space_units() as f64;
    let predicted = model.space_total();
    // The uniformity assumption is rough on network data; an
    // order-of-magnitude agreement is what Section 4.1 claims.
    assert!(
        measured < 10.0 * predicted && predicted < 10.0 * measured,
        "measured {measured} vs predicted {predicted}"
    );
}
