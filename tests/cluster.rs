//! Distributed conformance: the single-node-equivalence guarantee over
//! worker counts, transports and index backends, plus the typed failure
//! surface (misrouted batches, version skew, escaped influence regions,
//! composite-query refusal).

use cpm_suite::cluster::{
    duplex, run_worker, ClusterConfig, ClusterCoordinator, ClusterError, Transport,
};
use cpm_suite::core::{AnyQuerySpec, PointQuery, SpecEvent};
use cpm_suite::geom::{ObjectId, Point, QueryId};
use cpm_suite::grid::ObjectEvent;
use cpm_suite::sim::{
    verify_cluster, verify_cluster_pipelined, verify_cluster_tcp, verify_cluster_tcp_pipelined,
};
use cpm_suite::sub::DeltaFanout;
use cpm_suite::wire::cluster::{ClusterMsg, ClusterReject, TileRect};
use cpm_suite::wire::{Encode, WIRE_VERSION};

/// The headline conformance run: seeded mixed-kind workloads over
/// W ∈ {1, 2, 4} in-process workers × both index backends, each lane
/// with a mid-run snapshot-transfer worker restart and an out-of-band
/// install. Every merged delta batch, changed list and replicated final
/// result must be bit-identical to the single-node reference.
#[test]
fn cluster_is_bit_identical_to_single_node() {
    verify_cluster(120, 10, 16, &[1, 5], &[1, 2, 4]);
}

/// The same protocol over real `std::net::TcpStream` loopback links.
#[test]
fn tcp_loopback_cluster_is_bit_identical_to_single_node() {
    verify_cluster_tcp(100, 8, 16, 9, 2);
}

/// The headline run again with the coordinator in **pipelined** mode:
/// routing for epoch *e+1* overlaps the merge of epoch *e*, yet every
/// merged batch, changed list and replicated result must still be
/// bit-identical to the single-node reference — including across the
/// mid-run restart, which must drain the pipeline before its snapshot
/// transfer.
#[test]
fn pipelined_cluster_is_bit_identical_to_single_node() {
    verify_cluster_pipelined(120, 10, 16, &[1, 5], &[1, 2, 4]);
}

/// The pipelined protocol over TCP loopback links, with a mid-run
/// pipeline-draining restart over TCP.
#[test]
fn pipelined_tcp_loopback_cluster_is_bit_identical_to_single_node() {
    verify_cluster_tcp_pipelined(100, 8, 16, 9, 2);
}

/// The pipelined submission surface itself: the priming `submit_cycle`
/// returns `None`, every later submit returns the *previous* cycle lagged
/// by one, and `flush` drains the tail — so the pipelined driver sees the
/// exact same batches as the serial one, one call later.
#[test]
fn pipelined_submit_lags_by_one_cycle_and_flush_drains() {
    let (mut serial, serial_handles) =
        ClusterCoordinator::spawn_in_process(ClusterConfig::new(16, 2)).unwrap();
    let (mut coord, handles) =
        ClusterCoordinator::spawn_in_process(ClusterConfig::new(16, 2).pipelined(true)).unwrap();
    let appears: Vec<ObjectEvent> = (0..16)
        .map(|i| ObjectEvent::Appear {
            id: ObjectId(i),
            pos: Point::new(f64::from(i).mul_add(0.06, 0.02), 0.5),
        })
        .collect();
    let install = [SpecEvent::Install {
        id: QueryId(7),
        spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.5, 0.5))),
        k: 3,
    }];
    let moves = [ObjectEvent::Move {
        id: ObjectId(3),
        to: Point::new(0.52, 0.5),
    }];

    let a1 = serial.process_cycle(&appears, &[]).unwrap();
    let a2 = serial.process_cycle(&[], &install).unwrap();
    let a3 = serial.process_cycle(&moves, &[]).unwrap();

    // Priming call: epoch 1 is in flight, nothing merged yet.
    assert_eq!(coord.submit_cycle(&appears, &[]).unwrap(), None);
    assert_eq!(coord.in_flight(), 1);
    // Each later submit yields the previous cycle's merge.
    assert_eq!(coord.submit_cycle(&[], &install).unwrap(), Some(a1));
    assert_eq!(coord.submit_cycle(&moves, &[]).unwrap(), Some(a2));
    // The tail drains through flush.
    assert_eq!(coord.flush().unwrap(), vec![a3]);
    assert_eq!(coord.in_flight(), 0);
    assert_eq!(coord.epoch(), serial.epoch());

    serial.shutdown().unwrap();
    coord.shutdown().unwrap();
    for h in serial_handles.into_iter().chain(handles) {
        h.join().unwrap().unwrap();
    }
}

/// Satellite: a misrouted object event is a *batch-level* typed
/// rejection — the worker refuses before any state change, so a
/// corrected batch for the same epoch still applies cleanly.
#[test]
fn misrouted_update_is_rejected_without_state_change() {
    let (mut coord_side, worker_side) = duplex();
    let handle = std::thread::spawn(move || run_worker(worker_side));

    // Worker 0 of a 4-way 16×16 split, no overlap: coverage is columns
    // 0..=3, i.e. x < 0.25.
    let tile = TileRect::new(0, 0, 3, 15);
    let hello = ClusterMsg::Hello {
        version: WIRE_VERSION,
        worker: 0,
        dim: 16,
        index: cpm_suite::IndexKind::Uniform,
        tile,
        coverage: tile,
    };
    coord_side.send(&hello.to_frame()).unwrap();
    let ack = ClusterMsg::from_frame(&coord_side.recv().unwrap()).unwrap();
    assert!(matches!(ack, ClusterMsg::HelloAck { epoch: 0, .. }));

    // A batch mixing one in-coverage appear with one misrouted appear.
    let queries: Vec<SpecEvent<AnyQuerySpec>> = Vec::new();
    let bad = ClusterMsg::Batch {
        epoch: 1,
        objects: vec![
            ObjectEvent::Appear {
                id: ObjectId(1),
                pos: Point::new(0.1, 0.5),
            },
            ObjectEvent::Appear {
                id: ObjectId(2),
                pos: Point::new(0.9, 0.5),
            },
        ],
        queries: queries.encode_to_vec(),
    };
    coord_side.send(&bad.to_frame()).unwrap();
    match ClusterMsg::from_frame(&coord_side.recv().unwrap()).unwrap() {
        ClusterMsg::Reject { worker, reject } => {
            assert_eq!(worker, 0);
            assert_eq!(
                ClusterError::from_reject(worker, reject),
                ClusterError::PartitionMismatch {
                    oid: ObjectId(2),
                    tile,
                }
            );
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    // The whole batch was refused: epoch 1 is still open, and the
    // corrected batch (including the event that *was* valid) applies.
    let good = ClusterMsg::Batch {
        epoch: 1,
        objects: vec![ObjectEvent::Appear {
            id: ObjectId(1),
            pos: Point::new(0.1, 0.5),
        }],
        queries: queries.encode_to_vec(),
    };
    coord_side.send(&good.to_frame()).unwrap();
    match ClusterMsg::from_frame(&coord_side.recv().unwrap()).unwrap() {
        ClusterMsg::Deltas { epoch, .. } => assert_eq!(epoch, 1),
        other => panic!("expected the corrected batch to apply, got {other:?}"),
    }

    coord_side.send(&ClusterMsg::Shutdown.to_frame()).unwrap();
    handle.join().unwrap().unwrap();
}

/// A worker greeting a coordinator from a different wire version refuses
/// the handshake with a typed skew on both ends.
#[test]
fn version_skew_is_refused_on_both_ends() {
    let (mut coord_side, worker_side) = duplex();
    let handle = std::thread::spawn(move || run_worker(worker_side));
    let tile = TileRect::new(0, 0, 15, 15);
    let hello = ClusterMsg::Hello {
        version: WIRE_VERSION + 1,
        worker: 0,
        dim: 16,
        index: cpm_suite::IndexKind::Uniform,
        tile,
        coverage: tile,
    };
    coord_side.send(&hello.to_frame()).unwrap();
    match ClusterMsg::from_frame(&coord_side.recv().unwrap()).unwrap() {
        ClusterMsg::Reject { reject, .. } => assert_eq!(
            reject,
            ClusterReject::VersionSkew {
                ours: WIRE_VERSION,
                theirs: WIRE_VERSION + 1,
            }
        ),
        other => panic!("expected a version-skew rejection, got {other:?}"),
    }
    assert_eq!(
        handle.join().unwrap(),
        Err(ClusterError::VersionSkew {
            worker: 0,
            ours: WIRE_VERSION,
            theirs: WIRE_VERSION + 1,
        })
    );
}

/// Sticky ownership: an update that moves a query's anchor off its
/// owner's tile is refused by the coordinator before anything is sent.
#[test]
fn query_anchor_leaving_its_tile_is_typed() {
    let (mut coord, handles) =
        ClusterCoordinator::spawn_in_process(ClusterConfig::new(16, 4)).unwrap();
    // Objects first (an unfilled k-NN would be unbounded), then the query.
    let appears: Vec<ObjectEvent> = (0..32)
        .map(|i| ObjectEvent::Appear {
            id: ObjectId(i),
            pos: Point::new(f64::from(i % 8).mul_add(0.124, 0.01), 0.5),
        })
        .collect();
    coord.process_cycle(&appears, &[]).unwrap();
    coord
        .process_cycle(
            &[],
            &[SpecEvent::Install {
                id: QueryId(0),
                spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.1, 0.5))),
                k: 2,
            }],
        )
        .unwrap();
    assert_eq!(coord.owner(QueryId(0)), Some(0));
    let err = coord
        .process_cycle(
            &[],
            &[SpecEvent::Update {
                id: QueryId(0),
                spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.9, 0.5))),
            }],
        )
        .unwrap_err();
    assert!(
        matches!(err, ClusterError::QueryOutOfTile { qid, .. } if qid == QueryId(0)),
        "expected a typed out-of-tile refusal, got {err}"
    );
    // Nothing was sent: the cluster is still aligned and keeps running.
    coord.process_cycle(&[], &[]).unwrap();
    coord.shutdown().unwrap();
    for h in handles {
        h.join().unwrap().unwrap();
    }
}

/// A k-NN whose influence region no finite coverage can certify (the
/// result cannot fill) fails typed, never silently wrong.
#[test]
fn uncertifiable_influence_region_is_typed() {
    let (mut coord, handles) =
        ClusterCoordinator::spawn_in_process(ClusterConfig::new(16, 2).overlap(1)).unwrap();
    // One object in the whole workspace: a k = 2 query can never fill.
    let err = coord
        .process_cycle(
            &[ObjectEvent::Appear {
                id: ObjectId(0),
                pos: Point::new(0.1, 0.5),
            }],
            &[SpecEvent::Install {
                id: QueryId(0),
                spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.1, 0.5))),
                k: 2,
            }],
        )
        .unwrap_err();
    assert!(
        matches!(err, ClusterError::CoverageExceeded { qid, .. } if qid == QueryId(0)),
        "expected a typed coverage refusal, got {err}"
    );
    drop(coord);
    for h in handles {
        let _ = h.join().unwrap();
    }
}

/// Composite (reverse-NN) queries have no single anchor and are refused
/// at the routing layer.
#[test]
fn composite_queries_are_refused_by_the_router() {
    let (mut coord, handles) =
        ClusterCoordinator::spawn_in_process(ClusterConfig::new(16, 2)).unwrap();
    let err = coord
        .install(&[SpecEvent::Install {
            id: QueryId(0),
            spec: AnyQuerySpec::Rnn(cpm_suite::core::RnnQuery::new(Point::new(0.5, 0.5), 0)),
            k: 1,
        }])
        .unwrap_err();
    assert!(matches!(err, ClusterError::Protocol { .. }));
    coord.shutdown().unwrap();
    for h in handles {
        h.join().unwrap().unwrap();
    }
}

/// The fan-out handoff: merged batches published straight into a
/// [`DeltaFanout`] reach subscribers with contiguous epochs.
#[test]
fn merged_deltas_feed_the_subscription_fanout() {
    let (mut coord, handles) =
        ClusterCoordinator::spawn_in_process(ClusterConfig::new(16, 2)).unwrap();
    let mut fanout = DeltaFanout::new();
    fanout.subscribe(QueryId(7));
    let appears: Vec<ObjectEvent> = (0..16)
        .map(|i| ObjectEvent::Appear {
            id: ObjectId(i),
            pos: Point::new(f64::from(i).mul_add(0.06, 0.02), 0.5),
        })
        .collect();
    let r1 = coord
        .process_cycle_fanout(&appears, &[], &mut fanout)
        .unwrap();
    assert_eq!(r1.epoch, 1);
    let r2 = coord
        .process_cycle_fanout(
            &[],
            &[SpecEvent::Install {
                id: QueryId(7),
                spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.5, 0.5))),
                k: 3,
            }],
            &mut fanout,
        )
        .unwrap();
    assert_eq!((r2.epoch, r2.deltas), (2, 1));
    let drained = fanout.drain(QueryId(7));
    assert_eq!(drained.len(), 1);
    assert_eq!(drained[0].added.len(), 3);
    coord.shutdown().unwrap();
    for h in handles {
        h.join().unwrap().unwrap();
    }
}
