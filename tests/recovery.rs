//! Crash-recovery conformance: the seeded chaos schedules of
//! `cpm_sim::verify_recovery`, fuzzed corruption of snapshot and journal
//! artifacts (typed errors with offset context, never a panic), and
//! continuity of the subscription layer across a restore.

use cpm_suite::core::snapshot::{JournalRecord, Snapshot};
use cpm_suite::core::{
    CpmServerBuilder, DurableCpmServer, EngineSnapshot, Neighbor, PointQuery, RecoveryError,
};
use cpm_suite::geom::{ObjectId, Point, QueryId};
use cpm_suite::grid::ObjectEvent;
use cpm_suite::sim::verify_recovery;
use cpm_suite::sub::{KnnSubscriptionHub, Replica, SubscriptionHub};
use cpm_suite::wire::{decode_framed, encode_framed, Decode, WireError, FRAME_SNAPSHOT};

use proptest::prelude::*;

/// Case budget capped by `PROPTEST_CASES` (the CI conformance job's
/// wall-time bound), mirroring the delta-replay suite.
fn case_budget(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(default_cases, |cap: u32| cap.min(default_cases))
}

/// The headline chaos run: seeded crash schedules spanning every
/// corruption class (clean crash, torn tail, duplicated and reordered
/// frames, flipped bits in journal and snapshot), sequential and at four
/// shards. Every trial must recover to a server bit-identical to one
/// that never crashed — results, changed lists, delta streams.
#[test]
fn chaos_schedules_recover_bit_identically() {
    let seeds: Vec<u64> = (0..24).collect();
    // Sanity: this seed range must actually exercise every corruption
    // class, or the suite silently shrinks.
    let classes: std::collections::HashSet<_> = seeds
        .iter()
        .map(|&s| cpm_suite::gen::FaultPlan::from_seed(s, 10).corruption)
        .collect();
    assert_eq!(classes.len(), 6, "seed range misses classes: {classes:?}");
    verify_recovery(80, 10, 16, &seeds, &[1, 4]);
}

/// `checkpointed = true` folds the installs and cycles into the snapshot
/// (rich snapshot, empty journal); `false` leaves them as journal records
/// over the empty initial snapshot.
fn durable_fixture(checkpointed: bool) -> DurableCpmServer {
    let mut server = CpmServerBuilder::new(16).shards(2).build();
    server.populate((0..40u32).map(|i| {
        let t = f64::from(i) / 40.0;
        (ObjectId(i), Point::new(t, (t * 2.3) % 1.0))
    }));
    let mut durable = DurableCpmServer::new(server, 0);
    let _ = durable
        .install_knn(QueryId(0), Point::new(0.4, 0.4), 4)
        .unwrap();
    let _ = durable
        .install_rnn(QueryId(1), Point::new(0.7, 0.2))
        .unwrap();
    for step in 0..5u32 {
        let ev = [ObjectEvent::Move {
            id: ObjectId(step * 3 % 40),
            to: Point::new(f64::from(step) * 0.19 % 1.0, 0.33),
        }];
        let _ = durable.process_cycle(&ev, &[]).unwrap();
    }
    if checkpointed {
        durable.checkpoint();
    }
    durable
}

/// Every `WireError` locates the corruption; the fuzzers below assert the
/// offset never points past the artifact.
fn error_offset(e: &WireError) -> usize {
    match *e {
        WireError::UnexpectedEof { offset, .. }
        | WireError::BadMagic { offset, .. }
        | WireError::UnsupportedVersion { offset, .. }
        | WireError::WrongKind { offset, .. }
        | WireError::Checksum { offset, .. }
        | WireError::Invalid { offset, .. }
        | WireError::TrailingBytes { offset, .. } => offset,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: case_budget(64), ..ProptestConfig::default() })]

    /// Any single flipped byte anywhere in a snapshot frame must produce
    /// a typed decode error whose offset lies inside the frame — and
    /// recovery from the damaged frame must fail typed, not panic.
    #[test]
    fn flipped_snapshot_bytes_fail_typed(at_frac in 0.0..1.0f64, mask in 1..256u32) {
        let durable = durable_fixture(true);
        let mut frame = durable.snapshot_bytes().to_vec();
        let at = ((frame.len() - 1) as f64 * at_frac) as usize;
        frame[at] ^= mask as u8;
        match Snapshot::from_frame(&frame) {
            Ok(_) => prop_assert!(false, "corrupted frame decoded"),
            Err(e) => prop_assert!(error_offset(&e) <= frame.len(), "offset out of range: {e}"),
        }
        match DurableCpmServer::recover(&frame, durable.journal_bytes(), 0) {
            Err(RecoveryError::Wire(_)) => {}
            other => prop_assert!(false, "expected a wire error, got {other:?}"),
        }
    }

    /// Truncating a snapshot frame at any point must fail typed.
    #[test]
    fn truncated_snapshot_frames_fail_typed(keep_frac in 0.0..1.0f64) {
        let durable = durable_fixture(true);
        let frame = durable.snapshot_bytes();
        let keep = ((frame.len() - 1) as f64 * keep_frac) as usize;
        match Snapshot::from_frame(&frame[..keep]) {
            Ok(_) => prop_assert!(false, "truncated frame decoded"),
            Err(e) => prop_assert!(error_offset(&e) <= keep, "offset out of range: {e}"),
        }
    }

    /// Arbitrary bytes thrown at the journal-record decoder must come
    /// back as typed errors (or a valid record), never a panic.
    #[test]
    fn arbitrary_bytes_never_panic_record_decode(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        match JournalRecord::decode_all(&bytes) {
            Ok(_) | Err(_) => {}
        }
    }

    /// Arbitrary bytes as a journal stream: recovery from a valid
    /// snapshot plus garbage journal must never panic — garbage is
    /// either a clean empty tail (typed tail error) or a typed failure.
    #[test]
    fn garbage_journals_never_panic_recovery(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let durable = durable_fixture(true);
        match DurableCpmServer::recover(durable.snapshot_bytes(), &bytes, 0) {
            Ok((recovered, report)) => {
                // Garbage can only ever be a torn tail: no record decodes,
                // so nothing is replayed past the snapshot.
                prop_assert_eq!(report.replayed, 0);
                if !bytes.is_empty() {
                    prop_assert!(report.tail_error.is_some());
                }
                recovered.server().check_invariants();
            }
            Err(RecoveryError::Wire(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }
}

/// The recovered server resumes exactly where the journal ends even when
/// the tail is torn mid-frame: replayed records up to the tear, typed
/// tail error, and redelivery completes the lost cycle.
#[test]
fn torn_tail_loses_only_the_final_record() {
    let durable = durable_fixture(false);
    let reference = durable_fixture(false);
    let journal = durable.journal_bytes();
    let torn = &journal[..journal.len() - 3];
    let (mut recovered, report) =
        DurableCpmServer::recover(durable.snapshot_bytes(), torn, 0).unwrap();
    assert!(report.tail_error.is_some(), "tear must be reported");
    assert_eq!(recovered.server().epoch(), reference.server().epoch() - 1);
    // Redeliver the lost cycle (step 4 of the fixture's schedule).
    let ev = [ObjectEvent::Move {
        id: ObjectId(12),
        to: Point::new(4.0 * 0.19, 0.33),
    }];
    let _ = recovered.process_cycle(&ev, &[]).unwrap();
    assert_eq!(recovered.server().epoch(), reference.server().epoch());
    assert_eq!(
        recovered.server().result(QueryId(0)).unwrap(),
        reference.server().result(QueryId(0)).unwrap()
    );
    assert_eq!(
        recovered.server().rnn_result(QueryId(1)).unwrap(),
        reference.server().rnn_result(QueryId(1)).unwrap()
    );
}

/// A restored subscription hub resumes epoch numbering exactly one past
/// the captured epoch, streams deltas bit-identical to an uninterrupted
/// hub, and a replica that lost its backlog in the crash recovers via the
/// ordinary resync path.
#[test]
fn restored_hub_resumes_epochs_and_replicas_resync() {
    let build = || {
        let mut hub = KnnSubscriptionHub::new(16, 2);
        hub.populate(
            (0..12u32).map(|i| (ObjectId(i), Point::new((f64::from(i) + 0.5) / 12.0, 0.5))),
        );
        hub.subscribe_knn(QueryId(0), Point::new(0.1, 0.5), 3);
        hub.subscribe_knn(QueryId(1), Point::new(0.9, 0.5), 2);
        hub
    };
    let mut lane_a = build();
    let mut lane_b = build();
    let mut replica = Replica::new();
    for step in 0..6u32 {
        let ev = ObjectEvent::Move {
            id: ObjectId(step % 12),
            to: Point::new(0.08 + f64::from(step) * 0.03, 0.5),
        };
        for hub in [&mut lane_a, &mut lane_b] {
            hub.push_update(ev);
            hub.commit();
        }
        let _ = lane_a.drain(QueryId(1));
        let _ = lane_b.drain(QueryId(1));
        for d in lane_b.drain(QueryId(0)) {
            replica.apply(&d);
        }
        lane_a.drain(QueryId(0));
    }
    let epoch_before = lane_b.epoch();
    // Quiet cycles emit no delta, so the replica's epoch may trail the
    // hub's; its *result* is nonetheless current.
    assert!(replica.epoch() <= epoch_before);

    // Crash lane B; restore its engine from a serialized snapshot.
    let frame = encode_framed(FRAME_SNAPSHOT, &EngineSnapshot::capture(lane_b.engine()));
    drop(lane_b);
    let snap: EngineSnapshot<PointQuery> = decode_framed(FRAME_SNAPSHOT, &frame).unwrap();
    let mut restored = SubscriptionHub::from_engine(snap.restore().unwrap());
    assert_eq!(restored.epoch(), epoch_before);
    assert_eq!(restored.subscription_count(), 2);
    restored.check_invariants();

    // Epoch numbering and the delta stream continue exactly where the
    // uninterrupted hub's do.
    let ev = ObjectEvent::Move {
        id: ObjectId(7),
        to: Point::new(0.12, 0.5),
    };
    // `restored` runs on the snapshot's recorded backend (`DynIndex`), so
    // the two hubs are distinct types; the streams must still match.
    lane_a.push_update(ev);
    restored.push_update(ev);
    let receipt_a = lane_a.commit();
    let receipt_b = restored.commit();
    assert_eq!(receipt_b.epoch, epoch_before + 1);
    assert_eq!(receipt_a, receipt_b);
    let stream_a = lane_a.drain(QueryId(0));
    let stream_b = restored.drain(QueryId(0));
    assert_eq!(stream_a, stream_b, "post-restore delta streams diverged");
    for d in &stream_b {
        replica.apply(d);
    }
    let (epoch, authoritative) = restored.snapshot(QueryId(0)).unwrap();
    assert_eq!(replica.epoch(), epoch);
    assert_eq!(replica.result(), authoritative);

    // A subscriber whose undrained backlog died with the crash (query 1
    // was never drained into a replica) resyncs from the authoritative
    // snapshot and folds losslessly from there on.
    let (epoch, result) = restored.resync(QueryId(1));
    let mut lagged: Replica = Replica::from_snapshot(epoch, result);
    restored.push_update(ObjectEvent::Move {
        id: ObjectId(11),
        to: Point::new(0.88, 0.5),
    });
    restored.commit();
    for d in restored.drain(QueryId(1)) {
        lagged.apply(&d);
    }
    assert_eq!(lagged.result(), restored.snapshot(QueryId(1)).unwrap().1);
    restored.check_invariants();
}

/// The snapshot's structural cross-validation rejects checksum-valid but
/// internally inconsistent artifacts with a typed error — decoded input
/// can never assemble a server that panics later.
#[test]
fn snapshot_decode_rejects_inconsistent_registries() {
    let durable = durable_fixture(true);
    let mut snap = Snapshot::from_frame(durable.snapshot_bytes()).unwrap();
    snap.rnn.clear(); // orphan the RNN registration
    let reframed = encode_framed(FRAME_SNAPSHOT, &snap);
    match Snapshot::from_frame(&reframed) {
        Err(WireError::Invalid { what, .. }) => {
            assert!(what.contains("RNN"), "unexpected reason: {what}");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
}

/// End-to-end byte stability: capture → encode → decode → restore →
/// capture again must produce identical bytes (the snapshot format is
/// canonical, so backups are comparable).
#[test]
fn snapshot_bytes_are_canonical_across_restore() {
    let durable = durable_fixture(true);
    let frame = durable.snapshot_bytes();
    let snap = Snapshot::from_frame(frame).unwrap();
    let server = cpm_suite::core::CpmServer::restore(&snap).unwrap();
    let recaptured = Snapshot::capture(&server, snap.watermark).to_frame();
    assert_eq!(frame, &recaptured[..], "snapshot round-trip changed bytes");
    // And the captured result lists decode as real neighbor data.
    let knn: Vec<Neighbor> = snap
        .engine
        .queries
        .iter()
        .find(|(id, _, _, _)| *id == QueryId(0))
        .map(|(_, _, _, captured)| captured.clone())
        .unwrap();
    assert_eq!(knn.len(), 4);
}
