//! Conformance of the non-point query specs — aggregate-NN, constrained,
//! range, and reverse-NN — running under [`ShardedCpmEngine`]: for every
//! shard count the results must be **bit-identical** to the sequential
//! engine and correct against brute force, under object churn and moving
//! queries. (The point-query/k-NN spec is covered by
//! `tests/sharded_determinism.rs`.)
//!
//! [`ShardedCpmEngine`]: cpm_suite::core::ShardedCpmEngine

use cpm_suite::core::ann::{AggregateFn, AnnQuery, CpmAnnMonitor};
use cpm_suite::core::constrained::{ConstrainedQuery, CpmConstrainedMonitor};
use cpm_suite::core::range::{CpmRangeMonitor, RangeQuery};
use cpm_suite::core::rnn::CpmRnnMonitor;
use cpm_suite::core::{Neighbor, SpecEvent};
use cpm_suite::geom::{ObjectId, Point, QueryId, Rect};
use cpm_suite::grid::{ObjectEvent, QueryEvent};
use cpm_suite::sim::brute_force_range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// Random object churn batch: moves, appearances, disappearances.
fn churn(rng: &mut StdRng, live: &mut Vec<u32>, next: &mut u32) -> Vec<ObjectEvent> {
    let mut events = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.gen_range(0..10) {
        match rng.gen_range(0..8) {
            0 if live.len() > 4 => {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                if seen.insert(id) {
                    events.push(ObjectEvent::Disappear { id: ObjectId(id) });
                } else {
                    live.push(id);
                }
            }
            1 => {
                live.push(*next);
                seen.insert(*next);
                events.push(ObjectEvent::Appear {
                    id: ObjectId(*next),
                    pos: Point::new(rng.gen(), rng.gen()),
                });
                *next += 1;
            }
            _ if !live.is_empty() => {
                let id = live[rng.gen_range(0..live.len())];
                if seen.insert(id) {
                    events.push(ObjectEvent::Move {
                        id: ObjectId(id),
                        to: Point::new(rng.gen(), rng.gen()),
                    });
                }
            }
            _ => {}
        }
    }
    events
}

fn assert_dists_match(got: &[Neighbor], expect: &[f64], ctx: &str) {
    assert_eq!(got.len(), expect.len(), "{ctx}: result size");
    for (g, e) in got.iter().zip(expect) {
        assert!((g.dist - e).abs() < 1e-9, "{ctx}: {got:?} vs {expect:?}");
    }
}

/// ANN (sum/min/max) under sharding: bit-identical to sequential at every
/// cycle, correct against the brute-force aggregate ranking, with moving
/// query sets.
#[test]
fn ann_specs_are_shard_invariant_and_correct() {
    let mut rng = StdRng::seed_from_u64(0xA99);
    for f in [AggregateFn::Sum, AggregateFn::Min, AggregateFn::Max] {
        let n_obj = 80u32;
        let objects: Vec<(ObjectId, Point)> = (0..n_obj)
            .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
            .collect();
        let mut sequential = CpmAnnMonitor::new(16);
        let mut sharded: Vec<CpmAnnMonitor> = SHARD_COUNTS
            .iter()
            .map(|&s| CpmAnnMonitor::new_sharded(16, s))
            .collect();
        sequential.populate(objects.iter().copied());
        for m in sharded.iter_mut() {
            m.populate(objects.iter().copied());
        }

        let mut point_sets: Vec<Vec<Point>> = Vec::new();
        for qi in 0..6u32 {
            let pts: Vec<Point> = (0..1 + qi as usize % 4)
                .map(|_| Point::new(rng.gen(), rng.gen()))
                .collect();
            let k = 1 + qi as usize % 3;
            sequential.install_query(QueryId(qi), AnnQuery::new(pts.clone(), f), k);
            for m in sharded.iter_mut() {
                m.install_query(QueryId(qi), AnnQuery::new(pts.clone(), f), k);
            }
            point_sets.push(pts);
        }

        let mut live: Vec<u32> = (0..n_obj).collect();
        let mut next = n_obj;
        for cycle in 0..20 {
            let events = churn(&mut rng, &mut live, &mut next);
            // Moving query sets: one random query moves most cycles.
            let mut query_events: Vec<SpecEvent<AnnQuery>> = Vec::new();
            if rng.gen_bool(0.7) {
                let qi = rng.gen_range(0..6u32);
                let pts: Vec<Point> = (0..point_sets[qi as usize].len())
                    .map(|_| Point::new(rng.gen(), rng.gen()))
                    .collect();
                point_sets[qi as usize] = pts.clone();
                query_events.push(SpecEvent::Update {
                    id: QueryId(qi),
                    spec: AnnQuery::new(pts, f),
                });
            }

            let mut changed_seq = sequential.process_cycle(&events, &query_events);
            changed_seq.sort_unstable();
            for (m, &shards) in sharded.iter_mut().zip(&SHARD_COUNTS) {
                let changed = m.process_cycle(&events, &query_events);
                assert_eq!(
                    changed_seq, changed,
                    "{f:?} changed diverged at cycle {cycle} with {shards} shards"
                );
                m.check_invariants();
                for qi in 0..6u32 {
                    assert_eq!(
                        sequential.result(QueryId(qi)).unwrap(),
                        m.result(QueryId(qi)).unwrap(),
                        "{f:?} result diverged for q{qi} at cycle {cycle} with {shards} shards"
                    );
                }
            }
            // Anchor to ground truth through the sequential monitor.
            for qi in 0..6u32 {
                let st = sequential.query_state(QueryId(qi)).unwrap();
                let mut truth: Vec<f64> = sequential
                    .grid()
                    .iter_objects()
                    .map(|(_, p)| st.spec.as_ann().expect("ann query").adist(p))
                    .collect();
                truth.sort_by(|a, b| a.partial_cmp(b).unwrap());
                truth.truncate(st.k());
                assert_dists_match(st.result(), &truth, &format!("{f:?} q{qi} cycle {cycle}"));
            }
        }
    }
}

/// Constrained NN under sharding, with moving query points *and* moving
/// constraint regions.
#[test]
fn constrained_specs_are_shard_invariant_and_correct() {
    let mut rng = StdRng::seed_from_u64(0xC0257);
    let n_obj = 90u32;
    let objects: Vec<(ObjectId, Point)> = (0..n_obj)
        .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
        .collect();
    let mut sequential = CpmConstrainedMonitor::new(16);
    let mut sharded: Vec<CpmConstrainedMonitor> = SHARD_COUNTS
        .iter()
        .map(|&s| CpmConstrainedMonitor::new_sharded(16, s))
        .collect();
    sequential.populate(objects.iter().copied());
    for m in sharded.iter_mut() {
        m.populate(objects.iter().copied());
    }

    fn random_query(rng: &mut StdRng) -> ConstrainedQuery {
        let lo = Point::new(rng.gen_range(0.0..0.6), rng.gen_range(0.0..0.6));
        let region = Rect::new(
            lo,
            Point::new(
                lo.x + rng.gen_range(0.1..0.4),
                lo.y + rng.gen_range(0.1..0.4),
            ),
        );
        ConstrainedQuery::new(Point::new(rng.gen(), rng.gen()), region)
    }

    let mut queries: Vec<ConstrainedQuery> = Vec::new();
    for qi in 0..8u32 {
        let q = random_query(&mut rng);
        let k = 1 + qi as usize % 4;
        sequential.install_query(QueryId(qi), q.clone(), k);
        for m in sharded.iter_mut() {
            m.install_query(QueryId(qi), q.clone(), k);
        }
        queries.push(q);
    }

    let mut live: Vec<u32> = (0..n_obj).collect();
    let mut next = n_obj;
    for cycle in 0..20 {
        let events = churn(&mut rng, &mut live, &mut next);
        let mut query_events: Vec<SpecEvent<ConstrainedQuery>> = Vec::new();
        if rng.gen_bool(0.7) {
            let qi = rng.gen_range(0..8u32);
            let q = random_query(&mut rng);
            queries[qi as usize] = q.clone();
            query_events.push(SpecEvent::Update {
                id: QueryId(qi),
                spec: q,
            });
        }

        let mut changed_seq = sequential.process_cycle(&events, &query_events);
        changed_seq.sort_unstable();
        for (m, &shards) in sharded.iter_mut().zip(&SHARD_COUNTS) {
            let changed = m.process_cycle(&events, &query_events);
            assert_eq!(
                changed_seq, changed,
                "changed diverged at cycle {cycle} with {shards} shards"
            );
            m.check_invariants();
            for qi in 0..8u32 {
                assert_eq!(
                    sequential.result(QueryId(qi)).unwrap(),
                    m.result(QueryId(qi)).unwrap(),
                    "result diverged for q{qi} at cycle {cycle} with {shards} shards"
                );
            }
        }
        for (qi, q) in queries.iter().enumerate() {
            let st = sequential.query_state(QueryId(qi as u32)).unwrap();
            let mut truth: Vec<f64> = sequential
                .grid()
                .iter_objects()
                .filter(|&(_, p)| q.region.contains(p))
                .map(|(_, p)| q.q.dist(p))
                .collect();
            truth.sort_by(|a, b| a.partial_cmp(b).unwrap());
            truth.truncate(st.k());
            assert_dists_match(st.result(), &truth, &format!("q{qi} cycle {cycle}"));
        }
    }
}

/// Range queries under sharding, with moving regions; results are exact
/// membership in canonical order, so equality against the oracle is
/// bitwise.
#[test]
fn range_specs_are_shard_invariant_and_correct() {
    let mut rng = StdRng::seed_from_u64(0x4A17);
    let n_obj = 90u32;
    let objects: Vec<(ObjectId, Point)> = (0..n_obj)
        .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
        .collect();
    let mut sequential = CpmRangeMonitor::new(16);
    let mut sharded: Vec<CpmRangeMonitor> = SHARD_COUNTS
        .iter()
        .map(|&s| CpmRangeMonitor::new_sharded(16, s))
        .collect();
    sequential.populate(objects.iter().copied());
    for m in sharded.iter_mut() {
        m.populate(objects.iter().copied());
    }

    let mut queries: Vec<RangeQuery> = Vec::new();
    for qi in 0..8u32 {
        let q = if qi % 2 == 0 {
            RangeQuery::circle(Point::new(rng.gen(), rng.gen()), rng.gen_range(0.05..0.3))
        } else {
            let lo = Point::new(rng.gen_range(0.0..0.6), rng.gen_range(0.0..0.6));
            RangeQuery::rect(Rect::new(
                lo,
                Point::new(
                    lo.x + rng.gen_range(0.1..0.4),
                    lo.y + rng.gen_range(0.1..0.4),
                ),
            ))
        };
        sequential.install_query(QueryId(qi), q);
        for m in sharded.iter_mut() {
            m.install_query(QueryId(qi), q);
        }
        queries.push(q);
    }

    let mut live: Vec<u32> = (0..n_obj).collect();
    let mut next = n_obj;
    for cycle in 0..20 {
        let events = churn(&mut rng, &mut live, &mut next);
        let mut query_events: Vec<SpecEvent<RangeQuery>> = Vec::new();
        if rng.gen_bool(0.7) {
            let qi = rng.gen_range(0..8u32);
            let q = RangeQuery::circle(Point::new(rng.gen(), rng.gen()), rng.gen_range(0.05..0.3));
            queries[qi as usize] = q;
            query_events.push(SpecEvent::Update {
                id: QueryId(qi),
                spec: q,
            });
        }

        let mut changed_seq = sequential.process_cycle(&events, &query_events);
        changed_seq.sort_unstable();
        for (m, &shards) in sharded.iter_mut().zip(&SHARD_COUNTS) {
            let changed = m.process_cycle(&events, &query_events);
            assert_eq!(
                changed_seq, changed,
                "changed diverged at cycle {cycle} with {shards} shards"
            );
            m.check_invariants();
            for qi in 0..8u32 {
                assert_eq!(
                    sequential.result(QueryId(qi)).unwrap(),
                    m.result(QueryId(qi)).unwrap(),
                    "result diverged for q{qi} at cycle {cycle} with {shards} shards"
                );
            }
        }
        for (qi, q) in queries.iter().enumerate() {
            let truth = brute_force_range(sequential.grid().iter_objects(), q);
            assert_eq!(
                sequential.result(QueryId(qi as u32)).unwrap(),
                truth.as_slice(),
                "range oracle mismatch for q{qi} at cycle {cycle}"
            );
        }
    }
}

/// Reverse-NN under sharding: the six sector-constrained candidate
/// queries per RNN query are distributed across shards, and the verified
/// RNN sets must match both the sequential monitor and brute force, with
/// moving queries.
#[test]
fn rnn_monitor_is_shard_invariant_and_correct() {
    fn brute_rnn(objects: &[(ObjectId, Point)], q: Point) -> Vec<ObjectId> {
        let mut out = Vec::new();
        for &(id, p) in objects {
            let dq = p.dist(q);
            if !objects.iter().any(|&(o, op)| o != id && p.dist(op) < dq) {
                out.push(id);
            }
        }
        out.sort_unstable();
        out
    }

    let mut rng = StdRng::seed_from_u64(0x12E7);
    let n_obj = 40u32;
    let objects: Vec<(ObjectId, Point)> = (0..n_obj)
        .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
        .collect();
    let mut sequential = CpmRnnMonitor::new(16);
    let mut sharded: Vec<CpmRnnMonitor> = SHARD_COUNTS
        .iter()
        .map(|&s| CpmRnnMonitor::new_sharded(16, s))
        .collect();
    sequential.populate(objects.iter().copied());
    for m in sharded.iter_mut() {
        m.populate(objects.iter().copied());
    }

    let mut qpos = [
        Point::new(rng.gen(), rng.gen()),
        Point::new(rng.gen(), rng.gen()),
        Point::new(rng.gen(), rng.gen()),
    ];
    for (qi, &p) in qpos.iter().enumerate() {
        sequential.install_query(QueryId(qi as u32), p);
        for m in sharded.iter_mut() {
            m.install_query(QueryId(qi as u32), p);
        }
    }

    let mut live: Vec<u32> = (0..n_obj).collect();
    let mut next = n_obj;
    for cycle in 0..20 {
        let events = churn(&mut rng, &mut live, &mut next);
        let mut query_events: Vec<QueryEvent> = Vec::new();
        if rng.gen_bool(0.4) {
            let qi = rng.gen_range(0..3u32);
            qpos[qi as usize] = Point::new(rng.gen(), rng.gen());
            query_events.push(QueryEvent::Move {
                id: QueryId(qi),
                to: qpos[qi as usize],
            });
        }

        let mut changed_seq = sequential.process_cycle(&events, &query_events);
        changed_seq.sort_unstable();
        for (m, &shards) in sharded.iter_mut().zip(&SHARD_COUNTS) {
            let changed = m.process_cycle(&events, &query_events);
            assert_eq!(
                changed_seq, changed,
                "changed diverged at cycle {cycle} with {shards} shards"
            );
            for qi in 0..3u32 {
                assert_eq!(
                    sequential.result(QueryId(qi)).unwrap(),
                    m.result(QueryId(qi)).unwrap(),
                    "RNN set diverged for q{qi} at cycle {cycle} with {shards} shards"
                );
            }
        }
        let live_objs: Vec<(ObjectId, Point)> = sequential.grid().iter_objects().collect();
        for (qi, &p) in qpos.iter().enumerate() {
            assert_eq!(
                sequential.result(QueryId(qi as u32)).unwrap(),
                brute_rnn(&live_objs, p),
                "RNN oracle mismatch for q{qi} at cycle {cycle}"
            );
        }
    }
}
