//! Integration coverage for the Section 5 extensions: aggregate-NN
//! monitoring (sum/min/max) and constrained NN, driven by the network
//! workload generator and validated against brute force every timestamp.

use cpm_suite::core::ann::{AggregateFn, AnnQuery, CpmAnnMonitor};
use cpm_suite::core::constrained::{ConstrainedQuery, CpmConstrainedMonitor};
use cpm_suite::gen::{NetworkWorkload, RoadNetwork, WorkloadConfig};
use cpm_suite::geom::{Point, QueryId, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(seed: u64) -> NetworkWorkload {
    let net = RoadNetwork::grid_city(10, 10, 0.25, 0.15, 6, seed);
    NetworkWorkload::new(
        net,
        WorkloadConfig {
            n_objects: 400,
            n_queries: 0, // query motion handled per-extension below
            k: 3,
            seed,
            ..WorkloadConfig::default()
        },
    )
}

#[test]
fn ann_monitors_track_brute_force_over_network_streams() {
    for (seed, f) in [
        (1u64, AggregateFn::Sum),
        (2, AggregateFn::Min),
        (3, AggregateFn::Max),
    ] {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA11);
        let mut w = workload(seed);
        let mut monitor = CpmAnnMonitor::new(64);
        monitor.populate(w.initial_objects());

        // Three ANN queries with 2-5 member points each.
        let queries: Vec<(QueryId, AnnQuery)> = (0..3u32)
            .map(|i| {
                let pts: Vec<Point> = (0..rng.gen_range(2..=5))
                    .map(|_| Point::new(rng.gen(), rng.gen()))
                    .collect();
                (QueryId(i), AnnQuery::new(pts, f))
            })
            .collect();
        for (qid, q) in &queries {
            monitor.install_query(*qid, q.clone(), 3);
        }

        for _ in 0..15 {
            let tick = w.tick();
            monitor.process_cycle(&tick.object_events, &[]);
            monitor.check_invariants();
            for (qid, q) in &queries {
                let mut expect: Vec<f64> = monitor
                    .grid()
                    .iter_objects()
                    .map(|(_, p)| q.adist(p))
                    .collect();
                expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
                expect.truncate(3);
                let got: Vec<f64> = monitor
                    .result(*qid)
                    .unwrap()
                    .iter()
                    .map(|n| n.dist)
                    .collect();
                assert_eq!(got.len(), expect.len());
                for (g, e) in got.iter().zip(&expect) {
                    assert!((g - e).abs() < 1e-9, "{f:?}: {got:?} vs {expect:?}");
                }
            }
        }
    }
}

#[test]
fn constrained_monitor_tracks_filtered_brute_force() {
    let mut w = workload(11);
    let mut monitor = CpmConstrainedMonitor::new(64);
    monitor.populate(w.initial_objects());

    let zones = [
        Rect::new(Point::new(0.0, 0.0), Point::new(0.5, 0.5)),
        Rect::new(Point::new(0.4, 0.4), Point::new(0.9, 0.95)),
        Rect::new(Point::new(0.7, 0.05), Point::new(0.98, 0.4)),
    ];
    let queries: Vec<(QueryId, ConstrainedQuery)> = zones
        .iter()
        .enumerate()
        .map(|(i, &zone)| {
            // Query points deliberately near or outside their zones.
            let q = Point::new(0.5, 0.5);
            (QueryId(i as u32), ConstrainedQuery::new(q, zone))
        })
        .collect();
    for (qid, q) in &queries {
        monitor.install_query(*qid, q.clone(), 2);
    }

    for _ in 0..15 {
        let tick = w.tick();
        monitor.process_cycle(&tick.object_events, &[]);
        monitor.check_invariants();
        for (qid, q) in &queries {
            let mut expect: Vec<f64> = monitor
                .grid()
                .iter_objects()
                .filter(|&(_, p)| q.region.contains(p))
                .map(|(_, p)| q.q.dist(p))
                .collect();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            expect.truncate(2);
            let got: Vec<f64> = monitor
                .result(*qid)
                .unwrap()
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(got.len(), expect.len(), "{qid}");
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn ann_query_set_updates_stay_correct() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let mut w = workload(21);
    let mut monitor = CpmAnnMonitor::new(64);
    monitor.populate(w.initial_objects());
    let qid = QueryId(0);
    let mut pts: Vec<Point> = (0..3).map(|_| Point::new(rng.gen(), rng.gen())).collect();
    monitor.install_query(qid, AnnQuery::new(pts.clone(), AggregateFn::Sum), 2);

    for _ in 0..10 {
        let tick = w.tick();
        // Friends drift each tick: replace the query set.
        for p in pts.iter_mut() {
            *p = Point::new(
                (p.x + rng.gen_range(-0.05..0.05)).clamp(0.0, 0.999),
                (p.y + rng.gen_range(-0.05..0.05)).clamp(0.0, 0.999),
            );
        }
        let spec = AnnQuery::new(pts.clone(), AggregateFn::Sum);
        monitor.process_cycle(
            &tick.object_events,
            &[cpm_suite::core::SpecEvent::Update {
                id: qid,
                spec: spec.clone(),
            }],
        );
        monitor.check_invariants();
        let mut expect: Vec<f64> = monitor
            .grid()
            .iter_objects()
            .map(|(_, p)| spec.adist(p))
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expect.truncate(2);
        let got: Vec<f64> = monitor
            .result(qid)
            .unwrap()
            .iter()
            .map(|n| n.dist)
            .collect();
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9);
        }
    }
}
