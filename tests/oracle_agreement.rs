//! Cross-crate correctness: CPM, YPK-CNN and SEA-CNN must report exactly
//! the ground-truth k-NN distances at every timestamp, on every workload
//! shape the paper varies (Table 6.1 sweeps, scaled down).

use cpm_suite::gen::SpeedClass;
use cpm_suite::sim::{verify_against_oracle, SimParams, SimulationInput, WorkloadKind};

fn base() -> SimParams {
    SimParams {
        n_objects: 400,
        n_queries: 15,
        k: 4,
        timestamps: 12,
        grid_dim: 32,
        workload: WorkloadKind::Network { grid_streets: 10 },
        ..SimParams::default()
    }
}

fn check(params: SimParams) {
    verify_against_oracle(&SimulationInput::generate(&params));
}

#[test]
fn default_network_workload() {
    check(base());
}

#[test]
fn uniform_workload() {
    check(SimParams {
        workload: WorkloadKind::Uniform,
        ..base()
    });
}

#[test]
fn skewed_workload() {
    check(SimParams {
        workload: WorkloadKind::Skewed { hotspots: 3 },
        ..base()
    });
    // Extreme pile-up: a single hotspot.
    check(SimParams {
        workload: WorkloadKind::Skewed { hotspots: 1 },
        ..base()
    });
}

#[test]
fn k_sweep() {
    for k in [1, 2, 8, 32] {
        check(SimParams { k, ..base() });
    }
}

#[test]
fn speed_sweep() {
    for speed in SpeedClass::ALL {
        check(SimParams {
            object_speed: speed,
            query_speed: speed,
            ..base()
        });
    }
}

#[test]
fn agility_extremes() {
    check(SimParams {
        f_obj: 1.0,
        f_qry: 1.0,
        ..base()
    });
    check(SimParams {
        f_obj: 0.05,
        f_qry: 0.0,
        ..base()
    });
}

#[test]
fn coarse_and_fine_grids() {
    for grid_dim in [4, 16, 64, 256] {
        check(SimParams { grid_dim, ..base() });
    }
}

#[test]
fn static_queries_moving_objects() {
    check(SimParams {
        f_qry: 0.0,
        f_obj: 0.8,
        ..base()
    });
}

#[test]
fn constantly_moving_queries() {
    check(SimParams {
        f_qry: 1.0,
        query_speed: SpeedClass::Fast,
        ..base()
    });
}

#[test]
fn tiny_population_large_k() {
    // k exceeds the population: all monitors must return partial results.
    check(SimParams {
        n_objects: 3,
        n_queries: 5,
        k: 8,
        ..base()
    });
}

#[test]
fn different_seeds() {
    for seed in [1, 99, 0xDEAD] {
        check(SimParams { seed, ..base() });
    }
}
