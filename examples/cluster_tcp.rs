//! Distributed CPM over real TCP loopback sockets: a coordinator routes
//! a moving-object workload to two workers (each its own `CpmServer`
//! behind a `std::net::TcpStream`), merges their per-cycle delta
//! batches, and cross-checks every merged batch against a single-node
//! server running the identical workload.
//!
//! Run with: `cargo run --release --example cluster_tcp`

use cpm_suite::cluster::{ClusterConfig, ClusterCoordinator};
use cpm_suite::core::{AnyQuerySpec, CpmServerBuilder, CycleDeltas, PointQuery, SpecEvent};
use cpm_suite::geom::{ObjectId, Point, QueryId};
use cpm_suite::grid::ObjectEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: u32 = 16;
const WORKERS: u32 = 2;
const OBJECTS: u32 = 400;
const CYCLES: usize = 12;

fn main() {
    let config = ClusterConfig::new(DIM, WORKERS).overlap(4);
    let (mut coord, handles) =
        ClusterCoordinator::spawn_tcp_loopback(config).expect("spawn TCP workers");
    println!(
        "cluster up: {} workers over TCP loopback, {DIM}×{DIM} grid, overlap {} cells",
        WORKERS,
        coord.config().overlap
    );
    for (w, tile) in (0..WORKERS).map(|w| (w, coord.partition().tile(w as usize))) {
        println!("  worker {w}: tile cols {}..={}", tile.c0, tile.c1);
    }

    // The single-node reference the merged stream must match exactly.
    let mut reference = CpmServerBuilder::new(DIM)
        .deltas(true)
        .try_build()
        .expect("reference server");

    let mut rng = StdRng::seed_from_u64(42);
    let mut fleet: Vec<(ObjectId, Point)> = (0..OBJECTS)
        .map(|i| {
            (
                ObjectId(i),
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
            )
        })
        .collect();

    // Cycle 1: the fleet appears. Cycle 2: queries install (anchored in
    // each worker's tile) — their initial results ride the delta stream.
    let appears: Vec<ObjectEvent> = fleet
        .iter()
        .map(|&(id, pos)| ObjectEvent::Appear { id, pos })
        .collect();
    let installs: Vec<SpecEvent<AnyQuerySpec>> = vec![
        SpecEvent::Install {
            id: QueryId(0),
            spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.25, 0.4))),
            k: 4,
        },
        SpecEvent::Install {
            id: QueryId(1),
            spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.75, 0.6))),
            k: 4,
        },
    ];

    for t in 0..CYCLES {
        let objects = match t {
            0 => appears.clone(),
            _ => {
                // A random 10% of the fleet drifts (each object at most
                // once per batch — the engine refuses duplicates).
                let mut moves = Vec::new();
                let mut moved = std::collections::HashSet::new();
                while moves.len() < (OBJECTS / 10) as usize {
                    let i = rng.gen_range(0..fleet.len());
                    if !moved.insert(i) {
                        continue;
                    }
                    let to = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
                    fleet[i].1 = to;
                    moves.push(ObjectEvent::Move { id: fleet[i].0, to });
                }
                moves
            }
        };
        let queries = if t == 1 { installs.clone() } else { Vec::new() };

        let merged = coord
            .process_cycle(&objects, &queries)
            .expect("cluster cycle");
        let mut expected = CycleDeltas::default();
        reference
            .process_cycle_with_deltas_into(&objects, &queries, &mut expected)
            .expect("reference cycle");
        assert_eq!(merged, expected, "merged deltas diverged at cycle {t}");
        println!(
            "cycle {:2}: {:3} object events → {} changed queries, {} deltas (bit-identical to single node)",
            t + 1,
            objects.len(),
            merged.changed.len(),
            merged.deltas.len()
        );
    }

    for q in [QueryId(0), QueryId(1)] {
        let result = reference.result(q).expect("installed query");
        println!(
            "final {q:?} (owner: worker {}): nearest = {:?} at {:.4}",
            coord.owner(q).expect("routed query"),
            result[0].id,
            result[0].dist
        );
    }

    coord.shutdown().expect("shutdown");
    for h in handles {
        h.join().expect("worker thread").expect("worker exit");
    }
    println!("\nall {CYCLES} merged cycles bit-identical to the single-node server ✓");
}
