//! Aggregate-NN monitoring (Section 5): where should a group meet?
//!
//! Four friends walk through the city while the system continuously
//! reports the cafe minimizing (a) the total walking distance (`sum`) and
//! (b) the latest arrival time (`max`), plus the cafe closest to *anyone*
//! (`min`).
//!
//! Run with: `cargo run --release --example meeting_point`

use cpm_suite::core::ann::{AggregateFn, AnnQuery, CpmAnnMonitor};
use cpm_suite::core::SpecEvent;
use cpm_suite::geom::{ObjectId, Point, QueryId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 120 cafes scattered over the city (the data objects).
    let cafes: Vec<(ObjectId, Point)> = (0..120u32)
        .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
        .collect();

    // One monitor per aggregate (each owns its grid; cafes are static so
    // the update streams are query-side only).
    let mut monitors = [
        (AggregateFn::Sum, CpmAnnMonitor::new(64)),
        (AggregateFn::Max, CpmAnnMonitor::new(64)),
        (AggregateFn::Min, CpmAnnMonitor::new(64)),
    ];

    // Four friends start in different corners.
    let mut friends = vec![
        Point::new(0.1, 0.1),
        Point::new(0.9, 0.15),
        Point::new(0.85, 0.9),
        Point::new(0.12, 0.82),
    ];

    let qid = QueryId(0);
    for (f, m) in monitors.iter_mut() {
        m.populate(cafes.iter().copied());
        m.install_query(qid, AnnQuery::new(friends.clone(), *f), 1);
    }

    println!("step | best sum-cafe (total walk) | best max-cafe (latest arrival) | best min-cafe");
    report(0, &monitors, qid);

    // The friends walk towards the center over ten steps, with drift.
    for step in 1..=10 {
        for p in friends.iter_mut() {
            let target = Point::new(0.5, 0.5);
            let jitter_x = rng.gen_range(-0.03..0.03);
            let jitter_y = rng.gen_range(-0.03..0.03);
            *p = Point::new(
                p.x + (target.x - p.x) * 0.2 + jitter_x,
                p.y + (target.y - p.y) * 0.2 + jitter_y,
            );
        }
        for (f, m) in monitors.iter_mut() {
            // The query set moved: a SpecEvent::Update re-anchors the
            // conceptual partitioning around the new MBR.
            m.process_cycle(
                &[],
                &[SpecEvent::Update {
                    id: qid,
                    spec: AnnQuery::new(friends.clone(), *f),
                }],
            );
        }
        report(step, &monitors, qid);
    }

    for (f, m) in &monitors {
        let metrics = m.metrics();
        println!(
            "{:?}: {} cell accesses, {} objects processed over the walk",
            f, metrics.cell_accesses, metrics.objects_processed
        );
    }
}

fn report(step: usize, monitors: &[(AggregateFn, CpmAnnMonitor); 3], qid: QueryId) {
    let cell = |i: usize| {
        let (_, m) = &monitors[i];
        let n = &m.result(qid).unwrap()[0];
        format!("cafe {:>3} ({:.3})", n.id.0, n.dist)
    };
    println!(
        "{step:>4} | {:>24} | {:>28} | {}",
        cell(0),
        cell(1),
        cell(2)
    );
}
