//! Constrained-NN monitoring (Section 5 / Figure 5.3): dispatch within a
//! service zone.
//!
//! A delivery hub may only assign couriers that are currently inside its
//! service zone (a rectangle); couriers outside the zone never qualify —
//! even when they are geometrically closer. The monitor keeps the 2
//! nearest *in-zone* couriers exact as everyone moves.
//!
//! Run with: `cargo run --release --example constrained_dispatch`

use cpm_suite::core::constrained::{ConstrainedQuery, CpmConstrainedMonitor};
use cpm_suite::geom::{ObjectId, Point, QueryId, Rect};
use cpm_suite::grid::ObjectEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // 80 couriers around the city.
    let mut couriers: Vec<Point> = (0..80).map(|_| Point::new(rng.gen(), rng.gen())).collect();

    let mut monitor = CpmConstrainedMonitor::new(64);
    monitor.populate(
        couriers
            .iter()
            .enumerate()
            .map(|(i, &p)| (ObjectId(i as u32), p)),
    );

    // The hub sits at the zone's south-west gate; the service zone is the
    // north-east district.
    let hub = Point::new(0.55, 0.55);
    let zone = Rect::new(Point::new(0.5, 0.5), Point::new(0.95, 0.95));
    let q = QueryId(0);
    monitor.install_query(q, ConstrainedQuery::new(hub, zone), 2);

    println!("hub at ({:.2}, {:.2}), zone [0.50,0.95]²", hub.x, hub.y);
    print_assignment(&monitor, q);

    // Couriers drift; some cross the zone boundary each step.
    for step in 1..=8 {
        let mut events = Vec::new();
        for (i, p) in couriers.iter_mut().enumerate() {
            let to = Point::new(
                (p.x + rng.gen_range(-0.06..0.06)).clamp(0.0, 0.999),
                (p.y + rng.gen_range(-0.06..0.06)).clamp(0.0, 0.999),
            );
            *p = to;
            events.push(ObjectEvent::Move {
                id: ObjectId(i as u32),
                to,
            });
        }
        let changed = monitor.process_cycle(&events, &[]);
        println!("\nstep {step}: {} assignment change(s)", changed.len());
        print_assignment(&monitor, q);
    }

    let m = monitor.metrics();
    println!(
        "\ntotals: {} cell accesses, {} merge resolutions, {} re-computations",
        m.cell_accesses, m.merge_resolutions, m.recomputations
    );
}

fn print_assignment(monitor: &CpmConstrainedMonitor, q: QueryId) {
    let result = monitor.result(q).unwrap();
    if result.is_empty() {
        println!("  no couriers inside the service zone!");
        return;
    }
    for (rank, n) in result.iter().enumerate() {
        println!(
            "  assignment #{}: courier {} at distance {:.4} (in-zone)",
            rank + 1,
            n.id.0,
            n.dist
        );
    }
}
