//! Taxi-fleet dispatch: the workload the paper's introduction motivates.
//!
//! A fleet of taxis moves along a synthetic road network (Brinkhoff-style
//! generator). Dispatch terminals at busy locations continuously monitor
//! their k nearest taxis; terminals themselves relocate now and then (the
//! operator drags the map). CPM keeps every result exact while touching
//! only the updates that matter.
//!
//! Run with: `cargo run --release --example taxi_fleet`

use cpm_suite::core::CpmKnnMonitor;
use cpm_suite::gen::{NetworkWorkload, RoadNetwork, SpeedClass, WorkloadConfig};
use cpm_suite::geom::QueryId;

fn main() {
    let config = WorkloadConfig {
        n_objects: 4_000, // taxis
        n_queries: 60,    // dispatch terminals
        k: 5,
        object_speed: SpeedClass::Medium,
        query_speed: SpeedClass::Slow,
        f_obj: 0.6,
        f_qry: 0.1,
        seed: 7,
    };
    let network = RoadNetwork::grid_city(24, 24, 0.25, 0.15, 12, 1234);
    println!(
        "city network: {} intersections, {} street segments",
        network.node_count(),
        network.edge_count()
    );
    let mut workload = NetworkWorkload::new(network, config);

    let mut monitor = CpmKnnMonitor::new(128);
    monitor.populate(workload.initial_objects());
    for (qid, pos, k) in workload.initial_queries() {
        monitor.install_query(qid, pos, k);
    }
    println!(
        "installed {} dispatch terminals monitoring {}-NN over {} taxis\n",
        config.n_queries, config.k, config.n_objects
    );

    let mut total_changes = 0usize;
    for minute in 1..=30 {
        let tick = workload.tick();
        let changed = monitor.process_cycle(&tick.object_events, &tick.query_events);
        total_changes += changed.len();
        if minute % 10 == 0 {
            let m = monitor.take_metrics();
            println!(
                "minute {minute:>2}: {:>5} taxi updates | {:>4} results changed \
                 | {:>5} cell accesses | {:>4} merges | {:>3} re-computations",
                m.updates_applied,
                changed.len(),
                m.cell_accesses,
                m.merge_resolutions,
                m.recomputations
            );
        }
    }

    // Show one terminal's current picture.
    let sample = QueryId(0);
    let st = monitor.query_state(sample).unwrap();
    println!(
        "\nterminal {sample} at ({:.3}, {:.3}) — nearest taxis:",
        st.q.x, st.q.y
    );
    for (rank, n) in monitor.result(sample).unwrap().iter().enumerate() {
        println!("  #{}: taxi {} at {:.4}", rank + 1, n.id.0, n.dist);
    }
    println!(
        "\n30 minutes simulated; {total_changes} result updates pushed to terminals; \
         book-keeping footprint {} memory units",
        monitor.space_units()
    );
}
