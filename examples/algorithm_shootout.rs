//! A miniature of the paper's Section 6 evaluation: CPM vs YPK-CNN vs
//! SEA-CNN on one identical network workload, with per-algorithm wall
//! time, cell accesses and space — plus the ground-truth oracle check.
//!
//! Run with: `cargo run --release --example algorithm_shootout`

use cpm_suite::sim::{
    run_contenders, verify_against_oracle, SimParams, SimulationInput, WorkloadKind,
};

fn main() {
    let params = SimParams {
        n_objects: 10_000,
        n_queries: 400,
        k: 16,
        timestamps: 40,
        grid_dim: 128,
        workload: WorkloadKind::Network { grid_streets: 24 },
        ..SimParams::default()
    };
    println!(
        "workload: N={} objects, n={} queries, k={}, {} timestamps, {}² grid",
        params.n_objects, params.n_queries, params.k, params.timestamps, params.grid_dim
    );
    println!("generating update stream…");
    let input = SimulationInput::generate(&params);
    println!(
        "  {} object events, {} query events\n",
        input.total_object_events(),
        input.total_query_events()
    );

    println!("verifying all algorithms against the brute-force oracle (small prefix)…");
    let mut small = params;
    small.n_objects = 800;
    small.n_queries = 30;
    small.timestamps = 10;
    verify_against_oracle(&SimulationInput::generate(&small));
    println!("  ok — exact agreement\n");

    println!(
        "{:<8} | {:>12} | {:>14} | {:>14} | {:>10} | {:>9}",
        "algo", "total ms", "cells/qry/ts", "objs processed", "recomputes", "space MB"
    );
    println!("{}", "-".repeat(85));
    for report in run_contenders(&input) {
        println!(
            "{:<8} | {:>12.1} | {:>14.3} | {:>14} | {:>10} | {:>9.3}",
            report.algo,
            report.processing_time.as_secs_f64() * 1e3,
            report.cell_accesses_per_query_per_cycle(),
            report.metrics.objects_processed,
            report.metrics.recomputations,
            report.space_mbytes(),
        );
    }
    println!(
        "\nExpected shape (paper Figs. 6.1-6.5): CPM well below both baselines in \
         time and cell accesses; SEA-CNN worse than YPK-CNN under moving queries."
    );
}
