//! Quickstart: monitor the 3 nearest vehicles around a point of interest
//! while everything moves.
//!
//! Run with: `cargo run --release --example quickstart`

use cpm_suite::core::CpmKnnMonitor;
use cpm_suite::geom::{ObjectId, Point, QueryId};
use cpm_suite::grid::{ObjectEvent, QueryEvent};

fn main() {
    // 1. A monitor over a 16×16 grid covering the unit-square city (a
    //    coarse grid keeps the book-keeping snapshot below readable; use
    //    128+ for realistic workloads).
    let mut monitor = CpmKnnMonitor::new(16);

    // 2. Initial vehicle positions (a small diagonal convoy plus strays).
    monitor.populate((0..10u32).map(|i| {
        let t = i as f64 / 10.0;
        (ObjectId(i), Point::new(0.05 + 0.9 * t, 0.1 + 0.8 * t * t))
    }));

    // 3. A continuous 3-NN query at the city center.
    let poi = QueryId(0);
    monitor.install_query(poi, Point::new(0.5, 0.5), 3);
    println!("initial 3-NN around (0.50, 0.50):");
    print_result(&monitor, poi);

    // 4. Stream a few update cycles: vehicle 9 loops in towards the
    //    center while vehicle 0 leaves the city.
    for step in 1..=5 {
        let t = step as f64 / 5.0;
        let events = [
            ObjectEvent::Move {
                id: ObjectId(9),
                to: Point::new(0.95 - 0.45 * t, 0.9 - 0.42 * t),
            },
            ObjectEvent::Move {
                id: ObjectId(0),
                to: Point::new(0.05, 0.1 + 0.8 * t),
            },
        ];
        let changed = monitor.process_cycle(&events, &[]);
        println!("\ncycle {step}: {} result change(s)", changed.len());
        print_result(&monitor, poi);
    }

    // 5. The point of interest itself relocates (rush hour moves east).
    monitor.process_cycle(
        &[],
        &[QueryEvent::Move {
            id: poi,
            to: Point::new(0.75, 0.55),
        }],
    );
    println!("\nafter the query moved to (0.75, 0.55):");
    print_result(&monitor, poi);

    let m = monitor.metrics();
    println!(
        "\nwork done: {} cell accesses, {} objects processed, \
         {} merge resolutions, {} re-computations",
        m.cell_accesses, m.objects_processed, m.merge_resolutions, m.recomputations
    );

    // A look inside: Q = query cell, # = influence region (the only cells
    // whose updates can affect the result), + = visit-list cells beyond
    // it, digits = objects elsewhere.
    println!(
        "\nbook-keeping snapshot:\n{}",
        cpm_suite::sim::viz::render_query(&monitor, poi).unwrap()
    );
}

fn print_result(monitor: &CpmKnnMonitor, id: QueryId) {
    for (rank, n) in monitor.result(id).unwrap().iter().enumerate() {
        println!("  #{}: {} at distance {:.4}", rank + 1, n.id, n.dist);
    }
}
