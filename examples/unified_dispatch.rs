//! The unified `CpmServer` facade: mixed k-NN + range + constrained
//! queries on **one grid with one ingest pass per cycle**.
//!
//! A city dispatch platform serves three continuous-query products at
//! once over the same courier fleet:
//!
//! * a rider app showing the 3 nearest couriers (k-NN),
//! * a geofence alert on the stadium district (range),
//! * a delivery hub that may only assign in-zone couriers (constrained).
//!
//! With the old per-kind API that was three engines, three grids, and
//! three ingest passes over every movement batch; the server hosts all of
//! them on one grid, pays the batch once, and attributes the per-class
//! work in `Metrics::by_kind`.
//!
//! Run with: `cargo run --release --example unified_dispatch`

use cpm_suite::core::{ConstrainedQuery, CpmServerBuilder, RangeQuery};
use cpm_suite::geom::{ObjectId, Point, QueryId, Rect};
use cpm_suite::grid::{ObjectEvent, QueryKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    // 120 couriers around the city.
    let mut couriers: Vec<Point> = (0..120).map(|_| Point::new(rng.gen(), rng.gen())).collect();

    let mut server = CpmServerBuilder::new(64).build();
    server.populate(
        couriers
            .iter()
            .enumerate()
            .map(|(i, &p)| (ObjectId(i as u32), p)),
    );

    // One registry, three products — the typed handles keep each result
    // channel honest at compile time.
    let rider = server
        .install_knn(QueryId(0), Point::new(0.32, 0.68), 3)
        .expect("fresh id");
    let stadium = server
        .install_range(QueryId(1), RangeQuery::circle(Point::new(0.72, 0.30), 0.12))
        .expect("fresh id");
    let hub = server
        .install_constrained(
            QueryId(2),
            ConstrainedQuery::new(
                Point::new(0.55, 0.55),
                Rect::new(Point::new(0.5, 0.5), Point::new(0.95, 0.95)),
            ),
            2,
        )
        .expect("fresh id");

    println!(
        "one CpmServer, {} queries, one 64x64 grid",
        server.query_count()
    );

    for step in 1..=6 {
        // One movement batch for the whole city...
        let mut events = Vec::new();
        for (i, p) in couriers.iter_mut().enumerate() {
            let to = Point::new(
                (p.x + rng.gen_range(-0.05..0.05)).clamp(0.0, 0.999),
                (p.y + rng.gen_range(-0.05..0.05)).clamp(0.0, 0.999),
            );
            *p = to;
            events.push(ObjectEvent::Move {
                id: ObjectId(i as u32),
                to,
            });
        }
        // ...ingested exactly once for all three products.
        let changed = server.process_cycle(&events, &[]).expect("valid batch");
        println!("\nstep {step}: {} result change(s)", changed.len());

        let nearest = server.result(rider).expect("installed");
        println!(
            "  rider app: nearest couriers {:?}",
            nearest.iter().map(|n| n.id.0).collect::<Vec<_>>()
        );
        let inside = server.result(stadium).expect("installed");
        println!("  stadium geofence: {} courier(s) inside", inside.len());
        match server.result(hub).expect("installed").first() {
            Some(best) => println!(
                "  hub dispatch: courier {} at {:.3} (in-zone)",
                best.id.0, best.dist
            ),
            None => println!("  hub dispatch: no couriers inside the service zone!"),
        }
    }

    // The single ingest is visible in the metrics: updates_applied counts
    // each movement once, and by_kind attributes the query-side work.
    let m = server.take_metrics();
    println!(
        "\ntotals: {} updates ingested (once each), {} cell accesses",
        m.updates_applied, m.cell_accesses
    );
    for kind in [QueryKind::Knn, QueryKind::Range, QueryKind::Constrained] {
        let k = m.for_kind(kind);
        println!(
            "  {kind:>11}: {:>5} cells scanned, {:>4} merges, {:>3} recomputations",
            k.cell_accesses, k.merge_resolutions, k.recomputations
        );
    }
}
