//! # cpm-suite
//!
//! A complete, from-scratch reproduction of *"Conceptual Partitioning: An
//! Efficient Method for Continuous Nearest Neighbor Monitoring"*
//! (Mouratidis, Hadjieleftheriou, Papadias — SIGMOD 2005).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`geom`] — geometry & utility substrate ([`cpm_geom`]).
//! * [`grid`] — the main-memory object index with pluggable
//!   [`SpatialIndex`] backends (uniform cells or adaptive quadtree,
//!   selected via [`GridBuilder`]/[`IndexKind`]) ([`cpm_grid`]).
//! * [`core`] — CPM itself: the unified multi-query [`core::CpmServer`]
//!   facade (every query kind on one grid with one ingest pass per
//!   cycle), continuous k-NN, aggregate-NN, constrained-NN, reverse-NN
//!   and range monitoring, plus per-cycle result deltas ([`cpm_core`]).
//! * [`sub`] — the delta-streaming subscription layer: epoch-numbered
//!   hubs, per-subscription mailboxes, client-side replicas
//!   ([`cpm_sub`]).
//! * [`wire`] — the versioned, checksummed binary codec under the
//!   durability layer: framing, the append-only journal, typed decode
//!   errors ([`cpm_wire`]); snapshots and crash recovery live in
//!   [`core::snapshot`].
//! * [`cluster`] — multi-node operation: workspace-partitioned workers
//!   behind a routing coordinator, merged delta streams bit-identical to
//!   a single node ([`cpm_cluster`]).
//! * [`baselines`] — YPK-CNN and SEA-CNN ([`cpm_baselines`]).
//! * [`gen`] — Brinkhoff-style network workloads ([`cpm_gen`]).
//! * [`sim`] — simulation driver, oracle and experiment harness
//!   ([`cpm_sim`]).
//!
//! ## Quickstart
//!
//! ```
//! use cpm_suite::core::CpmKnnMonitor;
//! use cpm_suite::geom::{ObjectId, Point, QueryId};
//! use cpm_suite::grid::ObjectEvent;
//!
//! // A 128×128 grid over the unit square, three taxis, one query.
//! let mut monitor = CpmKnnMonitor::new(128);
//! monitor.populate([
//!     (ObjectId(0), Point::new(0.21, 0.35)),
//!     (ObjectId(1), Point::new(0.57, 0.60)),
//!     (ObjectId(2), Point::new(0.80, 0.10)),
//! ]);
//! monitor.install_query(QueryId(0), Point::new(0.5, 0.5), 2);
//!
//! // Taxi 2 drives next to the query point.
//! monitor.process_cycle(
//!     &[ObjectEvent::Move { id: ObjectId(2), to: Point::new(0.52, 0.48) }],
//!     &[],
//! );
//! let result = monitor.result(QueryId(0)).unwrap();
//! assert_eq!(result[0].id, ObjectId(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use cpm_baselines as baselines;
pub use cpm_cluster as cluster;
pub use cpm_core as core;
pub use cpm_gen as gen;
pub use cpm_geom as geom;
pub use cpm_grid as grid;
pub use cpm_sim as sim;
pub use cpm_sub as sub;
pub use cpm_wire as wire;

// The pluggable spatial-index surface, re-exported flat: embedders pick
// a backend (`CpmServerBuilder::index(IndexKind::quadtree())`, or a
// standalone `GridBuilder`) without importing `cpm_grid` internals.
pub use cpm_grid::{DynIndex, GridBuilder, GridStats, IndexKind, SpatialIndex};
