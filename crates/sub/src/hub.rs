//! The server side of the subscription layer: epoch-numbered delta
//! publishing over a sharded CPM engine.
//!
//! A [`SubscriptionHub`] batches everything between two [`commit`] calls —
//! location updates and subscription changes — into one engine processing
//! cycle, exactly the batched-cycle model of Figure 3.9. Each commit
//! advances the epoch by one and routes the cycle's
//! [`NeighborDelta`]s into per-subscription mailboxes; clients drain their
//! mailbox and fold the deltas with [`crate::Replica`].
//!
//! Mailboxes are bounded ([`SubscriptionHub::set_mailbox_capacity`]): a
//! slow consumer loses the *oldest* deltas first and is flagged as lagged
//! ([`SubscriptionHub::lagged`]), at which point replaying is no longer
//! lossless and the client must [`SubscriptionHub::resync`] from a full
//! snapshot — the standard recovery path of log-shipping systems.
//!
//! [`commit`]: SubscriptionHub::commit
//! [`NeighborDelta`]: cpm_core::NeighborDelta

use std::collections::VecDeque;

use cpm_core::{
    AnnQuery, AnyQuerySpec, ConstrainedQuery, Neighbor, NeighborDelta, PointQuery, QuerySpec,
    RangeQuery, ShardedCpmEngine, SpecEvent,
};
use cpm_geom::{FastHashMap, ObjectId, Point, QueryId};
use cpm_grid::{CellIndex, Grid, Metrics, ObjectEvent, SpatialIndex};

/// One subscription's delivery state.
#[derive(Debug, Default)]
struct Mailbox {
    queue: VecDeque<NeighborDelta>,
    /// Deltas evicted because the queue was full; non-zero means the
    /// stream is no longer lossless for this subscriber.
    dropped: u64,
}

/// Summary of one committed cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleReceipt {
    /// The epoch this commit produced (1-based).
    pub epoch: u64,
    /// Queries whose result changed this cycle.
    pub changed: usize,
    /// Deltas delivered into mailboxes.
    pub deltas: usize,
    /// Total delta entries (adds + removes + reorders) across them — the
    /// "wire size" of the cycle.
    pub entries: usize,
}

/// A delta-streaming subscription front end over
/// [`ShardedCpmEngine`]; see the [module docs](self) for the
/// commit/mailbox model.
///
/// All subscriptions in one hub share the query-geometry type `S`
/// (one hub per query class, like the engines); [`KnnSubscriptionHub`] and
/// [`RangeSubscriptionHub`] are the two shapes the conformance suite
/// exercises. The spatial-index backend `I` follows the engine's
/// (uniform [`CellIndex`] by default; a snapshot restore hands back a
/// [`cpm_grid::DynIndex`] engine and the hub carries it unchanged).
#[derive(Debug)]
pub struct SubscriptionHub<S: QuerySpec + Send + Sync, I: SpatialIndex = CellIndex> {
    engine: ShardedCpmEngine<S, I>,
    mailboxes: FastHashMap<QueryId, Mailbox>,
    pending_obj: Vec<ObjectEvent>,
    pending_sub: Vec<SpecEvent<S>>,
    /// Subscriptions terminating at the next commit (mailbox removed
    /// after the cycle runs).
    closing: Vec<QueryId>,
    mailbox_cap: usize,
    /// Recycled cycle-output batch: refilled by every commit, so the hub
    /// allocates nothing per cycle beyond mailbox growth.
    scratch: cpm_core::CycleDeltas,
}

impl<S: QuerySpec + Send + Sync> SubscriptionHub<S> {
    /// Create a hub over an empty `dim × dim` grid whose per-cycle
    /// maintenance runs across `shards ≥ 1` worker threads (`shards = 1`
    /// is sequential). Mailboxes start unbounded.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(dim: u32, shards: usize) -> Self {
        let mut engine = ShardedCpmEngine::new(dim, shards);
        engine.enable_deltas();
        Self {
            engine,
            mailboxes: FastHashMap::default(),
            pending_obj: Vec::new(),
            pending_sub: Vec::new(),
            closing: Vec::new(),
            mailbox_cap: usize::MAX,
            scratch: cpm_core::CycleDeltas::default(),
        }
    }
}

impl<S: QuerySpec + Send + Sync, I: SpatialIndex> SubscriptionHub<S, I> {
    /// Rebuild a hub around a restored engine (the
    /// [`cpm_core::EngineSnapshot`] recovery path): every installed query
    /// gets a fresh, empty mailbox and the epoch continues from the
    /// engine's restored counter, so the first commit after recovery
    /// ships deltas numbered exactly one past the pre-crash epoch.
    ///
    /// Undrained mailbox backlogs are *not* part of a snapshot — a
    /// subscriber that missed deltas across the crash observes it as lag
    /// and takes the ordinary [`resync`](SubscriptionHub::resync) path.
    ///
    /// # Panics
    /// Panics if the engine was not built with delta collection enabled.
    pub fn from_engine(engine: ShardedCpmEngine<S, I>) -> Self {
        assert!(
            engine.collects_deltas(),
            "a subscription hub requires a delta-collecting engine"
        );
        let mailboxes = engine
            .query_ids()
            .into_iter()
            .map(|id| (id, Mailbox::default()))
            .collect();
        Self {
            engine,
            mailboxes,
            pending_obj: Vec::new(),
            pending_sub: Vec::new(),
            closing: Vec::new(),
            mailbox_cap: usize::MAX,
            scratch: cpm_core::CycleDeltas::default(),
        }
    }

    /// The underlying engine — the state a durability layer snapshots
    /// (see [`cpm_core::EngineSnapshot::capture`]).
    pub fn engine(&self) -> &ShardedCpmEngine<S, I> {
        &self.engine
    }

    /// Bound every mailbox to `cap ≥ 1` buffered deltas. When a mailbox
    /// overflows, the **oldest** delta is evicted and the subscriber is
    /// flagged as [`lagged`](SubscriptionHub::lagged).
    pub fn set_mailbox_capacity(&mut self, cap: usize) {
        assert!(cap >= 1, "mailbox capacity must be at least 1");
        self.mailbox_cap = cap;
        // Lowering the cap applies to existing backlogs immediately:
        // evict oldest-first and flag the lag, exactly as on overflow.
        for mailbox in self.mailboxes.values_mut() {
            while mailbox.queue.len() > cap {
                mailbox.queue.pop_front();
                mailbox.dropped += 1;
            }
        }
    }

    /// Bulk-load objects before any subscription is registered.
    pub fn populate<It: IntoIterator<Item = (ObjectId, Point)>>(&mut self, objects: It) {
        self.engine.populate(objects);
    }

    /// Set the engine's online re-grid policy (see
    /// [`cpm_core::RegridPolicy`]). Re-grids are invisible to
    /// subscribers: results are δ-independent, so a re-grid cycle's delta
    /// batch is exactly what a never-re-gridded hub would have shipped —
    /// no spurious deltas, no resync required.
    pub fn set_regrid_policy(&mut self, policy: cpm_core::RegridPolicy) {
        self.engine.set_regrid_policy(policy);
    }

    /// Re-grid the engine to a new resolution now (see
    /// [`cpm_core::ShardedCpmEngine::regrid_to`]); applies at the next
    /// [`commit`](SubscriptionHub::commit) boundary's cycle. Returns the
    /// number of objects migrated.
    ///
    /// # Panics
    /// Panics when the index backend rejects `new_dim`, matching the
    /// hub's panic-on-misuse surface (cf. [`SubscriptionHub::subscribe`]).
    pub fn regrid_to(&mut self, new_dim: u32) -> usize {
        self.engine
            .regrid_to(new_dim)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Register a subscription: query geometry `spec`, result size `k`.
    /// The query is installed at the next [`commit`], and its initial
    /// result arrives in the mailbox as an all-additions delta.
    ///
    /// # Panics
    /// Panics if `id` is already subscribed or has a pending subscription
    /// event this cycle.
    ///
    /// [`commit`]: SubscriptionHub::commit
    pub fn subscribe(&mut self, id: QueryId, spec: S, k: usize) {
        self.assert_no_pending(id);
        self.assert_not_composite(&spec);
        assert!(
            !self.mailboxes.contains_key(&id),
            "query {id} is already subscribed"
        );
        self.mailboxes.insert(id, Mailbox::default());
        self.pending_sub.push(SpecEvent::Install { id, spec, k });
    }

    /// Replace the geometry of subscription `id` (the subscriber moved).
    /// Applied at the next [`commit`]; the result change arrives as a
    /// regular delta.
    ///
    /// # Panics
    /// Panics if `id` is not subscribed or has a pending subscription
    /// event this cycle.
    ///
    /// [`commit`]: SubscriptionHub::commit
    pub fn update_subscription(&mut self, id: QueryId, spec: S) {
        self.assert_no_pending(id);
        self.assert_not_composite(&spec);
        assert!(
            self.mailboxes.contains_key(&id),
            "update of unknown subscription {id}"
        );
        self.pending_sub.push(SpecEvent::Update { id, spec });
    }

    /// Cancel subscription `id` at the next [`commit`]; its mailbox (and
    /// any undrained deltas) are discarded after the cycle runs.
    ///
    /// # Panics
    /// Panics if `id` is not subscribed or has a pending subscription
    /// event this cycle.
    ///
    /// [`commit`]: SubscriptionHub::commit
    pub fn unsubscribe(&mut self, id: QueryId) {
        self.assert_no_pending(id);
        assert!(
            self.mailboxes.contains_key(&id),
            "unsubscribe of unknown subscription {id}"
        );
        self.pending_sub.push(SpecEvent::Terminate { id });
        self.closing.push(id);
    }

    /// Reverse NN is a composite query (six sector candidates plus a
    /// verification pass owned by [`cpm_core::CpmServer`]); a bare
    /// sector spec in a hub would stream a single 60° wedge's 1-NN while
    /// looking like an RNN subscription. Rejected up front.
    fn assert_not_composite(&self, spec: &S) {
        assert!(
            spec.kind() != cpm_grid::QueryKind::Rnn,
            "reverse-NN subscriptions are not supported: RNN is a composite query \
             (see cpm_core::CpmServer::install_rnn)"
        );
    }

    fn assert_no_pending(&self, id: QueryId) {
        assert!(
            self.pending_sub.iter().all(|ev| ev.id() != id),
            "subscription {id} already has a pending event this cycle"
        );
    }

    /// Queue one location update for the next [`commit`].
    ///
    /// [`commit`]: SubscriptionHub::commit
    pub fn push_update(&mut self, event: ObjectEvent) {
        self.pending_obj.push(event);
    }

    /// Queue a batch of location updates for the next [`commit`].
    ///
    /// [`commit`]: SubscriptionHub::commit
    pub fn push_updates<It: IntoIterator<Item = ObjectEvent>>(&mut self, events: It) {
        self.pending_obj.extend(events);
    }

    /// Run one processing cycle over everything queued since the last
    /// commit, advance the epoch, and route the resulting deltas into the
    /// subscribers' mailboxes.
    pub fn commit(&mut self) -> CycleReceipt {
        let mut out = std::mem::take(&mut self.scratch);
        self.engine
            .process_cycle_with_deltas_into(&self.pending_obj, &self.pending_sub, &mut out);
        self.pending_obj.clear();
        self.pending_sub.clear();

        let mut delivered = 0usize;
        let mut entries = 0usize;
        for (qid, delta) in out.deltas.drain(..) {
            let mailbox = self
                .mailboxes
                .get_mut(&qid)
                .expect("delta for unknown subscription");
            entries += delta.len();
            delivered += 1;
            mailbox.queue.push_back(delta);
            if mailbox.queue.len() > self.mailbox_cap {
                mailbox.queue.pop_front();
                mailbox.dropped += 1;
            }
        }
        for qid in self.closing.drain(..) {
            self.mailboxes.remove(&qid);
        }
        let receipt = CycleReceipt {
            epoch: out.epoch,
            changed: out.changed.len(),
            deltas: delivered,
            entries,
        };
        self.scratch = out;
        receipt
    }

    /// Pop the oldest undelivered delta of subscription `id`.
    pub fn poll(&mut self, id: QueryId) -> Option<NeighborDelta> {
        self.mailboxes.get_mut(&id)?.queue.pop_front()
    }

    /// Drain every undelivered delta of subscription `id`, in epoch order.
    pub fn drain(&mut self, id: QueryId) -> Vec<NeighborDelta> {
        match self.mailboxes.get_mut(&id) {
            Some(m) => m.queue.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// How many deltas subscription `id` has lost to mailbox overflow
    /// since the last [`resync`](SubscriptionHub::resync). Non-zero means
    /// folding the mailbox is no longer lossless.
    pub fn lagged(&self, id: QueryId) -> u64 {
        self.mailboxes.get(&id).map_or(0, |m| m.dropped)
    }

    /// The authoritative `(epoch, result)` of subscription `id` — what a
    /// client's folded replica must equal after draining its mailbox.
    /// `None` while the subscription is still pending its first commit.
    pub fn snapshot(&self, id: QueryId) -> Option<(u64, &[Neighbor])> {
        self.engine.result(id).map(|r| (self.engine.epoch(), r))
    }

    /// Recovery for a lagged subscriber: discard the mailbox backlog,
    /// clear the lag counter, and return the authoritative snapshot to
    /// restart the replica from.
    ///
    /// # Panics
    /// Panics if `id` is not an installed subscription.
    pub fn resync(&mut self, id: QueryId) -> (u64, Vec<Neighbor>) {
        let mailbox = self
            .mailboxes
            .get_mut(&id)
            .unwrap_or_else(|| panic!("resync of unknown subscription {id}"));
        mailbox.queue.clear();
        mailbox.dropped = 0;
        let result = self
            .engine
            .result(id)
            .expect("subscribed query is installed")
            .to_vec();
        (self.engine.epoch(), result)
    }

    /// The current epoch: 0 before any commit, incremented by each one.
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// Number of active subscriptions (including those installing at the
    /// next commit, excluding those terminating at it).
    pub fn subscription_count(&self) -> usize {
        self.mailboxes.len()
    }

    /// The shared object index.
    pub fn grid(&self) -> &Grid<I> {
        self.engine.grid()
    }

    /// Merged snapshot of the engine work counters.
    pub fn metrics(&self) -> Metrics {
        self.engine.metrics()
    }

    /// Take and reset the engine work counters.
    pub fn take_metrics(&mut self) -> Metrics {
        self.engine.take_metrics()
    }

    /// Verify engine invariants plus hub/mailbox consistency (test
    /// helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.engine.check_invariants();
        for (qid, mailbox) in &self.mailboxes {
            let installed = self.engine.result(*qid).is_some();
            let pending = self
                .pending_sub
                .iter()
                .any(|ev| matches!(ev, SpecEvent::Install { id, .. } if id == qid));
            assert!(
                installed || pending,
                "mailbox for {qid} without installed or pending query"
            );
            assert!(mailbox.queue.len() <= self.mailbox_cap);
            let mut prev = 0u64;
            for delta in &mailbox.queue {
                assert!(delta.epoch > prev, "mailbox epochs out of order");
                prev = delta.epoch;
            }
        }
    }
}

/// k-NN subscriptions: "keep me posted on my `k` nearest objects".
pub type KnnSubscriptionHub = SubscriptionHub<PointQuery>;

impl<I: SpatialIndex> SubscriptionHub<PointQuery, I> {
    /// Subscribe to the `k` nearest neighbors of `pos`.
    pub fn subscribe_knn(&mut self, id: QueryId, pos: Point, k: usize) {
        self.subscribe(id, PointQuery(pos), k);
    }

    /// Move a k-NN subscription to `pos`.
    pub fn move_knn(&mut self, id: QueryId, pos: Point) {
        self.update_subscription(id, PointQuery(pos));
    }
}

/// Range subscriptions: "notify me about every object inside this
/// region".
pub type RangeSubscriptionHub = SubscriptionHub<RangeQuery>;

impl<I: SpatialIndex> SubscriptionHub<RangeQuery, I> {
    /// Subscribe to all objects inside `query`'s region (unbounded
    /// result — no `k`).
    pub fn subscribe_region(&mut self, id: QueryId, query: RangeQuery) {
        self.subscribe(id, query, RangeQuery::UNBOUNDED_K);
    }

    /// Move a range subscription to a new region.
    pub fn move_region(&mut self, id: QueryId, query: RangeQuery) {
        self.update_subscription(id, query);
    }
}

/// Mixed-kind subscriptions: one hub carrying k-NN, range, aggregate-NN
/// and constrained delta streams over a **single** shared grid and one
/// processing cycle per commit — the unified-server shape
/// ([`cpm_core::CpmServer`]) for the subscription front end. Per-kind
/// streams are bit-identical to the dedicated single-kind hubs (asserted
/// by the mixed-stream test below), because [`AnyQuerySpec`] dispatch
/// only forwards to the concrete geometry.
pub type UnifiedSubscriptionHub = SubscriptionHub<AnyQuerySpec>;

impl<I: SpatialIndex> SubscriptionHub<AnyQuerySpec, I> {
    /// Subscribe to the `k` nearest neighbors of `pos`.
    pub fn subscribe_knn(&mut self, id: QueryId, pos: Point, k: usize) {
        self.subscribe(id, AnyQuerySpec::Knn(PointQuery(pos)), k);
    }

    /// Move a k-NN subscription to `pos`.
    pub fn move_knn(&mut self, id: QueryId, pos: Point) {
        self.update_subscription(id, AnyQuerySpec::Knn(PointQuery(pos)));
    }

    /// Subscribe to all objects inside `query`'s region (unbounded
    /// result — no `k`).
    pub fn subscribe_region(&mut self, id: QueryId, query: RangeQuery) {
        self.subscribe(id, AnyQuerySpec::Range(query), RangeQuery::UNBOUNDED_K);
    }

    /// Move a range subscription to a new region.
    pub fn move_region(&mut self, id: QueryId, query: RangeQuery) {
        self.update_subscription(id, AnyQuerySpec::Range(query));
    }

    /// Subscribe to the `k` best objects under an aggregate-NN query.
    pub fn subscribe_ann(&mut self, id: QueryId, query: AnnQuery, k: usize) {
        self.subscribe(id, AnyQuerySpec::Ann(query), k);
    }

    /// Subscribe to the `k` nearest objects inside a constraint region.
    pub fn subscribe_constrained(&mut self, id: QueryId, query: ConstrainedQuery, k: usize) {
        self.subscribe(id, AnyQuerySpec::Constrained(query), k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::Replica;
    use cpm_geom::Rect;

    fn line_hub(shards: usize) -> KnnSubscriptionHub {
        let mut hub = KnnSubscriptionHub::new(16, shards);
        hub.populate((0..10u32).map(|i| (ObjectId(i), Point::new((i as f64 + 0.5) / 10.0, 0.5))));
        hub
    }

    #[test]
    fn initial_result_arrives_as_all_additions() {
        let mut hub = line_hub(1);
        hub.subscribe_knn(QueryId(0), Point::new(0.05, 0.5), 3);
        assert_eq!(hub.epoch(), 0);
        let receipt = hub.commit();
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.deltas, 1);
        let deltas = hub.drain(QueryId(0));
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].added.len(), 3);
        assert!(deltas[0].removed.is_empty());
        assert!(deltas[0].reordered.is_empty());
        hub.check_invariants();
    }

    #[test]
    fn quiet_cycles_deliver_nothing() {
        let mut hub = line_hub(2);
        hub.subscribe_knn(QueryId(0), Point::new(0.05, 0.5), 2);
        hub.commit();
        hub.drain(QueryId(0));
        // An update far from the subscription: no delta.
        hub.push_update(ObjectEvent::Move {
            id: ObjectId(9),
            to: Point::new(0.93, 0.5),
        });
        let receipt = hub.commit();
        assert_eq!(receipt.deltas, 0);
        assert!(hub.drain(QueryId(0)).is_empty());
    }

    #[test]
    fn replica_folds_to_the_authoritative_snapshot() {
        for shards in [1usize, 3] {
            let mut hub = line_hub(shards);
            hub.subscribe_knn(QueryId(7), Point::new(0.62, 0.5), 3);
            hub.commit();
            let mut replica = Replica::new();
            for d in hub.drain(QueryId(7)) {
                replica.apply(&d);
            }
            for step in 0..10u32 {
                hub.push_update(ObjectEvent::Move {
                    id: ObjectId(step % 10),
                    to: Point::new(0.6, 0.4 + step as f64 / 50.0),
                });
                hub.commit();
                for d in hub.drain(QueryId(7)) {
                    replica.apply(&d);
                }
                let (epoch, snapshot) = hub.snapshot(QueryId(7)).unwrap();
                assert_eq!(replica.result(), snapshot);
                assert_eq!(epoch, hub.epoch());
                hub.check_invariants();
            }
        }
    }

    #[test]
    fn bounded_mailboxes_flag_lag_and_resync_recovers() {
        let mut hub = line_hub(1);
        hub.set_mailbox_capacity(2);
        hub.subscribe_knn(QueryId(0), Point::new(0.05, 0.5), 2);
        hub.commit();
        // Never drained: force more than `cap` deltas.
        for step in 0..5u32 {
            hub.push_update(ObjectEvent::Move {
                id: ObjectId(step % 2),
                to: Point::new(0.01 + step as f64 / 100.0, 0.5),
            });
            hub.commit();
        }
        assert!(hub.lagged(QueryId(0)) > 0);
        let (epoch, snapshot) = hub.resync(QueryId(0));
        assert_eq!(hub.lagged(QueryId(0)), 0);
        assert!(hub.drain(QueryId(0)).is_empty());
        let mut replica = Replica::from_snapshot(epoch, snapshot);
        // Stream resumes losslessly after the resync.
        hub.push_update(ObjectEvent::Move {
            id: ObjectId(9),
            to: Point::new(0.02, 0.5),
        });
        hub.commit();
        for d in hub.drain(QueryId(0)) {
            replica.apply(&d);
        }
        assert_eq!(replica.result(), hub.snapshot(QueryId(0)).unwrap().1);
    }

    #[test]
    fn unsubscribe_discards_the_mailbox() {
        let mut hub = line_hub(2);
        hub.subscribe_knn(QueryId(0), Point::new(0.5, 0.5), 2);
        hub.subscribe_knn(QueryId(1), Point::new(0.2, 0.5), 2);
        hub.commit();
        assert_eq!(hub.subscription_count(), 2);
        hub.unsubscribe(QueryId(1));
        hub.commit();
        assert_eq!(hub.subscription_count(), 1);
        assert!(hub.snapshot(QueryId(1)).is_none());
        assert!(hub.drain(QueryId(1)).is_empty());
        hub.check_invariants();
    }

    #[test]
    fn range_subscriptions_stream_membership_changes() {
        let mut hub = RangeSubscriptionHub::new(16, 2);
        hub.populate((0..10u32).map(|i| (ObjectId(i), Point::new((i as f64 + 0.5) / 10.0, 0.5))));
        let region = Rect::new(Point::new(0.0, 0.0), Point::new(0.35, 1.0));
        hub.subscribe_region(QueryId(0), RangeQuery::rect(region));
        hub.commit();
        let mut replica = Replica::new();
        for d in hub.drain(QueryId(0)) {
            replica.apply(&d);
        }
        assert_eq!(replica.result().len(), 4); // objects 0–3 (closed region)
                                               // One object leaves, one enters.
        hub.push_updates([
            ObjectEvent::Move {
                id: ObjectId(0),
                to: Point::new(0.9, 0.5),
            },
            ObjectEvent::Move {
                id: ObjectId(8),
                to: Point::new(0.2, 0.5),
            },
        ]);
        hub.commit();
        let deltas = hub.drain(QueryId(0));
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].removed, vec![ObjectId(0)]);
        assert_eq!(deltas[0].added.len(), 1);
        for d in &deltas {
            replica.apply(d);
        }
        assert_eq!(replica.result(), hub.snapshot(QueryId(0)).unwrap().1);
        hub.check_invariants();
    }

    /// One unified hub carrying four kinds must (a) fold every replica to
    /// its authoritative snapshot and (b) ship each kind's stream
    /// bit-identical to a dedicated single-kind hub over the same data.
    #[test]
    fn mixed_kind_streams_match_dedicated_hubs() {
        use cpm_core::AggregateFn;
        for shards in [1usize, 3] {
            let objects: Vec<(ObjectId, Point)> = (0..24u32)
                .map(|i| {
                    let t = i as f64 / 24.0;
                    (ObjectId(i), Point::new(t, (t * 5.0) % 1.0))
                })
                .collect();
            let mut unified = UnifiedSubscriptionHub::new(16, shards);
            let mut knn_only = KnnSubscriptionHub::new(16, shards);
            let mut range_only = RangeSubscriptionHub::new(16, shards);
            unified.populate(objects.iter().copied());
            knn_only.populate(objects.iter().copied());
            range_only.populate(objects.iter().copied());

            let region = RangeQuery::rect(Rect::new(Point::new(0.2, 0.2), Point::new(0.7, 0.7)));
            unified.subscribe_knn(QueryId(0), Point::new(0.4, 0.4), 3);
            unified.subscribe_region(QueryId(1), region);
            unified.subscribe_ann(
                QueryId(2),
                AnnQuery::new(
                    vec![Point::new(0.2, 0.8), Point::new(0.8, 0.2)],
                    AggregateFn::Sum,
                ),
                2,
            );
            unified.subscribe_constrained(
                QueryId(3),
                ConstrainedQuery::northeast_of(Point::new(0.3, 0.3)),
                2,
            );
            knn_only.subscribe_knn(QueryId(0), Point::new(0.4, 0.4), 3);
            range_only.subscribe_region(QueryId(1), region);

            let mut replicas: Vec<Replica> = (0..4).map(|_| Replica::new()).collect();
            for step in 0..12u32 {
                unified.commit();
                knn_only.commit();
                range_only.commit();
                // Per-kind streams are bit-identical to the dedicated hubs.
                let u_knn = unified.drain(QueryId(0));
                let u_range = unified.drain(QueryId(1));
                assert_eq!(u_knn, knn_only.drain(QueryId(0)), "knn stream diverged");
                assert_eq!(
                    u_range,
                    range_only.drain(QueryId(1)),
                    "range stream diverged"
                );
                for d in &u_knn {
                    replicas[0].apply(d);
                }
                for d in &u_range {
                    replicas[1].apply(d);
                }
                for (i, qid) in [(2usize, QueryId(2)), (3, QueryId(3))] {
                    for d in unified.drain(qid) {
                        replicas[i].apply(&d);
                    }
                }
                for (i, replica) in replicas.iter().enumerate() {
                    let (_, snapshot) = unified.snapshot(QueryId(i as u32)).unwrap();
                    assert_eq!(replica.result(), snapshot, "replica {i} diverged");
                }
                unified.check_invariants();

                let mover = ObjectId(step % 24);
                let to = Point::new(
                    (0.1 + step as f64 * 0.17) % 1.0,
                    (0.9 - step as f64 * 0.11).abs() % 1.0,
                );
                unified.push_update(ObjectEvent::Move { id: mover, to });
                knn_only.push_update(ObjectEvent::Move { id: mover, to });
                range_only.push_update(ObjectEvent::Move { id: mover, to });
            }
        }
    }

    #[test]
    #[should_panic(expected = "already has a pending event")]
    fn duplicate_pending_events_are_rejected() {
        let mut hub = line_hub(1);
        hub.subscribe_knn(QueryId(0), Point::new(0.5, 0.5), 1);
        hub.commit();
        hub.move_knn(QueryId(0), Point::new(0.1, 0.5));
        hub.move_knn(QueryId(0), Point::new(0.2, 0.5));
    }
}
