//! The client side of the subscription layer: a result replica maintained
//! purely from the delta stream.
//!
//! A [`Replica`] never sees a full result after its starting snapshot —
//! it folds each [`NeighborDelta`] with [`NeighborDelta::apply_to`] and
//! tracks the epoch of the last applied delta. Because deltas are exact
//! ([`NeighborDelta::diff`] and `apply_to` are inverses), a replica that
//! has applied every delta up to epoch `e` is **bit-identical** to the
//! server's result at epoch `e` — the losslessness property the
//! delta-replay suite proves against the brute-force oracle.

use cpm_core::{Neighbor, NeighborDelta};

/// A subscriber's local copy of one query's result, advanced delta by
/// delta.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Replica {
    epoch: u64,
    result: Vec<Neighbor>,
}

impl Replica {
    /// An empty replica at epoch 0 — the correct starting point for a
    /// subscription registered before its first commit (the initial
    /// result arrives as an all-additions delta).
    pub fn new() -> Self {
        Self::default()
    }

    /// A replica primed from an authoritative snapshot (the
    /// [`resync`](crate::SubscriptionHub::resync) recovery path).
    pub fn from_snapshot(epoch: u64, result: Vec<Neighbor>) -> Self {
        Self { epoch, result }
    }

    /// Fold one delta. Deltas must arrive in stream order; gaps are fine
    /// (quiet cycles emit nothing) but going backwards is a protocol
    /// violation.
    ///
    /// # Panics
    /// Panics if `delta.epoch` is not beyond the replica's epoch.
    pub fn apply(&mut self, delta: &NeighborDelta) {
        assert!(
            delta.epoch > self.epoch,
            "delta for epoch {} applied to a replica already at {}",
            delta.epoch,
            self.epoch
        );
        delta.apply_to(&mut self.result);
        self.epoch = delta.epoch;
    }

    /// Epoch of the last applied delta (0 = nothing applied yet).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The replicated result, ascending by `(dist, id)`.
    pub fn result(&self) -> &[Neighbor] {
        &self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_geom::ObjectId;

    fn n(id: u32, dist: f64) -> Neighbor {
        Neighbor {
            id: ObjectId(id),
            dist,
        }
    }

    #[test]
    fn folds_deltas_in_epoch_order() {
        let mut r = Replica::new();
        r.apply(&NeighborDelta {
            epoch: 1,
            added: vec![n(1, 0.2), n(2, 0.5)].into(),
            ..NeighborDelta::default()
        });
        // Epoch 2 was quiet; epoch 3 swaps an entry and reorders another.
        r.apply(&NeighborDelta {
            epoch: 3,
            added: vec![n(3, 0.1)].into(),
            removed: vec![ObjectId(1)].into(),
            reordered: vec![n(2, 0.05)].into(),
        });
        assert_eq!(r.epoch(), 3);
        assert_eq!(r.result(), &[n(2, 0.05), n(3, 0.1)]);
    }

    #[test]
    #[should_panic(expected = "applied to a replica already at")]
    fn rejects_regressing_epochs() {
        let mut r = Replica::from_snapshot(5, vec![n(1, 0.2)]);
        r.apply(&NeighborDelta {
            epoch: 5,
            removed: vec![ObjectId(1)].into(),
            ..NeighborDelta::default()
        });
    }
}
