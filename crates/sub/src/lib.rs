//! # cpm-sub — delta-streaming subscriptions over the CPM engine
//!
//! CPM's processing cycle produces *incremental* result changes, yet the
//! raw engines hand callers full result lists. This crate is the
//! subscription front end a "millions of users" deployment needs: clients
//! register queries as subscriptions, push batched location updates, and
//! receive per-cycle **result deltas** ([`cpm_core::NeighborDelta`])
//! instead of full lists — computed inside the engine's maintenance phase
//! (where the cycle-start and cycle-end lists are already adjacent) and
//! merged deterministically across shards in canonical query-id order.
//!
//! * [`hub`] — the server side: [`SubscriptionHub`] wraps a
//!   [`cpm_core::ShardedCpmEngine`], owns one bounded mailbox per
//!   subscription, and advances one epoch per committed cycle.
//! * [`replica`] — the client side: [`Replica`] folds a delta stream onto
//!   a snapshot, reconstructing every per-epoch result bit-identically
//!   (the property the delta-replay conformance suite asserts against the
//!   brute-force oracle).
//!
//! Every query kind rides the same pipeline: the single-kind
//! [`KnnSubscriptionHub`] and [`RangeSubscriptionHub`], and — the shape a
//! real deployment wants — the [`UnifiedSubscriptionHub`], which carries
//! **mixed-kind** delta streams (k-NN, range, aggregate-NN, constrained)
//! over one shared grid and one processing cycle per commit, mirroring
//! the [`cpm_core::CpmServer`] facade.
//!
//! ## Example
//!
//! ```
//! use cpm_geom::{ObjectId, Point, QueryId};
//! use cpm_grid::ObjectEvent;
//! use cpm_sub::{KnnSubscriptionHub, Replica};
//!
//! let mut hub = KnnSubscriptionHub::new(64, 2);
//! hub.populate((0..10).map(|i| {
//!     (ObjectId(i), Point::new((i as f64 + 0.5) / 10.0, 0.5))
//! }));
//!
//! // A client subscribes to the 2 nearest objects; the initial result
//! // arrives as the first delta (all additions).
//! hub.subscribe_knn(QueryId(0), Point::new(0.30, 0.5), 2);
//! hub.commit();
//! let mut replica = Replica::new();
//! for delta in hub.drain(QueryId(0)) {
//!     replica.apply(&delta);
//! }
//! assert_eq!(replica.result().len(), 2);
//!
//! // An object drives next to the query; only the change is shipped.
//! hub.push_update(ObjectEvent::Move { id: ObjectId(9), to: Point::new(0.31, 0.5) });
//! let receipt = hub.commit();
//! assert_eq!(receipt.epoch, 2);
//! for delta in hub.drain(QueryId(0)) {
//!     replica.apply(&delta);
//! }
//! assert_eq!(replica.result()[0].id, ObjectId(9));
//! assert_eq!(replica.result(), hub.snapshot(QueryId(0)).unwrap().1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fanout;
pub mod hub;
pub mod replica;

pub use fanout::DeltaFanout;
pub use hub::{
    CycleReceipt, KnnSubscriptionHub, RangeSubscriptionHub, SubscriptionHub, UnifiedSubscriptionHub,
};
pub use replica::Replica;
