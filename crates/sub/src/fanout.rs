//! Engine-less delta fan-out: the hub's mailbox delivery model fed from
//! an externally produced [`CycleDeltas`] stream instead of a local
//! engine.
//!
//! A [`SubscriptionHub`](crate::SubscriptionHub) runs the engine itself;
//! a [`DeltaFanout`] sits one layer downstream and only *distributes* —
//! a cluster coordinator publishes each merged cross-worker
//! `CycleDeltas` batch into it and subscribers drain per-query mailboxes
//! exactly as they would from a hub. Because the merged batches are
//! bit-identical to a single-node engine's, everything downstream of the
//! hub boundary (mailboxes, lag accounting, [`Replica`] folding, resync)
//! carries over unchanged.
//!
//! The fan-out keeps one authoritative [`Replica`] per subscription, so
//! a lagged subscriber can [`resync`](DeltaFanout::resync) from the
//! fan-out itself without reaching back to the delta producer.

use std::collections::VecDeque;
use std::sync::Arc;

use cpm_core::{CycleDeltas, Neighbor, NeighborDelta};
use cpm_geom::{FastHashMap, QueryId};
use cpm_wire::{Decode, Encode, Writer};

use crate::hub::CycleReceipt;
use crate::replica::Replica;

/// One queued delivery: the cycle's shared encoded batch plus the byte
/// range of this subscription's delta inside it. Every subscriber of a
/// cycle holds the same `Arc` — the batch is encoded once per publish,
/// never once per mailbox.
#[derive(Debug, Clone)]
struct QueuedDelta {
    frame: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl QueuedDelta {
    fn decode(&self) -> NeighborDelta {
        NeighborDelta::decode_all(&self.frame[self.start..self.end])
            .expect("the fan-out encoded this delta itself")
    }
}

/// One subscription's delivery state.
#[derive(Debug, Default)]
struct Mailbox {
    queue: VecDeque<QueuedDelta>,
    /// Deltas evicted because the queue was full; non-zero means the
    /// stream is no longer lossless for this subscriber.
    dropped: u64,
}

/// Per-query mailbox delivery over an external epoch-numbered
/// [`CycleDeltas`] stream; see the [module docs](self).
#[derive(Debug, Default)]
pub struct DeltaFanout {
    epoch: u64,
    subs: FastHashMap<QueryId, (Mailbox, Replica)>,
    mailbox_cap: usize,
    /// Cumulative full-batch encodes (see [`DeltaFanout::encodes`]).
    encodes: u64,
}

impl DeltaFanout {
    /// An empty fan-out at epoch 0 with unbounded mailboxes.
    pub fn new() -> Self {
        Self {
            epoch: 0,
            subs: FastHashMap::default(),
            mailbox_cap: usize::MAX,
            encodes: 0,
        }
    }

    /// A fan-out that resumes at `epoch` (a coordinator restarted from a
    /// snapshot publishes its next cycle as `epoch + 1`).
    pub fn from_epoch(epoch: u64) -> Self {
        Self {
            epoch,
            ..Self::new()
        }
    }

    /// Epoch of the last published batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bound every mailbox to `cap ≥ 1` buffered deltas; on overflow the
    /// **oldest** delta is evicted and the subscriber flagged as lagged.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn set_mailbox_capacity(&mut self, cap: usize) {
        assert!(cap >= 1, "a mailbox must hold at least one delta");
        self.mailbox_cap = cap;
    }

    /// Register a subscription. Returns `false` (and changes nothing) if
    /// `id` is already registered. Registration only opens the delivery
    /// channel — installing the query where results are computed is the
    /// producer's job.
    pub fn subscribe(&mut self, id: QueryId) -> bool {
        if self.subs.contains_key(&id) {
            return false;
        }
        self.subs.insert(
            id,
            (
                Mailbox::default(),
                Replica::from_snapshot(self.epoch, Vec::new()),
            ),
        );
        true
    }

    /// Drop a subscription and its undelivered backlog. Returns `false`
    /// if `id` was not registered.
    pub fn unsubscribe(&mut self, id: QueryId) -> bool {
        self.subs.remove(&id).is_some()
    }

    /// Registered subscription count.
    pub fn subscriptions(&self) -> usize {
        self.subs.len()
    }

    /// Publish one cycle's merged batch: fold every delta into its
    /// subscription's authoritative replica and enqueue it for delivery.
    /// Deltas for queries nobody subscribed to are counted in the receipt
    /// but not buffered.
    ///
    /// Delivery is encode-once: when at least one delta has a
    /// subscriber, the whole batch is serialized **once** to a shared
    /// `Arc<[u8]>` (recording each delta's byte range along the way) and
    /// every mailbox enqueues the same buffer plus its range — never a
    /// per-subscriber re-serialization or deep delta clone.
    ///
    /// # Panics
    /// Panics if `batch.epoch` is not exactly one past the last published
    /// epoch — the producer skipped or replayed a cycle, and folding it
    /// would corrupt every replica.
    pub fn publish(&mut self, batch: &CycleDeltas) -> CycleReceipt {
        assert_eq!(
            batch.epoch,
            self.epoch + 1,
            "publish of epoch {} onto a fan-out at {}",
            batch.epoch,
            self.epoch
        );
        self.epoch = batch.epoch;
        let encoded = self.encode_once(batch);
        let mut entries = 0;
        for (i, (qid, delta)) in batch.deltas.iter().enumerate() {
            entries += delta.added.len() + delta.removed.len() + delta.reordered.len();
            let Some((mailbox, replica)) = self.subs.get_mut(qid) else {
                continue;
            };
            replica.apply(delta);
            if mailbox.queue.len() >= self.mailbox_cap {
                mailbox.queue.pop_front();
                mailbox.dropped += 1;
            }
            let (frame, ranges) = encoded
                .as_ref()
                .expect("a subscribed delta means the batch was encoded");
            let (start, end) = ranges[i];
            mailbox.queue.push_back(QueuedDelta {
                frame: Arc::clone(frame),
                start,
                end,
            });
        }
        CycleReceipt {
            epoch: batch.epoch,
            changed: batch.changed.len(),
            deltas: batch.deltas.len(),
            entries,
        }
    }

    /// Serialize `batch` exactly once (mirroring `CycleDeltas`'s wire
    /// encoding byte for byte) and record each delta's byte range, or
    /// skip entirely when no delta has a subscriber.
    #[allow(clippy::type_complexity)]
    fn encode_once(&mut self, batch: &CycleDeltas) -> Option<(Arc<[u8]>, Vec<(usize, usize)>)> {
        if !batch
            .deltas
            .iter()
            .any(|(qid, _)| self.subs.contains_key(qid))
        {
            return None;
        }
        self.encodes += 1;
        let mut w = Writer::new();
        w.put_u64(batch.epoch);
        batch.changed.encode(&mut w);
        w.put_u32(u32::try_from(batch.deltas.len()).expect("collection fits a u32 length prefix"));
        let mut ranges = Vec::with_capacity(batch.deltas.len());
        for (qid, delta) in &batch.deltas {
            qid.encode(&mut w);
            let start = w.len();
            delta.encode(&mut w);
            ranges.push((start, w.len()));
        }
        debug_assert_eq!(
            w.as_slice(),
            batch.encode_to_vec(),
            "encode_once must mirror CycleDeltas's wire encoding"
        );
        Some((Arc::from(w.into_bytes()), ranges))
    }

    /// Cumulative number of full-batch serializations performed by
    /// [`publish`](Self::publish): exactly one per published cycle that
    /// carried at least one subscribed delta, **independent of how many
    /// subscribers received it**, and zero for cycles nobody subscribed
    /// to.
    pub fn encodes(&self) -> u64 {
        self.encodes
    }

    /// Drain subscription `id`'s buffered deltas, oldest first. Unknown
    /// ids drain empty. Each delta is decoded from its cycle's shared
    /// buffer at delivery time.
    pub fn drain(&mut self, id: QueryId) -> Vec<NeighborDelta> {
        self.subs
            .get_mut(&id)
            .map(|(m, _)| m.queue.drain(..).map(|q| q.decode()).collect())
            .unwrap_or_default()
    }

    /// `true` if subscription `id` has lost deltas to mailbox overflow
    /// since its last [`resync`](Self::resync).
    pub fn lagged(&self, id: QueryId) -> bool {
        self.subs.get(&id).is_some_and(|(m, _)| m.dropped > 0)
    }

    /// A lagged subscriber's recovery path: the authoritative result as
    /// of the last published epoch. Clears the backlog and the lag flag —
    /// deltas published after this call replay losslessly on top.
    /// Returns `None` for unknown ids.
    pub fn resync(&mut self, id: QueryId) -> Option<(u64, Vec<Neighbor>)> {
        let (mailbox, replica) = self.subs.get_mut(&id)?;
        mailbox.queue.clear();
        mailbox.dropped = 0;
        Some((replica.epoch(), replica.result().to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_geom::ObjectId;

    fn n(id: u32, dist: f64) -> Neighbor {
        Neighbor {
            id: ObjectId(id),
            dist,
        }
    }

    fn batch(epoch: u64, qid: u32, added: Vec<Neighbor>) -> CycleDeltas {
        CycleDeltas {
            epoch,
            changed: vec![QueryId(qid)],
            deltas: vec![(
                QueryId(qid),
                NeighborDelta {
                    epoch,
                    added: added.into(),
                    ..NeighborDelta::default()
                },
            )],
        }
    }

    #[test]
    fn publishes_into_mailboxes_and_replicas() {
        let mut f = DeltaFanout::new();
        assert!(f.subscribe(QueryId(7)));
        assert!(!f.subscribe(QueryId(7)));
        let receipt = f.publish(&batch(1, 7, vec![n(1, 0.2), n(2, 0.5)]));
        assert_eq!((receipt.epoch, receipt.deltas, receipt.entries), (1, 1, 2));
        let drained = f.drain(QueryId(7));
        assert_eq!(drained.len(), 1);
        let mut r = Replica::new();
        r.apply(&drained[0]);
        assert_eq!(r.result(), &[n(1, 0.2), n(2, 0.5)]);
        // The fan-out's own replica agrees.
        assert_eq!(
            f.resync(QueryId(7)).unwrap(),
            (1, vec![n(1, 0.2), n(2, 0.5)])
        );
    }

    #[test]
    fn bounded_mailboxes_lag_and_resync_recovers() {
        let mut f = DeltaFanout::new();
        f.set_mailbox_capacity(1);
        f.subscribe(QueryId(3));
        f.publish(&batch(1, 3, vec![n(1, 0.2)]));
        f.publish(&batch(2, 3, vec![n(2, 0.1)]));
        assert!(f.lagged(QueryId(3)));
        // The backlog is no longer lossless; resync hands the full result.
        let (epoch, result) = f.resync(QueryId(3)).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(result, vec![n(2, 0.1), n(1, 0.2)]);
        assert!(!f.lagged(QueryId(3)));
        assert!(f.drain(QueryId(3)).is_empty());
    }

    #[test]
    fn unsubscribed_queries_are_counted_but_not_buffered() {
        let mut f = DeltaFanout::new();
        let receipt = f.publish(&batch(1, 9, vec![n(1, 0.2)]));
        assert_eq!(receipt.deltas, 1);
        assert!(f.drain(QueryId(9)).is_empty());
        assert_eq!(f.subscriptions(), 0);
    }

    #[test]
    #[should_panic(expected = "publish of epoch")]
    fn rejects_non_contiguous_epochs() {
        let mut f = DeltaFanout::from_epoch(4);
        f.publish(&batch(6, 1, vec![n(1, 0.2)]));
    }

    /// The encode-once contract: one serialization per published cycle
    /// regardless of subscriber count, zero when nobody subscribed, and
    /// every subscriber still drains its own decoded delta.
    #[test]
    fn encodes_each_cycle_exactly_once_regardless_of_subscriber_count() {
        let mut f = DeltaFanout::new();
        for q in 0..16 {
            f.subscribe(QueryId(q));
        }
        assert_eq!(f.encodes(), 0);
        // One batch carrying a distinct delta for every subscriber.
        let wide = CycleDeltas {
            epoch: 1,
            changed: (0..16).map(QueryId).collect(),
            deltas: (0..16)
                .map(|q| {
                    (
                        QueryId(q),
                        NeighborDelta {
                            epoch: 1,
                            added: vec![n(q, f64::from(q) * 0.01)].into(),
                            ..NeighborDelta::default()
                        },
                    )
                })
                .collect(),
        };
        f.publish(&wide);
        assert_eq!(f.encodes(), 1, "16 subscribers, one encode");
        for q in 0..16 {
            let drained = f.drain(QueryId(q));
            assert_eq!(drained.len(), 1);
            assert_eq!(drained[0].added.as_slice(), &[n(q, f64::from(q) * 0.01)]);
        }
        // A cycle whose deltas nobody subscribed to is not encoded.
        f.publish(&batch(2, 99, vec![n(1, 0.5)]));
        assert_eq!(f.encodes(), 1);
        // An empty cycle is not encoded either.
        f.publish(&CycleDeltas {
            epoch: 3,
            changed: vec![],
            deltas: vec![],
        });
        assert_eq!(f.encodes(), 1);
    }
}
