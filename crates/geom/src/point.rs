//! 2D points and Euclidean distance helpers.

use std::fmt;

/// A point in the two-dimensional unit-square workspace.
///
/// The paper (Section 3, footnote 3) focuses on 2D Euclidean space; all
/// algorithms in this suite operate on `Point`s. Distances are Euclidean
/// (`dist(p, q)` in Table 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in `[0, 1)`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1)`.
    pub y: f64,
}

impl Point {
    /// Create a point from raw coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::dist`] when only comparisons are needed:
    /// it avoids the square root on the hot path.
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other` (`dist(p, q)` of Table 3.1).
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Linear interpolation from `self` towards `to` by fraction `t ∈ [0,1]`.
    ///
    /// Used by the workload generator to advance objects along road segments.
    #[inline]
    pub fn lerp(&self, to: Point, t: f64) -> Point {
        Point::new(self.x + (to.x - self.x) * t, self.y + (to.y - self.y) * t)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// `true` if both coordinates are finite (no NaN/∞ ever enters the
    /// index; generators and tests uphold this).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_identities() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.2, 0.4);
        let b = Point::new(0.6, 0.8);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert!((mid.x - 0.4).abs() < 1e-12);
        assert!((mid.y - 0.6).abs() < 1e-12);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(0.1, 0.9);
        let b = Point::new(0.5, 0.2);
        assert_eq!(a.min(b), Point::new(0.1, 0.2));
        assert_eq!(a.max(b), Point::new(0.5, 0.9));
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(ax in 0.0..1.0f64, ay in 0.0..1.0f64,
                                 bx in 0.0..1.0f64, by in 0.0..1.0f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-12);
        }

        #[test]
        fn triangle_inequality(ax in 0.0..1.0f64, ay in 0.0..1.0f64,
                               bx in 0.0..1.0f64, by in 0.0..1.0f64,
                               cx in 0.0..1.0f64, cy in 0.0..1.0f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-12);
        }

        #[test]
        fn lerp_stays_on_segment(ax in 0.0..1.0f64, ay in 0.0..1.0f64,
                                 bx in 0.0..1.0f64, by in 0.0..1.0f64,
                                 t in 0.0..1.0f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let p = a.lerp(b, t);
            // |ap| + |pb| == |ab| for collinear p between a and b.
            prop_assert!((a.dist(p) + p.dist(b) - a.dist(b)).abs() < 1e-9);
        }
    }
}
