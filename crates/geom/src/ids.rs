//! Typed identifiers for moving objects and installed queries.

use std::fmt;

/// Identifier of a moving data object (`p.id` in the paper's update tuples
/// `<p.id, x_old, y_old, x_new, y_new>`).
///
/// Stored as a `u32`: the paper's largest experiment uses 200K objects, and a
/// 4-byte id keeps cell object lists and `best_NN` entries compact (the
/// space analysis of Section 4.1 charges one memory unit per id).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

/// Identifier of an installed continuous query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl ObjectId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl QueryId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for ObjectId {
    #[inline]
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

impl From<u32> for QueryId {
    #[inline]
    fn from(v: u32) -> Self {
        QueryId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ObjectId(7).to_string(), "p7");
        assert_eq!(QueryId(3).to_string(), "q3");
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(ObjectId(5).index(), 5);
        assert_eq!(QueryId::from(9u32), QueryId(9));
    }
}
