//! Geometry and utility substrate for the CPM continuous NN monitoring suite.
//!
//! This crate provides the low-level building blocks shared by every other
//! crate in the workspace:
//!
//! * [`Point`] — a 2D point in the unit-square workspace, with Euclidean
//!   distance helpers.
//! * [`Rect`] — an axis-aligned rectangle with the `mindist`/`maxdist`
//!   primitives that drive grid-cell pruning (Table 3.1 of the paper).
//! * [`TotalF64`] — a totally ordered `f64` wrapper used as a heap key.
//! * [`fxhash`] — a deterministic, dependency-free FxHash-style hasher and
//!   the [`FastHashMap`]/[`FastHashSet`] aliases built on it. The paper's
//!   analysis assumes O(1) hash tables for cell object lists and influence
//!   lists; SipHash would burn most of the monitoring budget on hashing
//!   4-byte ids.
//! * [`ObjectId`]/[`QueryId`] — typed identifiers for moving objects and
//!   installed queries.
//!
//! Everything in this crate is deterministic and allocation-conscious: these
//! types sit on the hot path of every processing cycle.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fxhash;
mod ids;
mod point;
mod rect;
mod total;

pub use fxhash::{FastHashMap, FastHashSet, FxBuildHasher, FxHasher};
pub use ids::{ObjectId, QueryId};
pub use point::Point;
pub use rect::Rect;
pub use total::TotalF64;

/// The workspace is the unit square `[0,1) × [0,1)`, as in the paper's
/// experimental setup (Section 6: datasets are normalized to a unit
/// workspace).
pub const WORKSPACE_EXTENT: f64 = 1.0;

/// Clamp a coordinate into the half-open workspace range `[0, 1)`.
///
/// Objects that would leave the workspace are snapped to its edge; the grid
/// index requires every indexed position to map to a valid cell.
#[inline]
pub fn clamp_coord(v: f64) -> f64 {
    // `f64::EPSILON` is too small to survive the `x / delta` floor for tiny
    // delta, so back off by the smallest amount that keeps `floor(v/δ) < dim`
    // for every grid dimension used in practice (δ ≥ 1/4096).
    const UPPER: f64 = 1.0 - 1e-9;
    v.clamp(0.0, UPPER)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_keeps_interior_points() {
        assert_eq!(clamp_coord(0.5), 0.5);
        assert_eq!(clamp_coord(0.0), 0.0);
    }

    #[test]
    fn clamp_snaps_outside_points() {
        assert_eq!(clamp_coord(-0.25), 0.0);
        assert!(clamp_coord(1.5) < 1.0);
        assert!(clamp_coord(1.0) < 1.0);
    }

    #[test]
    fn clamped_coordinate_always_maps_to_a_cell() {
        for dim in [32usize, 128, 1024, 4096] {
            let delta = 1.0 / dim as f64;
            let idx = (clamp_coord(1.0) / delta).floor() as usize;
            assert!(idx < dim, "dim={dim} idx={idx}");
        }
    }
}
