//! A totally ordered `f64` wrapper for heap keys.

use std::cmp::Ordering;
use std::fmt;

/// An `f64` with a total order, usable as a `BinaryHeap`/`BTreeMap` key.
///
/// The search heap of the NN computation module (Figure 3.4) is keyed by
/// `mindist` values. `f64` itself is only `PartialOrd`; `TotalF64` applies
/// [`f64::total_cmp`]. NaN keys are rejected in debug builds only — the
/// hard guarantee lives at the ingest boundary: `ObjectStore::activate`
/// rejects non-finite positions with a release-mode assert, so every
/// coordinate the distance kernels read is finite and no distance they
/// produce can be NaN (pinned by the grid crate's `nan_boundary` release
/// regression test).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl TotalF64 {
    /// Wrap a distance value. Debug-asserts that the value is not NaN;
    /// release builds rely on the ingest boundary keeping coordinates
    /// finite (see the type-level docs).
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "NaN is not a valid distance key");
        TotalF64(v)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for TotalF64 {
    #[inline]
    fn from(v: f64) -> Self {
        TotalF64::new(v)
    }
}

impl fmt::Display for TotalF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn orders_like_f64_on_normal_values() {
        assert!(TotalF64::new(1.0) < TotalF64::new(2.0));
        assert!(TotalF64::new(-1.0) < TotalF64::new(0.0));
        assert_eq!(TotalF64::new(0.5), TotalF64::new(0.5));
    }

    #[test]
    fn works_as_min_heap_key() {
        let mut h = BinaryHeap::new();
        for v in [0.9, 0.1, 0.5, 0.3] {
            h.push(Reverse(TotalF64::new(v)));
        }
        let drained: Vec<f64> = std::iter::from_fn(|| h.pop().map(|Reverse(t)| t.get())).collect();
        assert_eq!(drained, vec![0.1, 0.3, 0.5, 0.9]);
    }

    #[test]
    fn infinity_is_largest() {
        assert!(TotalF64::new(f64::INFINITY) > TotalF64::new(1e300));
    }
}
