//! Axis-aligned rectangles and the `mindist` pruning primitive.

use crate::Point;

/// An axis-aligned rectangle `[lo.x, hi.x] × [lo.y, hi.y]`.
///
/// Rectangles model grid cells, conceptual-partitioning strips, query MBRs
/// (for aggregate NN), and constraint regions. The central primitive is
/// [`Rect::mindist`], the minimum possible distance between any point inside
/// the rectangle and a query point — the pruning bound of Section 3.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl Rect {
    /// Create a rectangle from its corners. `lo` must be component-wise
    /// `<= hi`; violated only by programmer error, so this is a debug
    /// assertion rather than a `Result`.
    #[inline]
    pub fn new(lo: Point, hi: Point) -> Self {
        debug_assert!(lo.x <= hi.x && lo.y <= hi.y, "invalid rect {lo} .. {hi}");
        Self { lo, hi }
    }

    /// Rectangle covering the whole unit-square workspace.
    pub const WORKSPACE: Rect = Rect {
        lo: Point::new(0.0, 0.0),
        hi: Point::new(1.0, 1.0),
    };

    /// The minimum bounding rectangle of a non-empty point set.
    ///
    /// Used to compute the MBR `M` of an aggregate query `Q` (Section 5).
    /// Returns `None` for an empty iterator.
    pub fn mbr_of<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for p in it {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some(Rect::new(lo, hi))
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Geometric center.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) / 2.0, (self.lo.y + self.hi.y) / 2.0)
    }

    /// `true` if `p` lies inside the closed rectangle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// `true` if the closed rectangles overlap (sharing an edge counts).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Squared minimum distance from `q` to any point of the rectangle.
    ///
    /// Zero when `q` is inside. This is `mindist(c, q)²` without the square
    /// root; use it for comparisons on the hot path.
    #[inline]
    pub fn mindist_sq(&self, q: Point) -> f64 {
        let dx = if q.x < self.lo.x {
            self.lo.x - q.x
        } else if q.x > self.hi.x {
            q.x - self.hi.x
        } else {
            0.0
        };
        let dy = if q.y < self.lo.y {
            self.lo.y - q.y
        } else if q.y > self.hi.y {
            q.y - self.hi.y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// `mindist(c, q)` of Table 3.1: the minimum possible distance between
    /// any object inside cell/rectangle `c` and the query point `q`.
    #[inline]
    pub fn mindist(&self, q: Point) -> f64 {
        self.mindist_sq(q).sqrt()
    }

    /// Maximum distance from `q` to any point of the rectangle (the farthest
    /// corner). Used by tests and by the analysis module.
    #[inline]
    pub fn maxdist(&self, q: Point) -> f64 {
        let dx = (q.x - self.lo.x).abs().max((q.x - self.hi.x).abs());
        let dy = (q.y - self.lo.y).abs().max((q.y - self.hi.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// `true` if the rectangle intersects the closed disk centered at `q`
    /// with radius `r` — the "cell intersects the influence circle" test.
    #[inline]
    pub fn intersects_circle(&self, q: Point, r: f64) -> bool {
        self.mindist_sq(q) <= r * r
    }

    /// Intersection of two rectangles, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(self.lo.max(other.lo), self.hi.min(other.hi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit_rect() -> Rect {
        Rect::new(Point::new(0.25, 0.25), Point::new(0.75, 0.75))
    }

    #[test]
    fn mindist_zero_inside() {
        assert_eq!(unit_rect().mindist(Point::new(0.5, 0.5)), 0.0);
        assert_eq!(unit_rect().mindist(Point::new(0.25, 0.75)), 0.0); // corner
    }

    #[test]
    fn mindist_axis_and_corner_cases() {
        let r = unit_rect();
        // Pure horizontal gap.
        assert!((r.mindist(Point::new(0.0, 0.5)) - 0.25).abs() < 1e-12);
        // Pure vertical gap.
        assert!((r.mindist(Point::new(0.5, 1.0)) - 0.25).abs() < 1e-12);
        // Diagonal to the lower-left corner.
        let d = r.mindist(Point::new(0.0, 0.0));
        assert!((d - (2.0f64 * 0.25 * 0.25).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn maxdist_is_farthest_corner() {
        let r = unit_rect();
        let q = Point::new(0.0, 0.0);
        let far = Point::new(0.75, 0.75);
        assert!((r.maxdist(q) - q.dist(far)).abs() < 1e-12);
    }

    #[test]
    fn mbr_of_points() {
        let pts = [
            Point::new(0.3, 0.8),
            Point::new(0.1, 0.5),
            Point::new(0.6, 0.6),
        ];
        let m = Rect::mbr_of(pts).unwrap();
        assert_eq!(m.lo, Point::new(0.1, 0.5));
        assert_eq!(m.hi, Point::new(0.6, 0.8));
        assert!(Rect::mbr_of(std::iter::empty()).is_none());
    }

    #[test]
    fn intersection_basics() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(0.5, 0.5));
        let b = Rect::new(Point::new(0.25, 0.25), Point::new(1.0, 1.0));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.lo, Point::new(0.25, 0.25));
        assert_eq!(i.hi, Point::new(0.5, 0.5));
        let c = Rect::new(Point::new(0.9, 0.9), Point::new(1.0, 1.0));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn circle_intersection_edge_cases() {
        let r = unit_rect();
        // Circle exactly touching the left edge.
        assert!(r.intersects_circle(Point::new(0.0, 0.5), 0.25));
        assert!(!r.intersects_circle(Point::new(0.0, 0.5), 0.2499));
    }

    proptest! {
        #[test]
        fn mindist_lower_bounds_all_inner_points(
            qx in -0.5..1.5f64, qy in -0.5..1.5f64,
            px in 0.25..0.75f64, py in 0.25..0.75f64,
        ) {
            let r = unit_rect();
            let q = Point::new(qx, qy);
            let p = Point::new(px, py);
            prop_assert!(r.mindist(q) <= q.dist(p) + 1e-12);
        }

        #[test]
        fn maxdist_upper_bounds_all_inner_points(
            qx in -0.5..1.5f64, qy in -0.5..1.5f64,
            px in 0.25..0.75f64, py in 0.25..0.75f64,
        ) {
            let r = unit_rect();
            let q = Point::new(qx, qy);
            let p = Point::new(px, py);
            prop_assert!(r.maxdist(q) + 1e-12 >= q.dist(p));
        }

        #[test]
        fn contains_implies_zero_mindist(
            px in 0.25..0.75f64, py in 0.25..0.75f64,
        ) {
            let r = unit_rect();
            let p = Point::new(px, py);
            prop_assert!(r.contains(p));
            prop_assert_eq!(r.mindist(p), 0.0);
        }
    }
}
