//! A deterministic FxHash-style hasher and fast hash-map/set aliases.
//!
//! The paper's cost model (Section 4.1) assumes constant-time hash tables
//! for cell object lists and influence lists ("the lists are implemented as
//! hash-tables"). The standard library's SipHash is DoS-resistant but slow
//! for 4-byte integer keys; the multiply-rotate scheme below (the same
//! recipe as the `rustc-hash` crate, reimplemented here to stay within the
//! approved dependency set — see DESIGN.md §3) is ~5× faster on id keys and
//! fully deterministic, which keeps every experiment reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply constant (from FxHash / Firefox).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// An FxHash-style streaming hasher.
///
/// Not cryptographically secure and not HashDoS-resistant — inputs here are
/// internally generated dense ids, never attacker-controlled strings.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; deterministic across runs and platforms.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast deterministic hasher.
pub type FastHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast deterministic hasher.
pub type FastHashSet<T> = HashSet<T, FxBuildHasher>;

/// Convenience constructor: an empty [`FastHashMap`].
#[inline]
pub fn fast_map<K, V>() -> FastHashMap<K, V> {
    FastHashMap::default()
}

/// Convenience constructor: an empty [`FastHashSet`].
#[inline]
pub fn fast_set<T>() -> FastHashSet<T> {
    FastHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(&42u32), hash_one(&42u32));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Dense ids must not all collide into the same bucket pattern.
        let hashes: Vec<u64> = (0u32..64).map(|i| hash_one(&i)).collect();
        let distinct: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FastHashMap<u32, &str> = fast_map();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.remove(&2), Some("b"));
        assert!(!m.contains_key(&2));

        let mut s: FastHashSet<u64> = fast_set();
        assert!(s.insert(10));
        assert!(!s.insert(10));
        assert!(s.contains(&10));
    }

    #[test]
    fn byte_stream_matches_tail_handling() {
        // 9 bytes exercises the chunk + remainder path.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(h1.finish(), h2.finish());

        let mut h3 = FxHasher::default();
        h3.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(h1.finish(), h3.finish());
    }
}
