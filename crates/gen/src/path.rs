//! Shortest paths on road networks (Dijkstra) and the traveler abstraction
//! that advances along a path polyline at a fixed speed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cpm_geom::{Point, TotalF64};

use crate::network::{NodeId, RoadNetwork};

/// Dijkstra shortest path from `from` to `to`.
///
/// Returns the node sequence including both endpoints, or `None` if `to`
/// is unreachable (never the case for the connected networks built by this
/// crate). `from == to` yields a single-node path.
pub fn shortest_path(net: &RoadNetwork, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    if from == to {
        return Some(vec![from]);
    }
    let n = net.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[from as usize] = 0.0;
    heap.push(Reverse((TotalF64::new(0.0), from)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if u == to {
            break;
        }
        if d.get() > dist[u as usize] {
            continue; // stale entry
        }
        for &(v, w) in net.neighbors(u) {
            let nd = d.get() + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                prev[v as usize] = u;
                heap.push(Reverse((TotalF64::new(nd), v)));
            }
        }
    }
    if dist[to as usize].is_infinite() {
        return None;
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = prev[cur as usize];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Network distance of a node path (sum of segment lengths).
pub fn path_length(net: &RoadNetwork, path: &[NodeId]) -> f64 {
    path.windows(2)
        .map(|w| net.position(w[0]).dist(net.position(w[1])))
        .sum()
}

/// An entity moving along a polyline at per-tick step lengths: the motion
/// model of the Brinkhoff generator ("an object appears on a network node,
/// completes the shortest path to a random destination, and then
/// disappears").
#[derive(Debug, Clone)]
pub struct Traveler {
    polyline: Vec<Point>,
    /// Index of the segment currently being traversed.
    seg: usize,
    /// Distance already covered within the current segment.
    offset: f64,
    pos: Point,
}

impl Traveler {
    /// Start a traveler at the beginning of `polyline`.
    ///
    /// # Panics
    /// Panics if the polyline is empty.
    pub fn new(polyline: Vec<Point>) -> Self {
        assert!(!polyline.is_empty(), "empty polyline");
        let pos = polyline[0];
        Self {
            polyline,
            seg: 0,
            offset: 0.0,
            pos,
        }
    }

    /// Current position.
    #[inline]
    pub fn position(&self) -> Point {
        self.pos
    }

    /// `true` once the destination has been reached.
    pub fn arrived(&self) -> bool {
        self.seg + 1 >= self.polyline.len()
    }

    /// Advance `step` distance units along the polyline. Returns `true`
    /// if the destination was reached (the position clamps there).
    pub fn advance(&mut self, step: f64) -> bool {
        let mut remaining = step;
        while !self.arrived() {
            let a = self.polyline[self.seg];
            let b = self.polyline[self.seg + 1];
            let seg_len = a.dist(b);
            let left_in_seg = seg_len - self.offset;
            if remaining < left_in_seg {
                self.offset += remaining;
                let t = if seg_len > 0.0 {
                    self.offset / seg_len
                } else {
                    1.0
                };
                self.pos = a.lerp(b, t);
                return false;
            }
            remaining -= left_in_seg;
            self.seg += 1;
            self.offset = 0.0;
            self.pos = b;
        }
        true
    }

    /// Remaining distance to the destination.
    pub fn remaining(&self) -> f64 {
        if self.arrived() {
            return 0.0;
        }
        let mut total = self.polyline[self.seg].dist(self.polyline[self.seg + 1]) - self.offset;
        for w in self.polyline[self.seg + 1..].windows(2) {
            total += w[0].dist(w[1]);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadNetwork;

    #[test]
    fn dijkstra_on_a_line_graph() {
        // grid_city(3, 1) gives a 4×2 lattice; shortest paths follow it.
        let net = RoadNetwork::grid_city(3, 1, 0.0, 0.0, 0, 1);
        let p = shortest_path(&net, 0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
        assert!((path_length(&net, &p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dijkstra_trivial_and_unreachable() {
        let net = RoadNetwork::grid_city(2, 2, 0.0, 0.0, 0, 1);
        assert_eq!(shortest_path(&net, 4, 4).unwrap(), vec![4]);
        // All nodes reachable in a repaired network.
        for t in 0..net.node_count() as u32 {
            assert!(shortest_path(&net, 0, t).is_some());
        }
    }

    #[test]
    fn dijkstra_is_no_longer_than_any_explicit_route() {
        let net = RoadNetwork::grid_city(5, 5, 0.3, 0.25, 6, 9);
        for (from, to) in [(0u32, 35u32), (3, 20), (7, 31)] {
            let best = path_length(&net, &shortest_path(&net, from, to).unwrap());
            // Compare against the greedy route through a random midpoint.
            for mid in [5u32, 12, 18] {
                let via = path_length(&net, &shortest_path(&net, from, mid).unwrap())
                    + path_length(&net, &shortest_path(&net, mid, to).unwrap());
                assert!(best <= via + 1e-9);
            }
        }
    }

    #[test]
    fn traveler_advances_by_exact_distances() {
        let mut t = Traveler::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.3, 0.0),
            Point::new(0.3, 0.4),
        ]);
        assert!(!t.advance(0.1));
        assert!((t.position().x - 0.1).abs() < 1e-12);
        assert!(!t.advance(0.3)); // crosses the corner, 0.1 into segment 2
        assert!((t.position().x - 0.3).abs() < 1e-12);
        assert!((t.position().y - 0.1).abs() < 1e-12);
        assert!((t.remaining() - 0.3).abs() < 1e-12);
        assert!(t.advance(0.5)); // overshoots: clamp at destination
        assert!(t.arrived());
        assert_eq!(t.position(), Point::new(0.3, 0.4));
        assert_eq!(t.remaining(), 0.0);
    }

    #[test]
    fn traveler_single_point_path_is_arrived() {
        let mut t = Traveler::new(vec![Point::new(0.5, 0.5)]);
        assert!(t.arrived());
        assert!(t.advance(1.0));
        assert_eq!(t.position(), Point::new(0.5, 0.5));
    }

    #[test]
    fn traveler_total_distance_is_conserved() {
        let poly = vec![
            Point::new(0.1, 0.1),
            Point::new(0.5, 0.1),
            Point::new(0.5, 0.9),
            Point::new(0.7, 0.9),
        ];
        let total: f64 = poly.windows(2).map(|w| w[0].dist(w[1])).sum();
        let mut t = Traveler::new(poly);
        let mut steps = 0;
        while !t.advance(0.05) {
            steps += 1;
            assert!(steps < 1000, "no forward progress");
        }
        let travelled = 0.05 * steps as f64;
        assert!(travelled <= total && total <= travelled + 0.05 + 1e-9);
    }
}
