//! The network-based moving-object workload (Brinkhoff-style \[B02\]).
//!
//! Objects appear on a network node, travel the shortest path to a random
//! destination at their speed class, and disappear there (a replacement
//! appears elsewhere, keeping the population at `N`). Queries are objects
//! too, but they "stay in the system throughout the simulation": on
//! arrival they pick a fresh destination. Per timestamp, each object moves
//! with probability `f_obj` (the *object agility*) and each query with
//! probability `f_qry` (Section 6, Table 6.1).

use cpm_geom::{ObjectId, Point, QueryId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::{NodeId, RoadNetwork};
use crate::path::{shortest_path, Traveler};
use crate::speed::SpeedClass;

/// Events emitted by one workload timestamp, in the shape the monitors'
/// `process_cycle` expects.
#[derive(Debug, Clone, Default)]
pub struct TickEvents {
    /// Object updates of this timestamp (`U_P`).
    pub object_events: Vec<cpm_grid::ObjectEvent>,
    /// Query updates of this timestamp (`U_q`).
    pub query_events: Vec<cpm_grid::QueryEvent>,
}

/// Configuration of a network workload (defaults = Table 6.1).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Object population `N`.
    pub n_objects: usize,
    /// Number of continuous queries `n`.
    pub n_queries: usize,
    /// Neighbors per query `k`.
    pub k: usize,
    /// Object speed class.
    pub object_speed: SpeedClass,
    /// Query speed class.
    pub query_speed: SpeedClass,
    /// Object agility `f_obj`: fraction of objects updating per timestamp.
    pub f_obj: f64,
    /// Query agility `f_qry`: fraction of queries updating per timestamp.
    pub f_qry: f64,
    /// RNG seed (workloads are fully deterministic given the seed).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    /// The defaults of Table 6.1: `N = 100K`, `n = 5K`, `k = 16`, medium
    /// speeds, `f_obj = 50%`, `f_qry = 30%`.
    fn default() -> Self {
        Self {
            n_objects: 100_000,
            n_queries: 5_000,
            k: 16,
            object_speed: SpeedClass::Medium,
            query_speed: SpeedClass::Medium,
            f_obj: 0.5,
            f_qry: 0.3,
            seed: 0x5EED,
        }
    }
}

#[derive(Debug, Clone)]
struct MovingEntity {
    traveler: Traveler,
    /// Destination node, kept so a persistent query can re-target from it.
    dest: NodeId,
}

/// The network-based workload generator.
#[derive(Debug)]
pub struct NetworkWorkload {
    net: RoadNetwork,
    config: WorkloadConfig,
    rng: StdRng,
    objects: Vec<MovingEntity>,
    queries: Vec<MovingEntity>,
}

impl NetworkWorkload {
    /// Build a workload over `net` (the network is consumed so the
    /// generator is self-contained and cheap to move across threads).
    pub fn new(net: RoadNetwork, config: WorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let objects = (0..config.n_objects)
            .map(|_| spawn(&net, &mut rng))
            .collect();
        let queries = (0..config.n_queries)
            .map(|_| spawn(&net, &mut rng))
            .collect();
        Self {
            net,
            config,
            rng,
            objects,
            queries,
        }
    }

    /// The configuration this workload was built with.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// Initial object placements, for `populate()` on the monitors.
    pub fn initial_objects(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, e)| (ObjectId(i as u32), e.traveler.position()))
    }

    /// Initial query placements (install with `config.k`).
    pub fn initial_queries(&self) -> impl Iterator<Item = (QueryId, Point, usize)> + '_ {
        self.queries
            .iter()
            .enumerate()
            .map(|(i, e)| (QueryId(i as u32), e.traveler.position(), self.config.k))
    }

    /// Advance the simulation by one timestamp and emit the update batch.
    ///
    /// Each object moves with probability `f_obj`; an object reaching its
    /// destination disappears and a replacement with the same id appears at
    /// a random node (one `Disappear` + one `Appear` event, as in the
    /// Brinkhoff life cycle). Each query moves with probability `f_qry`
    /// and re-targets on arrival instead of disappearing.
    pub fn tick(&mut self) -> TickEvents {
        let mut out = TickEvents::default();
        let step_obj = self.config.object_speed.distance_per_tick();
        let step_qry = self.config.query_speed.distance_per_tick();

        for i in 0..self.objects.len() {
            if !self.rng.gen_bool(self.config.f_obj) {
                continue;
            }
            let id = ObjectId(i as u32);
            let arrived = self.objects[i].traveler.advance(step_obj);
            if arrived {
                out.object_events
                    .push(cpm_grid::ObjectEvent::Disappear { id });
                let e = spawn(&self.net, &mut self.rng);
                out.object_events.push(cpm_grid::ObjectEvent::Appear {
                    id,
                    pos: e.traveler.position(),
                });
                self.objects[i] = e;
            } else {
                out.object_events.push(cpm_grid::ObjectEvent::Move {
                    id,
                    to: self.objects[i].traveler.position(),
                });
            }
        }

        for i in 0..self.queries.len() {
            if !self.rng.gen_bool(self.config.f_qry) {
                continue;
            }
            let id = QueryId(i as u32);
            let arrived = self.queries[i].traveler.advance(step_qry);
            if arrived {
                // Queries persist: re-target from the destination node.
                let from = self.queries[i].dest;
                self.queries[i] = entity_from_node(&self.net, from, &mut self.rng);
            }
            out.query_events.push(cpm_grid::QueryEvent::Move {
                id,
                to: self.queries[i].traveler.position(),
            });
        }
        out
    }
}

/// Spawn an entity at a random node with a shortest path to a random
/// (distinct, where possible) destination.
fn spawn(net: &RoadNetwork, rng: &mut StdRng) -> MovingEntity {
    let from = net.random_node(rng);
    entity_from_node(net, from, rng)
}

fn entity_from_node(net: &RoadNetwork, from: NodeId, rng: &mut StdRng) -> MovingEntity {
    let mut to = net.random_node(rng);
    if net.node_count() > 1 {
        while to == from {
            to = net.random_node(rng);
        }
    }
    let path = shortest_path(net, from, to).expect("network is connected");
    let polyline: Vec<Point> = path.iter().map(|&n| net.position(n)).collect();
    MovingEntity {
        traveler: Traveler::new(polyline),
        dest: to,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_grid::ObjectEvent;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            n_objects: 200,
            n_queries: 20,
            k: 4,
            object_speed: SpeedClass::Medium,
            query_speed: SpeedClass::Medium,
            f_obj: 0.5,
            f_qry: 0.3,
            seed: 99,
        }
    }

    fn small_workload() -> NetworkWorkload {
        let net = RoadNetwork::grid_city(10, 10, 0.2, 0.2, 6, 1);
        NetworkWorkload::new(net, small_config())
    }

    #[test]
    fn initial_population_matches_config() {
        let w = small_workload();
        assert_eq!(w.initial_objects().count(), 200);
        assert_eq!(w.initial_queries().count(), 20);
        for (_, p) in w.initial_objects() {
            assert!(p.is_finite());
        }
    }

    #[test]
    fn event_stream_replays_cleanly_into_a_grid() {
        let mut w = small_workload();
        let mut grid = cpm_grid::GridBuilder::new(64).build_uniform();
        for (oid, p) in w.initial_objects() {
            grid.insert(oid, p);
        }
        for _ in 0..30 {
            let events = w.tick();
            for ev in &events.object_events {
                match *ev {
                    ObjectEvent::Move { id, to } => {
                        grid.update_position(id, to);
                    }
                    ObjectEvent::Appear { id, pos } => {
                        grid.insert(id, pos);
                    }
                    ObjectEvent::Disappear { id } => {
                        grid.remove(id).expect("live object");
                    }
                }
            }
            assert_eq!(grid.len(), 200, "population is conserved");
        }
    }

    #[test]
    fn agility_controls_update_volume() {
        let mut lazy_cfg = small_config();
        lazy_cfg.f_obj = 0.1;
        lazy_cfg.n_objects = 2000;
        let net = RoadNetwork::grid_city(10, 10, 0.2, 0.2, 6, 1);
        let mut w = NetworkWorkload::new(net, lazy_cfg);
        let mut total = 0usize;
        for _ in 0..20 {
            let ev = w.tick();
            // Disappear+appear pairs count as one mover.
            let movers = ev
                .object_events
                .iter()
                .filter(|e| !matches!(e, ObjectEvent::Appear { .. }))
                .count();
            total += movers;
        }
        let avg = total as f64 / 20.0 / 2000.0;
        assert!((avg - 0.1).abs() < 0.03, "measured agility {avg}");
    }

    #[test]
    fn movement_per_tick_is_bounded_by_speed() {
        let mut w = small_workload();
        let step = SpeedClass::Medium.distance_per_tick();
        let mut prev: Vec<Point> = w.initial_objects().map(|(_, p)| p).collect();
        for _ in 0..10 {
            let ev = w.tick();
            for e in &ev.object_events {
                if let ObjectEvent::Move { id, to } = *e {
                    let d = prev[id.index()].dist(to);
                    // Network paths can bend, so displacement ≤ path step.
                    assert!(d <= step + 1e-9, "object jumped {d}");
                    prev[id.index()] = to;
                } else if let ObjectEvent::Appear { id, pos } = *e {
                    prev[id.index()] = pos;
                }
            }
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = small_workload();
        let mut b = small_workload();
        for _ in 0..5 {
            let (ea, eb) = (a.tick(), b.tick());
            assert_eq!(ea.object_events, eb.object_events);
            assert_eq!(ea.query_events, eb.query_events);
        }
    }

    #[test]
    fn queries_always_report_move_when_selected() {
        let mut cfg = small_config();
        cfg.f_qry = 1.0;
        let net = RoadNetwork::grid_city(10, 10, 0.2, 0.2, 6, 1);
        let mut w = NetworkWorkload::new(net, cfg);
        let ev = w.tick();
        assert_eq!(ev.query_events.len(), 20);
    }
}
