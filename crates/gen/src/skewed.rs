//! A skewed (Gaussian hotspot) workload.
//!
//! The paper notes that highly skewed data is the regime where a regular
//! grid suffers and hierarchical grids pay off (\[YPK05\], Section 2). This
//! generator produces that regime: objects cluster around a handful of
//! hotspots (Gaussian spread), random-walk around them with a pull toward
//! the center, and the hotspots themselves drift slowly. Queries
//! concentrate on the hotspots too, as real monitoring queries do.
//!
//! Used by the `skew` experiment to chart how all three algorithms react
//! to density skew across grid granularities.

use cpm_geom::{clamp_coord, ObjectId, Point, QueryId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::{TickEvents, WorkloadConfig};

/// Configuration of the hotspot model.
#[derive(Debug, Clone, Copy)]
pub struct SkewConfig {
    /// Number of Gaussian hotspots.
    pub hotspots: usize,
    /// Standard deviation of object positions around their hotspot.
    pub sigma: f64,
    /// Per-tick drift speed of the hotspot centers.
    pub hotspot_drift: f64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        Self {
            hotspots: 5,
            sigma: 0.03,
            hotspot_drift: 0.002,
        }
    }
}

/// Sample a standard normal via Box–Muller (rand itself ships no normal
/// distribution and `rand_distr` is outside the approved dependency set).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[derive(Debug, Clone, Copy)]
struct Entity {
    pos: Point,
    hotspot: usize,
}

/// The skewed workload generator.
#[derive(Debug)]
pub struct SkewedWorkload {
    config: WorkloadConfig,
    skew: SkewConfig,
    rng: StdRng,
    centers: Vec<Point>,
    center_headings: Vec<f64>,
    objects: Vec<Entity>,
    queries: Vec<Entity>,
}

impl SkewedWorkload {
    /// Build a skewed workload.
    pub fn new(config: WorkloadConfig, skew: SkewConfig) -> Self {
        assert!(skew.hotspots >= 1, "need at least one hotspot");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let centers: Vec<Point> = (0..skew.hotspots)
            .map(|_| Point::new(rng.gen_range(0.15..0.85), rng.gen_range(0.15..0.85)))
            .collect();
        let center_headings = (0..skew.hotspots)
            .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
            .collect();
        let spawn = |rng: &mut StdRng, centers: &[Point]| {
            let hotspot = rng.gen_range(0..centers.len());
            let c = centers[hotspot];
            Entity {
                pos: Point::new(
                    clamp_coord(c.x + skew.sigma * normal(rng)),
                    clamp_coord(c.y + skew.sigma * normal(rng)),
                ),
                hotspot,
            }
        };
        let objects = (0..config.n_objects)
            .map(|_| spawn(&mut rng, &centers))
            .collect();
        let queries = (0..config.n_queries)
            .map(|_| spawn(&mut rng, &centers))
            .collect();
        Self {
            config,
            skew,
            rng,
            centers,
            center_headings,
            objects,
            queries,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Current hotspot centers (for visualization / tests).
    pub fn centers(&self) -> &[Point] {
        &self.centers
    }

    /// Initial object placements.
    pub fn initial_objects(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, e)| (ObjectId(i as u32), e.pos))
    }

    /// Initial query placements (install with `config.k`).
    pub fn initial_queries(&self) -> impl Iterator<Item = (QueryId, Point, usize)> + '_ {
        self.queries
            .iter()
            .enumerate()
            .map(|(i, e)| (QueryId(i as u32), e.pos, self.config.k))
    }

    fn step_entity(rng: &mut StdRng, e: &mut Entity, centers: &[Point], step: f64) -> Point {
        // Ornstein-Uhlenbeck-flavored walk: a random step plus a mean
        // reversion of a fixed fraction of the offset from the hotspot.
        // With λ = 0.25 the stationary spread stays at roughly
        // step / √(1 − (1−λ)²) ≈ 1.5 · step around the (drifting) center
        // (`sigma` controls the initial placement spread).
        let c = centers[e.hotspot];
        const LAMBDA: f64 = 0.25;
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let nx = e.pos.x + step * angle.cos() + LAMBDA * (c.x - e.pos.x);
        let ny = e.pos.y + step * angle.sin() + LAMBDA * (c.y - e.pos.y);
        e.pos = Point::new(clamp_coord(nx), clamp_coord(ny));
        e.pos
    }

    /// Advance one timestamp.
    pub fn tick(&mut self) -> TickEvents {
        let mut out = TickEvents::default();
        // Hotspots drift (and bounce off a margin).
        for (c, heading) in self.centers.iter_mut().zip(&mut self.center_headings) {
            let nx = c.x + self.skew.hotspot_drift * heading.cos();
            let ny = c.y + self.skew.hotspot_drift * heading.sin();
            if !(0.1..=0.9).contains(&nx) || !(0.1..=0.9).contains(&ny) {
                *heading += std::f64::consts::FRAC_PI_2;
            } else {
                *c = Point::new(nx, ny);
            }
        }
        let step_obj = self.config.object_speed.distance_per_tick();
        let step_qry = self.config.query_speed.distance_per_tick();
        for i in 0..self.objects.len() {
            if !self.rng.gen_bool(self.config.f_obj) {
                continue;
            }
            let to =
                Self::step_entity(&mut self.rng, &mut self.objects[i], &self.centers, step_obj);
            out.object_events.push(cpm_grid::ObjectEvent::Move {
                id: ObjectId(i as u32),
                to,
            });
        }
        for i in 0..self.queries.len() {
            if !self.rng.gen_bool(self.config.f_qry) {
                continue;
            }
            let to =
                Self::step_entity(&mut self.rng, &mut self.queries[i], &self.centers, step_qry);
            out.query_events.push(cpm_grid::QueryEvent::Move {
                id: QueryId(i as u32),
                to,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            n_objects: 2_000,
            n_queries: 20,
            k: 4,
            seed: 11,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn objects_concentrate_around_hotspots() {
        let w = SkewedWorkload::new(config(), SkewConfig::default());
        let centers = w.centers().to_vec();
        let close = w
            .initial_objects()
            .filter(|&(_, p)| {
                centers
                    .iter()
                    .any(|c| c.dist(p) < 4.0 * SkewConfig::default().sigma)
            })
            .count();
        // ~all mass within 4σ of some hotspot.
        assert!(close as f64 > 0.95 * 2_000.0, "only {close} close");
    }

    #[test]
    fn skew_is_much_higher_than_uniform() {
        // Measure max cell occupancy on a 32² histogram; the hotspot model
        // must be far above the uniform expectation.
        let w = SkewedWorkload::new(config(), SkewConfig::default());
        let mut histogram = vec![0usize; 32 * 32];
        for (_, p) in w.initial_objects() {
            let col = (p.x * 32.0) as usize;
            let row = (p.y * 32.0) as usize;
            histogram[row.min(31) * 32 + col.min(31)] += 1;
        }
        let max = *histogram.iter().max().unwrap();
        let uniform_expectation = 2_000.0 / 1024.0;
        assert!(
            max as f64 > 20.0 * uniform_expectation,
            "max occupancy {max} vs uniform {uniform_expectation}"
        );
    }

    #[test]
    fn stream_stays_in_workspace_and_deterministic() {
        let mut a = SkewedWorkload::new(config(), SkewConfig::default());
        let mut b = SkewedWorkload::new(config(), SkewConfig::default());
        for _ in 0..10 {
            let (ta, tb) = (a.tick(), b.tick());
            assert_eq!(ta.object_events, tb.object_events);
            for ev in &ta.object_events {
                if let cpm_grid::ObjectEvent::Move { to, .. } = ev {
                    assert!((0.0..1.0).contains(&to.x) && (0.0..1.0).contains(&to.y));
                }
            }
        }
    }

    #[test]
    fn entities_stay_near_their_hotspot_over_time() {
        let mut w = SkewedWorkload::new(config(), SkewConfig::default());
        for _ in 0..50 {
            w.tick();
        }
        let centers = w.centers().to_vec();
        let close = w
            .objects
            .iter()
            .filter(|e| centers[e.hotspot].dist(e.pos) < 6.0 * SkewConfig::default().sigma)
            .count();
        assert!(
            close as f64 > 0.9 * w.objects.len() as f64,
            "only {close}/{} still clustered",
            w.objects.len()
        );
    }
}
