//! A drifting-hotspot workload whose population breathes: the adversary
//! for online re-gridding.
//!
//! One Gaussian hotspot carries essentially the whole object population,
//! and its center **moves every tick** along a deterministic Lissajous
//! path — so density sweeps through the grid instead of pinning a few hot
//! cells. On top of the drift, the population follows a triangle wave
//! between a base and a peak count (objects appear around the hotspot on
//! the way up and disappear on the way down), which moves the
//! cost-model-optimal cell side `δ` during the run: a grid frozen at the
//! resolution right for the base population is badly mismatched at the
//! peak. Queries track the hotspot, as real monitoring queries would.
//!
//! Used by the `drift` experiment and by `bench_regrid` (fixed-δ vs
//! adaptive), where a realistic stream that *changes its own optimal
//! resolution* is exactly what the re-grid policy needs to prove itself
//! against.

use cpm_geom::{clamp_coord, ObjectId, Point, QueryId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::{TickEvents, WorkloadConfig};

/// Configuration of the drifting-hotspot model.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Standard deviation of object positions around the hotspot center.
    pub sigma: f64,
    /// How far the center advances along its path per tick (workspace
    /// units; the center moves **every** tick).
    pub center_speed: f64,
    /// Peak population as a multiple of `WorkloadConfig::n_objects`
    /// (which is the base population). Must be ≥ 1.
    pub peak_factor: f64,
    /// Ticks for one base → peak ramp; the population then descends over
    /// the next `ramp_ticks` (a triangle wave with period `2·ramp_ticks`).
    pub ramp_ticks: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            sigma: 0.04,
            center_speed: 0.01,
            peak_factor: 10.0,
            ramp_ticks: 30,
        }
    }
}

/// Sample a standard normal via Box–Muller (rand itself ships no normal
/// distribution and `rand_distr` is outside the approved dependency set).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The drifting-hotspot workload generator.
#[derive(Debug)]
pub struct DriftingHotspotWorkload {
    config: WorkloadConfig,
    drift: DriftConfig,
    rng: StdRng,
    /// Path parameter of the Lissajous center curve.
    path_t: f64,
    center: Point,
    tick: usize,
    /// Position per object id; `None` = off-line.
    positions: Vec<Option<Point>>,
    /// Ids currently live (order arbitrary; swap-removed on disappear).
    live: Vec<u32>,
    /// Recyclable off-line ids.
    free: Vec<u32>,
    queries: Vec<Point>,
}

impl DriftingHotspotWorkload {
    /// Build a drifting-hotspot workload. `config.n_objects` is the
    /// *base* population; the stream breathes up to
    /// `⌈n_objects · peak_factor⌉`.
    pub fn new(config: WorkloadConfig, drift: DriftConfig) -> Self {
        assert!(drift.peak_factor >= 1.0, "peak_factor must be >= 1");
        assert!(drift.ramp_ticks >= 1, "ramp_ticks must be >= 1");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let path_t = rng.gen_range(0.0..std::f64::consts::TAU);
        let center = Self::center_at(path_t);
        let mut w = Self {
            config,
            drift,
            rng,
            path_t,
            center,
            tick: 0,
            positions: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            queries: Vec::new(),
        };
        for _ in 0..w.config.n_objects {
            let p = w.sample_near_center();
            let id = w.positions.len() as u32;
            w.positions.push(Some(p));
            w.live.push(id);
        }
        let mut queries = Vec::with_capacity(w.config.n_queries);
        for _ in 0..w.config.n_queries {
            let p = w.sample_near_center();
            queries.push(p);
        }
        w.queries = queries;
        w
    }

    /// The center of the hotspot at path parameter `t`: a Lissajous curve
    /// filling the central 70% of the workspace (incommensurate
    /// frequencies, so the path never settles into a short loop).
    fn center_at(t: f64) -> Point {
        Point::new(
            0.5 + 0.34 * (2.0 * t).sin(),
            0.5 + 0.34 * (3.1 * t + 1.0).sin(),
        )
    }

    fn sample_near_center(&mut self) -> Point {
        Point::new(
            clamp_coord(self.center.x + self.drift.sigma * normal(&mut self.rng)),
            clamp_coord(self.center.y + self.drift.sigma * normal(&mut self.rng)),
        )
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Current hotspot center.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Current live population.
    pub fn population(&self) -> usize {
        self.live.len()
    }

    /// The population target for tick `t`: a triangle wave from the base
    /// to the peak over `ramp_ticks`, back down over the next
    /// `ramp_ticks`.
    pub fn target_population(&self, t: usize) -> usize {
        let base = self.config.n_objects as f64;
        let peak = (base * self.drift.peak_factor).ceil();
        let period = 2 * self.drift.ramp_ticks;
        let phase = t % period;
        let frac = if phase <= self.drift.ramp_ticks {
            phase as f64 / self.drift.ramp_ticks as f64
        } else {
            (period - phase) as f64 / self.drift.ramp_ticks as f64
        };
        (base + (peak - base) * frac).round() as usize
    }

    /// Initial object placements.
    pub fn initial_objects(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (ObjectId(i as u32), p)))
    }

    /// Initial query placements (install with `config.k`).
    pub fn initial_queries(&self) -> impl Iterator<Item = (QueryId, Point, usize)> + '_ {
        self.queries
            .iter()
            .enumerate()
            .map(|(i, &p)| (QueryId(i as u32), p, self.config.k))
    }

    /// Advance one timestamp: move the center, breathe the population
    /// toward its triangle-wave target, random-walk the survivors around
    /// the (moved) center, and drag a `f_qry` fraction of the queries
    /// after the hotspot. At most one event per object id per tick.
    pub fn tick(&mut self) -> TickEvents {
        let mut out = TickEvents::default();
        self.tick += 1;
        self.path_t += self.drift.center_speed;
        self.center = Self::center_at(self.path_t);

        let mut touched: std::collections::HashSet<u32> = std::collections::HashSet::new();

        // Population breathing first, so a disappearing object is never
        // also moved and an appearing one starts at the new center.
        let target = self.target_population(self.tick);
        while self.live.len() > target {
            let at = self.rng.gen_range(0..self.live.len());
            let id = self.live.swap_remove(at);
            self.positions[id as usize] = None;
            self.free.push(id);
            touched.insert(id);
            out.object_events
                .push(cpm_grid::ObjectEvent::Disappear { id: ObjectId(id) });
        }
        while self.live.len() < target {
            let p = self.sample_near_center();
            let id = self.free.pop().unwrap_or_else(|| {
                self.positions.push(None);
                (self.positions.len() - 1) as u32
            });
            self.positions[id as usize] = Some(p);
            self.live.push(id);
            touched.insert(id);
            out.object_events.push(cpm_grid::ObjectEvent::Appear {
                id: ObjectId(id),
                pos: p,
            });
        }

        // Survivors random-walk with mean reversion toward the moving
        // center, so the cloud follows the hotspot.
        const LAMBDA: f64 = 0.2;
        let step = self.config.object_speed.distance_per_tick();
        for i in 0..self.live.len() {
            let id = self.live[i];
            if touched.contains(&id) || !self.rng.gen_bool(self.config.f_obj) {
                continue;
            }
            let p = self.positions[id as usize].expect("live object");
            let angle = self.rng.gen_range(0.0..std::f64::consts::TAU);
            let to = Point::new(
                clamp_coord(p.x + step * angle.cos() + LAMBDA * (self.center.x - p.x)),
                clamp_coord(p.y + step * angle.sin() + LAMBDA * (self.center.y - p.y)),
            );
            self.positions[id as usize] = Some(to);
            out.object_events.push(cpm_grid::ObjectEvent::Move {
                id: ObjectId(id),
                to,
            });
        }

        // Queries chase the hotspot.
        for i in 0..self.queries.len() {
            if !self.rng.gen_bool(self.config.f_qry) {
                continue;
            }
            let to = self.sample_near_center();
            self.queries[i] = to;
            out.query_events.push(cpm_grid::QueryEvent::Move {
                id: QueryId(i as u32),
                to,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            n_objects: 500,
            n_queries: 16,
            k: 4,
            seed: 42,
            ..WorkloadConfig::default()
        }
    }

    fn drift() -> DriftConfig {
        DriftConfig {
            ramp_ticks: 10,
            peak_factor: 4.0,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn center_moves_every_tick() {
        let mut w = DriftingHotspotWorkload::new(config(), drift());
        let mut prev = w.center();
        for _ in 0..20 {
            w.tick();
            let c = w.center();
            assert!(c.dist(prev) > 1e-4, "center stalled at {c:?}");
            assert!((0.0..1.0).contains(&c.x) && (0.0..1.0).contains(&c.y));
            prev = c;
        }
    }

    #[test]
    fn population_follows_the_triangle_wave() {
        let mut w = DriftingHotspotWorkload::new(config(), drift());
        assert_eq!(w.population(), 500);
        for _ in 0..10 {
            w.tick();
        }
        assert_eq!(w.population(), w.target_population(10));
        assert_eq!(w.population(), 2000, "peak at ramp end");
        for _ in 0..10 {
            w.tick();
        }
        assert_eq!(w.population(), 500, "back at base after the descent");
    }

    #[test]
    fn stream_is_deterministic_and_grid_valid() {
        let mut a = DriftingHotspotWorkload::new(config(), drift());
        let mut b = DriftingHotspotWorkload::new(config(), drift());
        // Replaying into a real grid panics on any life-cycle violation
        // (double appear, move/disappear of an off-line id).
        let mut grid = cpm_grid::GridBuilder::new(64).build_uniform();
        for (oid, p) in a.initial_objects() {
            grid.insert(oid, p);
        }
        let mut records = Vec::new();
        for _ in 0..25 {
            let (ta, tb) = (a.tick(), b.tick());
            assert_eq!(ta.object_events, tb.object_events);
            assert_eq!(ta.query_events, tb.query_events);
            // At most one event per object id per tick.
            let mut ids: Vec<u32> = ta.object_events.iter().map(|e| e.id().0).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate object id in one tick");
            records.clear();
            cpm_grid::apply_events(&mut grid, &ta.object_events, &mut records);
            grid.check_integrity();
            assert_eq!(grid.len(), a.population());
        }
    }

    #[test]
    fn objects_and_queries_track_the_hotspot() {
        let mut w = DriftingHotspotWorkload::new(config(), drift());
        for _ in 0..40 {
            w.tick();
        }
        let c = w.center();
        let sigma = drift().sigma;
        let close = w
            .initial_objects()
            .filter(|&(_, p)| c.dist(p) < 8.0 * sigma)
            .count();
        assert!(
            close as f64 > 0.8 * w.population() as f64,
            "only {close}/{} near the center",
            w.population()
        );
        let queries_close = w.queries.iter().filter(|q| c.dist(**q) < 0.4).count();
        assert!(queries_close * 2 > w.queries.len());
    }
}
