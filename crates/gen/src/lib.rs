//! Network-based moving-object workload generator for continuous spatial
//! query benchmarks — the Brinkhoff \[B02\] substitute of this suite (see
//! DESIGN.md §3 for the substitution rationale).
//!
//! * [`network`] — synthetic road networks (perturbed street grid and
//!   random geometric graph), connectivity-repaired.
//! * [`path`] — Dijkstra shortest paths and the [`Traveler`] polyline
//!   walker.
//! * [`workload`] — the object/query life cycle of Section 6: appear →
//!   shortest path → disappear for objects; persistent re-targeting
//!   queries; agility (`f_obj`, `f_qry`) and speed classes per Table 6.1.
//! * [`uniform`] — the uniform random-displacement model assumed by the
//!   Section 4.1 analysis.
//! * [`skewed`] — Gaussian-hotspot data with drifting centers, the skewed
//!   regime the paper points at hierarchical grids for.
//! * [`faults`] — seeded crash/corruption schedules ([`FaultPlan`]) for
//!   the recovery chaos harness (`cpm_sim::verify_recovery`).
//! * [`drift`] — a single hotspot whose center moves **every** tick while
//!   the population breathes between a base and a peak count: the stream
//!   whose cost-model-optimal grid resolution changes mid-run, built as
//!   the adversary for online re-gridding.
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod drift;
pub mod faults;
pub mod network;
pub mod path;
pub mod skewed;
pub mod speed;
pub mod uniform;
pub mod workload;

pub use drift::{DriftConfig, DriftingHotspotWorkload};
pub use faults::{Corruption, FaultPlan};
pub use network::{NodeId, RoadNetwork};
pub use path::{path_length, shortest_path, Traveler};
pub use skewed::{SkewConfig, SkewedWorkload};
pub use speed::SpeedClass;
pub use uniform::UniformWorkload;
pub use workload::{NetworkWorkload, TickEvents, WorkloadConfig};
