//! Deterministic fault plans for the crash-recovery chaos harness.
//!
//! A [`FaultPlan`] is the seeded "adversary schedule" of one recovery
//! trial: *when* the server crashes (which processing cycle loses its
//! in-memory state) and *how* the on-disk artifacts it left behind are
//! damaged. The harness (`cpm_sim::verify_recovery`) derives the plan
//! from a seed, applies the corruption to the snapshot/journal bytes,
//! recovers, and asserts the recovered server is bit-identical to one
//! that never crashed — so every plan is reproducible from its seed
//! alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the crash damaged the durable artifacts (beyond simply losing the
/// in-memory state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corruption {
    /// Clean crash: snapshot and journal both intact.
    None,
    /// A torn final write: the journal loses its last few bytes
    /// mid-frame. Recovery must stop replay at the tear, not reject the
    /// whole journal.
    TruncateTail,
    /// The upstream redelivered a frame the journal already holds
    /// (at-least-once delivery); replay must deduplicate it.
    DuplicateFrame,
    /// Two whole journal frames arrive swapped (e.g. concurrent append
    /// paths racing to stable storage); replay must re-sort by sequence
    /// number.
    ReorderFrames,
    /// A flipped bit inside one journal frame; its checksum must catch it
    /// and replay must stop there, treating the rest as a torn tail.
    BitFlipJournal,
    /// A flipped bit inside the snapshot frame; decoding must fail with a
    /// typed error (never panic), after which the harness recovers from
    /// the intact copy.
    BitFlipSnapshot,
}

/// One seeded crash trial: crash point plus artifact damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The cycle index (0-based, `< cycles`) whose completion is
    /// immediately followed by the crash.
    pub crash_cycle: u32,
    /// The damage applied to the artifacts the crash left behind.
    pub corruption: Corruption,
    /// Seed driving any corruption-site choices (which byte to flip,
    /// which frames to duplicate/swap) — derived from the plan seed so
    /// the whole trial replays from one number.
    pub site_seed: u64,
}

impl FaultPlan {
    /// Derive the plan for `seed` over a run of `cycles` processing
    /// cycles (`cycles ≥ 1`). Deterministic: same seed, same plan.
    ///
    /// # Panics
    /// Panics if `cycles == 0`.
    #[must_use]
    pub fn from_seed(seed: u64, cycles: u32) -> Self {
        assert!(cycles >= 1, "a crash trial needs at least one cycle");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA01_7917);
        let crash_cycle = rng.gen_range(0..cycles);
        let corruption = match rng.gen_range(0..6u32) {
            0 => Corruption::None,
            1 => Corruption::TruncateTail,
            2 => Corruption::DuplicateFrame,
            3 => Corruption::ReorderFrames,
            4 => Corruption::BitFlipJournal,
            _ => Corruption::BitFlipSnapshot,
        };
        FaultPlan {
            crash_cycle,
            corruption,
            site_seed: rng.gen(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let a = FaultPlan::from_seed(seed, 12);
            let b = FaultPlan::from_seed(seed, 12);
            assert_eq!(a, b);
            assert!(a.crash_cycle < 12);
        }
    }

    #[test]
    fn seeds_cover_every_corruption_class() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..128u64 {
            seen.insert(FaultPlan::from_seed(seed, 8).corruption);
        }
        assert_eq!(seen.len(), 6, "corruption classes seen: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycle_trials_are_rejected() {
        let _ = FaultPlan::from_seed(1, 0);
    }
}
