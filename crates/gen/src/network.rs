//! Synthetic road networks.
//!
//! The paper's experiments use the Brinkhoff generator \[B02\] on the road
//! map of Oldenburg. That map is not redistributable here, so this module
//! synthesizes networks with the same relevant statistics (see DESIGN.md
//! §3): bounded-degree planar-ish graphs over the unit square on which
//! objects follow shortest paths, producing locally correlated, skewed
//! update streams.
//!
//! Two builders are provided:
//!
//! * [`RoadNetwork::grid_city`] — a perturbed Manhattan grid with randomly
//!   removed street segments and a sprinkling of diagonal avenues (dense
//!   urban core statistics);
//! * [`RoadNetwork::random_geometric`] — a random geometric graph
//!   (irregular suburban/rural statistics).
//!
//! Both guarantee a single connected component (repaired via union-find),
//! so every shortest-path query succeeds.

use cpm_geom::{clamp_coord, Point};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Node identifier within a road network.
pub type NodeId = u32;

/// An undirected road network over the unit square.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    /// Adjacency: for each node, `(neighbor, edge length)`.
    adj: Vec<Vec<(NodeId, f64)>>,
    edge_count: usize,
}

/// Disjoint-set forest used for connectivity repair.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra as usize] = rb;
        true
    }
}

impl RoadNetwork {
    fn from_parts(nodes: Vec<Point>, edges: &[(NodeId, NodeId)]) -> Self {
        let mut adj = vec![Vec::new(); nodes.len()];
        let mut edge_count = 0;
        for &(a, b) in edges {
            if a == b {
                continue;
            }
            let w = nodes[a as usize].dist(nodes[b as usize]);
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
            edge_count += 1;
        }
        Self {
            nodes,
            adj,
            edge_count,
        }
    }

    /// A perturbed `cols × rows` street grid: intersections jittered by
    /// `jitter` (as a fraction of the street spacing), each street segment
    /// removed with probability `removal`, plus `diagonals` random diagonal
    /// shortcut edges. Connectivity is repaired afterwards.
    ///
    /// # Panics
    /// Panics if `cols` or `rows` is zero or `removal ∉ [0, 1)`.
    pub fn grid_city(
        cols: u32,
        rows: u32,
        jitter: f64,
        removal: f64,
        diagonals: usize,
        seed: u64,
    ) -> Self {
        assert!(cols > 0 && rows > 0, "degenerate grid");
        assert!((0.0..1.0).contains(&removal), "removal out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let (sx, sy) = (1.0 / cols as f64, 1.0 / rows as f64);

        let node_at = |c: u32, r: u32| (r * (cols + 1) + c) as NodeId;
        let mut nodes = Vec::with_capacity(((cols + 1) * (rows + 1)) as usize);
        for r in 0..=rows {
            for c in 0..=cols {
                let jx = rng.gen_range(-jitter..=jitter) * sx;
                let jy = rng.gen_range(-jitter..=jitter) * sy;
                nodes.push(Point::new(
                    clamp_coord(c as f64 * sx + jx),
                    clamp_coord(r as f64 * sy + jy),
                ));
            }
        }

        let mut kept = Vec::new();
        let mut removed = Vec::new();
        for r in 0..=rows {
            for c in 0..=cols {
                if c < cols {
                    let e = (node_at(c, r), node_at(c + 1, r));
                    if rng.gen_bool(removal) {
                        removed.push(e);
                    } else {
                        kept.push(e);
                    }
                }
                if r < rows {
                    let e = (node_at(c, r), node_at(c, r + 1));
                    if rng.gen_bool(removal) {
                        removed.push(e);
                    } else {
                        kept.push(e);
                    }
                }
            }
        }
        // Diagonal avenues between random nearby intersections.
        for _ in 0..diagonals {
            let c = rng.gen_range(0..cols);
            let r = rng.gen_range(0..rows);
            kept.push((node_at(c, r), node_at(c + 1, r + 1)));
        }

        // Reconnect: re-add removed street segments that bridge components.
        let mut uf = UnionFind::new(nodes.len());
        for &(a, b) in &kept {
            uf.union(a, b);
        }
        removed.shuffle(&mut rng);
        for &(a, b) in &removed {
            if uf.union(a, b) {
                kept.push((a, b));
            }
        }

        Self::from_parts(nodes, &kept)
    }

    /// A random geometric graph: `n` uniform nodes, an edge between every
    /// pair within `radius`. Components are stitched together afterwards by
    /// connecting each stray component to its nearest main-component node.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Self {
        assert!(n > 0, "empty network");
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes: Vec<Point> = (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect();
        let r_sq = radius * radius;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if nodes[i].dist_sq(nodes[j]) <= r_sq {
                    edges.push((i as NodeId, j as NodeId));
                }
            }
        }
        // Connectivity repair: link every secondary component to the
        // closest node outside it.
        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        loop {
            let root0 = uf.find(0);
            let Some(stray) = (0..n as u32).find(|&i| uf.find(i) != root0) else {
                break;
            };
            let stray_root = uf.find(stray);
            // Closest pair (u in stray component, v outside it).
            let mut best: Option<(f64, u32, u32)> = None;
            for u in 0..n as u32 {
                if uf.find(u) != stray_root {
                    continue;
                }
                for v in 0..n as u32 {
                    if uf.find(v) == stray_root {
                        continue;
                    }
                    let d = nodes[u as usize].dist_sq(nodes[v as usize]);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, u, v));
                    }
                }
            }
            let (_, u, v) = best.expect("two components imply a bridging pair");
            edges.push((u, v));
            uf.union(u, v);
        }
        Self::from_parts(nodes, &edges)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Position of node `id`.
    #[inline]
    pub fn position(&self, id: NodeId) -> Point {
        self.nodes[id as usize]
    }

    /// Neighbors of node `id` with edge lengths.
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, f64)] {
        &self.adj[id as usize]
    }

    /// A uniformly random node id.
    pub fn random_node<R: Rng>(&self, rng: &mut R) -> NodeId {
        rng.gen_range(0..self.nodes.len() as u32)
    }

    /// `true` if a single connected component spans all nodes.
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_city_is_connected_even_with_heavy_removal() {
        for seed in 0..5 {
            let net = RoadNetwork::grid_city(12, 9, 0.2, 0.35, 10, seed);
            assert_eq!(net.node_count(), 13 * 10);
            assert!(net.is_connected(), "seed {seed}");
            assert!(net.edge_count() >= net.node_count() - 1);
        }
    }

    #[test]
    fn random_geometric_is_connected() {
        for seed in 0..5 {
            let net = RoadNetwork::random_geometric(150, 0.08, seed);
            assert!(net.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn all_nodes_inside_workspace() {
        let net = RoadNetwork::grid_city(8, 8, 0.45, 0.2, 5, 7);
        for i in 0..net.node_count() as u32 {
            let p = net.position(i);
            assert!((0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y));
        }
    }

    #[test]
    fn edges_are_symmetric_with_euclidean_weights() {
        let net = RoadNetwork::grid_city(6, 6, 0.1, 0.1, 3, 3);
        for u in 0..net.node_count() as u32 {
            for &(v, w) in net.neighbors(u) {
                let expect = net.position(u).dist(net.position(v));
                assert!((w - expect).abs() < 1e-12);
                assert!(
                    net.neighbors(v)
                        .iter()
                        .any(|&(b, bw)| b == u && (bw - w).abs() < 1e-12),
                    "missing reverse edge {u}->{v}"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = RoadNetwork::grid_city(10, 10, 0.3, 0.25, 8, 42);
        let b = RoadNetwork::grid_city(10, 10, 0.3, 0.25, 8, 42);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for i in 0..a.node_count() as u32 {
            assert_eq!(a.position(i), b.position(i));
        }
    }
}
