//! A uniform random-displacement workload.
//!
//! The performance analysis of Section 4.1 assumes objects uniformly
//! distributed in the unit square issuing "random displacement vectors".
//! This generator realizes exactly that model, so measured values of
//! `C_inf`, `O_inf` and `C_SH` can be compared against the closed-form
//! predictions of `cpm_core::analysis` (the `analysis` experiment). It
//! is also a useful stress generator: unlike network motion, uniform jumps
//! decorrelate consecutive positions.

use cpm_geom::{clamp_coord, ObjectId, Point, QueryId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::{TickEvents, WorkloadConfig};

/// Uniform-displacement workload generator (objects and queries jump by a
/// fixed-length vector in a random direction each time they move).
#[derive(Debug)]
pub struct UniformWorkload {
    config: WorkloadConfig,
    rng: StdRng,
    objects: Vec<Point>,
    queries: Vec<Point>,
}

impl UniformWorkload {
    /// Build a workload with uniformly placed objects and queries.
    pub fn new(config: WorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let objects = (0..config.n_objects)
            .map(|_| Point::new(rng.gen(), rng.gen()))
            .collect();
        let queries = (0..config.n_queries)
            .map(|_| Point::new(rng.gen(), rng.gen()))
            .collect();
        Self {
            config,
            rng,
            objects,
            queries,
        }
    }

    /// The configuration this workload was built with.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Initial object placements.
    pub fn initial_objects(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, &p)| (ObjectId(i as u32), p))
    }

    /// Initial query placements (install with `config.k`).
    pub fn initial_queries(&self) -> impl Iterator<Item = (QueryId, Point, usize)> + '_ {
        self.queries
            .iter()
            .enumerate()
            .map(|(i, &p)| (QueryId(i as u32), p, self.config.k))
    }

    fn displaced(rng: &mut StdRng, from: Point, step: f64) -> Point {
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        Point::new(
            clamp_coord(from.x + step * angle.cos()),
            clamp_coord(from.y + step * angle.sin()),
        )
    }

    /// Advance one timestamp: every object jumps with probability `f_obj`,
    /// every query with probability `f_qry`.
    pub fn tick(&mut self) -> TickEvents {
        let mut out = TickEvents::default();
        let step_obj = self.config.object_speed.distance_per_tick();
        let step_qry = self.config.query_speed.distance_per_tick();
        for i in 0..self.objects.len() {
            if !self.rng.gen_bool(self.config.f_obj) {
                continue;
            }
            let to = Self::displaced(&mut self.rng, self.objects[i], step_obj);
            self.objects[i] = to;
            out.object_events.push(cpm_grid::ObjectEvent::Move {
                id: ObjectId(i as u32),
                to,
            });
        }
        for i in 0..self.queries.len() {
            if !self.rng.gen_bool(self.config.f_qry) {
                continue;
            }
            let to = Self::displaced(&mut self.rng, self.queries[i], step_qry);
            self.queries[i] = to;
            out.query_events.push(cpm_grid::QueryEvent::Move {
                id: QueryId(i as u32),
                to,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::SpeedClass;
    use cpm_grid::ObjectEvent;

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            n_objects: 500,
            n_queries: 10,
            k: 4,
            f_obj: 0.4,
            f_qry: 0.5,
            object_speed: SpeedClass::Slow,
            query_speed: SpeedClass::Slow,
            seed: 3,
        }
    }

    #[test]
    fn displacement_length_is_the_speed_step() {
        let mut w = UniformWorkload::new(config());
        let before: Vec<Point> = w.objects.clone();
        let ev = w.tick();
        let step = SpeedClass::Slow.distance_per_tick();
        for e in &ev.object_events {
            if let ObjectEvent::Move { id, to } = *e {
                let d = before[id.index()].dist(to);
                // Clamping at the border can shorten the jump.
                assert!(d <= step + 1e-9);
            }
        }
    }

    #[test]
    fn agility_fraction_is_respected() {
        let mut w = UniformWorkload::new(config());
        let mut movers = 0usize;
        for _ in 0..50 {
            movers += w.tick().object_events.len();
        }
        let avg = movers as f64 / 50.0 / 500.0;
        assert!((avg - 0.4).abs() < 0.05, "measured agility {avg}");
    }

    #[test]
    fn deterministic_streams() {
        let mut a = UniformWorkload::new(config());
        let mut b = UniformWorkload::new(config());
        for _ in 0..5 {
            assert_eq!(a.tick().object_events, b.tick().object_events);
        }
    }
}
