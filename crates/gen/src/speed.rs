//! Speed classes of the Brinkhoff generator, as used in Section 6.
//!
//! "Objects with slow speed cover a distance that equals 1/250 of the sum
//! of the workspace extents per timestamp. Medium and fast speeds
//! correspond to distances that are 5 and 25 times larger, respectively."
//! The workspace is the unit square, so the extent sum is 2.0.

/// Sum of the workspace extents (unit square: 1 + 1).
const EXTENT_SUM: f64 = 2.0;

/// A speed class for moving objects or queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpeedClass {
    /// 1/250 of the workspace extent sum per timestamp (0.008).
    Slow,
    /// 5× slow (0.04) — the Table 6.1 default.
    #[default]
    Medium,
    /// 25× slow (0.2).
    Fast,
}

impl SpeedClass {
    /// Distance covered per timestamp by a mover of this class.
    #[inline]
    pub fn distance_per_tick(self) -> f64 {
        match self {
            SpeedClass::Slow => EXTENT_SUM / 250.0,
            SpeedClass::Medium => 5.0 * EXTENT_SUM / 250.0,
            SpeedClass::Fast => 25.0 * EXTENT_SUM / 250.0,
        }
    }

    /// All classes in increasing speed order (experiment sweeps).
    pub const ALL: [SpeedClass; 3] = [SpeedClass::Slow, SpeedClass::Medium, SpeedClass::Fast];

    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            SpeedClass::Slow => "slow",
            SpeedClass::Medium => "medium",
            SpeedClass::Fast => "fast",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios() {
        let slow = SpeedClass::Slow.distance_per_tick();
        assert!((slow - 0.008).abs() < 1e-12);
        assert!((SpeedClass::Medium.distance_per_tick() - 5.0 * slow).abs() < 1e-12);
        assert!((SpeedClass::Fast.distance_per_tick() - 25.0 * slow).abs() < 1e-12);
    }
}
