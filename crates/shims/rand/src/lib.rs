//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the subset of the `rand` 0.8 API the suite actually uses is provided
//! here: [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`Rng`]/[`SeedableRng`] traits with `gen`, `gen_range` and `gen_bool`,
//! and [`seq::SliceRandom::shuffle`]. Everything is deterministic given
//! the seed, which is all the workload generators and tests require; no
//! claim of statistical quality beyond "good enough for simulation" is
//! made, and nothing here is cryptographically secure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform range sampler (`rand`'s `SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, inclusive: bool, rng: &mut R) -> f64 {
        assert!(
            if inclusive { lo <= hi } else { lo < hi },
            "cannot sample empty range"
        );
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(lo: f32, hi: f32, inclusive: bool, rng: &mut R) -> f32 {
        assert!(
            if inclusive { lo <= hi } else { lo < hi },
            "cannot sample empty range"
        );
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing sampling interface (a subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p ∉ [0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with SplitMix64
    /// seed expansion. (The real `rand::rngs::StdRng` is a ChaCha stream;
    /// this suite only needs determinism and speed, not crypto.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice extensions (only `shuffle` is provided).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-0.25..=0.25f64);
            assert!((-0.25..=0.25).contains(&w));
            let n = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&n));
        }
        // All values of a small range are reachable.
        let seen: std::collections::HashSet<u32> =
            (0..1000).map(|_| rng.gen_range(0..4u32)).collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
