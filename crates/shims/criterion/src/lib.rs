//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access; this crate supplies the
//! subset of the criterion 0.5 API the bench targets use (groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `criterion_group!` / `criterion_main!`) with a simple wall-clock
//! measurement loop: a short warm-up, then `sample_size` timed samples,
//! reporting mean / min / max nanoseconds per iteration to stdout. There
//! is no statistical analysis, outlier rejection, or HTML report — for
//! rigorous numbers this suite records JSON via its own bench binaries
//! (see `cpm-bench`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// How `iter_batched` amortizes setup cost (ignored by this shim; each
/// iteration runs its own setup, excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-iteration timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Accumulated measured time across timed iterations.
    elapsed: Duration,
    /// Number of timed iterations.
    iters: u64,
    /// Iterations to run when invoked (set by the harness).
    target_iters: u64,
}

impl Bencher {
    /// Time `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_iters {
            let start = Instant::now();
            let out = routine();
            self.elapsed += start.elapsed();
            black_box(out);
            self.iters += 1;
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.elapsed += start.elapsed();
            black_box(out);
            self.iters += 1;
        }
    }
}

/// Shared measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

fn run_benchmark(id: &str, settings: Settings, mut target: impl FnMut(&mut Bencher)) {
    // Warm-up: single iterations until the warm-up budget is spent.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < settings.warm_up_time && warm_iters < 1_000 {
        let mut b = Bencher {
            target_iters: 1,
            ..Bencher::default()
        };
        target(&mut b);
        if b.iters == 0 {
            // The closure never called iter(); nothing to measure.
            println!("bench {id:<50} (no measurement)");
            return;
        }
        warm_iters += b.iters;
    }
    // Budget on *wall clock* per iteration (including `iter_batched` setup
    // cost, which the measured time deliberately excludes) so the whole
    // benchmark fits the measurement_time budget.
    let per_iter_wall = warm_start
        .elapsed()
        .checked_div(warm_iters.max(1) as u32)
        .unwrap_or(Duration::ZERO)
        .max(Duration::from_nanos(1));
    let budget_iters =
        (settings.measurement_time.as_nanos() / per_iter_wall.as_nanos().max(1)).max(1) as u64;
    let iters_per_sample = (budget_iters / settings.sample_size as u64).max(1);

    let mut samples_ns = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            target_iters: iters_per_sample,
            ..Bencher::default()
        };
        target(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64);
    }
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples_ns.iter().copied().fold(0.0f64, f64::max);
    println!(
        "bench {id:<50} mean {:>12.1} ns/iter  (min {:.1}, max {:.1}, {} samples x {} iters)",
        mean,
        min,
        max,
        samples_ns.len(),
        iters_per_sample
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    settings: Settings,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.settings.warm_up_time = t;
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Run a benchmark with no parameter.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.settings, |b| f(b));
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.settings, |b| f(b, input));
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Start a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            name: name.into(),
            settings,
            _criterion: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: R,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.settings, |b| f(b));
        self
    }
}

/// Bundle benchmark functions into a runnable group (API-compatible with
/// criterion's macro; configuration arguments are not supported).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test --benches` cargo passes `--test`; a smoke
            // run is the right behavior for this shim either way.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher {
            target_iters: 4,
            ..Bencher::default()
        };
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::LargeInput,
        );
        assert_eq!(setups, 4);
        assert_eq!(b.iters, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
