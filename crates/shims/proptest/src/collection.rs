//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec` of values from `element`, with a length drawn uniformly from
/// `size` (half-open, like real proptest's `Range` size bound).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn length_and_elements_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = vec(0u32..10, 2..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn nested_vecs_work() {
        let mut rng = TestRng::seed_from_u64(4);
        let strat = vec(vec((0.0..1.0f64, 0u32..3), 0..4), 1..5);
        let v = strat.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 5);
        for inner in v {
            assert!(inner.len() < 4);
        }
    }
}
