//! The sampling test runner.

use std::fmt;

use rand::SeedableRng;

use crate::strategy::{Strategy, TestRng};

/// Runner configuration (`ProptestConfig` in real proptest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// RNG seed; every run of a given binary samples the same cases.
    pub seed: u64,
}

impl Default for ProptestConfig {
    /// 256 cases, overridable through the `PROPTEST_CASES` environment
    /// variable (matching real proptest) — CI jobs pin it so
    /// property-test wall time stays bounded.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(256);
        Self {
            cases,
            seed: 0x5EED_CA5E,
        }
    }
}

/// A failed test case (returned by the `prop_assert*` macros).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A failed property (a [`TestCaseError`] plus which case tripped it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestError {
    /// Index of the failing case (0-based).
    pub case: u32,
    /// The case failure.
    pub error: TestCaseError,
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "property failed at case {}/{}: {}",
            self.case, self.case, self.error
        )
    }
}

impl std::error::Error for TestError {}

/// Samples a strategy `config.cases` times against a test closure.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl Default for TestRunner {
    fn default() -> Self {
        Self::new(ProptestConfig::default())
    }
}

impl TestRunner {
    /// Build a runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        Self {
            config,
            rng: TestRng::seed_from_u64(config.seed),
        }
    }

    /// Run `test` against `config.cases` generated inputs. Stops at the
    /// first failure (no shrinking).
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let value = strategy.generate(&mut self.rng);
            if let Err(error) = test(value) {
                return Err(TestError { case, error });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_reports_first_failure() {
        let mut runner = TestRunner::new(ProptestConfig {
            cases: 100,
            ..ProptestConfig::default()
        });
        let mut seen = 0u32;
        let result = runner.run(&(0u32..1000), |_| {
            seen += 1;
            if seen == 5 {
                Err(TestCaseError::fail("boom"))
            } else {
                Ok(())
            }
        });
        let err = result.unwrap_err();
        assert_eq!(err.case, 4);
        assert_eq!(seen, 5);
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn run_passes_all_cases() {
        let mut runner = TestRunner::default();
        let mut count = 0u32;
        runner
            .run(&(0.0..1.0f64), |v| {
                count += 1;
                assert!((0.0..1.0).contains(&v));
                Ok(())
            })
            .unwrap();
        assert_eq!(count, ProptestConfig::default().cases);
    }
}
