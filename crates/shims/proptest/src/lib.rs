//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! subset of the proptest 1.x API the suite's property tests use: the
//! [`Strategy`] trait with `prop_map`, range/tuple/`Just`/`any`/`vec`
//! strategies, the `proptest!`/`prop_oneof!`/`prop_assert*` macros, and a
//! [`test_runner::TestRunner`] that samples a fixed number of random cases.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs but is not
//!   minimized;
//! * **deterministic seeding** — every run samples the same cases, so CI
//!   failures always reproduce locally;
//! * panics inside a test body propagate directly instead of being caught
//!   and re-run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRunner};

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a property test; on failure the test case
/// fails (without panicking) and reports the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two expressions are equal (by `==`) inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert two expressions are unequal (by `!=`) inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Choose between several strategies producing the same value type,
/// optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let result = runner.run(
                &($($strat,)+),
                |($($arg,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
            if let ::core::result::Result::Err(e) = result {
                panic!("{}", e);
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}
