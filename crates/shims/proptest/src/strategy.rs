//! The [`Strategy`] trait and the built-in strategies.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG handed to strategies (concrete, so the trait stays
/// object-safe and strategies can be boxed for [`Union`]).
pub type TestRng = StdRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strat: self, f }
    }

    /// Type-erase the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strat.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Any value of `T` (full integer range; `[0, 1)` for floats).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Weighted choice between boxed strategies (built by
/// [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs.
    ///
    /// # Panics
    /// Panics if `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = options.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Self {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, strat) in &self.options {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total_weight")
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(1)
    }

    #[test]
    fn ranges_and_just_and_map() {
        let mut r = rng();
        for _ in 0..100 {
            let v = (3u32..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let f = (0.25..0.5f64).generate(&mut r);
            assert!((0.25..0.5).contains(&f));
            assert_eq!(Just(7u8).generate(&mut r), 7);
            let doubled = (1u32..5).prop_map(|x| x * 2).generate(&mut r);
            assert!(doubled % 2 == 0 && (2..10).contains(&doubled));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b, c) = (0u32..4, 0.0..1.0f64, Just(true)).generate(&mut r);
        assert!(a < 4 && (0.0..1.0).contains(&b) && c);
    }

    #[test]
    fn union_respects_zero_weight() {
        let mut r = rng();
        let u = Union::new(vec![(0, Just(1u32).boxed()), (5, Just(2u32).boxed())]);
        for _ in 0..50 {
            assert_eq!(u.generate(&mut r), 2);
        }
    }
}
