//! Shared workload generator for the micro-benchmarks: uniform initial
//! placement plus per-cycle random-walk move batches at the paper's
//! medium speed class. Used by both `grid_storage` and `shards` so the
//! two benchmarks can never desynchronize their movement model.

use cpm_geom::{clamp_coord, Point};
use rand::rngs::StdRng;
use rand::Rng;

/// Per-cycle displacement of the medium speed class: `5 * 2.0 / 250`.
pub(crate) const MEDIUM_STEP: f64 = 0.04;

/// `n` uniform points over the unit square.
pub(crate) fn uniform_points(rng: &mut StdRng, n: usize) -> Vec<Point> {
    (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect()
}

/// Generate `cycles` batches of `movers` random-walk steps over
/// `positions` (mutated in place so later cycles continue from the moved
/// state). Each step picks a uniformly random object and displaces it by
/// [`MEDIUM_STEP`] in a uniformly random direction, clamped to the
/// workspace; batches are returned as `(object index, new position)`.
pub(crate) fn random_walk_cycles(
    rng: &mut StdRng,
    positions: &mut [Point],
    cycles: usize,
    movers: usize,
) -> Vec<Vec<(usize, Point)>> {
    (0..cycles)
        .map(|_| {
            (0..movers)
                .map(|_| {
                    let i = rng.gen_range(0..positions.len());
                    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                    let p = positions[i];
                    let to = Point::new(
                        clamp_coord(p.x + MEDIUM_STEP * angle.cos()),
                        clamp_coord(p.y + MEDIUM_STEP * angle.sin()),
                    );
                    positions[i] = to;
                    (i, to)
                })
                .collect()
        })
        .collect()
}
