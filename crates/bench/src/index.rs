//! Spatial-index backend benchmark: uniform `CellIndex` vs adaptive
//! `QuadtreeIndex` behind the [`cpm_grid::SpatialIndex`] facade, on the
//! drifting-hotspot stream ([`cpm_gen::drift`]).
//!
//! Three lanes replay the identical pre-generated stream:
//!
//! * **uniform-mono** — [`cpm_core::ShardedKnnMonitor`] on the
//!   monomorphic [`cpm_grid::CellIndex`] grid at the resolution a
//!   capacity plan provisions for the *base* population
//!   ([`cpm_core::CostModel::optimal_dim`] at `n_base`). This is the
//!   pre-trait fast path and the baseline both ratios divide against.
//! * **uniform-dyn** — the same uniform backend at the same resolution,
//!   but routed through the runtime-selected [`cpm_grid::DynIndex`]
//!   dispatch ([`cpm_grid::GridBuilder`] + [`cpm_grid::IndexKind`]).
//!   Its only difference from uniform-mono is the enum indirection, so
//!   the `dyn / mono` ratio *is* the cost of the pluggable-index layer.
//! * **quadtree** — [`cpm_grid::IndexKind::quadtree`] at the (power-of-
//!   two) resolution provisioned for the *peak* population. A uniform
//!   grid at that δ would pay for `dim²` mostly-empty cells; the
//!   quadtree keeps unsplit regions as single buckets, so it can afford
//!   the fine conceptual δ the hotspot wants while the empty space
//!   costs nothing.
//!
//! The protocol is the paired rotation of [`crate::regrid`]: each event
//! batch is processed by all three lanes back to back in rotating order
//! (`i % 3` picks who goes first), and each headline number is the
//! **median of per-cycle ratios** — robust to noisy-neighbor stalls,
//! which every lane of a cycle shares. Every cycle's changed-query list
//! is asserted equal across all three lanes: the backend is an
//! implementation detail results cannot observe.
//!
//! The `bench_index` binary runs [`IndexBenchConfig::default`] and
//! records `BENCH_index.json`; the CI gate (`bench_check`) re-runs
//! [`IndexBenchConfig::reduced`] and enforces the ≥ 1.15× quadtree bar
//! and the ≤ 1.10× dyn-dispatch bound (see [`crate::check::check_index`]).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cpm_core::{CostModel, PointQuery, ShardedCpmEngine, ShardedKnnMonitor, SpecEvent};
use cpm_gen::{DriftConfig, DriftingHotspotWorkload, TickEvents, WorkloadConfig};
use cpm_geom::QueryId;
use cpm_grid::{DynIndex, GridBuilder, IndexKind, QueryEvent};

/// Workload parameters for one three-lane backend run.
#[derive(Debug, Clone)]
pub struct IndexBenchConfig {
    /// Base object population (the stream breathes up to
    /// `n_base × peak_factor`).
    pub n_base: usize,
    /// Peak population as a multiple of `n_base`.
    pub peak_factor: f64,
    /// Installed k-NN queries (they track the hotspot).
    pub n_queries: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Object agility `f_obj`.
    pub f_obj: f64,
    /// Query agility `f_qry`.
    pub f_qry: f64,
    /// Measured processing cycles (the population ramp spans half of
    /// them up, half down).
    pub cycles: usize,
    /// Unmeasured warmup cycles replayed first per lane.
    pub warmup_cycles: usize,
    /// Query shards per lane (1 = sequential maintenance).
    pub shards: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IndexBenchConfig {
    /// The acceptance-scale configuration recorded in `BENCH_index.json`
    /// (10K → 100K objects, 500 tracking queries — the re-grid
    /// benchmark's stream, so the two baselines are comparable).
    fn default() -> Self {
        Self {
            n_base: 10_000,
            peak_factor: 10.0,
            n_queries: 500,
            k: 16,
            f_obj: 0.5,
            f_qry: 0.3,
            cycles: 60,
            warmup_cycles: 2,
            shards: 1,
            seed: 2005,
        }
    }
}

impl IndexBenchConfig {
    /// The reduced-scale configuration the CI bench gate runs on every PR.
    pub fn reduced() -> Self {
        Self {
            n_base: 2_000,
            n_queries: 100,
            cycles: 40,
            ..Self::default()
        }
    }

    fn cost_model(&self, n_objects: usize) -> CostModel {
        CostModel {
            n_objects,
            n_queries: self.n_queries,
            k: self.k,
            delta: 0.0, // ignored by optimal_dim
            f_obj: self.f_obj,
            f_qry: self.f_qry,
            skew: 1.0,
        }
    }

    /// The resolution a capacity plan provisions for the *base*
    /// population — both uniform lanes run here, frozen.
    pub fn uniform_dim(&self) -> u32 {
        self.cost_model(self.n_base).optimal_dim(16, 1024)
    }

    /// The resolution a capacity plan provisions for the *peak*
    /// population — the quadtree lane's conceptual δ. Always a power of
    /// two (the sweep doubles from 16), so the quadtree accepts it.
    pub fn quadtree_dim(&self) -> u32 {
        self.cost_model((self.n_base as f64 * self.peak_factor) as usize)
            .optimal_dim(16, 1024)
    }
}

/// Timings for one lane.
#[derive(Debug, Clone, Copy)]
pub struct IndexMeasurement {
    /// `"uniform-mono"`, `"uniform-dyn"` or `"quadtree"`.
    pub mode: &'static str,
    /// **Median** wall time per measured cycle, in milliseconds.
    pub ms_per_cycle: f64,
    /// Slowest single measured cycle, in milliseconds.
    pub max_cycle_ms: f64,
    /// Total result changes over the measured cycles (asserted identical
    /// across lanes — the backend is observationally invisible).
    pub result_changes: usize,
}

/// Outcome of one three-lane backend run.
#[derive(Debug, Clone)]
pub struct IndexBenchRun {
    /// Per-lane measurements: `[uniform-mono, uniform-dyn, quadtree]`.
    pub modes: [IndexMeasurement; 3],
    /// Median per-cycle `uniform-mono ms / quadtree ms`: what the
    /// adaptive backend buys on the skewed stream. The PR acceptance bar
    /// is ≥ 1.15 on this workload.
    pub quadtree_speedup: f64,
    /// Median per-cycle `uniform-dyn ms / uniform-mono ms`: the price of
    /// the runtime-pluggable dispatch. The acceptance bound is ≤ 1.10 —
    /// the trait indirection must be provably (near-)free.
    pub dyn_overhead: f64,
    /// The uniform lanes' (base-provisioned) resolution.
    pub uniform_dim: u32,
    /// The quadtree lane's (peak-provisioned) conceptual resolution.
    pub quadtree_dim: u32,
}

fn median_ms(mut times: Vec<Duration>) -> (f64, f64) {
    times.sort_unstable();
    let median = times
        .get(times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    let max = times.last().copied().unwrap_or(Duration::ZERO);
    (median.as_secs_f64() * 1e3, max.as_secs_f64() * 1e3)
}

fn median_ratio(numer: &[Duration], denom: &[Duration]) -> f64 {
    let mut ratios: Vec<f64> = numer
        .iter()
        .zip(denom)
        .map(|(n, d)| n.as_secs_f64() / d.as_secs_f64())
        .collect();
    ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    ratios.get(ratios.len() / 2).copied().unwrap_or(1.0)
}

/// The [`QueryEvent`] → [`SpecEvent`] translation the legacy monitor
/// does internally, done once per tick for the two engine lanes (it is
/// O(query events) — negligible next to a cycle — and sharing it keeps
/// the lanes' timed work identical).
fn translate(query_events: &[QueryEvent]) -> Vec<SpecEvent<PointQuery>> {
    query_events
        .iter()
        .map(|ev| match *ev {
            QueryEvent::Install { id, pos, k } => SpecEvent::Install {
                id,
                spec: PointQuery(pos),
                k,
            },
            QueryEvent::Move { id, to } => SpecEvent::Update {
                id,
                spec: PointQuery(to),
            },
            QueryEvent::Terminate { id } => SpecEvent::Terminate { id },
        })
        .collect()
}

/// Run all three lanes over the identical pre-generated drift stream and
/// report both headline ratios.
///
/// Panics if the per-cycle changed-query lists ever differ between the
/// lanes: results are backend-independent, so any divergence means a
/// backend broke conformance.
pub fn run(cfg: &IndexBenchConfig) -> IndexBenchRun {
    let total_cycles = cfg.warmup_cycles + cfg.cycles;
    let mut workload = DriftingHotspotWorkload::new(
        WorkloadConfig {
            n_objects: cfg.n_base,
            n_queries: cfg.n_queries,
            k: cfg.k,
            f_obj: cfg.f_obj,
            f_qry: cfg.f_qry,
            seed: cfg.seed,
            ..WorkloadConfig::default()
        },
        DriftConfig {
            peak_factor: cfg.peak_factor,
            ramp_ticks: (total_cycles / 2).max(1),
            ..DriftConfig::default()
        },
    );
    let initial_objects: Vec<_> = workload.initial_objects().collect();
    let initial_queries: Vec<_> = workload.initial_queries().collect();
    let ticks: Vec<TickEvents> = (0..total_cycles).map(|_| workload.tick()).collect();

    let uniform_dim = cfg.uniform_dim();
    let quadtree_dim = cfg.quadtree_dim();

    let mut mono = ShardedKnnMonitor::new(uniform_dim, cfg.shards);
    mono.populate(initial_objects.iter().copied());
    for &(qid, pos, k) in &initial_queries {
        mono.install_query(qid, pos, k);
    }
    let build_dyn = |kind: IndexKind, dim: u32| {
        let grid = GridBuilder::new(dim).index(kind).build();
        let mut engine: ShardedCpmEngine<PointQuery, DynIndex> =
            ShardedCpmEngine::with_grid(grid, cfg.shards);
        engine.populate(initial_objects.iter().copied());
        for &(qid, pos, k) in &initial_queries {
            engine
                .install(qid, PointQuery(pos), k)
                .expect("fresh query id");
        }
        engine
    };
    let mut dynamic = build_dyn(IndexKind::Uniform, uniform_dim);
    let mut quad = build_dyn(IndexKind::quadtree(), quadtree_dim);

    let (warmup, measured) = ticks.split_at(cfg.warmup_cycles.min(ticks.len()));
    for tick in warmup {
        let spec_events = translate(&tick.query_events);
        mono.process_cycle(&tick.object_events, &tick.query_events);
        dynamic.process_cycle(&tick.object_events, &spec_events);
        quad.process_cycle(&tick.object_events, &spec_events);
    }

    let mut mono_times = Vec::with_capacity(measured.len());
    let mut dyn_times = Vec::with_capacity(measured.len());
    let mut quad_times = Vec::with_capacity(measured.len());
    let mut mono_changes = 0usize;
    let mut dyn_changes = 0usize;
    let mut quad_changes = 0usize;

    for (i, tick) in measured.iter().enumerate() {
        let spec_events = translate(&tick.query_events);
        let mut run_mono = |mono: &mut ShardedKnnMonitor| -> Vec<QueryId> {
            let start = Instant::now();
            let changed = mono.process_cycle(&tick.object_events, &tick.query_events);
            mono_times.push(start.elapsed());
            mono_changes += changed.len();
            changed
        };
        let mut run_dyn = |dynamic: &mut ShardedCpmEngine<PointQuery, DynIndex>| {
            let start = Instant::now();
            let changed = dynamic.process_cycle(&tick.object_events, &spec_events);
            dyn_times.push(start.elapsed());
            dyn_changes += changed.len();
            changed
        };
        let mut run_quad = |quad: &mut ShardedCpmEngine<PointQuery, DynIndex>| {
            let start = Instant::now();
            let changed = quad.process_cycle(&tick.object_events, &spec_events);
            quad_times.push(start.elapsed());
            quad_changes += changed.len();
            changed
        };
        // Rotate who goes first so no lane systematically inherits warm
        // or cold caches from its neighbors.
        let (c_mono, c_dyn, c_quad) = match i % 3 {
            0 => {
                let m = run_mono(&mut mono);
                let d = run_dyn(&mut dynamic);
                let q = run_quad(&mut quad);
                (m, d, q)
            }
            1 => {
                let d = run_dyn(&mut dynamic);
                let q = run_quad(&mut quad);
                let m = run_mono(&mut mono);
                (m, d, q)
            }
            _ => {
                let q = run_quad(&mut quad);
                let m = run_mono(&mut mono);
                let d = run_dyn(&mut dynamic);
                (m, d, q)
            }
        };
        assert_eq!(
            c_mono, c_dyn,
            "cycle {i}: changed lists diverged between uniform-mono and uniform-dyn"
        );
        assert_eq!(
            c_mono, c_quad,
            "cycle {i}: changed lists diverged between uniform-mono and quadtree"
        );
    }

    let quadtree_speedup = median_ratio(&mono_times, &quad_times);
    let dyn_overhead = median_ratio(&dyn_times, &mono_times);
    let (mono_ms, mono_max) = median_ms(mono_times);
    let (dyn_ms, dyn_max) = median_ms(dyn_times);
    let (quad_ms, quad_max) = median_ms(quad_times);
    IndexBenchRun {
        modes: [
            IndexMeasurement {
                mode: "uniform-mono",
                ms_per_cycle: mono_ms,
                max_cycle_ms: mono_max,
                result_changes: mono_changes,
            },
            IndexMeasurement {
                mode: "uniform-dyn",
                ms_per_cycle: dyn_ms,
                max_cycle_ms: dyn_max,
                result_changes: dyn_changes,
            },
            IndexMeasurement {
                mode: "quadtree",
                ms_per_cycle: quad_ms,
                max_cycle_ms: quad_max,
                result_changes: quad_changes,
            },
        ],
        quadtree_speedup,
        dyn_overhead,
        uniform_dim,
        quadtree_dim,
    }
}

/// Render the `BENCH_index.json` document for a run.
pub fn render_json(cfg: &IndexBenchConfig, run: &IndexBenchRun) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_index\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n_base\": {}, \"peak_factor\": {}, \"n_queries\": {}, \"k\": {}, \
         \"f_obj\": {}, \"f_qry\": {}, \"cycles\": {}, \"warmup_cycles\": {}, \"shards\": {}}},",
        cfg.n_base,
        cfg.peak_factor,
        cfg.n_queries,
        cfg.k,
        cfg.f_obj,
        cfg.f_qry,
        cfg.cycles,
        cfg.warmup_cycles,
        cfg.shards
    );
    let _ = writeln!(
        json,
        "  \"machine\": {{\"threads_available\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},",
        crate::shards::available_threads(),
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("  \"results\": [\n");
    for (i, m) in run.modes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"ms_per_cycle\": {:.3}, \"max_cycle_ms\": {:.3}, \
             \"result_changes\": {}}}",
            m.mode, m.ms_per_cycle, m.max_cycle_ms, m.result_changes
        );
        json.push_str(if i + 1 == run.modes.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"uniform_dim\": {}, \"quadtree_dim\": {},",
        run.uniform_dim, run.quadtree_dim
    );
    let _ = writeln!(
        json,
        "  \"quadtree_speedup\": {:.4}, \"dyn_overhead\": {:.4}",
        run.quadtree_speedup, run.dyn_overhead
    );
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_conformant_across_backends() {
        let cfg = IndexBenchConfig {
            n_base: 300,
            peak_factor: 8.0,
            n_queries: 100,
            k: 4,
            cycles: 12,
            warmup_cycles: 2,
            ..IndexBenchConfig::default()
        };
        assert!(cfg.quadtree_dim().is_power_of_two());
        assert!(cfg.quadtree_dim() > cfg.uniform_dim());
        // `run` itself asserts per-cycle changed-list equality.
        let run = run(&cfg);
        assert_eq!(run.modes[0].mode, "uniform-mono");
        assert_eq!(run.modes[1].mode, "uniform-dyn");
        assert_eq!(run.modes[2].mode, "quadtree");
        assert_eq!(run.modes[0].result_changes, run.modes[1].result_changes);
        assert_eq!(run.modes[0].result_changes, run.modes[2].result_changes);
        assert!(run.quadtree_speedup > 0.0);
        assert!(run.dyn_overhead > 0.0);
        let json = render_json(&cfg, &run);
        assert!(json.contains("quadtree_speedup"));
        assert!(json.contains("dyn_overhead"));
        assert!(json.contains("\"uniform_dim\""));
    }
}
