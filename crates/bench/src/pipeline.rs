//! Pipelined-coordinator benchmark: the serial cluster cycle versus the
//! depth-1 pipelined cycle ([`ClusterCoordinator::submit_cycle`]) on the
//! identical workload, plus the routing slice against the single-node
//! cycle it amortizes.
//!
//! The serial coordinator's cycle is three strictly sequential slices —
//! route, wait for workers, merge — so its wall time is their sum. The
//! pipelined coordinator overlaps them across epochs: while the workers
//! compute epoch *e*, the coordinator routes *e+1*, so route time hides
//! behind worker compute and only the merge stays exposed. Two ratios
//! come out of a run:
//!
//! * **`route_over_single`** — the serial coordinator's routing slice
//!   (per-worker event translation + framing + send, the `route` field
//!   of [`ClusterCoordinator::last_cycle_timings`]) over the single-node
//!   cycle, median of per-cycle pairs. Routing is coordinator-serial
//!   work in the *un*pipelined cycle, so this bounds how much latency
//!   the pipeline has to hide: the acceptance bar holds it at
//!   ≤ [`crate::check::PIPELINE_ROUTE_LIMIT`]× at `W = 4`, and it is
//!   machine-independent (both lanes timed in one process under the
//!   paired-cycle protocol).
//! * **`pipelined_over_serial`** — serial chunk wall time over pipelined
//!   chunk wall time on the same event stream (median of alternating
//!   chunk pairs), i.e. the pipeline's throughput speedup. The overlap
//!   only pays when the coordinator and workers run on different cores,
//!   so the ≥ [`crate::check::REQUIRED_PIPELINE_SPEEDUP`]× bar is gated
//!   on ≥ 4-thread hosts and loudly waived below (like the shard gate).
//!
//! Every measured cycle doubles as a conformance check: the serial merge
//! is asserted **bit-identical** to the single-node batch, and every
//! batch the pipeline yields is asserted bit-identical to the serial
//! coordinator's, so a completed run already proves the pipeline changed
//! *when* batches surface, never their bytes.
//!
//! The `bench_pipeline` binary records `BENCH_pipeline.json`; the CI
//! gate (`bench_check`) re-runs [`PipelineBenchConfig::reduced`] and
//! enforces the bars (see [`crate::check::check_pipeline`]).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cpm_cluster::{ClusterConfig, ClusterCoordinator, CoordinatorMetrics};
use cpm_core::{AnyQuerySpec, CpmServerBuilder, CycleDeltas, PointQuery, SpecEvent};
use cpm_geom::{ObjectId, QueryId};
use cpm_grid::ObjectEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload parameters for one serial-vs-pipelined run.
#[derive(Debug, Clone)]
pub struct PipelineBenchConfig {
    /// Object population `N`.
    pub n_objects: usize,
    /// Installed k-NN queries (anchors uniform over the workspace).
    pub n_queries: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Fraction of objects moving per cycle.
    pub move_fraction: f64,
    /// Measured processing cycles (split into chunks of `chunk`).
    pub cycles: usize,
    /// Cycles per timed chunk: the serial and pipelined lanes each
    /// process a whole chunk back to back (order alternating per chunk),
    /// because a depth-1 pipeline's per-cycle times overlap and only
    /// whole-pass wall time is meaningful.
    pub chunk: usize,
    /// Unmeasured warmup cycles replayed first (after the bootstrap
    /// populate/install cycles, which are also unmeasured).
    pub warmup_cycles: usize,
    /// Grid granularity per axis.
    pub grid_dim: u32,
    /// In-process cluster workers.
    pub workers: u32,
    /// Boundary-overlap margin in cells.
    pub overlap: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PipelineBenchConfig {
    /// The acceptance-scale configuration recorded in
    /// `BENCH_pipeline.json`.
    fn default() -> Self {
        Self {
            n_objects: 10_000,
            n_queries: 96,
            k: 16,
            move_fraction: 0.10,
            cycles: 48,
            chunk: 8,
            warmup_cycles: 2,
            grid_dim: 32,
            workers: 4,
            overlap: 4,
            seed: 2005,
        }
    }
}

impl PipelineBenchConfig {
    /// The reduced-scale configuration the CI bench gate runs on every PR.
    pub fn reduced() -> Self {
        Self {
            n_objects: 4_000,
            n_queries: 48,
            cycles: 24,
            chunk: 6,
            ..Self::default()
        }
    }
}

/// Timings for one execution lane.
#[derive(Debug, Clone, Copy)]
pub struct PipelineMeasurement {
    /// `"single-node"`, `"serial"` or `"pipelined"`.
    pub mode: &'static str,
    /// **Median** wall time per measured cycle, ms (for the pipelined
    /// lane: chunk wall time over the chunk's cycle count — individual
    /// pipelined cycles overlap and have no standalone wall time).
    pub ms_per_cycle: f64,
    /// Total result changes over the measured cycles (identical across
    /// lanes — asserted per cycle by [`run`]).
    pub result_changes: usize,
}

/// Mean per-cycle stage split of one coordinator lane, ms, from its
/// [`CoordinatorMetrics`] accumulators.
#[derive(Debug, Clone, Copy)]
pub struct StageSplit {
    /// Routing: per-worker translation + framing + send.
    pub route_ms: f64,
    /// Blocking receive while workers compute.
    pub wait_ms: f64,
    /// Barrier offer + canonical merge.
    pub merge_ms: f64,
}

fn stage_split(m: &CoordinatorMetrics) -> StageSplit {
    let per = |d: Duration| {
        if m.cycles == 0 {
            0.0
        } else {
            d.as_secs_f64() * 1e3 / m.cycles as f64
        }
    };
    StageSplit {
        route_ms: per(m.route),
        wait_ms: per(m.worker_wait),
        merge_ms: per(m.merge),
    }
}

/// Outcome of one serial-vs-pipelined run.
#[derive(Debug, Clone)]
pub struct PipelineBenchRun {
    /// Per-lane measurements: `[single-node, serial, pipelined]`.
    pub modes: [PipelineMeasurement; 3],
    /// Median per-cycle-pair `serial routing ms / single-node ms`: the
    /// machine-independent routing overhead. The PR acceptance bar is
    /// ≤ [`crate::check::PIPELINE_ROUTE_LIMIT`] at `W = 4`.
    pub route_over_single: f64,
    /// Median per-chunk-pair `serial wall / pipelined wall`: the
    /// pipeline's throughput speedup **on this host** — it needs real
    /// parallelism to exceed 1, so the
    /// ≥ [`crate::check::REQUIRED_PIPELINE_SPEEDUP`] bar only binds on
    /// ≥ 4-thread hosts.
    pub pipelined_over_serial: f64,
    /// The serial coordinator's per-cycle stage split.
    pub serial_stages: StageSplit,
    /// The pipelined coordinator's per-cycle stage split. Route and
    /// merge cost about the same work per cycle as the serial lane's;
    /// `wait_ms` is what shrinks when routing overlaps worker compute.
    pub pipelined_stages: StageSplit,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs.get(xs.len() / 2).copied().unwrap_or(0.0)
}

/// Run the three lanes over the identical pre-generated workload.
///
/// Per chunk of [`PipelineBenchConfig::chunk`] cycles, in an order that
/// alternates every chunk: (a) the single-node server and the serial
/// coordinator process each cycle back to back (paired-cycle protocol,
/// per-cycle route timings recorded), then (b) the pipelined coordinator
/// processes the whole chunk through `submit_cycle` + `flush` under one
/// wall-clock. Ratios are medians over pairs so transient host stalls
/// inflate both sides and cancel.
///
/// # Panics
/// On any cluster protocol error, or if any lane's deltas diverge.
pub fn run(cfg: &PipelineBenchConfig) -> PipelineBenchRun {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut positions = crate::movers::uniform_points(&mut rng, cfg.n_objects);
    let appears: Vec<ObjectEvent> = positions
        .iter()
        .enumerate()
        .map(|(i, &pos)| ObjectEvent::Appear {
            id: ObjectId(i as u32),
            pos,
        })
        .collect();
    let installs: Vec<SpecEvent<AnyQuerySpec>> =
        crate::movers::uniform_points(&mut rng, cfg.n_queries)
            .into_iter()
            .enumerate()
            .map(|(i, p)| SpecEvent::Install {
                id: QueryId(i as u32),
                spec: AnyQuerySpec::Knn(PointQuery(p)),
                k: cfg.k,
            })
            .collect();
    let movers = ((cfg.n_objects as f64 * cfg.move_fraction) as usize).max(1);
    let total_cycles = cfg.warmup_cycles + cfg.cycles;
    let move_cycles: Vec<Vec<ObjectEvent>> =
        crate::movers::random_walk_cycles(&mut rng, &mut positions, total_cycles, movers)
            .into_iter()
            .map(|batch| {
                let mut seen = std::collections::HashSet::new();
                let mut events: Vec<ObjectEvent> = batch
                    .into_iter()
                    .rev()
                    .filter(|(i, _)| seen.insert(*i))
                    .map(|(i, to)| ObjectEvent::Move {
                        id: ObjectId(i as u32),
                        to,
                    })
                    .collect();
                events.reverse();
                events
            })
            .collect();

    let mut single = CpmServerBuilder::new(cfg.grid_dim)
        .deltas(true)
        .try_build()
        .expect("single-node server");
    let serial_cfg = ClusterConfig::new(cfg.grid_dim, cfg.workers).overlap(cfg.overlap);
    let pipelined_cfg = serial_cfg.pipelined(true);
    let (mut serial, serial_handles) =
        ClusterCoordinator::spawn_in_process(serial_cfg).expect("spawn serial workers");
    let (mut pipelined, pipelined_handles) =
        ClusterCoordinator::spawn_in_process(pipelined_cfg).expect("spawn pipelined workers");

    // Bootstrap (unmeasured): objects appear, then queries install.
    let mut single_out = CycleDeltas::default();
    for (objects, queries) in [(&appears[..], &[][..]), (&[][..], &installs[..])] {
        single
            .process_cycle_with_deltas_into(objects, queries, &mut single_out)
            .expect("bootstrap cycle");
        let merged = serial
            .process_cycle(objects, queries)
            .expect("serial bootstrap cycle");
        assert_eq!(merged, single_out, "serial bootstrap deltas diverged");
        let merged = pipelined
            .process_cycle(objects, queries)
            .expect("pipelined bootstrap cycle");
        assert_eq!(merged, single_out, "pipelined bootstrap deltas diverged");
    }

    let warmup_n = cfg.warmup_cycles.min(move_cycles.len());
    let (warmup, measured) = move_cycles.split_at(warmup_n);
    for events in warmup {
        single
            .process_cycle_with_deltas_into(events, &[], &mut single_out)
            .expect("warmup cycle");
        serial.process_cycle(events, &[]).expect("warmup cycle");
        pipelined.process_cycle(events, &[]).expect("warmup cycle");
    }
    // Warmup ran before the measured window so the metrics accumulators
    // only average measured cycles.
    serial.take_metrics();
    pipelined.take_metrics();

    let mut single_times = Vec::with_capacity(measured.len());
    let mut single_changes = 0usize;
    let mut serial_times = Vec::with_capacity(measured.len());
    let mut route_times = Vec::with_capacity(measured.len());
    let mut serial_changes = 0usize;
    let mut pipelined_chunk_ms = Vec::new();
    let mut serial_chunk_ms = Vec::new();
    let mut chunk_ratios = Vec::new();
    let mut pipelined_changes = 0usize;

    for (c, chunk) in measured.chunks(cfg.chunk).enumerate() {
        let mut serial_outputs: Vec<CycleDeltas> = Vec::with_capacity(chunk.len());
        let mut serial_total = Duration::ZERO;
        let mut run_serial_lane =
            |single: &mut cpm_core::CpmServer, serial: &mut ClusterCoordinator<_>| {
                for (i, events) in chunk.iter().enumerate() {
                    let time_single =
                        |single: &mut cpm_core::CpmServer,
                         out: &mut CycleDeltas,
                         changes: &mut usize,
                         times: &mut Vec<Duration>| {
                            let start = Instant::now();
                            single
                                .process_cycle_with_deltas_into(events, &[], out)
                                .expect("measured cycle");
                            times.push(start.elapsed());
                            *changes += out.changed.len();
                        };
                    let mut time_serial =
                        |serial: &mut ClusterCoordinator<_>,
                         outputs: &mut Vec<CycleDeltas>,
                         changes: &mut usize| {
                            let start = Instant::now();
                            let out = serial.process_cycle(events, &[]).expect("measured cycle");
                            let spent = start.elapsed();
                            serial_total += spent;
                            serial_times.push(spent);
                            route_times.push(serial.last_cycle_timings().route);
                            *changes += out.changed.len();
                            outputs.push(out);
                        };
                    if i % 2 == 0 {
                        time_single(
                            single,
                            &mut single_out,
                            &mut single_changes,
                            &mut single_times,
                        );
                        time_serial(serial, &mut serial_outputs, &mut serial_changes);
                    } else {
                        time_serial(serial, &mut serial_outputs, &mut serial_changes);
                        time_single(
                            single,
                            &mut single_out,
                            &mut single_changes,
                            &mut single_times,
                        );
                    }
                    // Conformance, outside the timed sections.
                    assert_eq!(
                        serial_outputs.last().expect("serial lane ran"),
                        &single_out,
                        "serial merge diverged from the single node"
                    );
                }
            };
        let mut run_pipelined_lane = |pipelined: &mut ClusterCoordinator<_>| {
            let mut outputs: Vec<CycleDeltas> = Vec::with_capacity(chunk.len());
            let start = Instant::now();
            for events in chunk {
                if let Some(merged) = pipelined
                    .submit_cycle(events, &[])
                    .expect("pipelined measured cycle")
                {
                    outputs.push(merged);
                }
            }
            outputs.extend(pipelined.flush().expect("pipelined flush"));
            let spent = start.elapsed();
            for out in &outputs {
                pipelined_changes += out.changed.len();
            }
            spent.as_secs_f64() * 1e3
        };
        // Alternate which lane goes first each chunk so host drift
        // inflates both sides of a pair equally often.
        let pipelined_ms = if c % 2 == 0 {
            run_serial_lane(&mut single, &mut serial);
            run_pipelined_lane(&mut pipelined)
        } else {
            let ms = run_pipelined_lane(&mut pipelined);
            run_serial_lane(&mut single, &mut serial);
            ms
        };
        let serial_ms = serial_total.as_secs_f64() * 1e3;
        serial_chunk_ms.push(serial_ms / chunk.len() as f64);
        pipelined_chunk_ms.push(pipelined_ms / chunk.len() as f64);
        chunk_ratios.push(serial_ms / pipelined_ms);
    }
    // The pipelined lane saw the same stream, so the merged bytes are
    // already proven identical transitively (each serial merge equals
    // the single node; the pipelined coordinator's conformance with the
    // serial one is the verify_cluster_pipelined lane's job — here we
    // assert the cheap invariant that both did identical work).
    assert_eq!(
        single_changes, serial_changes,
        "serial lane did different work on the same stream"
    );
    assert_eq!(
        single_changes, pipelined_changes,
        "pipelined lane did different work on the same stream"
    );
    let serial_stages = stage_split(&serial.take_metrics());
    let pipelined_stages = stage_split(&pipelined.take_metrics());
    for (coord, handles) in [(serial, serial_handles), (pipelined, pipelined_handles)] {
        coord.shutdown().expect("clean shutdown");
        for h in handles {
            h.join().expect("worker thread").expect("worker exit");
        }
    }

    let route_over_single = median(
        route_times
            .iter()
            .zip(&single_times)
            .map(|(r, s)| r.as_secs_f64() / s.as_secs_f64())
            .collect(),
    );
    let pipelined_over_serial = median(chunk_ratios);
    let per_cycle_ms =
        |times: &[Duration]| median(times.iter().map(|t| t.as_secs_f64() * 1e3).collect());
    PipelineBenchRun {
        modes: [
            PipelineMeasurement {
                mode: "single-node",
                ms_per_cycle: per_cycle_ms(&single_times),
                result_changes: single_changes,
            },
            PipelineMeasurement {
                mode: "serial",
                ms_per_cycle: median(serial_chunk_ms),
                result_changes: serial_changes,
            },
            PipelineMeasurement {
                mode: "pipelined",
                ms_per_cycle: median(pipelined_chunk_ms),
                result_changes: pipelined_changes,
            },
        ],
        route_over_single,
        pipelined_over_serial,
        serial_stages,
        pipelined_stages,
    }
}

/// Render the `BENCH_pipeline.json` document for a run.
pub fn render_json(cfg: &PipelineBenchConfig, run: &PipelineBenchRun) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_pipeline\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n_objects\": {}, \"n_queries\": {}, \"k\": {}, \
         \"move_fraction\": {}, \"cycles\": {}, \"chunk\": {}, \"warmup_cycles\": {}, \
         \"grid_dim\": {}, \"workers\": {}, \"overlap\": {}}},",
        cfg.n_objects,
        cfg.n_queries,
        cfg.k,
        cfg.move_fraction,
        cfg.cycles,
        cfg.chunk,
        cfg.warmup_cycles,
        cfg.grid_dim,
        cfg.workers,
        cfg.overlap
    );
    let _ = writeln!(
        json,
        "  \"machine\": {{\"threads_available\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},",
        crate::shards::available_threads(),
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("  \"results\": [\n");
    for (i, m) in run.modes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"ms_per_cycle\": {:.3}, \"result_changes\": {}}}",
            m.mode, m.ms_per_cycle, m.result_changes
        );
        json.push_str(if i + 1 == run.modes.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ],\n");
    for (lane, s) in [
        ("serial", run.serial_stages),
        ("pipelined", run.pipelined_stages),
    ] {
        let _ = writeln!(
            json,
            "  \"{lane}_stages\": {{\"route_ms\": {:.4}, \"wait_ms\": {:.4}, \
             \"merge_ms\": {:.4}}},",
            s.route_ms, s.wait_ms, s.merge_ms
        );
    }
    let _ = writeln!(
        json,
        "  \"route_over_single\": {:.4},",
        run.route_over_single
    );
    let _ = writeln!(
        json,
        "  \"pipelined_over_serial\": {:.4}",
        run.pipelined_over_serial
    );
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_measures_all_three_lanes_consistently() {
        let cfg = PipelineBenchConfig {
            n_objects: 400,
            n_queries: 12,
            k: 3,
            cycles: 6,
            chunk: 3,
            warmup_cycles: 1,
            grid_dim: 16,
            workers: 2,
            overlap: 4,
            ..PipelineBenchConfig::default()
        };
        // `run` itself asserts per-cycle bit-identical serial merges and
        // identical work across all three lanes.
        let run = run(&cfg);
        assert_eq!(run.modes[0].mode, "single-node");
        assert_eq!(run.modes[1].mode, "serial");
        assert_eq!(run.modes[2].mode, "pipelined");
        assert_eq!(run.modes[0].result_changes, run.modes[1].result_changes);
        assert_eq!(run.modes[0].result_changes, run.modes[2].result_changes);
        assert!(run.route_over_single > 0.0);
        assert!(run.pipelined_over_serial > 0.0);
        assert!(run.serial_stages.route_ms > 0.0);
        assert!(run.serial_stages.merge_ms > 0.0);
        let json = render_json(&cfg, &run);
        assert!(json.contains("\"mode\": \"pipelined\""));
        assert!(json.contains("route_over_single"));
        assert!(json.contains("pipelined_over_serial"));
        assert!(json.contains("serial_stages"));
        assert!(json.contains("threads_available"));
    }
}
