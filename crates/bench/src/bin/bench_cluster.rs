//! Record the cluster-merge overhead baseline:
//!
//! ```text
//! cargo run --release -p cpm-bench --bin bench_cluster
//! ```
//!
//! Runs the cluster-vs-single-node comparison at the acceptance scale
//! (see [`cpm_bench::cluster`]) **three times** and records the
//! median-ratio run to `BENCH_cluster.json` at the workspace root: on a
//! shared host, single-run ratios scatter by a few percentage points
//! even under the paired-cycle protocol, and a baseline should pin the
//! center of the distribution, not one draw. The recorded
//! `merge_over_single` — the coordinator's serial merge slice over the
//! single-node cycle — is the PR acceptance number (bar: ≤ 1.25 at
//! `W = 4`) and the curve `bench_check` compares equal-scale re-runs
//! against; `cluster_over_single` rides along as host-dependent
//! diagnostics next to the recorded thread count. Every cycle of every
//! run asserts the merged deltas bit-identical to the single node, so a
//! completed recording already proves conformance.

use cpm_bench::cluster::{render_json, run, ClusterBenchConfig};

const RUNS: usize = 3;

fn main() {
    let cfg = ClusterBenchConfig::default();
    println!(
        "bench_cluster: N={}, queries={}, k={}, {} cycles (+{} warmup), grid {}², \
         {} workers (overlap {}), median of {RUNS} runs",
        cfg.n_objects,
        cfg.n_queries,
        cfg.k,
        cfg.cycles,
        cfg.warmup_cycles,
        cfg.grid_dim,
        cfg.workers,
        cfg.overlap
    );
    let mut runs: Vec<_> = (0..RUNS)
        .map(|i| {
            let r = run(&cfg);
            println!(
                "  run {}: merge {:.3}x, full cycle {:.3}x (single {:.3} ms/cycle, cluster \
                 {:.3} ms/cycle)",
                i + 1,
                r.merge_over_single,
                r.cluster_over_single,
                r.modes[0].ms_per_cycle,
                r.modes[1].ms_per_cycle
            );
            r
        })
        .collect();
    runs.sort_by(|a, b| {
        a.merge_over_single
            .partial_cmp(&b.merge_over_single)
            .expect("finite ratios")
    });
    let result = runs.swap_remove(RUNS / 2);

    for m in &result.modes {
        println!(
            "  {:>11}: {:>8.3} ms/cycle (max {:>8.3})   {} result changes",
            m.mode, m.ms_per_cycle, m.max_cycle_ms, m.result_changes
        );
    }
    println!(
        "  coordinator merge vs single-node cycle (median run): {:.3}x \
         ({:.4} ms/cycle; full-cycle ratio {:.3}x on this host)",
        result.merge_over_single, result.merge_ms_per_cycle, result.cluster_over_single
    );

    let json = render_json(&cfg, &result);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(path, &json).expect("write BENCH_cluster.json");
    println!("wrote {path}");
}
