//! Micro-benchmark: dense slot-based cell buckets (the `cpm_grid::Grid`
//! storage layer) vs the seed's hash-set-per-cell layout.
//!
//! Measures the two hot paths of the Section 4.1 cost model on uniform
//! data at the paper's default scale (100K objects, 10% of objects moving
//! per cycle at medium speed), across grid granularities 64² / 256² /
//! 1024²:
//!
//! * **update throughput** — `Time_ind = 2` location updates (delete from
//!   the old cell, insert into the new one);
//! * **scan throughput** — cell accesses (full scans of cell object
//!   lists), the unit Figure 6.3b counts, over the 5×5 neighborhoods of
//!   random query points.
//!
//! Run with `cargo run --release -p cpm-bench --bin bench_grid_storage`.
//! Results are printed and appended-to/overwritten in `BENCH_grid.json` at
//! the workspace root so later PRs have a perf trajectory.

use std::fmt::Write as _;
use std::time::Instant;

use cpm_geom::{clamp_coord, FastHashMap, FastHashSet, ObjectId, Point};
use cpm_grid::{CellCoord, Grid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_OBJECTS: usize = 100_000;
const MOVE_FRACTION: f64 = 0.10;
const CYCLES: usize = 20;
const QUERIES: usize = 2_000;
/// Cells per axis of the scanned block around each query point (5×5 — the
/// typical influence-region footprint at the paper's default k and δ).
const SCAN_HALF: i64 = 2;
const DIMS: [u32; 3] = [64, 256, 1024];

/// The seed's storage layout, kept verbatim for comparison: one
/// `FastHashSet<ObjectId>` per occupied cell, updates via hashed
/// remove/insert of the object id.
struct HashSetGrid {
    dim: u32,
    delta: f64,
    cells: FastHashMap<u64, FastHashSet<ObjectId>>,
    positions: Vec<Option<Point>>,
}

impl HashSetGrid {
    fn new(dim: u32) -> Self {
        Self {
            dim,
            delta: 1.0 / dim as f64,
            cells: FastHashMap::default(),
            positions: Vec::new(),
        }
    }

    #[inline]
    fn cell_of(&self, p: Point) -> CellCoord {
        let col = (clamp_coord(p.x) / self.delta) as u32;
        let row = (clamp_coord(p.y) / self.delta) as u32;
        CellCoord::new(col.min(self.dim - 1), row.min(self.dim - 1))
    }

    fn insert(&mut self, oid: ObjectId, p: Point) {
        let idx = oid.index();
        if idx >= self.positions.len() {
            self.positions.resize(idx + 1, None);
        }
        let p = Point::new(clamp_coord(p.x), clamp_coord(p.y));
        self.positions[idx] = Some(p);
        let cell = self.cell_of(p);
        self.cells.entry(cell.id(self.dim)).or_default().insert(oid);
    }

    fn update_position(&mut self, oid: ObjectId, new: Point) {
        let old = self.positions[oid.index()].take().expect("live object");
        let id = self.cell_of(old).id(self.dim);
        let occupants = self.cells.get_mut(&id).expect("cell entry");
        occupants.remove(&oid);
        if occupants.is_empty() {
            self.cells.remove(&id);
        }
        self.insert(oid, new);
    }

    #[inline]
    fn objects_in(&self, c: CellCoord) -> Option<&FastHashSet<ObjectId>> {
        self.cells.get(&c.id(self.dim))
    }
}

/// One pre-generated experiment input, identical for both layouts.
struct Workload {
    initial: Vec<(ObjectId, Point)>,
    /// Per cycle: `(oid, new_position)` moves.
    cycles: Vec<Vec<(ObjectId, Point)>>,
    queries: Vec<Point>,
}

fn build_workload(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let initial: Vec<(ObjectId, Point)> = (0..N_OBJECTS as u32)
        .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
        .collect();
    let mut positions: Vec<Point> = initial.iter().map(|&(_, p)| p).collect();
    let step = 0.04; // medium speed class: 5 * 2.0 / 250
    let movers = (N_OBJECTS as f64 * MOVE_FRACTION) as usize;
    let cycles = (0..CYCLES)
        .map(|_| {
            (0..movers)
                .map(|_| {
                    let i = rng.gen_range(0..N_OBJECTS);
                    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                    let p = positions[i];
                    let to = Point::new(
                        clamp_coord(p.x + step * angle.cos()),
                        clamp_coord(p.y + step * angle.sin()),
                    );
                    positions[i] = to;
                    (ObjectId(i as u32), to)
                })
                .collect()
        })
        .collect();
    let queries = (0..QUERIES)
        .map(|_| Point::new(rng.gen(), rng.gen()))
        .collect();
    Workload {
        initial,
        cycles,
        queries,
    }
}

/// Cells of the (clipped) `(2·SCAN_HALF+1)²` block around `center`.
fn scan_block(center: CellCoord, dim: u32) -> impl Iterator<Item = CellCoord> {
    (-SCAN_HALF..=SCAN_HALF).flat_map(move |dr| {
        (-SCAN_HALF..=SCAN_HALF).filter_map(move |dc| center.offset(dc, dr, dim))
    })
}

struct Measurement {
    layout: &'static str,
    dim: u32,
    update_ns: f64,
    scan_ns_per_obj: f64,
    objects_scanned: u64,
    checksum: u64,
}

fn bench_dense(dim: u32, w: &Workload) -> Measurement {
    let mut g = Grid::new(dim);
    for &(oid, p) in &w.initial {
        g.insert(oid, p);
    }
    let start = Instant::now();
    for cycle in &w.cycles {
        for &(oid, to) in cycle {
            g.update_position(oid, to);
        }
    }
    let update_ns = start.elapsed().as_nanos() as f64 / (CYCLES as f64 * w.cycles[0].len() as f64);

    let mut checksum = 0u64;
    let mut objects_scanned = 0u64;
    let start = Instant::now();
    for &q in &w.queries {
        for cell in scan_block(g.cell_of(q), dim) {
            for &oid in g.objects_in(cell) {
                checksum ^= oid.0 as u64;
                objects_scanned += 1;
            }
        }
    }
    let scan_elapsed = start.elapsed();
    Measurement {
        layout: "dense-buckets",
        dim,
        update_ns,
        scan_ns_per_obj: scan_elapsed.as_nanos() as f64 / objects_scanned.max(1) as f64,
        objects_scanned,
        checksum,
    }
}

fn bench_hashset(dim: u32, w: &Workload) -> Measurement {
    let mut g = HashSetGrid::new(dim);
    for &(oid, p) in &w.initial {
        g.insert(oid, p);
    }
    let start = Instant::now();
    for cycle in &w.cycles {
        for &(oid, to) in cycle {
            g.update_position(oid, to);
        }
    }
    let update_ns = start.elapsed().as_nanos() as f64 / (CYCLES as f64 * w.cycles[0].len() as f64);

    let mut checksum = 0u64;
    let mut objects_scanned = 0u64;
    let start = Instant::now();
    for &q in &w.queries {
        for cell in scan_block(g.cell_of(q), dim) {
            if let Some(objects) = g.objects_in(cell) {
                for &oid in objects {
                    checksum ^= oid.0 as u64;
                    objects_scanned += 1;
                }
            }
        }
    }
    let scan_elapsed = start.elapsed();
    Measurement {
        layout: "hash-sets",
        dim,
        update_ns,
        scan_ns_per_obj: scan_elapsed.as_nanos() as f64 / objects_scanned.max(1) as f64,
        objects_scanned,
        checksum,
    }
}

fn main() {
    println!(
        "grid storage micro-benchmark: N={N_OBJECTS}, {:.0}% movers x {CYCLES} cycles, \
         {QUERIES} queries x {}x{} cell scans",
        MOVE_FRACTION * 100.0,
        2 * SCAN_HALF + 1,
        2 * SCAN_HALF + 1,
    );
    let w = build_workload(2005);
    let mut results = Vec::new();
    for dim in DIMS {
        let dense = bench_dense(dim, &w);
        let hash = bench_hashset(dim, &w);
        assert_eq!(
            dense.checksum, hash.checksum,
            "layouts scanned different object sets at dim {dim}"
        );
        assert_eq!(dense.objects_scanned, hash.objects_scanned);
        println!(
            "dim {dim:>4}: update {:>7.1} ns vs {:>7.1} ns ({:>4.2}x)   \
             scan {:>6.2} ns/obj vs {:>6.2} ns/obj ({:>4.2}x)   [{} objs scanned]",
            dense.update_ns,
            hash.update_ns,
            hash.update_ns / dense.update_ns,
            dense.scan_ns_per_obj,
            hash.scan_ns_per_obj,
            hash.scan_ns_per_obj / dense.scan_ns_per_obj,
            dense.objects_scanned,
        );
        results.push((dense, hash));
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_grid_storage\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n_objects\": {N_OBJECTS}, \"move_fraction\": {MOVE_FRACTION}, \
         \"cycles\": {CYCLES}, \"queries\": {QUERIES}, \"scan_block\": {}}},",
        2 * SCAN_HALF + 1
    );
    json.push_str("  \"results\": [\n");
    for (i, (dense, hash)) in results.iter().enumerate() {
        for m in [dense, hash] {
            let _ = write!(
                json,
                "    {{\"dim\": {}, \"layout\": \"{}\", \"update_ns_per_op\": {:.1}, \
                 \"scan_ns_per_object\": {:.3}, \"objects_scanned\": {}}}",
                m.dim, m.layout, m.update_ns, m.scan_ns_per_obj, m.objects_scanned
            );
            let last = i + 1 == results.len() && m.layout == hash.layout;
            json.push_str(if last { "\n" } else { ",\n" });
        }
    }
    json.push_str("  ],\n  \"speedup_dense_over_hashset\": [\n");
    for (i, (dense, hash)) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dim\": {}, \"update\": {:.2}, \"scan\": {:.2}}}",
            dense.dim,
            hash.update_ns / dense.update_ns,
            hash.scan_ns_per_obj / dense.scan_ns_per_obj
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_grid.json");
    std::fs::write(path, &json).expect("write BENCH_grid.json");
    println!("wrote {path}");
}
