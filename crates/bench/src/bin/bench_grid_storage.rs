//! Grid-storage micro-benchmark front end (see [`cpm_bench::grid_storage`]
//! for the workload): dense slot-based cell buckets vs the seed's
//! hash-set-per-cell layout, at the paper's default 100K-object scale.
//!
//! Run with `cargo run --release -p cpm-bench --bin bench_grid_storage`.
//! Results are printed and overwrite `BENCH_grid.json` at the workspace
//! root so later PRs have a perf trajectory (and the `bench_check` CI gate
//! has a baseline).

use cpm_bench::grid_storage::{render_json, run, GridStorageConfig};

fn main() {
    let cfg = GridStorageConfig::default();
    println!(
        "grid storage micro-benchmark: N={}, {:.0}% movers x {} cycles, \
         {} queries x {}x{} cell scans",
        cfg.n_objects,
        cfg.move_fraction * 100.0,
        cfg.cycles,
        cfg.queries,
        2 * cfg.scan_half + 1,
        2 * cfg.scan_half + 1,
    );
    let results = run(&cfg);
    for (dense, hash) in &results {
        println!(
            "dim {:>4}: update {:>7.1} ns vs {:>7.1} ns ({:>4.2}x)   \
             scan {:>6.2} ns/obj vs {:>6.2} ns/obj ({:>4.2}x)   [{} objs scanned]",
            dense.dim,
            dense.update_ns,
            hash.update_ns,
            hash.update_ns / dense.update_ns,
            dense.scan_ns_per_obj,
            hash.scan_ns_per_obj,
            hash.scan_ns_per_obj / dense.scan_ns_per_obj,
            dense.objects_scanned,
        );
    }

    let json = render_json(&cfg, &results);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_grid.json");
    std::fs::write(path, &json).expect("write BENCH_grid.json");
    println!("wrote {path}");
}
