//! Record the delta-emission overhead baseline:
//!
//! ```text
//! cargo run --release -p cpm-bench --bin bench_deltas
//! ```
//!
//! Runs the delta-vs-full-list comparison at the acceptance scale (100K
//! objects, 1K subscriptions — see [`cpm_bench::deltas`]) **three times**
//! and records the median-overhead run to `BENCH_deltas.json` at the
//! workspace root: on a shared host, single-run overhead ratios scatter
//! by a few percentage points even under the paired-cycle protocol, and
//! a baseline should pin the center of the distribution, not one draw.
//! The recorded `overhead_vs_full` is the PR acceptance number
//! (bar: < 0.10) and the curve `bench_check` compares reduced-scale
//! re-runs against.

use cpm_bench::deltas::{render_json, run, DeltaBenchConfig};

const RUNS: usize = 3;

fn main() {
    let cfg = DeltaBenchConfig::default();
    println!(
        "bench_deltas: N={}, subscriptions={}, k={}, {} cycles (+{} warmup), grid {}², \
         {} shard(s), median of {RUNS} runs",
        cfg.n_objects,
        cfg.n_subscriptions,
        cfg.k,
        cfg.cycles,
        cfg.warmup_cycles,
        cfg.grid_dim,
        cfg.shards
    );
    let mut runs: Vec<_> = (0..RUNS)
        .map(|i| {
            let r = run(&cfg);
            println!(
                "  run {}: overhead {:+.2}% (full {:.3} ms/cycle, delta {:.3} ms/cycle)",
                i + 1,
                r.overhead_vs_full * 100.0,
                r.modes[0].ms_per_cycle,
                r.modes[1].ms_per_cycle
            );
            r
        })
        .collect();
    runs.sort_by(|a, b| {
        a.overhead_vs_full
            .partial_cmp(&b.overhead_vs_full)
            .expect("finite overheads")
    });
    let result = runs.swap_remove(RUNS / 2);

    for m in &result.modes {
        println!(
            "  {:>9}: {:>8.3} ms/cycle (max {:>8.3})   {:>9} entries shipped   {} changes",
            m.mode, m.ms_per_cycle, m.max_cycle_ms, m.entries_shipped, m.result_changes
        );
    }
    println!(
        "  delta emission overhead vs full lists (median run): {:+.2}%",
        result.overhead_vs_full * 100.0
    );

    let json = render_json(&cfg, &result);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_deltas.json");
    std::fs::write(path, &json).expect("write BENCH_deltas.json");
    println!("wrote {path}");
}
