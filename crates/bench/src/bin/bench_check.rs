//! The CI benchmark-regression gate, reproducible locally:
//!
//! ```text
//! cargo run --release -p cpm-bench --bin bench_check
//! ```
//!
//! Re-runs the micro-benchmarks at reduced scale and compares them
//! against the checked-in `BENCH_*.json` baselines (see
//! [`cpm_bench::check`] for exactly what each gate enforces). Exits
//! non-zero on any regression; baseline-hygiene problems (e.g. an
//! under-threaded `BENCH_shards.json`) print loud `WARN` lines without
//! failing.
//!
//! The tolerance (default +25%) can be widened for noisy hosts via the
//! `BENCH_CHECK_TOLERANCE` environment variable (e.g. `0.40`).

use cpm_bench::check::{
    check_cluster, check_deltas, check_grid, check_index, check_kernels, check_pipeline,
    check_recovery, check_regrid, check_server, check_shards, parse_cluster_baseline,
    parse_deltas_baseline, parse_grid_baseline, parse_index_baseline, parse_kernels_baseline,
    parse_pipeline_baseline, parse_recovery_baseline, parse_regrid_baseline, parse_server_baseline,
    parse_shards_baseline, GateReport, DEFAULT_TOLERANCE,
};
use cpm_bench::{
    cluster, deltas, grid_storage, index, kernels, pipeline, recovery, regrid, server, shards,
};

fn main() {
    let tolerance = std::env::var("BENCH_CHECK_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| *t >= 0.0)
        .unwrap_or(DEFAULT_TOLERANCE);
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

    println!("bench_check: tolerance +{:.0}%\n", tolerance * 100.0);
    let mut failed = false;

    // Gate 1: grid-storage ns-per-op vs BENCH_grid.json.
    let grid_baseline_path = format!("{root}/BENCH_grid.json");
    match std::fs::read_to_string(&grid_baseline_path) {
        Ok(json) => {
            let baseline = parse_grid_baseline(&json);
            assert!(
                !baseline.is_empty(),
                "no dense-bucket entries in {grid_baseline_path}"
            );
            let cfg = grid_storage::GridStorageConfig::reduced();
            println!(
                "## grid storage (reduced: N={}, dims {:?})",
                cfg.n_objects, cfg.dims
            );
            let measured = grid_storage::run(&cfg);
            failed |= print_report(check_grid(&baseline, &measured, tolerance));
        }
        Err(e) => {
            eprintln!("cannot read {grid_baseline_path}: {e}");
            failed = true;
        }
    }

    // Gate 2: shard scaling property vs the host's parallelism, plus the
    // checked-in scaling curve when the baseline host could scale too.
    let cfg = shards::ShardBenchConfig::reduced();
    let threads = shards::available_threads();
    let shards_baseline = std::fs::read_to_string(format!("{root}/BENCH_shards.json"))
        .ok()
        .as_deref()
        .and_then(parse_shards_baseline);
    println!(
        "\n## shard scaling (reduced: N={}, n={}, shards {:?}, host threads {})",
        cfg.n_objects, cfg.n_queries, cfg.shard_counts, threads
    );
    let measured = shards::run(&cfg);
    for m in &measured {
        println!(
            "   shards {:>2}: {:>8.3} ms/cycle   speedup {:>5.2}x",
            m.shards, m.ms_per_cycle, m.speedup
        );
    }
    failed |= print_report(check_shards(&measured, threads, shards_baseline, tolerance));

    // Gate 3: delta-emission overhead vs full-list results. Both modes
    // run in this process, so the ratio is machine-independent; the hard
    // bar (the < 10% acceptance criterion, plus fixed control headroom)
    // is never widened by BENCH_CHECK_TOLERANCE.
    let cfg = deltas::DeltaBenchConfig::reduced();
    let deltas_baseline = std::fs::read_to_string(format!("{root}/BENCH_deltas.json"))
        .ok()
        .as_deref()
        .and_then(parse_deltas_baseline);
    println!(
        "\n## delta emission (reduced: N={}, subscriptions={}, {} cycles)",
        cfg.n_objects, cfg.n_subscriptions, cfg.cycles
    );
    let run = deltas::run(&cfg);
    for m in &run.modes {
        println!(
            "   {:>9}: {:>8.3} ms/cycle   {:>8} entries shipped",
            m.mode, m.ms_per_cycle, m.entries_shipped
        );
    }
    failed |= print_report(check_deltas(&run, deltas_baseline, tolerance));

    // Gate 4: unified-server speedup over three dedicated engines. Both
    // modes run in this process under the paired protocol, so the >= 1.3x
    // acceptance bar (minus a fixed noise margin) is machine-independent
    // and never widened by BENCH_CHECK_TOLERANCE.
    let cfg = server::ServerBenchConfig::reduced();
    let server_baseline = std::fs::read_to_string(format!("{root}/BENCH_server.json"))
        .ok()
        .as_deref()
        .and_then(parse_server_baseline);
    println!(
        "\n## unified server (reduced: N={}, queries {}+{}+{}, {} cycles)",
        cfg.n_objects, cfg.knn_queries, cfg.range_queries, cfg.constrained_queries, cfg.cycles
    );
    let run = server::run(&cfg);
    for m in &run.modes {
        println!(
            "   {:>8}: {:>8.3} ms/cycle   {:>6} result changes",
            m.mode, m.ms_per_cycle, m.result_changes
        );
    }
    println!("   unified speedup: {:.2}x", run.unified_speedup);
    failed |= print_report(check_server(&run, server_baseline, tolerance));

    // Gate 5: adaptive re-gridding vs a fixed provisioned δ on the
    // drifting-hotspot stream. Both lanes run in this process under the
    // paired protocol, so the >= 1.2x acceptance bar (minus a fixed noise
    // margin) and the migration-pause bound are machine-independent and
    // never widened by BENCH_CHECK_TOLERANCE.
    let cfg = regrid::RegridBenchConfig::reduced();
    let regrid_baseline = std::fs::read_to_string(format!("{root}/BENCH_regrid.json"))
        .ok()
        .as_deref()
        .and_then(parse_regrid_baseline);
    println!(
        "\n## adaptive re-grid (reduced: N={}->{}, queries={}, {} cycles, provisioned {}²)",
        cfg.n_base,
        (cfg.n_base as f64 * cfg.peak_factor) as usize,
        cfg.n_queries,
        cfg.cycles,
        cfg.provisioned_dim()
    );
    let run = regrid::run(&cfg);
    for m in &run.modes {
        println!(
            "   {:>8}: {:>8.3} ms/cycle   {:>6} result changes",
            m.mode, m.ms_per_cycle, m.result_changes
        );
    }
    println!(
        "   adaptive speedup: {:.2}x ({} regrid(s), dim {} -> {})",
        run.adaptive_speedup, run.regrids, run.fixed_dim, run.final_dim
    );
    failed |= print_report(check_regrid(&run, cfg.n_base, regrid_baseline, tolerance));

    // Gate 6: crash-recovery restart pause vs the cycle cost it
    // interrupts. Cycle and recovery are timed in this process seconds
    // apart, so the <= 25-median-cycles pause bound is machine-independent
    // and never widened by BENCH_CHECK_TOLERANCE.
    let cfg = recovery::RecoveryBenchConfig::reduced();
    let recovery_baseline = std::fs::read_to_string(format!("{root}/BENCH_recovery.json"))
        .ok()
        .as_deref()
        .and_then(parse_recovery_baseline);
    println!(
        "\n## crash recovery (reduced: N={}, queries {}+{}+{}+{}, {} cycles journaled)",
        cfg.n_objects,
        cfg.knn_queries,
        cfg.range_queries,
        cfg.constrained_queries,
        cfg.rnn_queries,
        cfg.cycles
    );
    let run = recovery::run(&cfg);
    println!(
        "   cycle {:.3} ms (max {:.3}), recovery {:.3} ms = {:.2} median cycles",
        run.median_cycle_ms, run.max_cycle_ms, run.recovery_ms, run.recovery_over_cycle
    );
    failed |= print_report(check_recovery(
        &run,
        cfg.n_objects,
        recovery_baseline,
        tolerance,
    ));

    // Gate 7: quadtree backend vs the uniform grid frozen at the
    // base-provisioned δ, plus the dyn-dispatch overhead bound. All
    // three lanes run in this process under the paired rotation
    // protocol, so the >= 1.15x and <= 1.10x bars (each with a fixed
    // noise margin) are machine-independent and never widened by
    // BENCH_CHECK_TOLERANCE.
    let cfg = index::IndexBenchConfig::reduced();
    let index_baseline = std::fs::read_to_string(format!("{root}/BENCH_index.json"))
        .ok()
        .as_deref()
        .and_then(parse_index_baseline);
    println!(
        "\n## spatial-index backends (reduced: N={}->{}, queries={}, {} cycles, \
         uniform {}² vs quadtree {}²)",
        cfg.n_base,
        (cfg.n_base as f64 * cfg.peak_factor) as usize,
        cfg.n_queries,
        cfg.cycles,
        cfg.uniform_dim(),
        cfg.quadtree_dim()
    );
    let run = index::run(&cfg);
    for m in &run.modes {
        println!(
            "   {:>12}: {:>8.3} ms/cycle   {:>6} result changes",
            m.mode, m.ms_per_cycle, m.result_changes
        );
    }
    println!(
        "   quadtree speedup: {:.2}x, dyn overhead: {:.2}x",
        run.quadtree_speedup, run.dyn_overhead
    );
    failed |= print_report(check_index(&run, cfg.n_base, index_baseline, tolerance));

    // Gate 8: batched distance kernel vs the scalar per-object idiom.
    // Both lanes run in this process under the paired protocol with
    // bit-identical outputs asserted, so the >= 1.3x acceptance bar
    // (minus a fixed noise margin) is machine-independent and never
    // widened by BENCH_CHECK_TOLERANCE.
    let cfg = kernels::KernelBenchConfig::reduced();
    let kernels_baseline = std::fs::read_to_string(format!("{root}/BENCH_kernels.json"))
        .ok()
        .as_deref()
        .and_then(parse_kernels_baseline);
    println!(
        "\n## distance kernels (reduced: dims {:?}, buckets {:?}, simd feature: {})",
        cfg.dims,
        cfg.buckets,
        cfg!(feature = "simd"),
    );
    let measured = kernels::run(&cfg);
    for m in &measured {
        println!(
            "   dim {:>4} bucket {:>3}: scalar {:>6.2} ns/obj vs batched {:>6.2} ns/obj \
             ({:>4.2}x)",
            m.dim, m.bucket, m.scalar_ns, m.batched_ns, m.speedup
        );
    }
    failed |= print_report(check_kernels(
        &measured,
        cfg!(feature = "simd"),
        kernels_baseline,
        tolerance,
    ));

    // Gate 9: coordinator merge overhead vs the single node. Both lanes
    // run in this process under the paired protocol with per-cycle
    // bit-identical merged deltas asserted; the gated statistic is the
    // coordinator's *serial merge slice* (the only part of a cluster
    // cycle that cannot be bought back with cores), so the <= 1.25x
    // bound (plus a fixed noise margin) is machine-independent and never
    // widened by BENCH_CHECK_TOLERANCE. The full-cycle ratio prints as
    // a host diagnostic.
    let cfg = cluster::ClusterBenchConfig::reduced();
    let cluster_baseline = std::fs::read_to_string(format!("{root}/BENCH_cluster.json"))
        .ok()
        .as_deref()
        .and_then(parse_cluster_baseline);
    println!(
        "\n## cluster merge (reduced: N={}, queries={}, {} cycles, {} workers, overlap {})",
        cfg.n_objects, cfg.n_queries, cfg.cycles, cfg.workers, cfg.overlap
    );
    let run = cluster::run(&cfg);
    for m in &run.modes {
        println!(
            "   {:>11}: {:>8.3} ms/cycle   {:>6} result changes",
            m.mode, m.ms_per_cycle, m.result_changes
        );
    }
    println!(
        "   merge {:.4} ms/cycle ({:.3}x of a single-node cycle); full-cycle ratio {:.3}x",
        run.merge_ms_per_cycle, run.merge_over_single, run.cluster_over_single
    );
    failed |= print_report(check_cluster(
        &run,
        cfg.n_objects,
        cluster_baseline,
        tolerance,
    ));

    // Gate 10: pipelined coordinator vs the serial cycle. The routing
    // bound (serial route slice <= 1.25x a single-node cycle, plus a
    // fixed noise margin) is machine-independent and never widened by
    // BENCH_CHECK_TOLERANCE; the >= 1.15x pipelined-over-serial speedup
    // needs real cores to overlap on, so it binds only on >= 4-thread
    // hosts and is loudly waived (WARN, never a silent skip) below —
    // the same pattern as the shard gate. Every run re-proves per-cycle
    // bit-identical merges across all three lanes.
    let cfg = pipeline::PipelineBenchConfig::reduced();
    let pipeline_baseline = std::fs::read_to_string(format!("{root}/BENCH_pipeline.json"))
        .ok()
        .as_deref()
        .and_then(parse_pipeline_baseline);
    println!(
        "\n## pipelined coordinator (reduced: N={}, queries={}, {} cycles in chunks of {}, \
         {} workers, host threads {})",
        cfg.n_objects, cfg.n_queries, cfg.cycles, cfg.chunk, cfg.workers, threads
    );
    let run = pipeline::run(&cfg);
    for m in &run.modes {
        println!(
            "   {:>11}: {:>8.3} ms/cycle   {:>6} result changes",
            m.mode, m.ms_per_cycle, m.result_changes
        );
    }
    println!(
        "   route/single {:.3}x; pipelined/serial {:.2}x",
        run.route_over_single, run.pipelined_over_serial
    );
    failed |= print_report(check_pipeline(
        &run,
        threads,
        cfg.n_objects,
        pipeline_baseline,
        tolerance,
    ));

    if failed {
        eprintln!("\nbench_check FAILED (widen with BENCH_CHECK_TOLERANCE if this host is noisy)");
        std::process::exit(1);
    }
    println!("\nbench_check passed");
}

/// Print a gate's comparisons; returns `true` if it failed. Warnings are
/// loud (stderr, `WARN` prefix) but do not fail the gate.
fn print_report(report: GateReport) -> bool {
    for line in &report.lines {
        println!("   {line}");
    }
    for warning in &report.warnings {
        eprintln!("   WARN: {warning}");
    }
    for failure in &report.failures {
        eprintln!("   FAIL: {failure}");
    }
    !report.passed()
}
