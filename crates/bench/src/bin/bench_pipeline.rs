//! Record the pipelined-coordinator baseline:
//!
//! ```text
//! cargo run --release -p cpm-bench --bin bench_pipeline
//! ```
//!
//! Runs the serial-vs-pipelined comparison at the acceptance scale (see
//! [`cpm_bench::pipeline`]) **three times** and records the median run
//! (by routing ratio) to `BENCH_pipeline.json` at the workspace root.
//! The recorded `route_over_single` — the serial coordinator's routing
//! slice over the single-node cycle — is the machine-independent PR
//! acceptance number (bar: ≤ 1.25 at `W = 4`); `pipelined_over_serial`
//! is the overlap's throughput payback, meaningful only next to the
//! recorded `threads_available` (on an under-threaded host it documents
//! honest 1-core diagnostics, and `bench_check` warns loudly instead of
//! certifying a speedup). Every cycle of every run asserts the merged
//! deltas bit-identical across all three lanes, so a completed
//! recording already proves conformance.

use cpm_bench::pipeline::{render_json, run, PipelineBenchConfig};

const RUNS: usize = 3;

fn main() {
    let cfg = PipelineBenchConfig::default();
    println!(
        "bench_pipeline: N={}, queries={}, k={}, {} cycles (+{} warmup) in chunks of {}, \
         grid {}², {} workers (overlap {}), median of {RUNS} runs",
        cfg.n_objects,
        cfg.n_queries,
        cfg.k,
        cfg.cycles,
        cfg.warmup_cycles,
        cfg.chunk,
        cfg.grid_dim,
        cfg.workers,
        cfg.overlap
    );
    let mut runs: Vec<_> = (0..RUNS)
        .map(|i| {
            let r = run(&cfg);
            println!(
                "  run {}: route {:.3}x, pipelined/serial {:.2}x (single {:.3}, serial {:.3}, \
                 pipelined {:.3} ms/cycle)",
                i + 1,
                r.route_over_single,
                r.pipelined_over_serial,
                r.modes[0].ms_per_cycle,
                r.modes[1].ms_per_cycle,
                r.modes[2].ms_per_cycle
            );
            r
        })
        .collect();
    runs.sort_by(|a, b| {
        a.route_over_single
            .partial_cmp(&b.route_over_single)
            .expect("finite ratios")
    });
    let result = runs.swap_remove(RUNS / 2);

    for m in &result.modes {
        println!(
            "  {:>11}: {:>8.3} ms/cycle   {} result changes",
            m.mode, m.ms_per_cycle, m.result_changes
        );
    }
    println!(
        "  routing slice vs single-node cycle (median run): {:.3}x; pipelined speedup {:.2}x",
        result.route_over_single, result.pipelined_over_serial
    );
    println!(
        "  stages (serial): route {:.3} / wait {:.3} / merge {:.3} ms; (pipelined): \
         {:.3} / {:.3} / {:.3} ms",
        result.serial_stages.route_ms,
        result.serial_stages.wait_ms,
        result.serial_stages.merge_ms,
        result.pipelined_stages.route_ms,
        result.pipelined_stages.wait_ms,
        result.pipelined_stages.merge_ms
    );

    let json = render_json(&cfg, &result);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {path}");
}
