//! Distance-kernel micro-benchmark front end (see [`cpm_bench::kernels`]
//! for the workload): the batched struct-of-arrays kernel vs the scalar
//! `Option<Point>` idiom, over position-table sizes 64/256/1024 × bucket
//! sizes 1–256. Output checksums are asserted bit-identical in-run.
//!
//! Run with `cargo run --release -p cpm-bench --bin bench_kernels`
//! (add `--features simd` for the explicit-SIMD lane). Results are
//! printed and overwrite `BENCH_kernels.json` at the workspace root so
//! later PRs have a perf trajectory (and the `bench_check` CI gate has a
//! baseline).

use cpm_bench::kernels::{gate_speedup, render_json, run, KernelBenchConfig};

fn main() {
    let cfg = KernelBenchConfig::default();
    println!(
        "distance-kernel micro-benchmark: dims {:?} x buckets {:?}, \
         {} buckets/cell, ~{} ops/lane/cell, simd feature: {}",
        cfg.dims,
        cfg.buckets,
        cfg.n_buckets,
        cfg.target_ops,
        cfg!(feature = "simd"),
    );
    let results = run(&cfg);
    for m in &results {
        println!(
            "dim {:>4} bucket {:>3}: scalar {:>6.2} ns/obj vs batched {:>6.2} ns/obj \
             ({:>4.2}x)",
            m.dim, m.bucket, m.scalar_ns, m.batched_ns, m.speedup
        );
    }
    println!(
        "gate statistic (min speedup, dim 64, bucket >= 32): {:.2}x",
        gate_speedup(&results).unwrap_or(0.0)
    );

    let json = render_json(&cfg, &results);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}
