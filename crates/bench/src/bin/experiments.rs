//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <name>... [--scale X] [--paper] [--shards LIST]
//!
//! names:
//!   table2_1 table6_1
//!   fig6_1 fig6_2a fig6_2b fig6_3 fig6_4a fig6_4b fig6_5a fig6_5b
//!   fig6_6a fig6_6b
//!   space analysis ablation ann constrained skew drift index shards
//!   deltas mixed rnn pipeline
//!   all          (everything above)
//!
//! options:
//!   --scale X     scale factor in (0, 1] applied to N, n and timestamps
//!                 (default 0.1)
//!   --paper       shorthand for --scale 1.0 (full Table 6.1 scale; slow)
//!   --shards LIST comma-separated shard counts for the `shards`
//!                 experiment (default 1,2,4,8)
//! ```

use cpm_bench::{figures, DEFAULT_SCALE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = DEFAULT_SCALE;
    let mut shards: Vec<usize> = vec![1, 2, 4, 8];
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => scale = 1.0,
            "--scale" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--scale needs a value"))
                    .parse::<f64>()
                    .unwrap_or_else(|_| die("--scale needs a float in (0, 1]"));
                if !(v > 0.0 && v <= 1.0) {
                    die("--scale out of (0, 1]");
                }
                scale = v;
            }
            "--shards" => {
                let list = it.next().unwrap_or_else(|| die("--shards needs a value"));
                shards = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .unwrap_or_else(|| die("--shards needs positive integers, e.g. 1,2,4"))
                    })
                    .collect();
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        print_help();
        return;
    }
    if names.iter().any(|n| n == "all") {
        names = vec![
            "table2_1",
            "table6_1",
            "fig6_1",
            "fig6_2a",
            "fig6_2b",
            "fig6_3",
            "fig6_4a",
            "fig6_4b",
            "fig6_5a",
            "fig6_5b",
            "fig6_6a",
            "fig6_6b",
            "space",
            "analysis",
            "ablation",
            "ann",
            "constrained",
            "skew",
            "drift",
            "index",
            "shards",
            "deltas",
            "mixed",
            "rnn",
            "pipeline",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    println!("# CPM reproduction experiments (scale {scale})\n");
    for name in &names {
        run_experiment(name, scale, &shards);
    }
}

fn run_experiment(name: &str, scale: f64, shards: &[usize]) {
    let start = std::time::Instant::now();
    match name {
        "table2_1" => print_table_2_1(),
        "table6_1" => print_table_6_1(scale),
        "fig6_1" => figures::fig6_1(scale).print(),
        "fig6_2a" => figures::fig6_2a(scale).print(),
        "fig6_2b" => figures::fig6_2b(scale).print(),
        "fig6_3" | "fig6_3a" | "fig6_3b" => {
            let (a, b) = figures::fig6_3(scale);
            a.print();
            b.print();
        }
        "fig6_4a" => figures::fig6_4a(scale).print(),
        "fig6_4b" => figures::fig6_4b(scale).print(),
        "fig6_5a" => figures::fig6_5a(scale).print(),
        "fig6_5b" => figures::fig6_5b(scale).print(),
        "fig6_6a" => figures::fig6_6a(scale).print(),
        "fig6_6b" => figures::fig6_6b(scale).print(),
        "space" => figures::space(scale).print(),
        "analysis" => figures::analysis(scale).print(),
        "ablation" => figures::ablation(scale).print(),
        "ann" => {
            figures::ann(scale).print();
            figures::ann_moving_sets(scale).print();
        }
        "constrained" => figures::constrained(scale).print(),
        "skew" => figures::skew(scale).print(),
        "drift" => figures::drift(scale).print(),
        "index" => figures::index_backends(scale).print(),
        "shards" => figures::shards(scale, shards).print(),
        "deltas" => figures::deltas(scale).print(),
        "mixed" => figures::mixed(scale).print(),
        "rnn" => figures::rnn(scale).print(),
        "pipeline" => print_pipeline_stages(),
        other => eprintln!("unknown experiment: {other} (see --help)"),
    }
    eprintln!("[{name} took {:.1}s]\n", start.elapsed().as_secs_f64());
}

/// Per-stage coordinator timings (route / worker wait / merge) for the
/// serial and pipelined cluster cycles at `W = 4`, from the
/// coordinator's own [`CoordinatorMetrics`] instrumentation — the same
/// numbers bench gate 10 bounds. Runs at the gate's reduced scale so it
/// finishes in seconds; `bench_pipeline` records the acceptance scale.
///
/// [`CoordinatorMetrics`]: cpm_cluster::CoordinatorMetrics
fn print_pipeline_stages() {
    let cfg = cpm_bench::pipeline::PipelineBenchConfig::reduced();
    let run = cpm_bench::pipeline::run(&cfg);
    println!(
        "## Pipelined coordinator stage timings (N={}, queries={}, {} workers)\n",
        cfg.n_objects, cfg.n_queries, cfg.workers
    );
    println!("lane        | route ms | wait ms  | merge ms | ms/cycle");
    println!("------------+----------+----------+----------+---------");
    for (lane, stages, ms) in [
        ("serial", run.serial_stages, run.modes[1].ms_per_cycle),
        ("pipelined", run.pipelined_stages, run.modes[2].ms_per_cycle),
    ] {
        println!(
            "{lane:<11} | {:>8.3} | {:>8.3} | {:>8.3} | {:>8.3}",
            stages.route_ms, stages.wait_ms, stages.merge_ms, ms
        );
    }
    println!(
        "\nsingle-node reference: {:.3} ms/cycle; route/single {:.3}x; \
         pipelined/serial {:.2}x\n",
        run.modes[0].ms_per_cycle, run.route_over_single, run.pipelined_over_serial
    );
}

fn print_table_2_1() {
    println!("## Table 2.1 — properties of monitoring methods\n");
    println!("method    | query | memory | processing  | result");
    println!("----------+-------+--------+-------------+------------");
    println!("Q-index   | range | main   | distributed | exact");
    println!("MQM       | range | main   | distributed | exact");
    println!("Mobieyes  | range | main   | distributed | exact");
    println!("SINA      | range | disk   | centralized | exact");
    println!("DISC      | NN    | main   | centralized | approximate");
    println!("YPK-CNN   | NN    | main   | centralized | exact");
    println!("SEA-CNN   | NN    | disk   | centralized | exact");
    println!("CPM       | NN    | main   | centralized | exact\n");
}

fn print_table_6_1(scale: f64) {
    let p = figures::base_params(scale);
    println!("## Table 6.1 — system parameters (this run, scale {scale})\n");
    println!("parameter             | default (run)   | paper range");
    println!("----------------------+-----------------+----------------------");
    println!(
        "object population N   | {:<15} | 10, 50, 100, 150, 200 (K)",
        p.n_objects
    );
    println!(
        "number of queries n   | {:<15} | 1, 2, 5, 7, 10 (K)",
        p.n_queries
    );
    println!("number of NNs k       | {:<15} | 1, 4, 16, 64, 256", p.k);
    println!(
        "object/query speed    | {:<15} | slow, medium, fast",
        p.object_speed.label()
    );
    println!(
        "object agility f_obj  | {:<15} | 10..50 (%)",
        format!("{:.0}%", p.f_obj * 100.0)
    );
    println!(
        "query agility f_qry   | {:<15} | 10..50 (%)",
        format!("{:.0}%", p.f_qry * 100.0)
    );
    println!(
        "grid                  | {0}x{0}         | 32²..1024²",
        p.grid_dim
    );
    println!("timestamps            | {:<15} | 100\n", p.timestamps);
}

fn print_help() {
    println!(
        "usage: experiments <name>... [--scale X | --paper] [--shards LIST]\n\
         names: table2_1 table6_1 fig6_1 fig6_2a fig6_2b fig6_3 fig6_4a fig6_4b\n\
         \u{20}      fig6_5a fig6_5b fig6_6a fig6_6b space analysis ablation ann\n\
         \u{20}      constrained skew drift index shards deltas mixed rnn pipeline\n\
         \u{20}      all\n\
         --shards LIST  comma-separated shard counts for the `shards`\n\
         \u{20}              experiment (default 1,2,4,8)"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
