//! Shard-scaling benchmark front end (see [`cpm_bench::shards`] for the
//! workload): sharded parallel engine vs sequential at the paper's default
//! scale (100K objects, 5K queries, k = 16, 10% movers, 128² grid).
//!
//! ```text
//! bench_shards [--shards LIST] [--scale X]
//!
//! --shards LIST  comma-separated shard counts (default 1,2,4,8; the
//!                first entry is the speedup baseline)
//! --scale X      multiply N and n by X in (0, 1] (full scale by default;
//!                the recorded BENCH_shards.json baseline is full scale)
//! ```
//!
//! Results are printed and overwrite `BENCH_shards.json` at the workspace
//! root, including the host's thread count — scaling curves are
//! meaningless without it.

use cpm_bench::shards::{available_threads, render_json, run, ShardBenchConfig};

fn main() {
    let mut cfg = ShardBenchConfig::default();
    let mut write_json = true;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => {
                let list = it.next().unwrap_or_else(|| die("--shards needs a value"));
                cfg.shard_counts = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .unwrap_or_else(|| die("--shards needs positive integers"))
                    })
                    .collect();
            }
            "--scale" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--scale needs a value"))
                    .parse::<f64>()
                    .ok()
                    .filter(|v| *v > 0.0 && *v <= 1.0)
                    .unwrap_or_else(|| die("--scale needs a float in (0, 1]"));
                cfg.n_objects = ((cfg.n_objects as f64 * v) as usize).max(100);
                cfg.n_queries = ((cfg.n_queries as f64 * v) as usize).max(10);
                // Off-baseline scales must not overwrite the recorded curve.
                write_json = v == 1.0;
            }
            "--help" | "-h" => {
                println!("usage: bench_shards [--shards LIST] [--scale X]");
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }

    println!(
        "shard scaling benchmark: N={}, n={}, k={}, {:.0}% movers x {} cycles, \
         grid {}², host threads: {}",
        cfg.n_objects,
        cfg.n_queries,
        cfg.k,
        cfg.move_fraction * 100.0,
        cfg.cycles,
        cfg.grid_dim,
        available_threads(),
    );
    let results = run(&cfg);
    for m in &results {
        println!(
            "shards {:>2}: {:>9.3} ms/cycle   speedup {:>5.2}x   worst cycle {:>9.3} ms",
            m.shards, m.ms_per_cycle, m.speedup, m.max_cycle_ms
        );
    }

    if write_json {
        let json = render_json(&cfg, &results);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shards.json");
        std::fs::write(path, &json).expect("write BENCH_shards.json");
        println!("wrote {path}");
    } else {
        println!("(reduced scale: BENCH_shards.json left untouched)");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
