//! Record the crash-recovery baseline:
//!
//! ```text
//! cargo run --release -p cpm-bench --bin bench_recovery
//! ```
//!
//! Journals the acceptance-scale workload (100K objects, the mixed query
//! set — see [`cpm_bench::recovery`]) and times a full
//! snapshot-restore + journal-replay recovery, **three times**, recording
//! the median-pause-ratio run to `BENCH_recovery.json` at the workspace
//! root. The recorded `recovery_over_cycle` is the PR acceptance number
//! (bar: ≤ 25× the median cycle) and the curve `bench_check` compares
//! reduced-scale re-runs against.

use cpm_bench::recovery::{render_json, run, RecoveryBenchConfig};

const RUNS: usize = 3;

fn main() {
    let cfg = RecoveryBenchConfig::default();
    println!(
        "bench_recovery: N={}, queries {}+{}+{}+{} (k={}), {} cycles journaled, \
         {}² grid, {} shard(s), median of {RUNS} runs",
        cfg.n_objects,
        cfg.knn_queries,
        cfg.range_queries,
        cfg.constrained_queries,
        cfg.rnn_queries,
        cfg.k,
        cfg.cycles,
        cfg.grid_dim,
        cfg.shards
    );
    let mut runs: Vec<_> = (0..RUNS)
        .map(|i| {
            let r = run(&cfg);
            println!(
                "  run {}: recovery {:.3} ms = {:.2} median cycles ({:.3} ms/cycle, \
                 {} records replayed, snapshot {} B)",
                i + 1,
                r.recovery_ms,
                r.recovery_over_cycle,
                r.median_cycle_ms,
                r.replayed,
                r.snapshot_bytes
            );
            r
        })
        .collect();
    runs.sort_by(|a, b| {
        a.recovery_over_cycle
            .partial_cmp(&b.recovery_over_cycle)
            .expect("finite ratios")
    });
    let result = runs.swap_remove(RUNS / 2);

    println!(
        "  median run: {:.3} ms cycle, {:.3} ms recovery, pause ratio {:.2}",
        result.median_cycle_ms, result.recovery_ms, result.recovery_over_cycle
    );
    let json = render_json(&cfg, &result);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(path, &json).expect("write baseline");
    println!("wrote {path}");
}
