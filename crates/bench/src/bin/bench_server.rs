//! Record the unified-server baseline (`BENCH_server.json`):
//!
//! ```text
//! cargo run --release -p cpm-bench --bin bench_server [--reduced]
//! ```
//!
//! Measures a mixed k-NN + range + constrained workload on one
//! [`cpm_core::CpmServer`] versus three dedicated single-kind engines
//! (see [`cpm_bench::server`] for the protocol) and writes the JSON
//! document to the repository root.

use cpm_bench::server::{render_json, run, ServerBenchConfig};

fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let cfg = if reduced {
        ServerBenchConfig::reduced()
    } else {
        ServerBenchConfig::default()
    };
    eprintln!(
        "bench_server: N={}, queries {}+{}+{}, {} cycles, grid {}^2 ...",
        cfg.n_objects,
        cfg.knn_queries,
        cfg.range_queries,
        cfg.constrained_queries,
        cfg.cycles,
        cfg.grid_dim
    );
    let outcome = run(&cfg);
    for m in &outcome.modes {
        eprintln!(
            "  {:>8}: {:>9.3} ms/cycle (max {:>9.3}), {} result changes",
            m.mode, m.ms_per_cycle, m.max_cycle_ms, m.result_changes
        );
    }
    eprintln!("  unified speedup: {:.2}x", outcome.unified_speedup);
    let json = render_json(&cfg, &outcome);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, &json).expect("write BENCH_server.json");
    eprintln!("wrote {path}");
    print!("{json}");
}
