//! Record the adaptive re-grid baseline:
//!
//! ```text
//! cargo run --release -p cpm-bench --bin bench_regrid
//! ```
//!
//! Runs the fixed-δ vs adaptive comparison at the acceptance scale (10K
//! base objects breathing to 100K, 500 hotspot-tracking queries — see
//! [`cpm_bench::regrid`]) **three times** and records the median-speedup
//! run to `BENCH_regrid.json` at the workspace root. The recorded
//! `adaptive_speedup` is the PR acceptance number (bar: ≥ 1.2×) and the
//! curve `bench_check` compares reduced-scale re-runs against.

use cpm_bench::regrid::{render_json, run, RegridBenchConfig};

const RUNS: usize = 3;

fn main() {
    let cfg = RegridBenchConfig::default();
    println!(
        "bench_regrid: N={}→{}, queries={}, k={}, {} cycles (+{} warmup), \
         provisioned dim {}², {} shard(s), median of {RUNS} runs",
        cfg.n_base,
        (cfg.n_base as f64 * cfg.peak_factor) as usize,
        cfg.n_queries,
        cfg.k,
        cfg.cycles,
        cfg.warmup_cycles,
        cfg.provisioned_dim(),
        cfg.shards
    );
    let mut runs: Vec<_> = (0..RUNS)
        .map(|i| {
            let r = run(&cfg);
            println!(
                "  run {}: speedup {:.2}x (fixed {:.3} ms/cycle, adaptive {:.3} ms/cycle, \
                 {} regrid(s), dim {} -> {})",
                i + 1,
                r.adaptive_speedup,
                r.modes[0].ms_per_cycle,
                r.modes[1].ms_per_cycle,
                r.regrids,
                r.fixed_dim,
                r.final_dim
            );
            r
        })
        .collect();
    runs.sort_by(|a, b| {
        a.adaptive_speedup
            .partial_cmp(&b.adaptive_speedup)
            .expect("finite speedups")
    });
    let result = runs.swap_remove(RUNS / 2);

    for m in &result.modes {
        println!(
            "  {:>8}: {:>8.3} ms/cycle (max {:>8.3})   {} changes",
            m.mode, m.ms_per_cycle, m.max_cycle_ms, m.result_changes
        );
    }
    println!(
        "  adaptive speedup (median run): {:.2}x; {} regrid(s), {} objects migrated, \
         slowest regrid cycle {:.3} ms",
        result.adaptive_speedup,
        result.regrids,
        result.regrid_objects_migrated,
        result.max_regrid_cycle_ms
    );

    let json = render_json(&cfg, &result);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_regrid.json");
    std::fs::write(path, &json).expect("write BENCH_regrid.json");
    println!("wrote {path}");
}
