//! Record the spatial-index backend baseline:
//!
//! ```text
//! cargo run --release -p cpm-bench --bin bench_index
//! ```
//!
//! Runs the three-lane uniform-mono / uniform-dyn / quadtree comparison
//! at the acceptance scale (10K base objects breathing to 100K, 500
//! hotspot-tracking queries — see [`cpm_bench::index`]) **three times**
//! and records the median-speedup run to `BENCH_index.json` at the
//! workspace root. The recorded `quadtree_speedup` (bar: ≥ 1.15×) and
//! `dyn_overhead` (bound: ≤ 1.10×) are the PR acceptance numbers and the
//! curve `bench_check` compares reduced-scale re-runs against.

use cpm_bench::index::{render_json, run, IndexBenchConfig};

const RUNS: usize = 3;

fn main() {
    let cfg = IndexBenchConfig::default();
    println!(
        "bench_index: N={}→{}, queries={}, k={}, {} cycles (+{} warmup), \
         uniform dim {}², quadtree dim {}², {} shard(s), median of {RUNS} runs",
        cfg.n_base,
        (cfg.n_base as f64 * cfg.peak_factor) as usize,
        cfg.n_queries,
        cfg.k,
        cfg.cycles,
        cfg.warmup_cycles,
        cfg.uniform_dim(),
        cfg.quadtree_dim(),
        cfg.shards
    );
    let mut runs: Vec<_> = (0..RUNS)
        .map(|i| {
            let r = run(&cfg);
            println!(
                "  run {}: quadtree speedup {:.2}x, dyn overhead {:.2}x \
                 (mono {:.3} / dyn {:.3} / quad {:.3} ms/cycle)",
                i + 1,
                r.quadtree_speedup,
                r.dyn_overhead,
                r.modes[0].ms_per_cycle,
                r.modes[1].ms_per_cycle,
                r.modes[2].ms_per_cycle
            );
            r
        })
        .collect();
    runs.sort_by(|a, b| {
        a.quadtree_speedup
            .partial_cmp(&b.quadtree_speedup)
            .expect("finite speedups")
    });
    let result = runs.swap_remove(RUNS / 2);

    for m in &result.modes {
        println!(
            "  {:>12}: {:>8.3} ms/cycle (max {:>8.3})   {} changes",
            m.mode, m.ms_per_cycle, m.max_cycle_ms, m.result_changes
        );
    }
    println!(
        "  quadtree speedup (median run): {:.2}x at dim {}² vs uniform {}²; \
         dyn overhead {:.2}x",
        result.quadtree_speedup, result.quadtree_dim, result.uniform_dim, result.dyn_overhead
    );

    let json = render_json(&cfg, &result);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_index.json");
    std::fs::write(path, &json).expect("write BENCH_index.json");
    println!("wrote {path}");
}
