//! Re-grid benchmark: fixed-δ vs cost-model-driven adaptive resolution on
//! the drifting-hotspot stream ([`cpm_gen::drift`]).
//!
//! The workload breathes its population between a base count and
//! `peak_factor ×` that base while a single Gaussian hotspot sweeps the
//! workspace — so the Section 4.1 cost-model optimum moves mid-run. Both
//! lanes replay the identical pre-generated stream on
//! [`cpm_core::ShardedKnnMonitor`]:
//!
//! * **fixed** — the grid resolution a capacity plan would have
//!   provisioned for the *base* population
//!   ([`cpm_core::CostModel::optimal_dim`] at `n_base`), frozen for the
//!   whole run;
//! * **adaptive** — the same starting resolution under
//!   [`cpm_core::RegridPolicy::Auto`], free to re-grid at cycle
//!   boundaries.
//!
//! The protocol is the paired order-alternating one of
//! [`crate::deltas`]: each event batch is processed by both lanes back to
//! back in alternating order, and the headline speedup is the **median of
//! per-cycle-pair `fixed ms / adaptive ms` ratios** — robust both to
//! noisy-neighbor stalls (both sides of a pair share them) and to the
//! adaptive lane's re-grid spikes (a handful of outlier pairs cannot move
//! the median). Migration cost is reported separately: the slowest
//! re-grid cycle, which the `check_regrid` gate bounds against the
//! adaptive lane's steady-state cycle time.
//!
//! Every cycle's changed-query list is asserted **equal between the
//! lanes**: k-NN results are δ-independent, so the adaptive lane must do
//! less work while reporting exactly the same answers.
//!
//! The `bench_regrid` binary runs [`RegridBenchConfig::default`] and
//! records `BENCH_regrid.json`; the CI gate (`bench_check`) re-runs
//! [`RegridBenchConfig::reduced`] and enforces the ≥ 1.2× acceptance bar
//! (see [`crate::check::check_regrid`]).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cpm_core::{AutoRegridConfig, CostModel, RegridPolicy, ShardedKnnMonitor};
use cpm_gen::{DriftConfig, DriftingHotspotWorkload, TickEvents, WorkloadConfig};

/// Workload parameters for one fixed-vs-adaptive run.
#[derive(Debug, Clone)]
pub struct RegridBenchConfig {
    /// Base object population (the stream breathes up to
    /// `n_base × peak_factor`).
    pub n_base: usize,
    /// Peak population as a multiple of `n_base`.
    pub peak_factor: f64,
    /// Installed k-NN queries (they track the hotspot).
    pub n_queries: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Object agility `f_obj`.
    pub f_obj: f64,
    /// Query agility `f_qry`.
    pub f_qry: f64,
    /// Measured processing cycles (the population ramp spans half of
    /// them up, half down).
    pub cycles: usize,
    /// Unmeasured warmup cycles replayed first per lane.
    pub warmup_cycles: usize,
    /// Query shards (1 = sequential maintenance).
    pub shards: usize,
    /// How often the adaptive lane evaluates the model, in cycles.
    pub check_every: u64,
    /// Minimum cycles between the adaptive lane's re-grids.
    pub cooldown: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RegridBenchConfig {
    /// The acceptance-scale configuration recorded in `BENCH_regrid.json`
    /// (10K → 100K objects, 500 tracking queries).
    fn default() -> Self {
        Self {
            n_base: 10_000,
            peak_factor: 10.0,
            n_queries: 500,
            k: 16,
            f_obj: 0.5,
            f_qry: 0.3,
            cycles: 60,
            warmup_cycles: 2,
            shards: 1,
            check_every: 4,
            cooldown: 8,
            seed: 2005,
        }
    }
}

impl RegridBenchConfig {
    /// The reduced-scale configuration the CI bench gate runs on every PR.
    pub fn reduced() -> Self {
        Self {
            n_base: 2_000,
            n_queries: 100,
            cycles: 40,
            ..Self::default()
        }
    }

    /// The resolution a capacity plan would provision for the base
    /// population — the fixed lane's (and the adaptive lane's starting)
    /// grid dimension.
    pub fn provisioned_dim(&self) -> u32 {
        CostModel {
            n_objects: self.n_base,
            n_queries: self.n_queries,
            k: self.k,
            delta: 0.0, // ignored by optimal_dim
            f_obj: self.f_obj,
            f_qry: self.f_qry,
            skew: 1.0,
        }
        .optimal_dim(16, 1024)
    }
}

/// Timings for one lane.
#[derive(Debug, Clone, Copy)]
pub struct RegridMeasurement {
    /// `"fixed"` or `"adaptive"`.
    pub mode: &'static str,
    /// **Median** wall time per measured cycle, in milliseconds.
    pub ms_per_cycle: f64,
    /// Slowest single measured cycle, in milliseconds.
    pub max_cycle_ms: f64,
    /// Total result changes over the measured cycles (asserted identical
    /// across lanes — re-grids are observationally invisible).
    pub result_changes: usize,
}

/// Outcome of one fixed-vs-adaptive run.
#[derive(Debug, Clone)]
pub struct RegridBenchRun {
    /// Per-lane measurements: `[fixed, adaptive]`.
    pub modes: [RegridMeasurement; 2],
    /// Median per-cycle-pair `fixed ms / adaptive ms`: the steady-state
    /// benefit of adapting the resolution. The PR acceptance bar is
    /// ≥ 1.2 on this workload.
    pub adaptive_speedup: f64,
    /// The provisioned (fixed-lane) resolution.
    pub fixed_dim: u32,
    /// The adaptive lane's resolution at the end of the run.
    pub final_dim: u32,
    /// Re-grids the adaptive lane applied during the measured cycles.
    pub regrids: u64,
    /// Objects migrated across those re-grids.
    pub regrid_objects_migrated: u64,
    /// Slowest adaptive cycle that applied a re-grid, in milliseconds
    /// (0 when no re-grid happened). The gate bounds this against the
    /// adaptive lane's median cycle: migration pauses must stay
    /// amortizable.
    pub max_regrid_cycle_ms: f64,
}

fn median_ms(mut times: Vec<Duration>) -> (f64, f64) {
    times.sort_unstable();
    let median = times
        .get(times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    let max = times.last().copied().unwrap_or(Duration::ZERO);
    (median.as_secs_f64() * 1e3, max.as_secs_f64() * 1e3)
}

/// Run both lanes over the identical pre-generated drift stream and
/// report the speedup plus migration-cost numbers.
///
/// Panics if the per-cycle changed-query lists ever differ between the
/// lanes: results are δ-independent, so any divergence means the re-grid
/// machinery broke conformance.
pub fn run(cfg: &RegridBenchConfig) -> RegridBenchRun {
    let total_cycles = cfg.warmup_cycles + cfg.cycles;
    let mut workload = DriftingHotspotWorkload::new(
        WorkloadConfig {
            n_objects: cfg.n_base,
            n_queries: cfg.n_queries,
            k: cfg.k,
            f_obj: cfg.f_obj,
            f_qry: cfg.f_qry,
            seed: cfg.seed,
            ..WorkloadConfig::default()
        },
        DriftConfig {
            peak_factor: cfg.peak_factor,
            ramp_ticks: (total_cycles / 2).max(1),
            ..DriftConfig::default()
        },
    );
    let initial_objects: Vec<_> = workload.initial_objects().collect();
    let initial_queries: Vec<_> = workload.initial_queries().collect();
    let ticks: Vec<TickEvents> = (0..total_cycles).map(|_| workload.tick()).collect();

    let fixed_dim = cfg.provisioned_dim();
    let build = |adaptive: bool| {
        let mut m = ShardedKnnMonitor::new(fixed_dim, cfg.shards);
        if adaptive {
            m.set_regrid_policy(RegridPolicy::Auto(AutoRegridConfig {
                check_every: cfg.check_every,
                cooldown: cfg.cooldown,
                ..AutoRegridConfig::default()
            }));
        }
        m.populate(initial_objects.iter().copied());
        for &(qid, pos, k) in &initial_queries {
            m.install_query(qid, pos, k);
        }
        m
    };
    let mut fixed = build(false);
    let mut adaptive = build(true);

    let (warmup, measured) = ticks.split_at(cfg.warmup_cycles.min(ticks.len()));
    for tick in warmup {
        fixed.process_cycle(&tick.object_events, &tick.query_events);
        adaptive.process_cycle(&tick.object_events, &tick.query_events);
    }
    // Warmup work (including any early re-grid) is not part of the
    // measured migration accounting.
    fixed.take_metrics();
    adaptive.take_metrics();

    let mut fixed_times = Vec::with_capacity(measured.len());
    let mut adaptive_times = Vec::with_capacity(measured.len());
    let mut fixed_changes = 0usize;
    let mut adaptive_changes = 0usize;
    let mut regrid_cycle_ms: Vec<f64> = Vec::new();
    let mut regrids_seen = 0u64;

    for (i, tick) in measured.iter().enumerate() {
        let mut run_fixed = |fixed: &mut ShardedKnnMonitor| {
            let start = Instant::now();
            let changed = fixed.process_cycle(&tick.object_events, &tick.query_events);
            fixed_times.push(start.elapsed());
            fixed_changes += changed.len();
            changed
        };
        let mut run_adaptive = |adaptive: &mut ShardedKnnMonitor| {
            let start = Instant::now();
            let changed = adaptive.process_cycle(&tick.object_events, &tick.query_events);
            let elapsed = start.elapsed();
            adaptive_times.push(elapsed);
            adaptive_changes += changed.len();
            // Metrics snapshots are cheap counter sums; reading them here
            // (outside the timed section) identifies re-grid cycles.
            let regrids_now = adaptive.metrics().regrids;
            if regrids_now > regrids_seen {
                regrids_seen = regrids_now;
                regrid_cycle_ms.push(elapsed.as_secs_f64() * 1e3);
            }
            changed
        };
        let (changed_fixed, changed_adaptive) = if i % 2 == 0 {
            let f = run_fixed(&mut fixed);
            let a = run_adaptive(&mut adaptive);
            (f, a)
        } else {
            let a = run_adaptive(&mut adaptive);
            let f = run_fixed(&mut fixed);
            (f, a)
        };
        assert_eq!(
            changed_fixed, changed_adaptive,
            "cycle {i}: changed lists diverged between fixed and adaptive lanes"
        );
    }

    let mut ratios: Vec<f64> = fixed_times
        .iter()
        .zip(&adaptive_times)
        .map(|(f, a)| f.as_secs_f64() / a.as_secs_f64())
        .collect();
    ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let adaptive_speedup = ratios[ratios.len() / 2];

    let metrics = adaptive.metrics();
    let (fixed_ms, fixed_max) = median_ms(fixed_times);
    let (adaptive_ms, adaptive_max) = median_ms(adaptive_times);
    RegridBenchRun {
        modes: [
            RegridMeasurement {
                mode: "fixed",
                ms_per_cycle: fixed_ms,
                max_cycle_ms: fixed_max,
                result_changes: fixed_changes,
            },
            RegridMeasurement {
                mode: "adaptive",
                ms_per_cycle: adaptive_ms,
                max_cycle_ms: adaptive_max,
                result_changes: adaptive_changes,
            },
        ],
        adaptive_speedup,
        fixed_dim,
        final_dim: adaptive.grid().dim(),
        regrids: metrics.regrids,
        regrid_objects_migrated: metrics.regrid_objects_migrated,
        max_regrid_cycle_ms: regrid_cycle_ms.iter().copied().fold(0.0, f64::max),
    }
}

/// Render the `BENCH_regrid.json` document for a run.
pub fn render_json(cfg: &RegridBenchConfig, run: &RegridBenchRun) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_regrid\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n_base\": {}, \"peak_factor\": {}, \"n_queries\": {}, \"k\": {}, \
         \"f_obj\": {}, \"f_qry\": {}, \"cycles\": {}, \"warmup_cycles\": {}, \"shards\": {}, \
         \"check_every\": {}, \"cooldown\": {}}},",
        cfg.n_base,
        cfg.peak_factor,
        cfg.n_queries,
        cfg.k,
        cfg.f_obj,
        cfg.f_qry,
        cfg.cycles,
        cfg.warmup_cycles,
        cfg.shards,
        cfg.check_every,
        cfg.cooldown
    );
    let _ = writeln!(
        json,
        "  \"machine\": {{\"threads_available\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},",
        crate::shards::available_threads(),
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("  \"results\": [\n");
    for (i, m) in run.modes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"ms_per_cycle\": {:.3}, \"max_cycle_ms\": {:.3}, \
             \"result_changes\": {}}}",
            m.mode, m.ms_per_cycle, m.max_cycle_ms, m.result_changes
        );
        json.push_str(if i + 1 == run.modes.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"fixed_dim\": {}, \"final_dim\": {}, \"regrids\": {}, \
         \"regrid_objects_migrated\": {}, \"max_regrid_cycle_ms\": {:.3},",
        run.fixed_dim,
        run.final_dim,
        run.regrids,
        run.regrid_objects_migrated,
        run.max_regrid_cycle_ms
    );
    let _ = writeln!(json, "  \"adaptive_speedup\": {:.4}", run.adaptive_speedup);
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_adapts_and_stays_conformant() {
        // Query-heavy enough that the model's δ-sensitive term moves the
        // total cycle cost past the hysteresis bar once the population
        // swings (with a dozen queries over thousands of objects, the
        // δ-independent ingest term dominates and staying put is
        // genuinely optimal — also worth knowing, but not this test).
        let cfg = RegridBenchConfig {
            n_base: 300,
            peak_factor: 8.0,
            n_queries: 100,
            k: 4,
            cycles: 24,
            warmup_cycles: 2,
            check_every: 2,
            cooldown: 4,
            ..RegridBenchConfig::default()
        };
        // `run` itself asserts per-cycle changed-list equality.
        let run = run(&cfg);
        assert_eq!(run.modes[0].mode, "fixed");
        assert_eq!(run.modes[1].mode, "adaptive");
        assert_eq!(run.modes[0].result_changes, run.modes[1].result_changes);
        assert!(
            run.regrids >= 1,
            "an 8x population swing must trigger a re-grid"
        );
        assert!(run.final_dim != 0);
        assert!(run.max_regrid_cycle_ms > 0.0);
        let json = render_json(&cfg, &run);
        assert!(json.contains("adaptive_speedup"));
        assert!(json.contains("\"regrids\""));
    }
}
