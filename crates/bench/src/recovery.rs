//! Crash-recovery benchmark: full [`cpm_core::DurableCpmServer::recover`]
//! wall time versus the steady-state cycle cost it interrupts.
//!
//! The workload mirrors [`crate::server`]'s pub/sub shape (default: 100K
//! uniform objects, 10% movers per cycle, a mixed k-NN + range +
//! constrained + RNN query set). The run journals every cycle under the
//! default checkpoint policy (`checkpoint_every = 8`), so at the crash
//! point the artifacts have the shape a real deployment recovers from: a
//! recent checkpoint plus a bounded journal tail. Recovery then does the
//! full work — decode + cross-validate the snapshot, rebuild the grid and
//! every influence table from scratch, replay the tail.
//!
//! Recovery is a restart pause, so the acceptance bar is relative — like
//! the re-grid migration bound, a recovery may cost at most
//! [`crate::check::RECOVERY_PAUSE_FACTOR`] median cycles. Both numbers
//! are measured in one process seconds apart, making the ratio
//! machine-independent; the ratio (not absolute ms) is what the gate
//! compares against the checked-in curve.
//!
//! The `bench_recovery` binary records `BENCH_recovery.json`; the CI gate
//! (`bench_check`) re-runs [`RecoveryBenchConfig::reduced`] and enforces
//! the pause bound (see [`crate::check::check_recovery`]).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cpm_core::{ConstrainedQuery, CpmServerBuilder, DurableCpmServer, RangeQuery};
use cpm_geom::{ObjectId, Point, QueryId, Rect};
use cpm_grid::ObjectEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload parameters for one journal-then-recover run.
#[derive(Debug, Clone)]
pub struct RecoveryBenchConfig {
    /// Object population `N`.
    pub n_objects: usize,
    /// Installed k-NN queries.
    pub knn_queries: usize,
    /// Installed range queries.
    pub range_queries: usize,
    /// Installed constrained queries.
    pub constrained_queries: usize,
    /// Installed reverse-NN registrations.
    pub rnn_queries: usize,
    /// Neighbors per k-NN / constrained query.
    pub k: usize,
    /// Fraction of objects moving per cycle.
    pub move_fraction: f64,
    /// Timed processing cycles before the simulated crash.
    pub cycles: usize,
    /// Checkpoint interval in cycles; the journal tail recovery replays
    /// is `cycles` modulo this. Must not divide `cycles` evenly (an
    /// empty tail would measure snapshot restore only).
    pub checkpoint_every: u64,
    /// Grid granularity per axis.
    pub grid_dim: u32,
    /// Query shards (1 = sequential maintenance).
    pub shards: usize,
    /// Recovery timing repetitions (the median is reported; recovery is
    /// pure deserialization + recompute, so repeats are cheap and iid).
    pub recover_trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RecoveryBenchConfig {
    /// The acceptance-scale configuration recorded in
    /// `BENCH_recovery.json` (100K objects, the server benchmark's query
    /// mix plus a handful of RNN registrations).
    fn default() -> Self {
        Self {
            n_objects: 100_000,
            knn_queries: 60,
            range_queries: 60,
            constrained_queries: 60,
            rnn_queries: 4,
            k: 8,
            move_fraction: 0.10,
            cycles: 30,
            checkpoint_every: 8,
            grid_dim: 128,
            shards: 1,
            recover_trials: 3,
            seed: 2005,
        }
    }
}

impl RecoveryBenchConfig {
    /// The reduced-scale configuration the CI bench gate runs on every PR.
    pub fn reduced() -> Self {
        Self {
            n_objects: 10_000,
            knn_queries: 20,
            range_queries: 20,
            constrained_queries: 20,
            cycles: 20,
            ..Self::default()
        }
    }
}

/// Outcome of one journal-then-recover run.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryBenchRun {
    /// **Median** wall time per journaled cycle, ms.
    pub median_cycle_ms: f64,
    /// Slowest single journaled cycle, ms.
    pub max_cycle_ms: f64,
    /// Median wall time of a full recovery (snapshot restore + journal
    /// replay), ms.
    pub recovery_ms: f64,
    /// `recovery_ms / median_cycle_ms` — the restart pause in cycle
    /// units, the number the acceptance bar bounds.
    pub recovery_over_cycle: f64,
    /// Snapshot frame size at the checkpoint, bytes.
    pub snapshot_bytes: usize,
    /// Journal size at the crash point, bytes.
    pub journal_bytes: usize,
    /// Journal records replayed by each recovery.
    pub replayed: usize,
    /// Total result changes over the journaled cycles.
    pub result_changes: usize,
}

fn median_ms(mut times: Vec<Duration>) -> (f64, f64) {
    times.sort_unstable();
    let median = times
        .get(times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    let max = times.last().copied().unwrap_or(Duration::ZERO);
    (median.as_secs_f64() * 1e3, max.as_secs_f64() * 1e3)
}

/// Journal `cfg.cycles` cycles against a post-install checkpoint, then
/// time a full recovery from the captured artifacts.
///
/// Panics if the recovered server disagrees with the crashed one on
/// epoch, any tracked result, or any RNN set — the benchmark doubles as
/// an at-scale conformance check.
pub fn run(cfg: &RecoveryBenchConfig) -> RecoveryBenchRun {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut positions = crate::movers::uniform_points(&mut rng, cfg.n_objects);
    let objects: Vec<(ObjectId, Point)> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| (ObjectId(i as u32), p))
        .collect();

    let mut server = CpmServerBuilder::new(cfg.grid_dim)
        .shards(cfg.shards)
        .build();
    server.populate(objects.iter().copied());
    let mut durable = DurableCpmServer::new(server, cfg.checkpoint_every);

    let mut query_ids: Vec<QueryId> = Vec::new();
    for i in 0..cfg.knn_queries {
        let id = QueryId(i as u32);
        let pos = Point::new(rng.gen(), rng.gen());
        let _ = durable.install_knn(id, pos, cfg.k).expect("fresh id");
        query_ids.push(id);
    }
    for i in 0..cfg.range_queries {
        let id = QueryId(1_000_000 + i as u32);
        let center = Point::new(rng.gen(), rng.gen());
        let radius = 0.015 + rng.gen::<f64>() * 0.02;
        let _ = durable
            .install_range(id, RangeQuery::circle(center, radius))
            .expect("fresh id");
        query_ids.push(id);
    }
    for i in 0..cfg.constrained_queries {
        let id = QueryId(2_000_000 + i as u32);
        let q = Point::new(rng.gen(), rng.gen());
        let w = 0.05 + rng.gen::<f64>() * 0.07;
        let lo = Point::new((q.x - w / 2.0).max(0.0), (q.y - w / 2.0).max(0.0));
        let hi = Point::new((lo.x + w).min(1.0), (lo.y + w).min(1.0));
        let _ = durable
            .install_constrained(id, ConstrainedQuery::new(q, Rect::new(lo, hi)), cfg.k)
            .expect("fresh id");
        query_ids.push(id);
    }
    let rnn_ids: Vec<QueryId> = (0..cfg.rnn_queries)
        .map(|i| {
            let id = QueryId(3_000_000 + i as u32);
            let pos = Point::new(rng.gen(), rng.gen());
            let _ = durable.install_rnn(id, pos).expect("fresh id");
            id
        })
        .collect();
    // Fold the installs into the baseline snapshot: from here the journal
    // holds pure cycle traffic, and the auto-checkpoint policy keeps the
    // tail bounded the way a long-running deployment would.
    durable.checkpoint();

    let movers = ((cfg.n_objects as f64 * cfg.move_fraction) as usize).max(1);
    let cycles = crate::movers::random_walk_cycles(&mut rng, &mut positions, cfg.cycles, movers);

    let mut cycle_times = Vec::with_capacity(cfg.cycles);
    let mut result_changes = 0usize;
    for batch in cycles {
        // Last-wins dedup: the server rejects duplicate ids in a batch.
        let mut seen = std::collections::HashSet::new();
        let mut events: Vec<ObjectEvent> = batch
            .into_iter()
            .rev()
            .filter(|(i, _)| seen.insert(*i))
            .map(|(i, to)| ObjectEvent::Move {
                id: ObjectId(i as u32),
                to,
            })
            .collect();
        events.reverse();
        let start = Instant::now();
        let changed = durable.process_cycle(&events, &[]).expect("valid batch");
        cycle_times.push(start.elapsed());
        result_changes += changed.len();
    }

    let snapshot = durable.snapshot_bytes().to_vec();
    let journal = durable.journal_bytes().to_vec();

    let mut recover_times = Vec::with_capacity(cfg.recover_trials.max(1));
    let mut replayed = 0usize;
    for _ in 0..cfg.recover_trials.max(1) {
        let start = Instant::now();
        let (recovered, report) =
            DurableCpmServer::recover(&snapshot, &journal, cfg.checkpoint_every)
                .expect("intact artifacts");
        recover_times.push(start.elapsed());
        assert!(report.tail_error.is_none(), "intact journal has no tail");
        replayed = report.replayed;
        // Conformance at scale: the recovered server answers exactly like
        // the one that "crashed".
        assert_eq!(recovered.server().epoch(), durable.server().epoch());
        for &id in &query_ids {
            assert_eq!(
                recovered.server().result(id),
                durable.server().result(id),
                "recovered result diverged for {id:?}"
            );
        }
        for &id in &rnn_ids {
            assert_eq!(
                recovered.server().rnn_result(id),
                durable.server().rnn_result(id)
            );
        }
    }

    let (median_cycle_ms, max_cycle_ms) = median_ms(cycle_times);
    let (recovery_ms, _) = median_ms(recover_times);
    RecoveryBenchRun {
        median_cycle_ms,
        max_cycle_ms,
        recovery_ms,
        recovery_over_cycle: recovery_ms / median_cycle_ms.max(f64::MIN_POSITIVE),
        snapshot_bytes: snapshot.len(),
        journal_bytes: journal.len(),
        replayed,
        result_changes,
    }
}

/// Render the `BENCH_recovery.json` document for a run.
pub fn render_json(cfg: &RecoveryBenchConfig, run: &RecoveryBenchRun) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_recovery\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n_objects\": {}, \"knn_queries\": {}, \"range_queries\": {}, \
         \"constrained_queries\": {}, \"rnn_queries\": {}, \"k\": {}, \"move_fraction\": {}, \
         \"cycles\": {}, \"grid_dim\": {}, \"shards\": {}, \"recover_trials\": {}}},",
        cfg.n_objects,
        cfg.knn_queries,
        cfg.range_queries,
        cfg.constrained_queries,
        cfg.rnn_queries,
        cfg.k,
        cfg.move_fraction,
        cfg.cycles,
        cfg.grid_dim,
        cfg.shards,
        cfg.recover_trials
    );
    let _ = writeln!(
        json,
        "  \"machine\": {{\"threads_available\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},",
        crate::shards::available_threads(),
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    let _ = writeln!(
        json,
        "  \"results\": {{\"median_cycle_ms\": {:.3}, \"max_cycle_ms\": {:.3}, \
         \"recovery_ms\": {:.3}, \"snapshot_bytes\": {}, \"journal_bytes\": {}, \
         \"replayed\": {}, \"result_changes\": {}}},",
        run.median_cycle_ms,
        run.max_cycle_ms,
        run.recovery_ms,
        run.snapshot_bytes,
        run.journal_bytes,
        run.replayed,
        run.result_changes
    );
    let _ = writeln!(
        json,
        "  \"recovery_over_cycle\": {:.4}",
        run.recovery_over_cycle
    );
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_recovers_and_reports() {
        let cfg = RecoveryBenchConfig {
            n_objects: 500,
            knn_queries: 4,
            range_queries: 4,
            constrained_queries: 4,
            rnn_queries: 2,
            k: 3,
            cycles: 5,
            grid_dim: 16,
            recover_trials: 2,
            ..RecoveryBenchConfig::default()
        };
        // `run` itself asserts epoch/result/RNN conformance after every
        // recovery trial.
        let run = run(&cfg);
        // cycles < checkpoint_every: the whole run is the journal tail.
        assert_eq!(run.replayed, cfg.cycles, "one journal record per cycle");
        assert!(run.snapshot_bytes > 0);
        assert!(run.journal_bytes > 0);
        assert!(run.recovery_ms > 0.0);
        assert!(run.recovery_over_cycle > 0.0);
        let json = render_json(&cfg, &run);
        assert!(json.contains("recovery_over_cycle"));
        assert!(json.contains("\"replayed\""));
    }
}
