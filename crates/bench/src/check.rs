//! The benchmark-regression gate: compare a reduced-scale re-run of the
//! micro-benchmarks against the checked-in `BENCH_*.json` baselines.
//!
//! Two checks, mirroring what each baseline actually pins down:
//!
//! * **Grid storage** (`BENCH_grid.json`): update and scan **ns-per-op**
//!   must stay within `tolerance` (default +25%,
//!   `BENCH_CHECK_TOLERANCE`) of the recorded dense-bucket numbers.
//!   Absolute ns are machine-sensitive — a slower host than the one that
//!   recorded the baseline needs a wider tolerance — so the gate *also*
//!   compares against the in-run hash-set layout as a machine-independent
//!   control: the dense layout falling behind its own control is a true
//!   regression on any host.
//! * **Shard scaling** (`BENCH_shards.json`): wall-clock per cycle is
//!   *not* scale-invariant, so the gate enforces the scaling property
//!   itself. On hosts with ≥ 4 threads, 4 shards must deliver ≥ 1.5×
//!   sequential cycle throughput (a hard bar, not tolerance-scaled), and
//!   if the checked-in baseline was recorded on a ≥ 4-thread host the
//!   measured speedup must additionally stay within `tolerance` of the
//!   baseline curve. On smaller hosts (where no speedup is physically
//!   possible) the sharded path must merely not collapse (≥ 0.5×, i.e.
//!   bounded coordination overhead). A baseline recorded on a host
//!   *below* the gate's 4-thread requirement pins no scaling curve at
//!   all, so the gate emits a **loud warning** (printed as `WARN`,
//!   non-fatal) rather than silently passing.
//! * **Delta emission** (`BENCH_deltas.json`): the delta-streaming result
//!   path may cost at most 10% over full-list results (the PR acceptance
//!   bar, verified on the recorded full-scale artifact). Both modes are
//!   measured in the same process under a paired protocol, so like the
//!   grid control this is a machine-independent ratio — but the
//!   reduced-scale re-run is noisy on shared hosts, so what CI *enforces*
//!   is bar + [`DELTA_NOISE_MARGIN`] (a 1.20 ceiling; see the margin's
//!   docs for the measured scatter that sizes it), never widened by the
//!   cross-host `tolerance`. Slow creep below that ceiling is caught by
//!   the checked-in-curve comparison within `tolerance`.
//! * **Adaptive re-grid** (`BENCH_regrid.json`): on the drifting-hotspot
//!   stream the adaptive lane must re-grid at all, beat the fixed
//!   provisioned-δ lane by ≥ 1.2× (same-process paired ratio, fixed noise
//!   margin, never `tolerance`-widened), and keep its slowest re-grid
//!   cycle within [`REGRID_PAUSE_FACTOR`] median cycles; the recorded
//!   curve binds only at equal scale (speedup grows with the
//!   base-vs-peak mismatch).
//! * **Cluster merge** (`BENCH_cluster.json`): the coordinator's
//!   serial per-cycle merge (payload reassembly + delta decode +
//!   canonical interleave) for a `W = 4` in-process cluster may cost at
//!   most [`CLUSTER_MERGE_LIMIT`]× the single-node cycle it coordinates
//!   (same-process paired ratio with per-cycle bit-identical merged
//!   deltas asserted inside the benchmark; fixed noise margin, never
//!   `tolerance`-widened), with the checked-in curve binding at equal
//!   scale. The full-cycle cluster/single ratio is reported as
//!   host-dependent diagnostics, not gated — on an under-threaded host
//!   the workers time-slice one core.
//! * **Distance kernels** (`BENCH_kernels.json`): the batched
//!   struct-of-arrays kernel must beat the scalar `Option<Point>` idiom
//!   on every dim-64 cell with buckets of ≥ 32 objects — by ≥ 1.3× when
//!   the explicit-SIMD lane is compiled in (the PR acceptance bar; the
//!   CI gate job builds `--features simd`), and by at least break-even
//!   for the portable auto-vectorized lane. Both benchmark lanes run in
//!   one process under the paired protocol with bit-identical outputs
//!   asserted, so the bars get only the fixed [`KERNEL_NOISE_MARGIN`] —
//!   never the cross-host `tolerance` — while the checked-in curve
//!   comparison (same-lane baselines only) does use `tolerance`.
//!
//! The comparator is deliberately reproducible locally:
//! `cargo run --release -p cpm-bench --bin bench_check`.
//!
//! The baselines are our own generated files, so parsing is a minimal
//! line-oriented field scanner rather than a JSON dependency (the build
//! environment is offline; see the workspace manifest).

use crate::grid_storage::Measurement;
use crate::kernels::KernelMeasurement;
use crate::shards::ShardMeasurement;

/// Default headroom before a regression fails the gate (+25%).
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Fixed headroom for the in-run hash-set control comparisons (+10%).
/// Same-process, same-host measurements need only a small noise margin;
/// `BENCH_CHECK_TOLERANCE` intentionally does not widen this check.
pub const CONTROL_HEADROOM: f64 = 0.10;

/// Outcome of one gate: human-readable comparison lines plus hard
/// failures.
#[derive(Debug, Default)]
pub struct GateReport {
    /// One line per comparison made (printed by `bench_check`).
    pub lines: Vec<String>,
    /// Loud, non-fatal diagnostics (printed by `bench_check` as `WARN` on
    /// stderr): the gate still passes, but something about the checked-in
    /// baseline needs attention — e.g. it was recorded on a host that
    /// cannot pin the property the gate exists to enforce.
    pub warnings: Vec<String>,
    /// Failed comparisons; non-empty fails the gate.
    pub failures: Vec<String>,
}

impl GateReport {
    /// `true` if every comparison passed (warnings do not fail a gate).
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    fn warn(&mut self, warning: String) {
        self.warnings.push(warning);
    }

    fn compare(&mut self, what: &str, measured: f64, limit: f64, baseline: f64) {
        let verdict = if measured <= limit { "ok" } else { "REGRESSED" };
        self.lines.push(format!(
            "{what}: measured {measured:.2} vs baseline {baseline:.2} (limit {limit:.2}) … {verdict}"
        ));
        if measured > limit {
            self.failures.push(format!(
                "{what} regressed: {measured:.2} > {limit:.2} (baseline {baseline:.2})"
            ));
        }
    }

    fn compare_at_least(&mut self, what: &str, measured: f64, minimum: f64) {
        let verdict = if measured >= minimum {
            "ok"
        } else {
            "REGRESSED"
        };
        self.lines.push(format!(
            "{what}: measured {measured:.2}, required >= {minimum:.2} … {verdict}"
        ));
        if measured < minimum {
            self.failures
                .push(format!("{what} too low: {measured:.2} < {minimum:.2}"));
        }
    }
}

/// One dense-bucket baseline entry from `BENCH_grid.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridBaseline {
    /// Grid granularity per axis.
    pub dim: u32,
    /// Recorded nanoseconds per location update.
    pub update_ns: f64,
    /// Recorded nanoseconds per scanned object.
    pub scan_ns: f64,
}

/// Extract the numeric value following `"key":` in a one-line JSON object.
fn field_f64(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `true` if the one-line JSON object has `"key": "value"`.
fn field_is(obj: &str, key: &str, value: &str) -> bool {
    obj.contains(&format!("\"{key}\": \"{value}\""))
}

/// Parse the dense-bucket entries of a `BENCH_grid.json` document.
pub fn parse_grid_baseline(json: &str) -> Vec<GridBaseline> {
    json.lines()
        .filter(|line| field_is(line, "layout", "dense-buckets"))
        .filter_map(|line| {
            Some(GridBaseline {
                dim: field_f64(line, "dim")? as u32,
                update_ns: field_f64(line, "update_ns_per_op")?,
                scan_ns: field_f64(line, "scan_ns_per_object")?,
            })
        })
        .collect()
}

/// The host thread count recorded in a `BENCH_shards.json` document.
pub fn parse_shards_threads(json: &str) -> Option<usize> {
    json.lines()
        .find(|line| line.contains("threads_available"))
        .and_then(|line| field_f64(line, "threads_available"))
        .map(|t| t as usize)
}

/// The scaling context a `BENCH_shards.json` baseline pins down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardsBaseline {
    /// Threads available on the recording host.
    pub threads: usize,
    /// Recorded 4-shard speedup, if the sweep measured 4 shards.
    pub speedup_4: Option<f64>,
}

/// Parse the scaling context of a `BENCH_shards.json` document.
pub fn parse_shards_baseline(json: &str) -> Option<ShardsBaseline> {
    Some(ShardsBaseline {
        threads: parse_shards_threads(json)?,
        speedup_4: json
            .lines()
            .find(|line| field_f64(line, "shards") == Some(4.0))
            .and_then(|line| field_f64(line, "speedup")),
    })
}

/// Gate the grid-storage micro-benchmark: every measured dense-bucket
/// ns-per-op must be within `tolerance` of the baseline at the same dim,
/// and must not fall behind the *in-run* hash-set layout (the
/// machine-independent control — see the module docs). Dims without a
/// baseline entry get only the control check.
pub fn check_grid(
    baseline: &[GridBaseline],
    measured: &[(Measurement, Measurement)],
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    for (dense, hash) in measured {
        match baseline.iter().find(|b| b.dim == dense.dim) {
            Some(b) => {
                report.compare(
                    &format!("grid dim {} update ns/op", dense.dim),
                    dense.update_ns,
                    b.update_ns * (1.0 + tolerance),
                    b.update_ns,
                );
                report.compare(
                    &format!("grid dim {} scan ns/obj", dense.dim),
                    dense.scan_ns_per_obj,
                    b.scan_ns * (1.0 + tolerance),
                    b.scan_ns,
                );
            }
            None => report.lines.push(format!(
                "grid dim {}: no baseline entry — skipped (record one with bench_grid_storage)",
                dense.dim
            )),
        }
        // Machine-independent control: dense buckets exist to beat the
        // seed's hash-set layout; losing to the same-run control is a real
        // regression no matter how slow the host is. Both layouts are
        // measured in the same process seconds apart, so this comparison
        // gets only the small fixed CONTROL_HEADROOM — deliberately NOT
        // the cross-host `tolerance` knob, which must never widen a
        // same-host check.
        report.compare(
            &format!("grid dim {} update vs in-run hash-set control", dense.dim),
            dense.update_ns,
            hash.update_ns * (1.0 + CONTROL_HEADROOM),
            hash.update_ns,
        );
        report.compare(
            &format!("grid dim {} scan vs in-run hash-set control", dense.dim),
            dense.scan_ns_per_obj,
            hash.scan_ns_per_obj * (1.0 + CONTROL_HEADROOM),
            hash.scan_ns_per_obj,
        );
    }
    report
}

/// Required 4-shard speedup on hosts with at least four threads (the PR
/// acceptance bar for the sharded engine).
pub const REQUIRED_SPEEDUP_4_SHARDS: f64 = 1.5;

/// Minimum acceptable throughput ratio on hosts where parallel speedup is
/// physically impossible: sharding overhead must stay bounded.
pub const MIN_SPEEDUP_SINGLE_CORE: f64 = 0.5;

/// Gate the shard-scaling benchmark (see the module docs for why this is a
/// property check rather than a wall-clock comparison). `threads` is the
/// measuring host's available parallelism; `baseline` is the checked-in
/// `BENCH_shards.json` context, whose recorded 4-shard speedup is enforced
/// (within `tolerance`) only when both hosts could actually scale. A
/// baseline recorded on a < 4-thread host raises a loud (non-fatal)
/// warning instead of a silent skip.
pub fn check_shards(
    measured: &[ShardMeasurement],
    threads: usize,
    baseline: Option<ShardsBaseline>,
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    // A baseline recorded below the gate's own 4-thread requirement pins
    // no scaling curve, whatever host is measuring now: say so loudly
    // instead of letting the skipped comparison read as a pass.
    if let Some(b) = baseline {
        if b.threads < 4 {
            report.warn(format!(
                "BENCH_shards.json was recorded on a {}-thread host, below the gate's \
                 4-thread requirement: the checked-in curve pins no scaling property. \
                 Re-record it with bench_shards on a >= 4-thread host.",
                b.threads
            ));
        }
    }
    let Some(four) = measured.iter().find(|m| m.shards == 4) else {
        report
            .failures
            .push("shard sweep did not measure 4 shards".into());
        return report;
    };
    if threads >= 4 {
        report.compare_at_least(
            "4-shard speedup (>= 4 threads available)",
            four.speedup,
            REQUIRED_SPEEDUP_4_SHARDS,
        );
        match baseline {
            Some(b) if b.threads >= 4 => {
                if let Some(speedup_4) = b.speedup_4 {
                    report.compare_at_least(
                        "4-shard speedup vs checked-in baseline curve",
                        four.speedup,
                        speedup_4 / (1.0 + tolerance),
                    );
                }
            }
            // Under-threaded baseline: already warned loudly above.
            Some(_) => {}
            None => report
                .lines
                .push("no BENCH_shards.json baseline: curve comparison skipped".into()),
        }
    } else {
        report.lines.push(format!(
            "host has {threads} thread(s): scaling target waived, checking overhead only"
        ));
        report.compare_at_least(
            "4-shard throughput ratio (single-core overhead bound)",
            four.speedup,
            MIN_SPEEDUP_SINGLE_CORE,
        );
    }
    report
}

/// Maximum relative cycle-time overhead of delta emission versus
/// full-list results (the PR acceptance bar recorded in
/// `BENCH_deltas.json`).
pub const DELTA_OVERHEAD_LIMIT: f64 = 0.10;

/// Additive noise margin on the delta-overhead bar. Both modes run in
/// one process under the paired-cycle protocol, but the reduced-scale
/// config's ~0.5 ms cycles still scatter the run-level ratio by up to
/// ±5 percentage points around its center on busy shared hosts
/// (measured on a 1-vCPU container: 9–19% across repeated runs); a
/// tighter margin turns the gate into a coin flip. A sustained creep
/// below this ceiling is still caught by the baseline-curve comparison
/// against the checked-in `BENCH_deltas.json`.
pub const DELTA_NOISE_MARGIN: f64 = 0.10;

/// The context a `BENCH_deltas.json` baseline pins down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltasBaseline {
    /// Recorded `delta ms / full-list ms − 1` overhead.
    pub overhead_vs_full: f64,
}

/// Parse the overhead of a `BENCH_deltas.json` document.
pub fn parse_deltas_baseline(json: &str) -> Option<DeltasBaseline> {
    json.lines()
        .find(|line| line.contains("overhead_vs_full"))
        .and_then(|line| field_f64(line, "overhead_vs_full"))
        .map(|overhead_vs_full| DeltasBaseline { overhead_vs_full })
}

/// Gate the delta-emission benchmark: the measured `delta / full-list`
/// cycle-time ratio must stay under `1 + DELTA_OVERHEAD_LIMIT +
/// DELTA_NOISE_MARGIN` (both modes run in one process, so the cross-host
/// `tolerance` must not widen the bar), and within `tolerance` of the
/// checked-in baseline curve when one exists.
pub fn check_deltas(
    run: &crate::deltas::DeltaBenchRun,
    baseline: Option<DeltasBaseline>,
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    let ratio = 1.0 + run.overhead_vs_full;
    report.compare(
        "delta emission cycle-time ratio vs full lists",
        ratio,
        1.0 + DELTA_OVERHEAD_LIMIT + DELTA_NOISE_MARGIN,
        1.0 + DELTA_OVERHEAD_LIMIT,
    );
    match baseline {
        Some(b) => report.compare(
            "delta emission ratio vs checked-in baseline curve",
            ratio,
            (1.0 + b.overhead_vs_full) * (1.0 + tolerance),
            1.0 + b.overhead_vs_full,
        ),
        None => report
            .lines
            .push("no BENCH_deltas.json baseline: curve comparison skipped".into()),
    }
    report
}

/// Required unified-server speedup over three dedicated single-kind
/// engines on the update-ingest-bound mixed workload (the PR acceptance
/// bar recorded in `BENCH_server.json`): one shared grid + one ingest
/// pass must beat three grids + three ingest passes clearly.
pub const REQUIRED_SERVER_SPEEDUP: f64 = 1.3;

/// Multiplicative noise allowance on the server-speedup bar. Both modes
/// run in one process under the paired-cycle protocol (same estimator as
/// the delta gate), but reduced-scale cycles on busy shared hosts still
/// scatter the run-level ratio by a few percent around its center; the
/// enforced minimum is `REQUIRED_SERVER_SPEEDUP / (1 +
/// SERVER_NOISE_MARGIN)`. Like every same-process bar, it is **never**
/// widened by the cross-host `tolerance`; sustained creep below the bar
/// is additionally caught by the checked-in-curve comparison.
pub const SERVER_NOISE_MARGIN: f64 = 0.10;

/// The context a `BENCH_server.json` baseline pins down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerBaseline {
    /// Recorded median `split ms / unified ms` speedup.
    pub unified_speedup: f64,
}

/// Parse the speedup of a `BENCH_server.json` document.
pub fn parse_server_baseline(json: &str) -> Option<ServerBaseline> {
    json.lines()
        .find(|line| line.contains("unified_speedup"))
        .and_then(|line| field_f64(line, "unified_speedup"))
        .map(|unified_speedup| ServerBaseline { unified_speedup })
}

/// Gate the unified-server benchmark: the measured speedup must clear
/// the ≥ 1.3× acceptance bar (minus the fixed same-process noise margin,
/// never widened by `tolerance`), and stay within `tolerance` of the
/// checked-in baseline curve when one exists.
pub fn check_server(
    run: &crate::server::ServerBenchRun,
    baseline: Option<ServerBaseline>,
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    report.compare_at_least(
        "unified-server speedup vs three dedicated engines",
        run.unified_speedup,
        REQUIRED_SERVER_SPEEDUP / (1.0 + SERVER_NOISE_MARGIN),
    );
    match baseline {
        Some(b) => report.compare_at_least(
            "unified-server speedup vs checked-in baseline curve",
            run.unified_speedup,
            b.unified_speedup / (1.0 + tolerance),
        ),
        None => report
            .lines
            .push("no BENCH_server.json baseline: curve comparison skipped".into()),
    }
    report
}

/// Required adaptive-vs-fixed speedup on the drifting-hotspot workload
/// (the PR acceptance bar recorded in `BENCH_regrid.json`): cost-model
/// re-gridding must clearly beat the resolution provisioned for the base
/// population once the stream outgrows it.
pub const REQUIRED_REGRID_SPEEDUP: f64 = 1.2;

/// Multiplicative noise allowance on the re-grid speedup bar. Both lanes
/// run in one process under the paired-cycle protocol and the estimator
/// is a median of per-pair ratios, but reduced-scale cycles on busy
/// shared hosts still scatter the run-level median by a few percent.
/// Like every same-process bar, it is **never** widened by the cross-host
/// `tolerance`.
pub const REGRID_NOISE_MARGIN: f64 = 0.10;

/// Per-re-grid migration-cost bound: the slowest cycle that applied a
/// re-grid may cost at most this many median adaptive cycles. A re-grid
/// migrates every object and recomputes every query, so it is never
/// free — but it must stay amortizable over the cooldown window (the
/// default cooldown is 8–16 cycles; a pause an order of magnitude above
/// that stops being "online").
pub const REGRID_PAUSE_FACTOR: f64 = 25.0;

/// The context a `BENCH_regrid.json` baseline pins down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegridBaseline {
    /// Recorded median `fixed ms / adaptive ms` speedup.
    pub adaptive_speedup: f64,
    /// Base population of the recording run. The achievable speedup grows
    /// with the base-vs-peak resolution mismatch, so the curve is only
    /// comparable between runs at the **same scale** (mirroring the shard
    /// gate, whose baseline curve only binds on comparable hosts).
    pub n_base: usize,
}

/// Parse the speedup and recording scale of a `BENCH_regrid.json`
/// document.
pub fn parse_regrid_baseline(json: &str) -> Option<RegridBaseline> {
    let adaptive_speedup = json
        .lines()
        .find(|line| line.contains("adaptive_speedup"))
        .and_then(|line| field_f64(line, "adaptive_speedup"))?;
    let n_base = json
        .lines()
        .find(|line| line.contains("\"n_base\""))
        .and_then(|line| field_f64(line, "n_base"))? as usize;
    Some(RegridBaseline {
        adaptive_speedup,
        n_base,
    })
}

/// Gate the re-grid benchmark: the adaptive lane must have re-gridded at
/// all, must clear the ≥ 1.2× speedup bar (minus the fixed same-process
/// noise margin, never widened by `tolerance`), its slowest re-grid cycle
/// must stay within [`REGRID_PAUSE_FACTOR`] median adaptive cycles, and
/// the speedup must stay within `tolerance` of the checked-in baseline
/// curve when one was recorded at the same scale (`measured_n_base`).
pub fn check_regrid(
    run: &crate::regrid::RegridBenchRun,
    measured_n_base: usize,
    baseline: Option<RegridBaseline>,
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    if run.regrids == 0 {
        report
            .failures
            .push("adaptive lane never re-gridded on the drift workload".into());
        return report;
    }
    report.lines.push(format!(
        "adaptive lane: {} regrid(s), dim {} -> {}, {} objects migrated",
        run.regrids, run.fixed_dim, run.final_dim, run.regrid_objects_migrated
    ));
    report.compare_at_least(
        "adaptive-vs-fixed speedup on the drift workload",
        run.adaptive_speedup,
        REQUIRED_REGRID_SPEEDUP / (1.0 + REGRID_NOISE_MARGIN),
    );
    let adaptive_ms = run.modes[1].ms_per_cycle;
    report.compare(
        "slowest re-grid cycle vs median adaptive cycle (pause bound)",
        run.max_regrid_cycle_ms,
        REGRID_PAUSE_FACTOR * adaptive_ms,
        adaptive_ms,
    );
    match baseline {
        Some(b) if b.n_base == measured_n_base => report.compare_at_least(
            "adaptive speedup vs checked-in baseline curve",
            run.adaptive_speedup,
            b.adaptive_speedup / (1.0 + tolerance),
        ),
        Some(b) => report.lines.push(format!(
            "baseline recorded at N={} (this run: N={measured_n_base}): speedups are only \
             comparable at equal scale, curve comparison skipped",
            b.n_base
        )),
        None => report
            .lines
            .push("no BENCH_regrid.json baseline: curve comparison skipped".into()),
    }
    report
}

/// Restart-pause bound: a full recovery (snapshot restore + journal
/// replay) may cost at most this many median cycles of the workload it
/// interrupts. Recovery rebuilds the grid and recomputes every query
/// from scratch, so it is never free — but a monitoring server that
/// takes longer than ~one checkpoint interval of cycles to come back has
/// effectively lost the stream it was monitoring. Mirrors
/// [`REGRID_PAUSE_FACTOR`], the other whole-state-rebuild bound.
pub const RECOVERY_PAUSE_FACTOR: f64 = 25.0;

/// The context a `BENCH_recovery.json` baseline pins down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryBaseline {
    /// Recorded `recovery ms / median cycle ms` ratio.
    pub recovery_over_cycle: f64,
    /// Object population of the recording run. The ratio scales with how
    /// much snapshot-restore work amortizes per cycle, so the curve only
    /// binds between runs at the same scale (like the re-grid gate).
    pub n_objects: usize,
}

/// Parse the pause ratio and recording scale of a `BENCH_recovery.json`
/// document.
pub fn parse_recovery_baseline(json: &str) -> Option<RecoveryBaseline> {
    let recovery_over_cycle = json
        .lines()
        .find(|line| line.contains("recovery_over_cycle"))
        .and_then(|line| field_f64(line, "recovery_over_cycle"))?;
    let n_objects = json
        .lines()
        .find(|line| line.contains("\"n_objects\""))
        .and_then(|line| field_f64(line, "n_objects"))? as usize;
    Some(RecoveryBaseline {
        recovery_over_cycle,
        n_objects,
    })
}

/// Gate the recovery benchmark: the journal must actually have been
/// replayed, the restart pause must stay within
/// [`RECOVERY_PAUSE_FACTOR`] median cycles (a same-process ratio, never
/// widened by `tolerance`), and the pause ratio must stay within
/// `tolerance` of the checked-in baseline curve when one was recorded at
/// the same scale.
pub fn check_recovery(
    run: &crate::recovery::RecoveryBenchRun,
    measured_n_objects: usize,
    baseline: Option<RecoveryBaseline>,
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    if run.replayed == 0 {
        report
            .failures
            .push("recovery replayed no journal records — the bench measured nothing".into());
        return report;
    }
    report.lines.push(format!(
        "recovery: {} record(s) replayed, snapshot {} B, journal {} B",
        run.replayed, run.snapshot_bytes, run.journal_bytes
    ));
    report.compare(
        "full recovery vs median cycle (restart-pause bound)",
        run.recovery_ms,
        RECOVERY_PAUSE_FACTOR * run.median_cycle_ms,
        run.median_cycle_ms,
    );
    match baseline {
        Some(b) if b.n_objects == measured_n_objects => report.compare(
            "recovery pause ratio vs checked-in baseline curve",
            run.recovery_over_cycle,
            b.recovery_over_cycle * (1.0 + tolerance),
            b.recovery_over_cycle,
        ),
        Some(b) => report.lines.push(format!(
            "baseline recorded at N={} (this run: N={measured_n_objects}): pause ratios are \
             only comparable at equal scale, curve comparison skipped",
            b.n_objects
        )),
        None => report
            .lines
            .push("no BENCH_recovery.json baseline: curve comparison skipped".into()),
    }
    report
}

/// Hard speedup bar for the quadtree backend on the drifting-hotspot
/// stream (the PR acceptance bar recorded in `BENCH_index.json`): the
/// adaptive backend, provisioned at the peak-population δ, must clearly
/// beat the uniform grid frozen at the base-population δ.
pub const REQUIRED_QUADTREE_SPEEDUP: f64 = 1.15;

/// Hard upper bound on the runtime-dispatch lane: a uniform grid routed
/// through [`cpm_grid::DynIndex`] may cost at most this multiple of the
/// monomorphic `CellIndex` path. The pluggable-index layer must be
/// provably (near-)free.
pub const MAX_DYN_OVERHEAD: f64 = 1.10;

/// Multiplicative noise allowance on both index bars. All three lanes
/// run in one process under the paired rotation protocol and each
/// estimator is a median of per-cycle ratios, but reduced-scale cycles
/// on busy shared hosts still scatter the run-level median by a few
/// percent. Like every same-process bar, it is **never** widened by the
/// cross-host `tolerance`.
pub const INDEX_NOISE_MARGIN: f64 = 0.10;

/// The context a `BENCH_index.json` baseline pins down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexBaseline {
    /// Recorded median `uniform-mono ms / quadtree ms` speedup.
    pub quadtree_speedup: f64,
    /// Base population of the recording run. The achievable speedup
    /// grows with the base-vs-peak provisioning mismatch, so the curve
    /// only binds between runs at the **same scale** (mirroring the
    /// re-grid gate).
    pub n_base: usize,
}

/// Parse the speedup and recording scale of a `BENCH_index.json`
/// document.
pub fn parse_index_baseline(json: &str) -> Option<IndexBaseline> {
    let quadtree_speedup = json
        .lines()
        .find(|line| line.contains("quadtree_speedup"))
        .and_then(|line| field_f64(line, "quadtree_speedup"))?;
    let n_base = json
        .lines()
        .find(|line| line.contains("\"n_base\""))
        .and_then(|line| field_f64(line, "n_base"))? as usize;
    Some(IndexBaseline {
        quadtree_speedup,
        n_base,
    })
}

/// Gate the spatial-index benchmark: the quadtree lane must clear the
/// ≥ 1.15× speedup bar and the dyn-dispatch lane must stay within the
/// ≤ 1.10× overhead bound (both minus/plus the fixed same-process noise
/// margin, never widened by `tolerance`), and the quadtree speedup must
/// stay within `tolerance` of the checked-in baseline curve when one was
/// recorded at the same scale (`measured_n_base`).
pub fn check_index(
    run: &crate::index::IndexBenchRun,
    measured_n_base: usize,
    baseline: Option<IndexBaseline>,
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    if run.quadtree_dim <= run.uniform_dim {
        report.failures.push(format!(
            "quadtree lane is not provisioned finer than the uniform lanes \
             ({} <= {}) — the bench measured nothing",
            run.quadtree_dim, run.uniform_dim
        ));
        return report;
    }
    report.lines.push(format!(
        "backends: uniform {}² (mono + dyn) vs quadtree {}²",
        run.uniform_dim, run.quadtree_dim
    ));
    report.compare_at_least(
        "quadtree-vs-uniform-fixed-δ speedup on the drift workload",
        run.quadtree_speedup,
        REQUIRED_QUADTREE_SPEEDUP / (1.0 + INDEX_NOISE_MARGIN),
    );
    report.compare(
        "dyn-dispatch overhead vs the monomorphic grid",
        run.dyn_overhead,
        MAX_DYN_OVERHEAD * (1.0 + INDEX_NOISE_MARGIN),
        1.0,
    );
    match baseline {
        Some(b) if b.n_base == measured_n_base => report.compare_at_least(
            "quadtree speedup vs checked-in baseline curve",
            run.quadtree_speedup,
            b.quadtree_speedup / (1.0 + tolerance),
        ),
        Some(b) => report.lines.push(format!(
            "baseline recorded at N={} (this run: N={measured_n_base}): speedups are only \
             comparable at equal scale, curve comparison skipped",
            b.n_base
        )),
        None => report
            .lines
            .push("no BENCH_index.json baseline: curve comparison skipped".into()),
    }
    report
}

/// Hard bound on the coordinator: its serial per-cycle merge (payload
/// reassembly + delta decode + canonical interleave) at `W = 4`
/// in-process workers may cost at most this multiple of the single-node
/// cycle it coordinates (the PR acceptance bar recorded in
/// `BENCH_cluster.json`). The merge is the one part of a cluster cycle
/// that stays serial on the coordinator no matter how many cores the
/// workers get — a merge that outweighs the cycle it merges caps
/// scale-out at `W = 1` no matter the hardware.
pub const CLUSTER_MERGE_LIMIT: f64 = 1.25;

/// Multiplicative noise allowance on the cluster-merge bar. Both lanes
/// run in one process under the paired-cycle protocol and the estimator
/// is a median of per-pair ratios, but the merge slice is short enough
/// that timer granularity and cache state scatter the run-level median
/// a few percent on busy shared hosts. Like every same-process bar, it
/// is **never** widened by the cross-host `tolerance`; sustained creep
/// is additionally caught by the checked-in-curve comparison.
pub const CLUSTER_NOISE_MARGIN: f64 = 0.10;

/// The context a `BENCH_cluster.json` baseline pins down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterBaseline {
    /// Recorded median `coordinator merge ms / single-node ms` ratio.
    pub merge_over_single: f64,
    /// Object population of the recording run. The ratio shrinks as
    /// per-cycle maintenance work grows relative to the merge's
    /// churn-proportional cost, so the curve only binds between runs at
    /// the same scale (like the re-grid and recovery gates).
    pub n_objects: usize,
}

/// Parse the merge ratio and recording scale of a `BENCH_cluster.json`
/// document.
pub fn parse_cluster_baseline(json: &str) -> Option<ClusterBaseline> {
    let merge_over_single = json
        .lines()
        .find(|line| line.contains("merge_over_single"))
        .and_then(|line| field_f64(line, "merge_over_single"))?;
    let n_objects = json
        .lines()
        .find(|line| line.contains("\"n_objects\""))
        .and_then(|line| field_f64(line, "n_objects"))? as usize;
    Some(ClusterBaseline {
        merge_over_single,
        n_objects,
    })
}

/// Gate the cluster benchmark: the lanes must have done identical work
/// (per-cycle bit-identicality is asserted inside the benchmark itself),
/// the measured `coordinator merge / single-node` cycle-cost ratio must
/// stay under [`CLUSTER_MERGE_LIMIT`] plus the fixed same-process noise
/// margin (never widened by `tolerance`), and within `tolerance` of the
/// checked-in baseline curve when one was recorded at the same scale.
/// The full-cycle cluster/single ratio is host-parallelism-dependent
/// and only reported.
pub fn check_cluster(
    run: &crate::cluster::ClusterBenchRun,
    measured_n_objects: usize,
    baseline: Option<ClusterBaseline>,
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    if run.modes[0].result_changes == 0 {
        report
            .failures
            .push("no result changes over the measured cycles — the bench measured nothing".into());
        return report;
    }
    report.lines.push(format!(
        "lanes: single-node {:.3} ms/cycle vs cluster {:.3} ms/cycle ({} result changes)",
        run.modes[0].ms_per_cycle, run.modes[1].ms_per_cycle, run.modes[0].result_changes
    ));
    report.lines.push(format!(
        "full-cycle cluster/single ratio {:.3}x on a {}-thread host (diagnostic, not gated)",
        run.cluster_over_single,
        crate::shards::available_threads()
    ));
    report.compare(
        "coordinator merge cost vs single-node cycle (W = 4 merge bound)",
        run.merge_over_single,
        CLUSTER_MERGE_LIMIT * (1.0 + CLUSTER_NOISE_MARGIN),
        CLUSTER_MERGE_LIMIT,
    );
    match baseline {
        Some(b) if b.n_objects == measured_n_objects => report.compare(
            "cluster merge ratio vs checked-in baseline curve",
            run.merge_over_single,
            b.merge_over_single * (1.0 + tolerance),
            b.merge_over_single,
        ),
        Some(b) => report.lines.push(format!(
            "baseline recorded at N={} (this run: N={measured_n_objects}): merge ratios are \
             only comparable at equal scale, curve comparison skipped",
            b.n_objects
        )),
        None => report
            .lines
            .push("no BENCH_cluster.json baseline: curve comparison skipped".into()),
    }
    report
}

/// Hard bound on the coordinator's routing slice: the serial per-cycle
/// route cost (per-worker event translation + batch framing + send) at
/// `W = 4` in-process workers may cost at most this multiple of the
/// single-node cycle it fans out (the PR acceptance bar recorded in
/// `BENCH_pipeline.json`). Routing is the slice the pipeline hides
/// behind worker compute — a route that outweighs the cycle it routes
/// cannot be hidden by any pipeline depth.
pub const PIPELINE_ROUTE_LIMIT: f64 = 1.25;

/// Required pipelined-over-serial throughput speedup at `W = 4` on hosts
/// with ≥ 4 threads (the PR acceptance bar recorded in
/// `BENCH_pipeline.json`): overlapping route/compute/merge across epochs
/// must buy back a meaningful share of the serial cycle. Below 4
/// threads the coordinator and workers time-slice the same cores, the
/// overlap has nothing to run on, and the bar is loudly waived (same
/// pattern as the shard gate).
pub const REQUIRED_PIPELINE_SPEEDUP: f64 = 1.15;

/// Multiplicative noise allowance on the pipeline bars. Both lanes run
/// in one process (the ratios are medians of paired cycles / chunks),
/// but route slices are short enough that timer granularity scatters the
/// run-level medians a few percent on busy shared hosts. Like every
/// same-process bar, it is **never** widened by the cross-host
/// `tolerance`; sustained creep is additionally caught by the
/// checked-in-curve comparison.
pub const PIPELINE_NOISE_MARGIN: f64 = 0.10;

/// The context a `BENCH_pipeline.json` baseline pins down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineBaseline {
    /// Recorded median `serial routing ms / single-node ms` ratio.
    pub route_over_single: f64,
    /// Recorded median `serial wall / pipelined wall` chunk speedup.
    pub pipelined_over_serial: f64,
    /// Thread count of the recording host: the speedup curve only binds
    /// between hosts that can actually overlap (≥ 4 threads).
    pub threads: usize,
    /// Object population of the recording run: like the cluster gate,
    /// the route ratio only compares between runs at the same scale.
    pub n_objects: usize,
}

/// Parse the gate statistics of a `BENCH_pipeline.json` document.
pub fn parse_pipeline_baseline(json: &str) -> Option<PipelineBaseline> {
    let grab = |key: &str| {
        json.lines()
            .find(|line| line.contains(key))
            .and_then(|line| field_f64(line, key))
    };
    Some(PipelineBaseline {
        route_over_single: grab("route_over_single")?,
        pipelined_over_serial: grab("pipelined_over_serial")?,
        threads: grab("threads_available")? as usize,
        n_objects: grab("n_objects")? as usize,
    })
}

/// Gate the pipelined-coordinator benchmark: the serial routing slice
/// must stay under [`PIPELINE_ROUTE_LIMIT`]× the single-node cycle (plus
/// the fixed same-process noise margin, never widened by `tolerance`),
/// and on ≥ 4-thread hosts the pipelined lane must beat the serial lane
/// by [`REQUIRED_PIPELINE_SPEEDUP`]× (minus the noise margin). On
/// under-threaded hosts the speedup bar is waived with a **loud WARN**,
/// never a silent skip — the overlap has no cores to run on, so a pass
/// there would certify nothing. Curve comparisons against the checked-in
/// `BENCH_pipeline.json` bind at equal scale (route ratio) and between
/// ≥ 4-thread hosts (speedup).
pub fn check_pipeline(
    run: &crate::pipeline::PipelineBenchRun,
    threads: usize,
    measured_n_objects: usize,
    baseline: Option<PipelineBaseline>,
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    if run.modes[0].result_changes == 0 {
        report
            .failures
            .push("no result changes over the measured cycles — the bench measured nothing".into());
        return report;
    }
    if let Some(b) = baseline {
        if b.threads < 4 {
            report.warn(format!(
                "BENCH_pipeline.json was recorded on a {}-thread host, below the gate's \
                 4-thread requirement: the checked-in speedup pins no overlap property. \
                 Re-record it with bench_pipeline on a >= 4-thread host.",
                b.threads
            ));
        }
    }
    report.lines.push(format!(
        "lanes: single-node {:.3} vs serial {:.3} vs pipelined {:.3} ms/cycle \
         ({} result changes)",
        run.modes[0].ms_per_cycle,
        run.modes[1].ms_per_cycle,
        run.modes[2].ms_per_cycle,
        run.modes[0].result_changes
    ));
    report.lines.push(format!(
        "serial stages route {:.3} / wait {:.3} / merge {:.3} ms; pipelined {:.3} / {:.3} / \
         {:.3} ms",
        run.serial_stages.route_ms,
        run.serial_stages.wait_ms,
        run.serial_stages.merge_ms,
        run.pipelined_stages.route_ms,
        run.pipelined_stages.wait_ms,
        run.pipelined_stages.merge_ms
    ));
    report.compare(
        "serial routing slice vs single-node cycle (W = 4 route bound)",
        run.route_over_single,
        PIPELINE_ROUTE_LIMIT * (1.0 + PIPELINE_NOISE_MARGIN),
        PIPELINE_ROUTE_LIMIT,
    );
    if threads >= 4 {
        report.compare_at_least(
            "pipelined-over-serial speedup (>= 4 threads available)",
            run.pipelined_over_serial,
            REQUIRED_PIPELINE_SPEEDUP / (1.0 + PIPELINE_NOISE_MARGIN),
        );
        match baseline {
            Some(b) if b.threads >= 4 => report.compare_at_least(
                "pipelined speedup vs checked-in baseline curve",
                run.pipelined_over_serial,
                b.pipelined_over_serial / (1.0 + tolerance),
            ),
            // Under-threaded baseline: already warned loudly above.
            Some(_) => {}
            None => report
                .lines
                .push("no BENCH_pipeline.json baseline: speedup curve comparison skipped".into()),
        }
    } else {
        report.warn(format!(
            "host has {threads} thread(s), below the 4 the pipelined-speedup bar needs: \
             the overlap has no cores to run on, so the >= {REQUIRED_PIPELINE_SPEEDUP}x \
             target is waived here (measured {:.2}x, diagnostic only). Run bench_check on \
             a >= 4-thread host to certify the speedup.",
            run.pipelined_over_serial
        ));
    }
    match baseline {
        Some(b) if b.n_objects == measured_n_objects => report.compare(
            "route ratio vs checked-in baseline curve",
            run.route_over_single,
            b.route_over_single * (1.0 + tolerance),
            b.route_over_single,
        ),
        Some(b) => report.lines.push(format!(
            "baseline recorded at N={} (this run: N={measured_n_objects}): route ratios are \
             only comparable at equal scale, curve comparison skipped",
            b.n_objects
        )),
        None => report
            .lines
            .push("no BENCH_pipeline.json baseline: route curve comparison skipped".into()),
    }
    report
}

/// Required batched-vs-scalar distance-kernel speedup on dim-64 buckets
/// of ≥ 32 objects when the explicit-SIMD lane is compiled in (the PR
/// acceptance bar recorded in `BENCH_kernels.json`): the validated
/// unchecked gather fused with packed arithmetic and packed sqrt must
/// clearly beat the per-object `Option<Point>` decode + serial `dist`.
pub const REQUIRED_KERNEL_SPEEDUP: f64 = 1.3;

/// Required speedup for the portable auto-vectorized lane (the default
/// build): it keeps the scalar lane's per-element bounds checks and
/// relies on the compiler packing the second sqrt pass, so on narrow
/// SIMD baselines (x86-64 = SSE2) it lands well short of the SIMD
/// lane's bar — the gate only demands it never *loses* to the scalar
/// idiom it replaced.
pub const MIN_PORTABLE_KERNEL_SPEEDUP: f64 = 1.0;

/// Multiplicative noise allowance on the kernel-speedup bar. Both lanes
/// run in one process under the paired protocol (lanes alternate within
/// each repetition) and the gated statistic is the minimum over three
/// cells, but micro-benchmark cells of a few ms each still scatter a few
/// percent on busy shared hosts. Like every same-process bar, it is
/// **never** widened by the cross-host `tolerance`; sustained creep is
/// additionally caught by the checked-in-curve comparison.
pub const KERNEL_NOISE_MARGIN: f64 = 0.10;

/// The context a `BENCH_kernels.json` baseline pins down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelsBaseline {
    /// Recorded minimum speedup over the gated (dim-64, bucket ≥ 32)
    /// cells.
    pub gate_speedup: f64,
    /// Whether the recording run compiled the explicit-SIMD lane. The
    /// two lanes have different achievable speedups, so the curve only
    /// binds between runs of the **same lane** (mirroring the shard
    /// gate, whose curve only binds between comparable hosts).
    pub simd: bool,
}

/// Parse the gate statistic of a `BENCH_kernels.json` document.
pub fn parse_kernels_baseline(json: &str) -> Option<KernelsBaseline> {
    let gate_speedup = json
        .lines()
        .find(|line| line.contains("gate_speedup_dim64_bucket32plus"))
        .and_then(|line| field_f64(line, "gate_speedup_dim64_bucket32plus"))?;
    let simd = json
        .lines()
        .any(|line| line.contains("\"simd_feature\": true"));
    Some(KernelsBaseline { gate_speedup, simd })
}

/// Gate the distance-kernel benchmark: the minimum batched-vs-scalar
/// speedup over the dim-64, bucket ≥ 32 cells must clear the lane's
/// acceptance bar — ≥ 1.3× for the explicit-SIMD lane
/// (`simd_lane = true`), never-lose for the portable lane — minus the
/// fixed same-process noise margin, never widened by `tolerance`; and
/// stay within `tolerance` of the checked-in baseline curve when one
/// was recorded for the same lane. The bit-identicality of the two
/// benchmark lanes is asserted inside the benchmark itself (checksum
/// comparison), so a completed run already proves conformance.
pub fn check_kernels(
    measured: &[KernelMeasurement],
    simd_lane: bool,
    baseline: Option<KernelsBaseline>,
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    let Some(speedup) = crate::kernels::gate_speedup(measured) else {
        report
            .failures
            .push("kernel sweep measured no dim-64 cell with bucket >= 32".into());
        return report;
    };
    let (lane, bar) = if simd_lane {
        ("simd lane", REQUIRED_KERNEL_SPEEDUP)
    } else {
        ("portable lane", MIN_PORTABLE_KERNEL_SPEEDUP)
    };
    report.compare_at_least(
        &format!("batched-kernel speedup on dim-64 buckets >= 32 ({lane}, min over cells)"),
        speedup,
        bar / (1.0 + KERNEL_NOISE_MARGIN),
    );
    match baseline {
        Some(b) if b.simd == simd_lane => report.compare_at_least(
            "batched-kernel speedup vs checked-in baseline curve",
            speedup,
            b.gate_speedup / (1.0 + tolerance),
        ),
        Some(b) => report.lines.push(format!(
            "baseline recorded with simd_feature: {} (this run: {simd_lane}): speedups are \
             only comparable within a lane, curve comparison skipped",
            b.simd
        )),
        None => report
            .lines
            .push("no BENCH_kernels.json baseline: curve comparison skipped".into()),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRID_JSON: &str = r#"{
  "results": [
    {"dim": 64, "layout": "dense-buckets", "update_ns_per_op": 54.3, "scan_ns_per_object": 1.718, "objects_scanned": 1168392},
    {"dim": 64, "layout": "hash-sets", "update_ns_per_op": 76.0, "scan_ns_per_object": 4.010, "objects_scanned": 1168392},
    {"dim": 256, "layout": "dense-buckets", "update_ns_per_op": 103.3, "scan_ns_per_object": 27.205, "objects_scanned": 74517}
  ]
}"#;

    fn dense(dim: u32, update_ns: f64, scan_ns: f64) -> (Measurement, Measurement) {
        let m = Measurement {
            layout: "dense-buckets",
            dim,
            update_ns,
            scan_ns_per_obj: scan_ns,
            objects_scanned: 1,
            checksum: 0,
        };
        (
            m,
            Measurement {
                layout: "hash-sets",
                ..m
            },
        )
    }

    #[test]
    fn parses_dense_baseline_entries() {
        let b = parse_grid_baseline(GRID_JSON);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].dim, 64);
        assert!((b[0].update_ns - 54.3).abs() < 1e-9);
        assert!((b[1].scan_ns - 27.205).abs() < 1e-9);
    }

    #[test]
    fn within_tolerance_passes_beyond_fails() {
        let baseline = parse_grid_baseline(GRID_JSON);
        let ok = check_grid(&baseline, &[dense(64, 60.0, 2.0)], 0.25);
        assert!(ok.passed(), "{:?}", ok.failures);
        let bad = check_grid(&baseline, &[dense(64, 90.0, 2.0)], 0.25);
        assert!(!bad.passed());
        assert_eq!(bad.failures.len(), 1);
        let unknown = check_grid(&baseline, &[dense(1024, 1e6, 1e6)], 0.25);
        assert!(unknown.passed(), "unbaselined dims must not gate");
    }

    #[test]
    fn in_run_control_gates_even_without_a_baseline() {
        // Dense slower than the same-run hash-set control: a true
        // regression regardless of host speed or missing baselines.
        let m = Measurement {
            layout: "dense-buckets",
            dim: 512, // no baseline entry for this dim
            update_ns: 300.0,
            scan_ns_per_obj: 4.0,
            objects_scanned: 1,
            checksum: 0,
        };
        let control = Measurement {
            layout: "hash-sets",
            update_ns: 100.0,
            ..m
        };
        let report = check_grid(&[], &[(m, control)], 0.25);
        assert!(!report.passed());
        assert!(report.failures[0].contains("control"));
    }

    fn sweep(speedup: f64) -> Vec<ShardMeasurement> {
        vec![
            ShardMeasurement {
                shards: 1,
                ms_per_cycle: 10.0,
                speedup: 1.0,
                max_cycle_ms: 12.0,
                result_changes: 7,
            },
            ShardMeasurement {
                shards: 4,
                ms_per_cycle: 10.0 / speedup,
                speedup,
                max_cycle_ms: 12.0,
                result_changes: 7,
            },
        ]
    }

    #[test]
    fn shard_gate_is_hardware_aware() {
        assert!(check_shards(&sweep(2.0), 8, None, 0.25).passed());
        assert!(!check_shards(&sweep(1.2), 8, None, 0.25).passed());
        // Single-core hosts: no scaling required, only bounded overhead.
        assert!(check_shards(&sweep(0.9), 1, None, 0.25).passed());
        assert!(!check_shards(&sweep(0.3), 1, None, 0.25).passed());
    }

    #[test]
    fn shard_gate_compares_against_comparable_baselines_only() {
        let strong = Some(ShardsBaseline {
            threads: 8,
            speedup_4: Some(3.0),
        });
        // 1.6x clears the hard bar but is far below the 3.0x baseline.
        assert!(!check_shards(&sweep(1.6), 8, strong, 0.25).passed());
        assert!(check_shards(&sweep(2.8), 8, strong, 0.25).passed());
        // A single-core baseline pins nothing about scaling.
        let single = Some(ShardsBaseline {
            threads: 1,
            speedup_4: Some(0.8),
        });
        assert!(check_shards(&sweep(1.6), 8, single, 0.25).passed());
    }

    fn delta_run(overhead: f64) -> crate::deltas::DeltaBenchRun {
        let m = crate::deltas::DeltaMeasurement {
            mode: "full-list",
            ms_per_cycle: 10.0,
            max_cycle_ms: 12.0,
            entries_shipped: 100,
            result_changes: 10,
        };
        crate::deltas::DeltaBenchRun {
            modes: [
                m,
                crate::deltas::DeltaMeasurement {
                    mode: "delta",
                    ms_per_cycle: 10.0 * (1.0 + overhead),
                    ..m
                },
            ],
            overhead_vs_full: overhead,
        }
    }

    #[test]
    fn delta_gate_enforces_the_overhead_bar() {
        // Under the bar (with noise margin): ok. Above bar + margin: fail.
        assert!(check_deltas(&delta_run(0.05), None, 0.25).passed());
        assert!(check_deltas(&delta_run(-0.10), None, 0.25).passed());
        assert!(check_deltas(&delta_run(0.12), None, 0.25).passed());
        assert!(!check_deltas(&delta_run(0.25), None, 0.25).passed());
        assert!(!check_deltas(&delta_run(0.40), None, 0.25).passed());
        // The cross-host tolerance must NOT widen the hard bar.
        assert!(!check_deltas(&delta_run(0.25), None, 10.0).passed());
    }

    #[test]
    fn delta_gate_compares_against_the_baseline_curve() {
        let baseline = Some(DeltasBaseline {
            overhead_vs_full: 0.02,
        });
        assert!(check_deltas(&delta_run(0.03), baseline, 0.25).passed());
        // Within the hard bar but far beyond the recorded curve + 25%:
        // a regression against our own history.
        assert!(!check_deltas(&delta_run(0.30), baseline, 0.0).passed());
    }

    fn server_run(speedup: f64) -> crate::server::ServerBenchRun {
        let m = crate::server::ServerMeasurement {
            mode: "unified",
            ms_per_cycle: 10.0,
            max_cycle_ms: 12.0,
            result_changes: 50,
        };
        crate::server::ServerBenchRun {
            modes: [
                m,
                crate::server::ServerMeasurement {
                    mode: "split",
                    ms_per_cycle: 10.0 * speedup,
                    ..m
                },
            ],
            unified_speedup: speedup,
        }
    }

    #[test]
    fn server_gate_enforces_the_speedup_bar() {
        assert!(check_server(&server_run(2.0), None, 0.25).passed());
        // Just under the bar but inside the fixed noise margin: ok.
        assert!(check_server(&server_run(1.25), None, 0.25).passed());
        assert!(!check_server(&server_run(1.1), None, 0.25).passed());
        // The cross-host tolerance must NOT widen the hard bar.
        assert!(!check_server(&server_run(1.1), None, 10.0).passed());
    }

    #[test]
    fn server_gate_compares_against_the_baseline_curve() {
        let baseline = Some(ServerBaseline {
            unified_speedup: 2.4,
        });
        assert!(check_server(&server_run(2.2), baseline, 0.25).passed());
        // Clears the hard bar but far below our own recorded curve.
        assert!(!check_server(&server_run(1.5), baseline, 0.25).passed());
    }

    fn regrid_run(speedup: f64, regrids: u64, pause_ms: f64) -> crate::regrid::RegridBenchRun {
        let m = crate::regrid::RegridMeasurement {
            mode: "fixed",
            ms_per_cycle: 10.0,
            max_cycle_ms: 12.0,
            result_changes: 40,
        };
        crate::regrid::RegridBenchRun {
            modes: [
                m,
                crate::regrid::RegridMeasurement {
                    mode: "adaptive",
                    ms_per_cycle: 10.0 / speedup,
                    ..m
                },
            ],
            adaptive_speedup: speedup,
            fixed_dim: 32,
            final_dim: 128,
            regrids,
            regrid_objects_migrated: 10_000 * regrids,
            max_regrid_cycle_ms: pause_ms,
        }
    }

    #[test]
    fn regrid_gate_enforces_the_speedup_bar() {
        assert!(check_regrid(&regrid_run(2.0, 2, 20.0), 2_000, None, 0.25).passed());
        // Just under the bar but inside the fixed noise margin: ok.
        assert!(check_regrid(&regrid_run(1.12, 2, 20.0), 2_000, None, 0.25).passed());
        assert!(!check_regrid(&regrid_run(1.0, 2, 20.0), 2_000, None, 0.25).passed());
        // The cross-host tolerance must NOT widen the hard bar.
        assert!(!check_regrid(&regrid_run(1.0, 2, 20.0), 2_000, None, 10.0).passed());
        // Never re-gridding at all fails regardless of timings.
        assert!(!check_regrid(&regrid_run(2.0, 0, 0.0), 2_000, None, 0.25).passed());
    }

    #[test]
    fn regrid_gate_bounds_the_migration_pause() {
        // Adaptive median is 10/2 = 5 ms; the pause bound is 25x that.
        assert!(check_regrid(&regrid_run(2.0, 1, 100.0), 2_000, None, 0.25).passed());
        assert!(!check_regrid(&regrid_run(2.0, 1, 200.0), 2_000, None, 0.25).passed());
    }

    #[test]
    fn regrid_gate_compares_against_the_baseline_curve() {
        let baseline = Some(RegridBaseline {
            adaptive_speedup: 3.0,
            n_base: 2_000,
        });
        assert!(check_regrid(&regrid_run(2.8, 1, 20.0), 2_000, baseline, 0.25).passed());
        // Clears the hard bar but far below our own recorded curve.
        assert!(!check_regrid(&regrid_run(1.5, 1, 20.0), 2_000, baseline, 0.25).passed());
        // A baseline recorded at another scale pins nothing: achievable
        // speedup grows with the base-vs-peak mismatch, so the curve only
        // binds at equal n_base.
        let full_scale = Some(RegridBaseline {
            adaptive_speedup: 3.0,
            n_base: 10_000,
        });
        assert!(check_regrid(&regrid_run(1.5, 1, 20.0), 2_000, full_scale, 0.25).passed());
    }

    fn index_run(speedup: f64, overhead: f64) -> crate::index::IndexBenchRun {
        let m = crate::index::IndexMeasurement {
            mode: "uniform-mono",
            ms_per_cycle: 10.0,
            max_cycle_ms: 12.0,
            result_changes: 40,
        };
        crate::index::IndexBenchRun {
            modes: [
                m,
                crate::index::IndexMeasurement {
                    mode: "uniform-dyn",
                    ms_per_cycle: 10.0 * overhead,
                    ..m
                },
                crate::index::IndexMeasurement {
                    mode: "quadtree",
                    ms_per_cycle: 10.0 / speedup,
                    ..m
                },
            ],
            quadtree_speedup: speedup,
            dyn_overhead: overhead,
            uniform_dim: 32,
            quadtree_dim: 128,
        }
    }

    #[test]
    fn index_gate_enforces_the_quadtree_bar() {
        assert!(check_index(&index_run(1.5, 1.0), 2_000, None, 0.25).passed());
        // Just under the bar but inside the fixed noise margin: ok.
        assert!(check_index(&index_run(1.06, 1.0), 2_000, None, 0.25).passed());
        assert!(!check_index(&index_run(1.0, 1.0), 2_000, None, 0.25).passed());
        // The cross-host tolerance must NOT widen the hard bar.
        assert!(!check_index(&index_run(1.0, 1.0), 2_000, None, 10.0).passed());
    }

    #[test]
    fn index_gate_bounds_the_dyn_dispatch_overhead() {
        assert!(check_index(&index_run(1.5, 1.05), 2_000, None, 0.25).passed());
        // Inside the noise margin above the bound: ok.
        assert!(check_index(&index_run(1.5, 1.18), 2_000, None, 0.25).passed());
        assert!(!check_index(&index_run(1.5, 1.30), 2_000, None, 0.25).passed());
        // The cross-host tolerance must NOT widen the overhead bound.
        assert!(!check_index(&index_run(1.5, 1.30), 2_000, None, 10.0).passed());
    }

    #[test]
    fn index_gate_requires_a_finer_quadtree_provisioning() {
        let mut run = index_run(1.5, 1.0);
        run.quadtree_dim = run.uniform_dim;
        assert!(!check_index(&run, 2_000, None, 0.25).passed());
    }

    #[test]
    fn index_gate_compares_against_the_baseline_curve() {
        let baseline = Some(IndexBaseline {
            quadtree_speedup: 3.0,
            n_base: 2_000,
        });
        assert!(check_index(&index_run(2.8, 1.0), 2_000, baseline, 0.25).passed());
        // Clears the hard bar but far below our own recorded curve.
        assert!(!check_index(&index_run(1.5, 1.0), 2_000, baseline, 0.25).passed());
        // A baseline recorded at another scale pins nothing: achievable
        // speedup grows with the provisioning mismatch, so the curve
        // only binds at equal n_base.
        let full_scale = Some(IndexBaseline {
            quadtree_speedup: 3.0,
            n_base: 10_000,
        });
        assert!(check_index(&index_run(1.5, 1.0), 2_000, full_scale, 0.25).passed());
    }

    #[test]
    fn parses_index_baseline() {
        let json = "{\n  \"config\": {\"n_base\": 10000, \"peak_factor\": 10},\n  \
                    \"quadtree_speedup\": 1.6123, \"dyn_overhead\": 1.0150\n}\n";
        let b = parse_index_baseline(json).unwrap();
        assert!((b.quadtree_speedup - 1.6123).abs() < 1e-9);
        assert_eq!(b.n_base, 10_000);
    }

    fn recovery_run(over_cycle: f64, replayed: usize) -> crate::recovery::RecoveryBenchRun {
        crate::recovery::RecoveryBenchRun {
            median_cycle_ms: 10.0,
            max_cycle_ms: 14.0,
            recovery_ms: 10.0 * over_cycle,
            recovery_over_cycle: over_cycle,
            snapshot_bytes: 1 << 20,
            journal_bytes: 1 << 16,
            replayed,
            result_changes: 40,
        }
    }

    #[test]
    fn recovery_gate_enforces_the_pause_bound() {
        assert!(check_recovery(&recovery_run(8.0, 20), 10_000, None, 0.25).passed());
        assert!(check_recovery(&recovery_run(25.0, 20), 10_000, None, 0.25).passed());
        assert!(!check_recovery(&recovery_run(30.0, 20), 10_000, None, 0.25).passed());
        // The cross-host tolerance must NOT widen the hard bar.
        assert!(!check_recovery(&recovery_run(30.0, 20), 10_000, None, 10.0).passed());
        // An empty journal means the bench measured nothing.
        assert!(!check_recovery(&recovery_run(8.0, 0), 10_000, None, 0.25).passed());
    }

    #[test]
    fn recovery_gate_compares_against_the_baseline_curve() {
        let baseline = Some(RecoveryBaseline {
            recovery_over_cycle: 6.0,
            n_objects: 10_000,
        });
        assert!(check_recovery(&recovery_run(7.0, 20), 10_000, baseline, 0.25).passed());
        // Under the hard bar but far beyond our own recorded curve.
        assert!(!check_recovery(&recovery_run(10.0, 20), 10_000, baseline, 0.25).passed());
        // A baseline recorded at another scale pins nothing.
        let full_scale = Some(RecoveryBaseline {
            recovery_over_cycle: 6.0,
            n_objects: 100_000,
        });
        assert!(check_recovery(&recovery_run(10.0, 20), 10_000, full_scale, 0.25).passed());
    }

    #[test]
    fn recovery_baseline_roundtrips_through_json() {
        let cfg = crate::recovery::RecoveryBenchConfig {
            n_objects: 400,
            knn_queries: 3,
            range_queries: 3,
            constrained_queries: 3,
            rnn_queries: 1,
            k: 2,
            cycles: 3,
            grid_dim: 16,
            recover_trials: 1,
            ..crate::recovery::RecoveryBenchConfig::default()
        };
        let run = crate::recovery::run(&cfg);
        let json = crate::recovery::render_json(&cfg, &run);
        let parsed = parse_recovery_baseline(&json).expect("ratio recorded");
        assert!((parsed.recovery_over_cycle - run.recovery_over_cycle).abs() < 1e-3);
        assert_eq!(parsed.n_objects, 400);
    }

    #[test]
    fn regrid_baseline_roundtrips_through_json() {
        let cfg = crate::regrid::RegridBenchConfig {
            n_base: 200,
            peak_factor: 4.0,
            n_queries: 8,
            k: 2,
            cycles: 8,
            warmup_cycles: 1,
            check_every: 2,
            cooldown: 2,
            ..crate::regrid::RegridBenchConfig::default()
        };
        let run = crate::regrid::run(&cfg);
        let json = crate::regrid::render_json(&cfg, &run);
        let parsed = parse_regrid_baseline(&json).expect("speedup recorded");
        assert!((parsed.adaptive_speedup - run.adaptive_speedup).abs() < 1e-3);
    }

    #[test]
    fn server_baseline_roundtrips_through_json() {
        let cfg = crate::server::ServerBenchConfig {
            n_objects: 300,
            knn_queries: 4,
            range_queries: 4,
            constrained_queries: 4,
            k: 2,
            cycles: 2,
            warmup_cycles: 1,
            grid_dim: 16,
            ..crate::server::ServerBenchConfig::default()
        };
        let run = crate::server::run(&cfg);
        let json = crate::server::render_json(&cfg, &run);
        let parsed = parse_server_baseline(&json).expect("speedup recorded");
        assert!((parsed.unified_speedup - run.unified_speedup).abs() < 1e-3);
    }

    #[test]
    fn deltas_baseline_roundtrips_through_json() {
        let cfg = crate::deltas::DeltaBenchConfig {
            n_objects: 300,
            n_subscriptions: 10,
            k: 2,
            cycles: 2,
            warmup_cycles: 1,
            grid_dim: 16,
            ..crate::deltas::DeltaBenchConfig::default()
        };
        let run = crate::deltas::run(&cfg);
        let json = crate::deltas::render_json(&cfg, &run);
        let parsed = parse_deltas_baseline(&json).expect("overhead recorded");
        assert!((parsed.overhead_vs_full - run.overhead_vs_full).abs() < 1e-3);
    }

    #[test]
    fn shards_threads_metadata_roundtrips() {
        let cfg = crate::shards::ShardBenchConfig {
            n_objects: 100,
            n_queries: 4,
            cycles: 1,
            shard_counts: vec![1],
            ..crate::shards::ShardBenchConfig::default()
        };
        let json = crate::shards::render_json(&cfg, &crate::shards::run(&cfg));
        assert_eq!(
            parse_shards_threads(&json),
            Some(crate::shards::available_threads())
        );
    }

    #[test]
    fn shard_gate_warns_loudly_on_under_threaded_baselines() {
        let under = Some(ShardsBaseline {
            threads: 1,
            speedup_4: Some(0.8),
        });
        // Non-fatal, but loud: the gate passes with a warning, on any
        // measuring host.
        for threads in [1usize, 8] {
            let report = check_shards(&sweep(2.0), threads, under, 0.25);
            assert!(report.passed(), "{:?}", report.failures);
            assert_eq!(report.warnings.len(), 1, "host threads {threads}");
            assert!(report.warnings[0].contains("1-thread host"));
            assert!(report.warnings[0].contains("Re-record"));
        }
        // Comparable baselines and missing baselines stay warning-free.
        let strong = Some(ShardsBaseline {
            threads: 8,
            speedup_4: Some(1.9),
        });
        assert!(check_shards(&sweep(2.0), 8, strong, 0.25)
            .warnings
            .is_empty());
        assert!(check_shards(&sweep(2.0), 8, None, 0.25).warnings.is_empty());
    }

    /// A synthetic run whose gated merge ratio is `ratio`; the full-cycle
    /// ratio is deliberately far above the bar to prove it is diagnostic
    /// only.
    fn cluster_run(ratio: f64, changes: usize) -> crate::cluster::ClusterBenchRun {
        let m = crate::cluster::ClusterMeasurement {
            mode: "single-node",
            ms_per_cycle: 10.0,
            max_cycle_ms: 12.0,
            result_changes: changes,
        };
        crate::cluster::ClusterBenchRun {
            modes: [
                m,
                crate::cluster::ClusterMeasurement {
                    mode: "cluster",
                    ms_per_cycle: 35.0,
                    ..m
                },
            ],
            route_ms_per_cycle: 2.0,
            worker_wait_ms_per_cycle: 20.0,
            merge_ms_per_cycle: 10.0 * ratio,
            merge_over_single: ratio,
            cluster_over_single: 3.5,
        }
    }

    #[test]
    fn cluster_gate_enforces_the_merge_bound() {
        assert!(check_cluster(&cluster_run(1.05, 40), 4_000, None, 0.25).passed());
        assert!(check_cluster(&cluster_run(1.25, 40), 4_000, None, 0.25).passed());
        // Just over the bar but inside the fixed noise margin: ok.
        assert!(check_cluster(&cluster_run(1.35, 40), 4_000, None, 0.25).passed());
        assert!(!check_cluster(&cluster_run(1.45, 40), 4_000, None, 0.25).passed());
        // The cross-host tolerance must NOT widen the hard bar.
        assert!(!check_cluster(&cluster_run(1.45, 40), 4_000, None, 10.0).passed());
        // A run with no result churn measured nothing.
        assert!(!check_cluster(&cluster_run(1.05, 0), 4_000, None, 0.25).passed());
    }

    #[test]
    fn cluster_gate_compares_against_the_baseline_curve() {
        let baseline = Some(ClusterBaseline {
            merge_over_single: 1.05,
            n_objects: 4_000,
        });
        assert!(check_cluster(&cluster_run(1.10, 40), 4_000, baseline, 0.25).passed());
        // Under the hard bar but far beyond our own recorded curve.
        assert!(!check_cluster(&cluster_run(1.35, 40), 4_000, baseline, 0.0).passed());
        // A baseline recorded at another scale pins nothing: the ratio
        // shrinks as maintenance work amortizes the merge's fixed costs.
        let full_scale = Some(ClusterBaseline {
            merge_over_single: 1.05,
            n_objects: 10_000,
        });
        assert!(check_cluster(&cluster_run(1.35, 40), 4_000, full_scale, 0.25).passed());
    }

    #[test]
    fn cluster_baseline_roundtrips_through_json() {
        let cfg = crate::cluster::ClusterBenchConfig {
            n_objects: 400,
            n_queries: 8,
            k: 2,
            cycles: 2,
            warmup_cycles: 1,
            grid_dim: 16,
            workers: 2,
            overlap: 4,
            ..crate::cluster::ClusterBenchConfig::default()
        };
        let run = crate::cluster::run(&cfg);
        let json = crate::cluster::render_json(&cfg, &run);
        let parsed = parse_cluster_baseline(&json).expect("ratio recorded");
        assert!((parsed.merge_over_single - run.merge_over_single).abs() < 1e-3);
        assert_eq!(parsed.n_objects, 400);
    }

    /// A synthetic pipeline run with the given gated ratios.
    fn pipeline_run(
        route_ratio: f64,
        speedup: f64,
        changes: usize,
    ) -> crate::pipeline::PipelineBenchRun {
        let m = crate::pipeline::PipelineMeasurement {
            mode: "single-node",
            ms_per_cycle: 10.0,
            result_changes: changes,
        };
        let stages = crate::pipeline::StageSplit {
            route_ms: 10.0 * route_ratio,
            wait_ms: 20.0,
            merge_ms: 5.0,
        };
        crate::pipeline::PipelineBenchRun {
            modes: [
                m,
                crate::pipeline::PipelineMeasurement {
                    mode: "serial",
                    ms_per_cycle: 35.0,
                    ..m
                },
                crate::pipeline::PipelineMeasurement {
                    mode: "pipelined",
                    ms_per_cycle: 35.0 / speedup,
                    ..m
                },
            ],
            route_over_single: route_ratio,
            pipelined_over_serial: speedup,
            serial_stages: stages,
            pipelined_stages: stages,
        }
    }

    #[test]
    fn pipeline_gate_enforces_the_route_bound() {
        assert!(check_pipeline(&pipeline_run(1.05, 1.5, 40), 8, 4_000, None, 0.25).passed());
        // Just over the bar but inside the fixed noise margin: ok.
        assert!(check_pipeline(&pipeline_run(1.35, 1.5, 40), 8, 4_000, None, 0.25).passed());
        assert!(!check_pipeline(&pipeline_run(1.45, 1.5, 40), 8, 4_000, None, 0.25).passed());
        // The cross-host tolerance must NOT widen the hard bar.
        assert!(!check_pipeline(&pipeline_run(1.45, 1.5, 40), 8, 4_000, None, 10.0).passed());
        // A run with no result churn measured nothing.
        assert!(!check_pipeline(&pipeline_run(1.05, 1.5, 0), 8, 4_000, None, 0.25).passed());
    }

    #[test]
    fn pipeline_gate_requires_the_speedup_only_on_threaded_hosts() {
        // >= 4 threads: the speedup bar binds (minus the noise margin).
        assert!(check_pipeline(&pipeline_run(1.0, 1.15, 40), 4, 4_000, None, 0.25).passed());
        assert!(check_pipeline(&pipeline_run(1.0, 1.06, 40), 4, 4_000, None, 0.25).passed());
        assert!(!check_pipeline(&pipeline_run(1.0, 0.95, 40), 4, 4_000, None, 0.25).passed());
        // The cross-host tolerance must NOT widen the hard bar.
        assert!(!check_pipeline(&pipeline_run(1.0, 0.95, 40), 4, 4_000, None, 10.0).passed());
        // Under-threaded host: waived, but LOUDLY — a warning, never a
        // silent skip, whatever the measured speedup.
        let report = check_pipeline(&pipeline_run(1.0, 0.9, 40), 1, 4_000, None, 0.25);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(
            report.warnings.iter().any(|w| w.contains("waived")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn pipeline_gate_compares_against_comparable_baselines_only() {
        let strong = PipelineBaseline {
            route_over_single: 0.50,
            pipelined_over_serial: 1.60,
            threads: 8,
            n_objects: 4_000,
        };
        assert!(
            check_pipeline(&pipeline_run(0.55, 1.55, 40), 8, 4_000, Some(strong), 0.25).passed()
        );
        // Clears the hard bars but far below our own recorded curves.
        assert!(!check_pipeline(&pipeline_run(1.0, 1.2, 40), 8, 4_000, Some(strong), 0.0).passed());
        // An under-threaded baseline pins no overlap property: loud WARN.
        let weak = Some(PipelineBaseline {
            threads: 1,
            ..strong
        });
        let report = check_pipeline(&pipeline_run(0.50, 1.2, 40), 8, 4_000, weak, 0.25);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.warnings.iter().any(|w| w.contains("Re-record")));
        // A baseline at another scale pins no route curve.
        let other_scale = Some(PipelineBaseline {
            n_objects: 10_000,
            ..strong
        });
        assert!(check_pipeline(&pipeline_run(1.0, 1.65, 40), 8, 4_000, other_scale, 0.0).passed());
    }

    #[test]
    fn pipeline_baseline_roundtrips_through_json() {
        let cfg = crate::pipeline::PipelineBenchConfig {
            n_objects: 400,
            n_queries: 8,
            k: 2,
            cycles: 4,
            chunk: 2,
            warmup_cycles: 1,
            grid_dim: 16,
            workers: 2,
            overlap: 4,
            ..crate::pipeline::PipelineBenchConfig::default()
        };
        let run = crate::pipeline::run(&cfg);
        let json = crate::pipeline::render_json(&cfg, &run);
        let parsed = parse_pipeline_baseline(&json).expect("ratios recorded");
        assert!((parsed.route_over_single - run.route_over_single).abs() < 1e-3);
        assert!((parsed.pipelined_over_serial - run.pipelined_over_serial).abs() < 1e-3);
        assert_eq!(parsed.threads, crate::shards::available_threads());
        assert_eq!(parsed.n_objects, 400);
    }

    fn kernel_cells(speedups: &[(usize, usize, f64)]) -> Vec<KernelMeasurement> {
        speedups
            .iter()
            .map(|&(dim, bucket, speedup)| KernelMeasurement {
                dim,
                bucket,
                scalar_ns: 4.0,
                batched_ns: 4.0 / speedup,
                speedup,
            })
            .collect()
    }

    #[test]
    fn kernel_gate_enforces_the_speedup_bar_on_the_worst_gated_cell() {
        let ok = kernel_cells(&[(64, 16, 0.9), (64, 32, 1.6), (64, 64, 1.5)]);
        assert!(check_kernels(&ok, true, None, 0.25).passed());
        // Just under the bar but inside the fixed noise margin: ok.
        let margin = kernel_cells(&[(64, 32, 1.25), (64, 64, 2.0)]);
        assert!(check_kernels(&margin, true, None, 0.25).passed());
        // One gated cell below bar - margin fails, however fast the rest.
        let bad = kernel_cells(&[(64, 32, 1.0), (64, 64, 3.0), (1024, 256, 9.0)]);
        assert!(!check_kernels(&bad, true, None, 0.25).passed());
        // The cross-host tolerance must NOT widen the hard bar.
        assert!(!check_kernels(&bad, true, None, 10.0).passed());
        // A sweep without any gated cell measured nothing.
        assert!(!check_kernels(&kernel_cells(&[(256, 64, 2.0)]), true, None, 0.25).passed());
    }

    #[test]
    fn kernel_gate_holds_the_portable_lane_to_break_even_only() {
        // 1.1x: under the SIMD bar, fine for the portable lane.
        let cells = kernel_cells(&[(64, 32, 1.1), (64, 64, 1.15)]);
        assert!(check_kernels(&cells, false, None, 0.25).passed());
        assert!(!check_kernels(&cells, true, None, 0.25).passed());
        // Losing outright (beyond the noise margin) fails either lane.
        let losing = kernel_cells(&[(64, 32, 0.8)]);
        assert!(!check_kernels(&losing, false, None, 0.25).passed());
        // The cross-host tolerance must NOT widen the break-even bar.
        assert!(!check_kernels(&losing, false, None, 10.0).passed());
    }

    #[test]
    fn kernel_gate_compares_against_same_lane_baselines_only() {
        let simd_curve = Some(KernelsBaseline {
            gate_speedup: 2.5,
            simd: true,
        });
        assert!(check_kernels(&kernel_cells(&[(64, 32, 2.3)]), true, simd_curve, 0.25).passed());
        // Clears the hard bar but far below our own recorded curve.
        assert!(!check_kernels(&kernel_cells(&[(64, 32, 1.5)]), true, simd_curve, 0.25).passed());
        // A SIMD-lane baseline pins nothing about the portable lane.
        assert!(check_kernels(&kernel_cells(&[(64, 32, 1.1)]), false, simd_curve, 0.25).passed());
    }

    #[test]
    fn kernels_baseline_roundtrips_through_json() {
        let cfg = crate::kernels::KernelBenchConfig {
            dims: vec![64],
            buckets: vec![32],
            n_buckets: 4,
            target_ops: 2_000,
            ..crate::kernels::KernelBenchConfig::default()
        };
        let results = crate::kernels::run(&cfg);
        let json = crate::kernels::render_json(&cfg, &results);
        let parsed = parse_kernels_baseline(&json).expect("gate statistic recorded");
        let want = crate::kernels::gate_speedup(&results).unwrap();
        assert!((parsed.gate_speedup - want).abs() < 5e-3 + want * 5e-3);
        assert_eq!(parsed.simd, cfg!(feature = "simd"));
    }
}
