//! Shard-scaling benchmark: cycle throughput of the sharded parallel
//! engine ([`cpm_core::ShardedKnnMonitor`]) versus the sequential engine
//! (1 shard), on the paper's default workload shape (100K uniform objects,
//! 5K queries, k = 16, 128² grid, 10% of objects moving per cycle).
//!
//! The `bench_shards` binary runs [`ShardBenchConfig::default`] and
//! records `BENCH_shards.json` (with host thread-count metadata — scaling
//! curves are meaningless without it). The CI regression gate
//! (`bench_check`) runs [`ShardBenchConfig::reduced`] and checks the
//! scaling *property*: ≥ 1.5× at 4 shards on ≥ 4-thread hosts (plus the
//! checked-in curve when the baseline host could scale), bounded
//! coordination overhead elsewhere — see [`crate::check`] for the exact
//! rules. Absolute ms/cycle is scale- and machine-dependent and is
//! recorded for trajectory, not gated.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cpm_core::ShardedKnnMonitor;
use cpm_geom::{ObjectId, Point, QueryId};
use cpm_grid::ObjectEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload parameters for one shard-scaling run.
#[derive(Debug, Clone)]
pub struct ShardBenchConfig {
    /// Object population `N`.
    pub n_objects: usize,
    /// Installed queries `n`.
    pub n_queries: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Fraction of objects moving per cycle.
    pub move_fraction: f64,
    /// Measured processing cycles.
    pub cycles: usize,
    /// Unmeasured cycles replayed first per shard count (cache/allocator
    /// warmup — the CI gate turns single-run ratios into hard failures,
    /// so cold-start noise must not reach the measurement).
    pub warmup_cycles: usize,
    /// Grid granularity per axis.
    pub grid_dim: u32,
    /// Shard counts to measure; the first entry is the speedup baseline
    /// (conventionally 1 = sequential).
    pub shard_counts: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ShardBenchConfig {
    /// The paper-scale configuration recorded in `BENCH_shards.json`.
    fn default() -> Self {
        Self {
            n_objects: 100_000,
            n_queries: 5_000,
            k: 16,
            move_fraction: 0.10,
            cycles: 10,
            warmup_cycles: 2,
            grid_dim: 128,
            shard_counts: vec![1, 2, 4, 8],
            seed: 2005,
        }
    }
}

impl ShardBenchConfig {
    /// The reduced-scale configuration the CI bench gate runs on every PR.
    pub fn reduced() -> Self {
        Self {
            n_objects: 10_000,
            n_queries: 500,
            cycles: 5,
            shard_counts: vec![1, 4],
            ..Self::default()
        }
    }
}

/// Pre-generated input: initial state plus per-cycle move batches,
/// identical for every shard count.
struct Workload {
    objects: Vec<(ObjectId, Point)>,
    queries: Vec<(QueryId, Point)>,
    cycles: Vec<Vec<ObjectEvent>>,
}

fn build_workload(cfg: &ShardBenchConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut positions = crate::movers::uniform_points(&mut rng, cfg.n_objects);
    let objects: Vec<(ObjectId, Point)> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| (ObjectId(i as u32), p))
        .collect();
    let queries: Vec<(QueryId, Point)> = crate::movers::uniform_points(&mut rng, cfg.n_queries)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (QueryId(i as u32), p))
        .collect();
    let movers = ((cfg.n_objects as f64 * cfg.move_fraction) as usize).max(1);
    let total_cycles = cfg.warmup_cycles + cfg.cycles;
    let cycles = crate::movers::random_walk_cycles(&mut rng, &mut positions, total_cycles, movers)
        .into_iter()
        .map(|batch| {
            batch
                .into_iter()
                .map(|(i, to)| ObjectEvent::Move {
                    id: ObjectId(i as u32),
                    to,
                })
                .collect()
        })
        .collect();
    Workload {
        objects,
        queries,
        cycles,
    }
}

/// Timings for one shard count.
#[derive(Debug, Clone, Copy)]
pub struct ShardMeasurement {
    /// Query shards (1 = sequential, no worker threads).
    pub shards: usize,
    /// **Median** wall time per measured processing cycle (warmup cycles
    /// excluded), in milliseconds — the statistic the CI gate's speedup
    /// ratios are built from, chosen over the mean so one noisy-neighbor
    /// stall cannot flip the gate.
    pub ms_per_cycle: f64,
    /// Cycle throughput relative to the first measured shard count.
    pub speedup: f64,
    /// Slowest single cycle, in milliseconds.
    pub max_cycle_ms: f64,
    /// Total result changes reported (identical across shard counts —
    /// asserted by [`run`], recorded as evidence the runs did equal work).
    pub result_changes: usize,
}

/// Run the scaling sweep. Every shard count replays the identical
/// pre-generated workload: `warmup_cycles` unmeasured batches first, then
/// the measured cycles whose **median** wall time produces the speedup
/// ratios. The total result-change counts over the measured cycles are
/// asserted identical across shard counts (work moved between threads,
/// not skipped).
pub fn run(cfg: &ShardBenchConfig) -> Vec<ShardMeasurement> {
    let w = build_workload(cfg);
    let mut out: Vec<ShardMeasurement> = Vec::new();
    for &shards in &cfg.shard_counts {
        let mut monitor = ShardedKnnMonitor::new(cfg.grid_dim, shards);
        monitor.populate(w.objects.iter().copied());
        for &(qid, pos) in &w.queries {
            monitor.install_query(qid, pos, cfg.k);
        }
        let (warmup, measured) = w.cycles.split_at(cfg.warmup_cycles.min(w.cycles.len()));
        for events in warmup {
            monitor.process_cycle(events, &[]);
        }
        let mut cycle_times: Vec<Duration> = Vec::with_capacity(measured.len());
        let mut result_changes = 0usize;
        for events in measured {
            let start = Instant::now();
            let changed = monitor.process_cycle(events, &[]);
            cycle_times.push(start.elapsed());
            result_changes += changed.len();
        }
        if let Some(first) = out.first() {
            assert_eq!(
                first.result_changes, result_changes,
                "shard count {shards} did different work than the baseline"
            );
        }
        cycle_times.sort_unstable();
        let median = cycle_times
            .get(cycle_times.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let max_cycle = cycle_times.last().copied().unwrap_or(Duration::ZERO);
        let ms_per_cycle = median.as_secs_f64() * 1e3;
        let speedup = out
            .first()
            .map_or(1.0, |first| first.ms_per_cycle / ms_per_cycle);
        out.push(ShardMeasurement {
            shards,
            ms_per_cycle,
            speedup,
            max_cycle_ms: max_cycle.as_secs_f64() * 1e3,
            result_changes,
        });
    }
    out
}

/// Host threads visible to the process (scaling curves are meaningless
/// without this recorded next to them).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Render the `BENCH_shards.json` document for a run.
pub fn render_json(cfg: &ShardBenchConfig, results: &[ShardMeasurement]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_shards\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n_objects\": {}, \"n_queries\": {}, \"k\": {}, \
         \"move_fraction\": {}, \"cycles\": {}, \"warmup_cycles\": {}, \"grid_dim\": {}}},",
        cfg.n_objects,
        cfg.n_queries,
        cfg.k,
        cfg.move_fraction,
        cfg.cycles,
        cfg.warmup_cycles,
        cfg.grid_dim
    );
    let _ = writeln!(
        json,
        "  \"machine\": {{\"threads_available\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},",
        available_threads(),
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shards\": {}, \"ms_per_cycle\": {:.3}, \"speedup\": {:.2}, \
             \"max_cycle_ms\": {:.3}, \"result_changes\": {}}}",
            m.shards, m.ms_per_cycle, m.speedup, m.max_cycle_ms, m.result_changes
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_consistent_across_shard_counts() {
        let cfg = ShardBenchConfig {
            n_objects: 400,
            n_queries: 20,
            k: 4,
            cycles: 3,
            grid_dim: 32,
            shard_counts: vec![1, 2, 4],
            ..ShardBenchConfig::default()
        };
        let results = run(&cfg);
        assert_eq!(results.len(), 3);
        assert!((results[0].speedup - 1.0).abs() < 1e-12);
        // run() asserts equal result_changes internally; spot-check here too.
        assert_eq!(results[0].result_changes, results[2].result_changes);
        let json = render_json(&cfg, &results);
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("threads_available"));
    }
}
