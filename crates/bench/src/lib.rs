//! Benchmark harness reproducing every table and figure of the CPM paper
//! (SIGMOD 2005), plus the extension and ablation studies of this suite.
//!
//! * [`figures`] — one function per paper figure (6.1–6.6), the space
//!   footnote, the Section 4.1 analysis validation, the Section 5
//!   extensions and the ablation study. Each returns a printable
//!   [`Table`].
//! * [`table`] — the plain-text table type experiment output uses.
//! * [`grid_storage`] / [`shards`] / [`deltas`] / [`server`] / [`regrid`]
//!   / [`recovery`] / [`index`] / [`kernels`] / [`cluster`] /
//!   [`pipeline`] — the micro-benchmarks behind the `BENCH_grid.json` /
//!   `BENCH_shards.json` / `BENCH_deltas.json` / `BENCH_server.json` /
//!   `BENCH_regrid.json` / `BENCH_recovery.json` / `BENCH_index.json` /
//!   `BENCH_kernels.json` / `BENCH_cluster.json` / `BENCH_pipeline.json`
//!   baselines.
//! * [`check`] — the benchmark-regression gate (`bench_check`) CI runs on
//!   every PR against those baselines.
//!
//! Two front ends consume this library: the `experiments` binary
//! (`cargo run --release -p cpm-bench --bin experiments -- all`) prints
//! the paper-style series; the Criterion benches (`cargo bench`) measure
//! the same configurations at micro scale with statistical rigor.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod check;
pub mod cluster;
pub mod deltas;
pub mod figures;
pub mod grid_storage;
pub mod index;
pub mod kernels;
mod movers;
pub mod pipeline;
pub mod recovery;
pub mod regrid;
pub mod server;
pub mod shards;
pub mod table;

pub use table::Table;

/// The default scale for interactive runs: keeps every sweep's shape while
/// finishing in minutes on a laptop. `--paper` (1.0) reproduces Table 6.1.
pub const DEFAULT_SCALE: f64 = 0.1;

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-test the cheap figures end to end at a very small scale; the
    /// expensive ones run in the experiments binary / benches.
    #[test]
    fn figures_produce_well_formed_tables() {
        let t = figures::space(0.005);
        assert_eq!(t.rows.len(), 3);
        assert!(t.cell(0, 0) > 0.0);

        let t = figures::analysis(0.005);
        assert_eq!(t.rows.len(), 4);
        // C_inf prediction grows as the grid refines.
        let c_pred = t.col_index("C_inf pred");
        assert!(t.cell(3, c_pred) > t.cell(0, c_pred));
    }

    #[test]
    fn fig6_1_has_paper_axis() {
        // A short dim list: the full 1024² sweep is an `experiments` run
        // (YPK-CNN's ring search is pathological on near-empty fine grids).
        let t = figures::fig6_1_dims(0.005, &[32, 64]);
        let labels: Vec<&str> = t.rows.iter().map(|(x, _)| x.as_str()).collect();
        assert_eq!(labels, vec!["32^2", "64^2"]);
        assert_eq!(t.columns, vec!["CPM", "YPK-CNN", "SEA-CNN"]);
    }
}
