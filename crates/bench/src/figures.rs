//! The experiments of Section 6 (Figures 6.1–6.6, the footnote-6 space
//! comparison), the Section 4.1 analysis validation (Figure 4.1), and the
//! extension/ablation studies. Each function reproduces one figure as a
//! [`Table`] whose rows match the paper's x axis.
//!
//! `scale ∈ (0, 1]` multiplies the population/query counts and the
//! simulation length (`--paper` = 1.0 reproduces Table 6.1 exactly); the
//! *shape* of every series is scale-invariant, which is what
//! EXPERIMENTS.md tracks.

use std::time::Instant;

use cpm_core::ann::{AggregateFn, AnnQuery, CpmAnnMonitor};
use cpm_core::constrained::{ConstrainedQuery, CpmConstrainedMonitor};
use cpm_core::{CpmConfig, CpmKnnMonitor, SpecEvent};
use cpm_gen::SpeedClass;
use cpm_geom::{Point, QueryId, Rect};
use cpm_sim::{
    run, run_boxed, run_contenders, AlgoKind, RunReport, SimParams, SimulationInput, WorkloadKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::Table;

/// Paper parameter sets, scaled.
pub fn base_params(scale: f64) -> SimParams {
    SimParams::scaled(scale)
}

fn contender_columns() -> Vec<String> {
    AlgoKind::CONTENDERS
        .iter()
        .map(|a| a.label().to_string())
        .collect()
}

fn note_params(t: &mut Table, p: &SimParams) {
    t.note(format!(
        "N={}, n={}, k={}, grid={}², f_obj={:.0}%, f_qry={:.0}%, {} timestamps, speeds {}/{}",
        p.n_objects,
        p.n_queries,
        p.k,
        p.grid_dim,
        p.f_obj * 100.0,
        p.f_qry * 100.0,
        p.timestamps,
        p.object_speed.label(),
        p.query_speed.label(),
    ));
}

fn total_ms(r: &RunReport) -> f64 {
    r.processing_time.as_secs_f64() * 1e3
}

/// Figure 6.1: CPU time vs grid granularity (32² … 1024²).
pub fn fig6_1(scale: f64) -> Table {
    fig6_1_dims(scale, &[32, 64, 128, 256, 512, 1024])
}

/// [`fig6_1`] over an explicit set of grid dimensions (tests use a short
/// list: the baselines' ring searches are pathological on near-empty fine
/// grids, which is itself part of the Figure 6.1 story).
pub fn fig6_1_dims(scale: f64, dims: &[u32]) -> Table {
    let params = base_params(scale);
    let mut input = SimulationInput::generate(&params);
    let mut t = Table::new(
        "Figure 6.1 — CPU time vs grid granularity",
        "cells",
        "ms total",
        contender_columns(),
    );
    for &dim in dims {
        input.params.grid_dim = dim;
        let reports = run_contenders(&input);
        t.push_row(format!("{dim}^2"), reports.iter().map(total_ms).collect());
    }
    note_params(&mut t, &params);
    t.note("expected shape: CPM lowest everywhere; 128² a good tradeoff for all methods");
    t
}

/// Figure 6.2a: CPU time vs object population N.
pub fn fig6_2a(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 6.2a — CPU time vs number of objects",
        "N",
        "ms total",
        contender_columns(),
    );
    for base_n in [10_000usize, 50_000, 100_000, 150_000, 200_000] {
        let mut params = base_params(scale);
        params.n_objects = ((base_n as f64 * scale) as usize).max(100);
        let input = SimulationInput::generate(&params);
        let reports = run_contenders(&input);
        t.push_row(
            format!("{}", params.n_objects),
            reports.iter().map(total_ms).collect(),
        );
    }
    note_params(&mut t, &base_params(scale));
    t.note("expected shape: all linear in N; CPM with by far the smallest slope");
    t
}

/// Figure 6.2b: CPU time vs number of queries n.
pub fn fig6_2b(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 6.2b — CPU time vs number of queries",
        "n",
        "ms total",
        contender_columns(),
    );
    for base_n in [1_000usize, 2_000, 5_000, 7_000, 10_000] {
        let mut params = base_params(scale);
        params.n_queries = ((base_n as f64 * scale) as usize).max(10);
        let input = SimulationInput::generate(&params);
        let reports = run_contenders(&input);
        t.push_row(
            format!("{}", params.n_queries),
            reports.iter().map(total_ms).collect(),
        );
    }
    note_params(&mut t, &base_params(scale));
    t.note("expected shape: all linear in n; CPM with the smallest slope");
    t
}

/// Figure 6.3a/6.3b: CPU time and cell accesses per query per timestamp
/// vs k. Returns `(time_table, cell_access_table)`.
pub fn fig6_3(scale: f64) -> (Table, Table) {
    let mut time_t = Table::new(
        "Figure 6.3a — CPU time vs k",
        "k",
        "ms total",
        contender_columns(),
    );
    let mut cells_t = Table::new(
        "Figure 6.3b — cell accesses per query per timestamp vs k",
        "k",
        "cells/query/ts",
        contender_columns(),
    );
    for k in [1usize, 4, 16, 64, 256] {
        let mut params = base_params(scale);
        params.k = k;
        let input = SimulationInput::generate(&params);
        let reports = run_contenders(&input);
        time_t.push_row(format!("{k}"), reports.iter().map(total_ms).collect());
        cells_t.push_row(
            format!("{k}"),
            reports
                .iter()
                .map(|r| r.cell_accesses_per_query_per_cycle())
                .collect(),
        );
    }
    note_params(&mut time_t, &base_params(scale));
    cells_t.note("expected shape: CPM < 1 cell/query/ts for small k (log-scale plot in the paper)");
    (time_t, cells_t)
}

/// Figure 6.4a: CPU time vs object speed class.
pub fn fig6_4a(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 6.4a — CPU time vs object speed",
        "speed",
        "ms total",
        contender_columns(),
    );
    for speed in SpeedClass::ALL {
        let mut params = base_params(scale);
        params.object_speed = speed;
        let input = SimulationInput::generate(&params);
        let reports = run_contenders(&input);
        t.push_row(speed.label(), reports.iter().map(total_ms).collect());
    }
    note_params(&mut t, &base_params(scale));
    t.note("expected shape: CPM practically flat; YPK-CNN and SEA-CNN degrade with speed");
    t
}

/// Figure 6.4b: CPU time vs query speed class.
pub fn fig6_4b(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 6.4b — CPU time vs query speed",
        "speed",
        "ms total",
        contender_columns(),
    );
    for speed in SpeedClass::ALL {
        let mut params = base_params(scale);
        params.query_speed = speed;
        let input = SimulationInput::generate(&params);
        let reports = run_contenders(&input);
        t.push_row(speed.label(), reports.iter().map(total_ms).collect());
    }
    note_params(&mut t, &base_params(scale));
    t.note("expected shape: CPM and YPK-CNN flat (from-scratch computation); SEA-CNN grows");
    t
}

/// Figure 6.5a: CPU time vs object agility f_obj.
pub fn fig6_5a(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 6.5a — CPU time vs object agility",
        "f_obj",
        "ms total",
        contender_columns(),
    );
    for pct in [10u32, 20, 30, 40, 50] {
        let mut params = base_params(scale);
        params.f_obj = pct as f64 / 100.0;
        let input = SimulationInput::generate(&params);
        let reports = run_contenders(&input);
        t.push_row(format!("{pct}%"), reports.iter().map(total_ms).collect());
    }
    note_params(&mut t, &base_params(scale));
    t.note("expected shape: CPM linear in f_obj (index update cost)");
    t
}

/// Figure 6.5b: CPU time vs query agility f_qry.
pub fn fig6_5b(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 6.5b — CPU time vs query agility",
        "f_qry",
        "ms total",
        contender_columns(),
    );
    for pct in [10u32, 20, 30, 40, 50] {
        let mut params = base_params(scale);
        params.f_qry = pct as f64 / 100.0;
        let input = SimulationInput::generate(&params);
        let reports = run_contenders(&input);
        t.push_row(format!("{pct}%"), reports.iter().map(total_ms).collect());
    }
    note_params(&mut t, &base_params(scale));
    t.note("expected shape: CPM grows with f_qry (moving queries recompute); YPK-CNN insensitive");
    t
}

/// Figure 6.6a: NN-computation modules alone — constantly moving queries
/// (every query updates every timestamp), CPM vs YPK-CNN, vs N.
pub fn fig6_6a(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 6.6a — constantly moving queries (NN computation module)",
        "N",
        "ms total",
        vec!["CPM".into(), "YPK-CNN".into()],
    );
    for base_n in [10_000usize, 50_000, 100_000, 150_000, 200_000] {
        let mut params = base_params(scale);
        params.n_objects = ((base_n as f64 * scale) as usize).max(100);
        params.f_qry = 1.0;
        let input = SimulationInput::generate(&params);
        let cpm = run(AlgoKind::Cpm, &input);
        let ypk = run(AlgoKind::Ypk, &input);
        t.push_row(
            format!("{}", params.n_objects),
            vec![total_ms(&cpm), total_ms(&ypk)],
        );
    }
    t.note("f_qry = 100%: results recomputed from scratch every cycle (SEA-CNN omitted, as in the paper)");
    t.note("expected shape: CPM below YPK-CNN with a growing gap in N");
    t
}

/// Figure 6.6b: pure result maintenance — static queries, vs N.
pub fn fig6_6b(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 6.6b — static queries (pure maintenance cost)",
        "N",
        "ms total",
        contender_columns(),
    );
    for base_n in [10_000usize, 50_000, 100_000, 150_000, 200_000] {
        let mut params = base_params(scale);
        params.n_objects = ((base_n as f64 * scale) as usize).max(100);
        params.f_qry = 0.0;
        let input = SimulationInput::generate(&params);
        let reports = run_contenders(&input);
        t.push_row(
            format!("{}", params.n_objects),
            reports.iter().map(total_ms).collect(),
        );
    }
    t.note("f_qry = 0%: no NN computations after installation");
    t.note("expected shape: YPK-CNN ≈ SEA-CNN; CPM far below both");
    t
}

/// Footnote 6: space overhead of the three methods at the default
/// parameters (memory units and MBytes at 4 bytes/unit).
pub fn space(scale: f64) -> Table {
    let params = base_params(scale);
    let input = SimulationInput::generate(&params);
    let mut t = Table::new(
        "Space overhead (Section 6, footnote 6)",
        "method",
        "units / MB",
        vec!["memory units".into(), "MBytes".into()],
    );
    for report in run_contenders(&input) {
        t.push_row(
            report.algo,
            vec![report.space_units as f64, report.space_mbytes()],
        );
    }
    note_params(&mut t, &params);
    t.note(
        "expected order: YPK-CNN < SEA-CNN < CPM (paper: 2.854 / 3.074 / 3.314 MB at full scale)",
    );
    t
}

/// Section 4.1 / Figure 4.1 validation: predicted vs measured `best_dist`,
/// `C_inf`, `O_inf`, `C_SH` on the uniform workload, across grid sizes.
pub fn analysis(scale: f64) -> Table {
    let mut t = Table::new(
        "Section 4.1 — analytical model vs measurement (uniform data)",
        "grid",
        "value",
        vec![
            "bd pred".into(),
            "bd meas".into(),
            "C_inf pred".into(),
            "C_inf meas".into(),
            "O_inf pred".into(),
            "O_inf meas".into(),
            "C_SH pred".into(),
            "C_SH meas".into(),
        ],
    );
    for dim in [32u32, 64, 128, 256] {
        let mut params = base_params(scale);
        params.workload = WorkloadKind::Uniform;
        params.grid_dim = dim;
        let input = SimulationInput::generate(&params);
        let model = params.cost_model();

        let mut monitor = CpmKnnMonitor::new(dim);
        monitor.populate(input.initial_objects.iter().copied());
        for &(qid, pos, k) in &input.initial_queries {
            monitor.install_query(qid, pos, k);
        }
        for tick in &input.ticks {
            monitor.process_cycle(&tick.object_events, &tick.query_events);
        }

        let mut bd = 0.0f64;
        let mut c_inf = 0.0f64;
        let mut o_inf = 0.0f64;
        let mut c_sh = 0.0f64;
        let mut counted = 0usize;
        for qid in monitor.query_ids().collect::<Vec<_>>() {
            let st = monitor.query_state(qid).expect("installed");
            if !st.best.is_full() {
                continue;
            }
            bd += st.best_dist();
            c_inf += st.influence_len as f64;
            o_inf += st.visit_list[..st.influence_len]
                .iter()
                .map(|&(c, _)| monitor.grid().cell_len(c) as f64)
                .sum::<f64>();
            c_sh += (st.visit_list.len() + st.heap.cell_entries()) as f64;
            counted += 1;
        }
        let denom = counted.max(1) as f64;
        t.push_row(
            format!("{dim}^2"),
            vec![
                model.best_dist(),
                bd / denom,
                model.c_inf(),
                c_inf / denom,
                model.o_inf(),
                o_inf / denom,
                model.c_sh(),
                c_sh / denom,
            ],
        );
    }
    note_params(&mut t, &base_params(scale));
    t.note("Figure 4.1 shape: δ↓ ⇒ C_inf↑, O_inf→k; δ↑ ⇒ few cells, many objects");
    t
}

/// Ablation: what the Figure 3.8 merge optimization and the Figure 3.6
/// visit-list reuse buy, across k.
pub fn ablation(scale: f64) -> Table {
    let mut t = Table::new(
        "Ablation — CPM book-keeping optimizations",
        "k",
        "ms total",
        vec![
            "full CPM".into(),
            "no merge".into(),
            "no visit reuse".into(),
            "neither".into(),
        ],
    );
    let configs = [
        CpmConfig::default(),
        CpmConfig {
            merge_optimization: false,
            reuse_visit_list: true,
        },
        CpmConfig {
            merge_optimization: true,
            reuse_visit_list: false,
        },
        CpmConfig {
            merge_optimization: false,
            reuse_visit_list: false,
        },
    ];
    for k in [4usize, 16, 64] {
        let mut params = base_params(scale);
        params.k = k;
        let input = SimulationInput::generate(&params);
        let cells: Vec<f64> = configs
            .iter()
            .map(|&cfg| {
                let mut m = CpmKnnMonitor::with_config(params.grid_dim, cfg);
                total_ms(&run_boxed(&mut m, &input))
            })
            .collect();
        t.push_row(format!("{k}"), cells);
    }
    note_params(&mut t, &base_params(scale));
    t.note(
        "'no merge': every affected query searches; 'no visit reuse': Figure 3.4 instead of 3.6",
    );
    t
}

/// Section 5 extension: continuous ANN monitoring (sum/min/max) vs naive
/// per-cycle re-evaluation over all objects.
pub fn ann(scale: f64) -> Table {
    let params = base_params(scale.min(0.5));
    let input = SimulationInput::generate(&SimParams {
        n_queries: 0,
        ..params
    });
    let n_queries = (params.n_queries / 10).max(5);
    let mut t = Table::new(
        "Section 5 — aggregate-NN monitoring vs naive re-evaluation",
        "aggregate",
        "ms total",
        vec!["CPM-ANN".into(), "re-evaluate".into()],
    );
    for f in [AggregateFn::Sum, AggregateFn::Min, AggregateFn::Max] {
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xA99);
        let specs: Vec<AnnQuery> = (0..n_queries)
            .map(|_| {
                let m = rng.gen_range(2..=5);
                let c = Point::new(rng.gen(), rng.gen());
                let pts = (0..m)
                    .map(|_| {
                        Point::new(
                            (c.x + rng.gen_range(-0.05..0.05)).clamp(0.0, 0.999),
                            (c.y + rng.gen_range(-0.05..0.05)).clamp(0.0, 0.999),
                        )
                    })
                    .collect();
                AnnQuery::new(pts, f)
            })
            .collect();

        // CPM-ANN.
        let mut monitor = CpmAnnMonitor::new(params.grid_dim);
        monitor.populate(input.initial_objects.iter().copied());
        for (i, q) in specs.iter().enumerate() {
            monitor.install_query(QueryId(i as u32), q.clone(), params.k.min(8));
        }
        let start = Instant::now();
        for tick in &input.ticks {
            monitor.process_cycle(&tick.object_events, &[]);
        }
        let cpm_ms = start.elapsed().as_secs_f64() * 1e3;

        // Naive: recompute every adist from scratch each cycle.
        let mut positions: Vec<Option<Point>> = input
            .initial_objects
            .iter()
            .map(|&(_, p)| Some(p))
            .collect();
        let start = Instant::now();
        let kk = params.k.min(8);
        let mut sink = 0.0f64;
        for tick in &input.ticks {
            for ev in &tick.object_events {
                match *ev {
                    cpm_grid::ObjectEvent::Move { id, to } => {
                        if id.index() >= positions.len() {
                            positions.resize(id.index() + 1, None);
                        }
                        positions[id.index()] = Some(to);
                    }
                    cpm_grid::ObjectEvent::Appear { id, pos } => {
                        if id.index() >= positions.len() {
                            positions.resize(id.index() + 1, None);
                        }
                        positions[id.index()] = Some(pos);
                    }
                    cpm_grid::ObjectEvent::Disappear { id } => positions[id.index()] = None,
                }
            }
            for q in &specs {
                let mut dists: Vec<f64> = positions.iter().flatten().map(|&p| q.adist(p)).collect();
                dists.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                sink += dists.iter().take(kk).sum::<f64>();
            }
        }
        let naive_ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(sink);

        t.push_row(format!("{f:?}").to_lowercase(), vec![cpm_ms, naive_ms]);
    }
    t.note(format!(
        "{} ANN queries of 2-5 points each over N={} network objects",
        n_queries, params.n_objects
    ));
    t.note("no paper numbers exist for ANN; this quantifies the monitoring win");
    t
}

/// Section 5 extension: constrained-NN monitoring vs naive re-evaluation.
pub fn constrained(scale: f64) -> Table {
    let params = base_params(scale.min(0.5));
    let input = SimulationInput::generate(&SimParams {
        n_queries: 0,
        ..params
    });
    let n_queries = (params.n_queries / 10).max(5);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xC0);
    let specs: Vec<ConstrainedQuery> = (0..n_queries)
        .map(|_| {
            let q = Point::new(rng.gen(), rng.gen());
            let w = rng.gen_range(0.1..0.4);
            let lo = Point::new(
                (q.x - w / 2.0).clamp(0.0, 0.9),
                (q.y - w / 2.0).clamp(0.0, 0.9),
            );
            let hi = Point::new((lo.x + w).min(1.0), (lo.y + w).min(1.0));
            ConstrainedQuery::new(q, Rect::new(lo, hi))
        })
        .collect();

    let mut t = Table::new(
        "Section 5 — constrained-NN monitoring vs naive re-evaluation",
        "method",
        "ms total",
        vec!["ms".into()],
    );

    let mut monitor = CpmConstrainedMonitor::new(params.grid_dim);
    monitor.populate(input.initial_objects.iter().copied());
    for (i, q) in specs.iter().enumerate() {
        monitor.install_query(QueryId(i as u32), q.clone(), params.k.min(8));
    }
    let start = Instant::now();
    for tick in &input.ticks {
        monitor.process_cycle(&tick.object_events, &[]);
    }
    t.push_row("CPM-constrained", vec![start.elapsed().as_secs_f64() * 1e3]);

    let mut positions: Vec<Option<Point>> = input
        .initial_objects
        .iter()
        .map(|&(_, p)| Some(p))
        .collect();
    let start = Instant::now();
    let kk = params.k.min(8);
    let mut sink = 0.0f64;
    for tick in &input.ticks {
        for ev in &tick.object_events {
            match *ev {
                cpm_grid::ObjectEvent::Move { id, to } => {
                    if id.index() >= positions.len() {
                        positions.resize(id.index() + 1, None);
                    }
                    positions[id.index()] = Some(to);
                }
                cpm_grid::ObjectEvent::Appear { id, pos } => {
                    if id.index() >= positions.len() {
                        positions.resize(id.index() + 1, None);
                    }
                    positions[id.index()] = Some(pos);
                }
                cpm_grid::ObjectEvent::Disappear { id } => positions[id.index()] = None,
            }
        }
        for q in &specs {
            let mut dists: Vec<f64> = positions
                .iter()
                .flatten()
                .filter(|&&p| q.region.contains(p))
                .map(|&p| q.q.dist(p))
                .collect();
            dists.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            sink += dists.iter().take(kk).sum::<f64>();
        }
    }
    t.push_row("re-evaluate", vec![start.elapsed().as_secs_f64() * 1e3]);
    std::hint::black_box(sink);

    t.note(format!(
        "{} constrained queries over N={} network objects",
        n_queries, params.n_objects
    ));
    t
}

/// Skew study: CPU time vs grid granularity under Gaussian-hotspot data.
/// The paper points to hierarchical grids for this regime (\[YPK05\]); this
/// charts how far a regular grid carries each algorithm.
pub fn skew(scale: f64) -> Table {
    let mut params = base_params(scale);
    params.workload = WorkloadKind::Skewed { hotspots: 5 };
    let mut input = SimulationInput::generate(&params);
    let mut t = Table::new(
        "Skewed data — CPU time vs grid granularity (5 Gaussian hotspots)",
        "cells",
        "ms total",
        contender_columns(),
    );
    for dim in [32u32, 64, 128, 256, 512] {
        input.params.grid_dim = dim;
        let reports = run_contenders(&input);
        t.push_row(format!("{dim}^2"), reports.iter().map(total_ms).collect());
    }
    note_params(&mut t, &params);
    t.note("skew concentrates ~all objects in a few hundred cells: fine grids stay cheap for CPM");
    t
}

/// Adaptive-resolution study: fixed-δ vs cost-model-driven re-gridding on
/// the drifting-hotspot stream ([`cpm_gen::drift`]), whose population
/// breathes between a base and a peak count so the optimal cell side
/// moves mid-run. Both lanes replay the identical input; the fixed lane
/// stays at the resolution right for the *base* population (what a
/// capacity plan would have provisioned), the adaptive lane follows
/// [`cpm_core::RegridPolicy::auto`].
pub fn drift(scale: f64) -> Table {
    let mut params = base_params(scale);
    // Base population an order of magnitude below the paper default; the
    // stream then breathes up to the full default and back.
    params.n_objects = (params.n_objects / 10).max(200);
    params.n_queries = (params.n_queries / 10).max(20);
    params.workload = WorkloadKind::Drift { peak_factor: 10.0 };
    // Provision the fixed lane for the base population, as a static
    // deployment would.
    let base_model = cpm_core::CostModel {
        n_objects: params.n_objects,
        n_queries: params.n_queries,
        k: params.k,
        delta: 0.0, // ignored by optimal_dim
        f_obj: params.f_obj,
        f_qry: params.f_qry,
        skew: 1.0,
    };
    params.grid_dim = base_model.optimal_dim(16, 1024);
    let input = SimulationInput::generate(&params);

    let mut t = Table::new(
        "Adaptive resolution — fixed δ vs cost-model re-gridding (drifting hotspot)",
        "engine",
        "per run",
        vec![
            "ms/cycle".into(),
            "cell accesses".into(),
            "regrids".into(),
            "final dim".into(),
        ],
    );
    let mut fixed = cpm_core::ShardedKnnMonitor::new(params.grid_dim, 1);
    let fixed_report = run_boxed(&mut fixed, &input);
    t.push_row(
        format!("fixed {}²", params.grid_dim),
        vec![
            fixed_report.millis_per_cycle(),
            fixed_report.metrics.cell_accesses as f64,
            0.0,
            params.grid_dim as f64,
        ],
    );
    let mut adaptive = cpm_core::ShardedKnnMonitor::new(params.grid_dim, 1);
    adaptive.set_regrid_policy(cpm_core::RegridPolicy::Auto(cpm_core::AutoRegridConfig {
        check_every: 4,
        cooldown: 8,
        ..cpm_core::AutoRegridConfig::default()
    }));
    let adaptive_report = run_boxed(&mut adaptive, &input);
    t.push_row(
        "adaptive",
        vec![
            adaptive_report.millis_per_cycle(),
            adaptive_report.metrics.cell_accesses as f64,
            adaptive_report.metrics.regrids as f64,
            adaptive.grid().dim() as f64,
        ],
    );
    note_params(&mut t, &params);
    t.note(format!(
        "population breathes {}→{} and back; results are bit-identical between the lanes \
         (re-grids are observationally invisible)",
        params.n_objects,
        (params.n_objects as f64 * 10.0) as usize
    ));
    t
}

/// Spatial-index backend study: uniform `CellIndex` (monomorphic and
/// through the runtime [`cpm_grid::DynIndex`] dispatch) vs the adaptive
/// quadtree, on the drifting-hotspot stream (see [`crate::index`]). The
/// uniform lanes are provisioned for the *base* population, the quadtree
/// for the *peak* — the point of the adaptive backend is that fine
/// conceptual resolution costs nothing where the space is empty.
pub fn index_backends(scale: f64) -> Table {
    let full = crate::index::IndexBenchConfig::default();
    let cfg = crate::index::IndexBenchConfig {
        n_base: ((full.n_base as f64 * scale) as usize).max(300),
        n_queries: ((full.n_queries as f64 * scale) as usize).max(30),
        cycles: 30,
        ..full
    };
    let mut t = Table::new(
        "Spatial-index backends — uniform vs quadtree (steady vs drifting hotspot)",
        "backend · workload",
        "per cycle",
        vec![
            "ms/cycle".into(),
            "p100 ms".into(),
            "dim".into(),
            "result changes".into(),
        ],
    );
    // `steady` pins the population at the base count (no breathing), so
    // the backends run at matched provisioning; `drift` breathes to the
    // peak, where only the quadtree can afford the peak-tuned δ.
    for (label, peak_factor) in [("steady", 1.0), ("drift", cfg.peak_factor)] {
        let cfg = crate::index::IndexBenchConfig {
            peak_factor,
            ..cfg.clone()
        };
        let run = crate::index::run(&cfg);
        for m in &run.modes {
            let dim = if m.mode == "quadtree" {
                run.quadtree_dim
            } else {
                run.uniform_dim
            };
            t.push_row(
                format!("{} · {label}", m.mode),
                vec![
                    m.ms_per_cycle,
                    m.max_cycle_ms,
                    f64::from(dim),
                    m.result_changes as f64,
                ],
            );
        }
        t.note(format!(
            "{label}: N {}→{}, quadtree speedup {:.2}x, dyn-dispatch overhead {:.2}x",
            cfg.n_base,
            (cfg.n_base as f64 * cfg.peak_factor) as usize,
            run.quadtree_speedup,
            run.dyn_overhead
        ));
    }
    t.note(format!(
        "{} queries, k={}; results are bit-identical across backends (asserted per cycle)",
        cfg.n_queries, cfg.k
    ));
    t
}

/// Shard-scaling study: CPU time per cycle vs shard count for the sharded
/// parallel engine, with the sequential engine (1 shard) as baseline. The
/// speedup column is machine-dependent — the note records the host's
/// available parallelism, since no speedup can appear beyond it.
pub fn shards(scale: f64, shard_counts: &[usize]) -> Table {
    let params = base_params(scale);
    let input = SimulationInput::generate(&params);
    let mut t = Table::new(
        "Shard scaling — sharded parallel engine vs sequential",
        "shards",
        "per cycle",
        vec![
            "ms/cycle".into(),
            "speedup".into(),
            "p95 ms".into(),
            "p100 ms".into(),
        ],
    );
    let mut baseline_ms = None;
    for &s in shard_counts {
        let r = cpm_sim::run_sharded(&input, s);
        let ms = r.millis_per_cycle();
        let base = *baseline_ms.get_or_insert(ms);
        t.push_row(
            s.to_string(),
            vec![
                ms,
                base / ms,
                r.latency_percentile_ms(0.95),
                r.latency_percentile_ms(1.0),
            ],
        );
    }
    note_params(&mut t, &params);
    t.note(format!(
        "host parallelism: {} thread(s); results are bit-identical across shard counts",
        crate::shards::available_threads()
    ));
    t
}

/// Subscription-layer extension: cycle cost and shipped data volume of
/// delta streaming versus full result lists, across subscription counts
/// (the `cpm-sub` workload; see [`crate::deltas`]).
pub fn deltas(scale: f64) -> Table {
    let base = crate::deltas::DeltaBenchConfig::default();
    let n_objects = ((base.n_objects as f64 * scale) as usize).max(500);
    let full_subs = ((base.n_subscriptions as f64 * scale) as usize).max(20);
    let mut t = Table::new(
        "Delta streaming — emission cost vs full result lists",
        "subscriptions",
        "per cycle",
        vec![
            "full ms".into(),
            "delta ms".into(),
            "overhead %".into(),
            "full entries".into(),
            "delta entries".into(),
        ],
    );
    for subs in [full_subs / 4, full_subs / 2, full_subs] {
        let cfg = crate::deltas::DeltaBenchConfig {
            n_objects,
            n_subscriptions: subs.max(5),
            cycles: 5,
            ..crate::deltas::DeltaBenchConfig::default()
        };
        let run = crate::deltas::run(&cfg);
        t.push_row(
            cfg.n_subscriptions.to_string(),
            vec![
                run.modes[0].ms_per_cycle,
                run.modes[1].ms_per_cycle,
                run.overhead_vs_full * 100.0,
                run.modes[0].entries_shipped as f64 / cfg.cycles as f64,
                run.modes[1].entries_shipped as f64 / cfg.cycles as f64,
            ],
        );
    }
    t.note(format!(
        "N = {n_objects} objects, k = {}, {}% movers per cycle; entries = result entries \
         shipped to subscribers (deltas ship only the churn)",
        base.k,
        base.move_fraction * 100.0
    ));
    t
}

/// Unified-server extension: per-query-class cost attribution from one
/// **mixed** run (k-NN + range + aggregate + constrained + reverse-NN on
/// a single [`cpm_core::CpmServer`]), via [`cpm_grid::Metrics::by_kind`],
/// plus the unified-vs-split cycle-time comparison of
/// [`crate::server::run`].
pub fn mixed(scale: f64) -> Table {
    use cpm_grid::QueryKind;

    let base = crate::server::ServerBenchConfig::default();
    let cfg = crate::server::ServerBenchConfig {
        n_objects: ((base.n_objects as f64 * scale) as usize).max(500),
        knn_queries: ((base.knn_queries as f64 * scale) as usize).max(5),
        range_queries: ((base.range_queries as f64 * scale) as usize).max(5),
        constrained_queries: ((base.constrained_queries as f64 * scale) as usize).max(5),
        cycles: 8,
        ..base
    };

    // Instrumented mixed run: one server hosting every query class.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x3D);
    let mut server = cpm_core::CpmServerBuilder::new(cfg.grid_dim).build();
    let mut positions: Vec<Point> = (0..cfg.n_objects)
        .map(|_| Point::new(rng.gen(), rng.gen()))
        .collect();
    server.populate(
        positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (cpm_geom::ObjectId(i as u32), p)),
    );
    let mut next_id = 0u32;
    let mut fresh = || {
        next_id += 1;
        QueryId(next_id - 1)
    };
    for _ in 0..cfg.knn_queries {
        let _ = server
            .install_knn(fresh(), Point::new(rng.gen(), rng.gen()), cfg.k)
            .expect("fresh id");
    }
    for _ in 0..cfg.range_queries {
        let q = cpm_core::RangeQuery::circle(
            Point::new(rng.gen(), rng.gen()),
            0.03 + rng.gen::<f64>() * 0.05,
        );
        let _ = server.install_range(fresh(), q).expect("fresh id");
    }
    for _ in 0..cfg.constrained_queries {
        let q = Point::new(rng.gen(), rng.gen());
        let w = 0.15;
        let lo = Point::new((q.x - w).max(0.0), (q.y - w).max(0.0));
        let hi = Point::new((lo.x + 2.0 * w).min(1.0), (lo.y + 2.0 * w).min(1.0));
        let _ = server
            .install_constrained(fresh(), ConstrainedQuery::new(q, Rect::new(lo, hi)), cfg.k)
            .expect("fresh id");
    }
    for _ in 0..(cfg.knn_queries / 5).max(2) {
        let pts: Vec<Point> = (0..3).map(|_| Point::new(rng.gen(), rng.gen())).collect();
        let _ = server
            .install_ann(fresh(), AnnQuery::new(pts, AggregateFn::Sum), 2)
            .expect("fresh id");
        let _ = server
            .install_rnn(fresh(), Point::new(rng.gen(), rng.gen()))
            .expect("fresh id");
    }
    server.take_metrics();
    let movers = ((cfg.n_objects as f64 * cfg.move_fraction) as usize).max(1);
    for _ in 0..cfg.cycles {
        let mut events = Vec::with_capacity(movers);
        for _ in 0..movers {
            let i = rng.gen_range(0..positions.len());
            let step = 0.02;
            let p = positions[i];
            let to = Point::new(
                (p.x + rng.gen::<f64>() * step - step / 2.0).clamp(0.0, 1.0),
                (p.y + rng.gen::<f64>() * step - step / 2.0).clamp(0.0, 1.0),
            );
            positions[i] = to;
            events.push(cpm_grid::ObjectEvent::Move {
                id: cpm_geom::ObjectId(i as u32),
                to,
            });
        }
        // Duplicate movers in one batch are fine for the engine, but keep
        // the stream canonical: last write wins anyway.
        let _ = server.process_cycle(&events, &[]).expect("no query events");
    }
    let metrics = server.take_metrics();

    let mut t = Table::new(
        "Unified server — mixed workload, work attribution per query class",
        "class",
        "per cycle",
        vec![
            "cells".into(),
            "objects".into(),
            "computations".into(),
            "merges".into(),
        ],
    );
    let cycles = cfg.cycles as f64;
    for kind in QueryKind::ALL {
        let k = metrics.for_kind(kind);
        t.push_row(
            kind.label(),
            vec![
                k.cell_accesses as f64 / cycles,
                k.objects_processed as f64 / cycles,
                (k.computations + k.recomputations) as f64 / cycles,
                k.merge_resolutions as f64 / cycles,
            ],
        );
    }
    t.push_row(
        "total",
        vec![
            metrics.cell_accesses as f64 / cycles,
            metrics.objects_processed as f64 / cycles,
            (metrics.computations + metrics.recomputations) as f64 / cycles,
            metrics.merge_resolutions as f64 / cycles,
        ],
    );

    // The headline comparison: one shared grid vs three dedicated ones.
    let run = crate::server::run(&crate::server::ServerBenchConfig {
        cycles: 6,
        ..cfg.clone()
    });
    t.note(format!(
        "N = {} objects, {}% movers/cycle, {}+{}+{} queries (+ANN/RNN); one ingest pass per cycle",
        cfg.n_objects,
        cfg.move_fraction * 100.0,
        cfg.knn_queries,
        cfg.range_queries,
        cfg.constrained_queries
    ));
    t.note(format!(
        "unified {:.3} ms/cycle vs split-engines {:.3} ms/cycle: {:.2}x speedup \
         (bench_server records the full-scale baseline)",
        run.modes[0].ms_per_cycle, run.modes[1].ms_per_cycle, run.unified_speedup
    ));
    t
}

/// Future-work extension (Section 7): continuous reverse-NN monitoring
/// via six-region candidates + verification, vs naive re-evaluation.
pub fn rnn(scale: f64) -> Table {
    let params = base_params(scale.min(0.3));
    let input = SimulationInput::generate(&SimParams {
        n_queries: 0,
        ..params
    });
    let n_queries = (params.n_queries / 25).max(4);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x4E);
    let query_points: Vec<Point> = (0..n_queries)
        .map(|_| Point::new(rng.gen(), rng.gen()))
        .collect();

    let mut t = Table::new(
        "Section 7 future work — continuous reverse-NN monitoring",
        "method",
        "ms total",
        vec!["ms".into()],
    );

    let mut monitor = cpm_core::rnn::CpmRnnMonitor::new(params.grid_dim);
    monitor.populate(input.initial_objects.iter().copied());
    for (i, &q) in query_points.iter().enumerate() {
        monitor.install_query(QueryId(i as u32), q);
    }
    let start = Instant::now();
    for tick in &input.ticks {
        monitor.process_cycle(&tick.object_events, &[]);
    }
    t.push_row("CPM six-region", vec![start.elapsed().as_secs_f64() * 1e3]);

    // Naive: O(N²-flavored) re-evaluation — for each object its global NN
    // distance, then membership per query.
    let mut positions: Vec<Option<Point>> = input
        .initial_objects
        .iter()
        .map(|&(_, p)| Some(p))
        .collect();
    let start = Instant::now();
    let mut sink = 0usize;
    for tick in &input.ticks {
        for ev in &tick.object_events {
            match *ev {
                cpm_grid::ObjectEvent::Move { id, to } => positions[id.index()] = Some(to),
                cpm_grid::ObjectEvent::Appear { id, pos } => {
                    if id.index() >= positions.len() {
                        positions.resize(id.index() + 1, None);
                    }
                    positions[id.index()] = Some(pos);
                }
                cpm_grid::ObjectEvent::Disappear { id } => positions[id.index()] = None,
            }
        }
        let live: Vec<Point> = positions.iter().flatten().copied().collect();
        // Nearest-other-object distance per object (grid-free baseline).
        for q in &query_points {
            for (i, &p) in live.iter().enumerate() {
                let dq = p.dist(*q);
                let dominated = live
                    .iter()
                    .enumerate()
                    .any(|(j, &o)| j != i && p.dist(o) < dq);
                if !dominated {
                    sink += 1;
                }
            }
        }
    }
    t.push_row("re-evaluate", vec![start.elapsed().as_secs_f64() * 1e3]);
    std::hint::black_box(sink);

    t.note(format!(
        "{} RNN queries over N={} network objects",
        n_queries, params.n_objects
    ));
    t.note("candidates via six sector-constrained CPM monitors; verified by circle emptiness");
    t.note("the naive baseline short-circuits domination checks (O(N) amortized per query); the monitoring win grows with n");
    t
}

/// One line of provenance for every ANN query-set update experiment:
/// moving query sets exercise `SpecEvent::Update` end to end.
pub fn ann_moving_sets(scale: f64) -> Table {
    let params = base_params(scale.min(0.3));
    let input = SimulationInput::generate(&SimParams {
        n_queries: 0,
        ..params
    });
    let mut rng = StdRng::seed_from_u64(77);
    let mut pts: Vec<Point> = (0..3).map(|_| Point::new(rng.gen(), rng.gen())).collect();
    let mut monitor = CpmAnnMonitor::new(params.grid_dim);
    monitor.populate(input.initial_objects.iter().copied());
    monitor.install_query(QueryId(0), AnnQuery::new(pts.clone(), AggregateFn::Sum), 4);

    let start = Instant::now();
    for tick in &input.ticks {
        for p in pts.iter_mut() {
            *p = Point::new(
                (p.x + rng.gen_range(-0.02..0.02)).clamp(0.0, 0.999),
                (p.y + rng.gen_range(-0.02..0.02)).clamp(0.0, 0.999),
            );
        }
        monitor.process_cycle(
            &tick.object_events,
            &[SpecEvent::Update {
                id: QueryId(0),
                spec: AnnQuery::new(pts.clone(), AggregateFn::Sum),
            }],
        );
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let mut t = Table::new(
        "ANN with a moving query set (sum)",
        "metric",
        "value",
        vec!["value".into()],
    );
    t.push_row("ms total", vec![ms]);
    t.push_row(
        "cell accesses",
        vec![monitor.metrics().cell_accesses as f64],
    );
    t
}
