//! Delta-emission benchmark: cycle cost of the delta-streaming result
//! path ([`cpm_core::CpmEngine::process_cycle_with_deltas`]) versus
//! handing callers full result lists, on the subscription workload the
//! `cpm-sub` front end serves (default: 100K uniform objects, 1K k-NN
//! subscriptions, k = 16, 128² grid, 10% movers per cycle).
//!
//! Both modes replay the identical pre-generated workload on
//! [`cpm_core::ShardedCpmEngine`]:
//!
//! * **full-list** — delta capture off; after each cycle every changed
//!   query's complete result is materialized as an owned message (what a
//!   non-delta subscription service ships every cycle);
//! * **delta** — delta capture on; the cycle refills a recycled
//!   [`cpm_core::CycleDeltas`] batch with the materialized
//!   [`cpm_core::NeighborDelta`]s (exactly how the `cpm-sub` hub consumes
//!   the engine).
//!
//! The `bench_deltas` binary runs [`DeltaBenchConfig::default`] and
//! records `BENCH_deltas.json`; the CI regression gate (`bench_check`)
//! re-runs [`DeltaBenchConfig::reduced`] and enforces the overhead bound
//! (see [`crate::check::check_deltas`]). The entry counts recorded next
//! to the timings show *why* the delta path exists: it ships orders of
//! magnitude fewer entries per cycle.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cpm_core::{Neighbor, PointQuery, ShardedCpmEngine};
use cpm_geom::{ObjectId, Point, QueryId};
use cpm_grid::ObjectEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload parameters for one delta-vs-full-list run.
#[derive(Debug, Clone)]
pub struct DeltaBenchConfig {
    /// Object population `N`.
    pub n_objects: usize,
    /// Installed k-NN subscriptions.
    pub n_subscriptions: usize,
    /// Neighbors per subscription.
    pub k: usize,
    /// Fraction of objects moving per cycle.
    pub move_fraction: f64,
    /// Measured processing cycles.
    pub cycles: usize,
    /// Unmeasured warmup cycles replayed first per mode.
    pub warmup_cycles: usize,
    /// Grid granularity per axis.
    pub grid_dim: u32,
    /// Query shards (1 = sequential maintenance).
    pub shards: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeltaBenchConfig {
    /// The acceptance-scale configuration recorded in `BENCH_deltas.json`
    /// (100K objects / 1K subscriptions).
    fn default() -> Self {
        Self {
            n_objects: 100_000,
            n_subscriptions: 1_000,
            k: 16,
            move_fraction: 0.10,
            cycles: 40,
            warmup_cycles: 2,
            grid_dim: 128,
            shards: 1,
            seed: 2005,
        }
    }
}

impl DeltaBenchConfig {
    /// The reduced-scale configuration the CI bench gate runs on every PR.
    pub fn reduced() -> Self {
        Self {
            n_objects: 10_000,
            n_subscriptions: 200,
            cycles: 30,
            ..Self::default()
        }
    }
}

/// Timings and shipped-data volume for one result-delivery mode.
#[derive(Debug, Clone, Copy)]
pub struct DeltaMeasurement {
    /// `"full-list"` or `"delta"`.
    pub mode: &'static str,
    /// **Median** wall time per measured cycle (warmup excluded), in
    /// milliseconds — medians so one noisy-neighbor stall cannot flip the
    /// CI gate.
    pub ms_per_cycle: f64,
    /// Slowest single measured cycle, in milliseconds.
    pub max_cycle_ms: f64,
    /// Result entries shipped to subscribers over the measured cycles
    /// (full lists for `full-list`; delta adds + removes + reorders for
    /// `delta`).
    pub entries_shipped: usize,
    /// Total result changes reported over the measured cycles (identical
    /// across modes — asserted by [`run`], evidence of equal work).
    pub result_changes: usize,
}

/// Outcome of one delta-vs-full-list run.
#[derive(Debug, Clone)]
pub struct DeltaBenchRun {
    /// Per-mode measurements: `[full-list, delta]`.
    pub modes: [DeltaMeasurement; 2],
    /// Median per-cycle-pair `delta ms / full-list ms − 1`: the relative
    /// cycle-time cost of emitting deltas instead of copying full lists.
    /// The PR acceptance bar is `< 0.10` at the default scale.
    pub overhead_vs_full: f64,
}

struct Workload {
    objects: Vec<(ObjectId, Point)>,
    queries: Vec<(QueryId, Point)>,
    cycles: Vec<Vec<ObjectEvent>>,
}

fn build_workload(cfg: &DeltaBenchConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut positions = crate::movers::uniform_points(&mut rng, cfg.n_objects);
    let objects: Vec<(ObjectId, Point)> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| (ObjectId(i as u32), p))
        .collect();
    let queries: Vec<(QueryId, Point)> =
        crate::movers::uniform_points(&mut rng, cfg.n_subscriptions)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (QueryId(i as u32), p))
            .collect();
    let movers = ((cfg.n_objects as f64 * cfg.move_fraction) as usize).max(1);
    let total_cycles = cfg.warmup_cycles + cfg.cycles;
    let cycles = crate::movers::random_walk_cycles(&mut rng, &mut positions, total_cycles, movers)
        .into_iter()
        .map(|batch| {
            batch
                .into_iter()
                .map(|(i, to)| ObjectEvent::Move {
                    id: ObjectId(i as u32),
                    to,
                })
                .collect()
        })
        .collect();
    Workload {
        objects,
        queries,
        cycles,
    }
}

fn median_ms(mut times: Vec<Duration>) -> (f64, f64) {
    times.sort_unstable();
    let median = times
        .get(times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    let max = times.last().copied().unwrap_or(Duration::ZERO);
    (median.as_secs_f64() * 1e3, max.as_secs_f64() * 1e3)
}

/// Run both modes over the identical pre-generated workload and report
/// the overhead ratio.
///
/// The two engines are measured **interleaved, cycle by cycle** — each
/// event batch is processed by both engines back to back, in an order
/// that alternates every cycle — so every cycle pair shares allocator,
/// cache and CPU conditions and the second-slot cache tailwind cancels
/// out. Measuring the modes in separate sequential phases (the obvious
/// protocol) was observed to swing the ratio by ±15 percentage points on
/// a shared 1-CPU host, and coarser block-wise alternation re-admits
/// several points of drift; per-cycle pairing keeps run-to-run spread
/// the tightest of the three. The overhead is the **median of the
/// per-cycle-pair ratios**: both sides of a pair see the same transient
/// stalls, which then cancel in the ratio.
///
/// Panics if the two modes report different result-change counts (they
/// replayed the same stream, so differing counts would mean the
/// comparison is broken).
pub fn run(cfg: &DeltaBenchConfig) -> DeltaBenchRun {
    let w = build_workload(cfg);
    let warmup_n = cfg.warmup_cycles.min(w.cycles.len());

    let build_engine = |deltas: bool| {
        let mut engine: ShardedCpmEngine<PointQuery> =
            ShardedCpmEngine::new(cfg.grid_dim, cfg.shards);
        if deltas {
            engine.enable_deltas();
        }
        engine.populate(w.objects.iter().copied());
        for &(qid, pos) in &w.queries {
            engine
                .install(qid, PointQuery(pos), cfg.k)
                .expect("fresh benchmark query id");
        }
        engine
    };
    let mut full_engine = build_engine(false);
    let mut delta_engine = build_engine(true);

    let (warmup, measured) = w.cycles.split_at(warmup_n);
    for events in warmup {
        full_engine.process_cycle(events, &[]);
        delta_engine.process_cycle_with_deltas(events, &[]);
    }

    // Both modes produce one owned, shippable message per changed
    // subscription per cycle — a `(QueryId, Vec<Neighbor>)` carrying the
    // complete result in full-list mode, a `(QueryId, NeighborDelta)`
    // carrying only the churn in delta mode. Materializing owned messages
    // on both sides is what makes the ratio meaningful: a subscription
    // service cannot ship a borrowed scratch buffer. Message batches are
    // dropped *outside* the timed section on both sides.
    let mut full_entries = 0usize;
    let mut full_changes = 0usize;
    let mut full_times = Vec::with_capacity(measured.len());
    let mut delta_entries = 0usize;
    let mut delta_changes = 0usize;
    let mut delta_times = Vec::with_capacity(measured.len());
    let mut measure_full = |events: &[ObjectEvent], engine: &mut ShardedCpmEngine<PointQuery>| {
        let start = Instant::now();
        let changed = engine.process_cycle(events, &[]);
        let messages: Vec<(QueryId, Vec<Neighbor>)> = changed
            .iter()
            .map(|&qid| (qid, engine.result(qid).expect("installed").to_vec()))
            .collect();
        full_times.push(start.elapsed());
        // Accounting (not shipping) stays outside the timed section.
        full_entries += messages.iter().map(|(_, m)| m.len()).sum::<usize>();
        full_changes += changed.len();
        drop(messages);
    };
    // The delta consumer recycles one `CycleDeltas` batch across cycles —
    // exactly how the subscription hub drives the engine.
    let mut out = cpm_core::CycleDeltas::default();
    let mut measure_delta = |events: &[ObjectEvent], engine: &mut ShardedCpmEngine<PointQuery>| {
        let start = Instant::now();
        engine.process_cycle_with_deltas_into(events, &[], &mut out);
        delta_times.push(start.elapsed());
        // Accounting (not shipping) stays outside the timed section.
        delta_entries += out.deltas.iter().map(|(_, d)| d.len()).sum::<usize>();
        delta_changes += out.changed.len();
    };
    for (i, events) in measured.iter().enumerate() {
        if i % 2 == 0 {
            measure_full(events, &mut full_engine);
            measure_delta(events, &mut delta_engine);
        } else {
            measure_delta(events, &mut delta_engine);
            measure_full(events, &mut full_engine);
        }
    }
    // Overhead estimator: the median of *per-cycle-pair* ratios. Each
    // pair runs back to back under the same transient host conditions, so
    // a noisy-neighbor stall inflates both sides of its pair and cancels
    // in the ratio — where a ratio of independent per-mode medians soaks
    // up the full cross-cycle variance.
    let mut ratios: Vec<f64> = full_times
        .iter()
        .zip(&delta_times)
        .map(|(f, d)| d.as_secs_f64() / f.as_secs_f64())
        .collect();
    ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let overhead_vs_full = ratios[ratios.len() / 2] - 1.0;

    let (full_ms, full_max) = median_ms(full_times);
    let full = DeltaMeasurement {
        mode: "full-list",
        ms_per_cycle: full_ms,
        max_cycle_ms: full_max,
        entries_shipped: full_entries,
        result_changes: full_changes,
    };
    let (delta_ms, delta_max) = median_ms(delta_times);
    let delta = DeltaMeasurement {
        mode: "delta",
        ms_per_cycle: delta_ms,
        max_cycle_ms: delta_max,
        entries_shipped: delta_entries,
        result_changes: delta_changes,
    };

    assert_eq!(
        full.result_changes, delta.result_changes,
        "modes did different work on the same stream"
    );
    DeltaBenchRun {
        modes: [full, delta],
        overhead_vs_full,
    }
}

/// Render the `BENCH_deltas.json` document for a run.
pub fn render_json(cfg: &DeltaBenchConfig, run: &DeltaBenchRun) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_deltas\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n_objects\": {}, \"n_subscriptions\": {}, \"k\": {}, \
         \"move_fraction\": {}, \"cycles\": {}, \"warmup_cycles\": {}, \"grid_dim\": {}, \
         \"shards\": {}}},",
        cfg.n_objects,
        cfg.n_subscriptions,
        cfg.k,
        cfg.move_fraction,
        cfg.cycles,
        cfg.warmup_cycles,
        cfg.grid_dim,
        cfg.shards
    );
    let _ = writeln!(
        json,
        "  \"machine\": {{\"threads_available\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},",
        crate::shards::available_threads(),
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("  \"results\": [\n");
    for (i, m) in run.modes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"ms_per_cycle\": {:.3}, \"max_cycle_ms\": {:.3}, \
             \"entries_shipped\": {}, \"result_changes\": {}}}",
            m.mode, m.ms_per_cycle, m.max_cycle_ms, m.entries_shipped, m.result_changes
        );
        json.push_str(if i + 1 == run.modes.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"overhead_vs_full\": {:.4}", run.overhead_vs_full);
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_measures_both_modes_consistently() {
        let cfg = DeltaBenchConfig {
            n_objects: 400,
            n_subscriptions: 20,
            k: 4,
            cycles: 3,
            warmup_cycles: 1,
            grid_dim: 32,
            ..DeltaBenchConfig::default()
        };
        let run = run(&cfg);
        assert_eq!(run.modes[0].mode, "full-list");
        assert_eq!(run.modes[1].mode, "delta");
        assert_eq!(run.modes[0].result_changes, run.modes[1].result_changes);
        // Both modes shipped something on a churning workload.
        assert!(run.modes[0].entries_shipped > 0);
        assert!(run.modes[1].entries_shipped > 0);
        let json = render_json(&cfg, &run);
        assert!(json.contains("\"mode\": \"delta\""));
        assert!(json.contains("overhead_vs_full"));
    }
}
