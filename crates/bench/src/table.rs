//! Plain-text tables for experiment output (one per paper figure).

use std::fmt::Write as _;

/// A result table: one row per x-axis value, one column per series
/// (typically one per algorithm), plus free-form notes.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment title (e.g. "Figure 6.1 — CPU time vs grid granularity").
    pub title: String,
    /// Label of the x axis (the row key).
    pub x_label: String,
    /// Unit of the cells (e.g. "ms", "cells/query/ts").
    pub unit: String,
    /// Series names.
    pub columns: Vec<String>,
    /// `(x value, one cell per column)`.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Context lines printed under the table (parameters, expectations).
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        unit: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            unit: unit.into(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn push_row(&mut self, x: impl Into<String>, cells: Vec<f64>) {
        let x = x.into();
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push((x, cells));
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render to a string (fixed-width columns).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} [{}]", self.title, self.unit);
        let xw = self
            .rows
            .iter()
            .map(|(x, _)| x.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8)
            .max(6);
        let cw = self
            .columns
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(8)
            .max(12);
        let _ = write!(out, "{:<xw$}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, " | {c:>cw$}");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(xw + (cw + 3) * self.columns.len()));
        for (x, cells) in &self.rows {
            let _ = write!(out, "{x:<xw$}");
            for v in cells {
                if v.abs() >= 1000.0 {
                    let _ = write!(out, " | {v:>cw$.0}");
                } else {
                    let _ = write!(out, " | {v:>cw$.3}");
                }
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The cell at `(row, column)` (test helper).
    pub fn cell(&self, row: usize, col: usize) -> f64 {
        self.rows[row].1[col]
    }

    /// Column index by name (test helper).
    pub fn col_index(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column {name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("Demo", "k", "ms", vec!["CPM".into(), "YPK-CNN".into()]);
        t.push_row("1", vec![0.5, 1200.0]);
        t.push_row("256", vec![12.25, 34567.0]);
        t.note("just a demo");
        let s = t.render();
        assert!(s.contains("## Demo [ms]"));
        assert!(s.contains("YPK-CNN"));
        assert!(s.contains("34567"));
        assert!(s.contains("note: just a demo"));
        assert_eq!(t.cell(0, 1), 1200.0);
        assert_eq!(t.col_index("CPM"), 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("x", "y", "z", vec!["a".into()]);
        t.push_row("r", vec![1.0, 2.0]);
    }
}
