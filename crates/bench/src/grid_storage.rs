//! Grid-storage micro-benchmark: dense slot-based cell buckets (the
//! `cpm_grid::Grid` storage layer) vs the seed's hash-set-per-cell layout.
//!
//! Measures the two hot paths of the Section 4.1 cost model on uniform
//! data — by default at the paper's scale (100K objects, 10% of objects
//! moving per cycle at medium speed), across grid granularities 64² /
//! 256² / 1024²:
//!
//! * **update throughput** — `Time_ind = 2` location updates (delete from
//!   the old cell, insert into the new one);
//! * **scan throughput** — cell accesses (full scans of cell object
//!   lists), the unit Figure 6.3b counts, over the 5×5 neighborhoods of
//!   random query points.
//!
//! The `bench_grid_storage` binary runs [`GridStorageConfig::default`] and
//! records `BENCH_grid.json`; the CI regression gate (`bench_check`) runs
//! [`GridStorageConfig::reduced`] and compares against that baseline.

use std::fmt::Write as _;
use std::time::Instant;

use cpm_geom::{clamp_coord, FastHashMap, FastHashSet, ObjectId, Point};
use cpm_grid::CellCoord;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload parameters for one grid-storage benchmark run.
#[derive(Debug, Clone)]
pub struct GridStorageConfig {
    /// Object population `N`.
    pub n_objects: usize,
    /// Fraction of objects moving per cycle.
    pub move_fraction: f64,
    /// Update cycles measured.
    pub cycles: usize,
    /// Query points whose neighborhoods are scanned.
    pub queries: usize,
    /// Cells per axis either side of the query cell in the scanned block
    /// (2 → the typical 5×5 influence-region footprint).
    pub scan_half: i64,
    /// Grid granularities measured.
    pub dims: Vec<u32>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GridStorageConfig {
    /// The paper-scale configuration recorded in `BENCH_grid.json`.
    fn default() -> Self {
        Self {
            n_objects: 100_000,
            move_fraction: 0.10,
            cycles: 20,
            queries: 2_000,
            scan_half: 2,
            dims: vec![64, 256, 1024],
            seed: 2005,
        }
    }
}

impl GridStorageConfig {
    /// The reduced configuration the CI bench gate runs on every PR: the
    /// full object population (per-cell occupancy — and therefore ns-per-op
    /// — depends on it, so shrinking `N` would break comparability with the
    /// baseline) but fewer cycles, queries and grid granularities; a few
    /// seconds of wall time.
    pub fn reduced() -> Self {
        Self {
            cycles: 8,
            queries: 500,
            dims: vec![64, 256],
            ..Self::default()
        }
    }
}

/// The seed's storage layout, kept verbatim for comparison: one
/// `FastHashSet<ObjectId>` per occupied cell, updates via hashed
/// remove/insert of the object id.
struct HashSetGrid {
    dim: u32,
    delta: f64,
    cells: FastHashMap<u64, FastHashSet<ObjectId>>,
    positions: Vec<Option<Point>>,
}

impl HashSetGrid {
    fn new(dim: u32) -> Self {
        Self {
            dim,
            delta: 1.0 / dim as f64,
            cells: FastHashMap::default(),
            positions: Vec::new(),
        }
    }

    #[inline]
    fn cell_of(&self, p: Point) -> CellCoord {
        let col = (clamp_coord(p.x) / self.delta) as u32;
        let row = (clamp_coord(p.y) / self.delta) as u32;
        CellCoord::new(col.min(self.dim - 1), row.min(self.dim - 1))
    }

    fn insert(&mut self, oid: ObjectId, p: Point) {
        let idx = oid.index();
        if idx >= self.positions.len() {
            self.positions.resize(idx + 1, None);
        }
        let p = Point::new(clamp_coord(p.x), clamp_coord(p.y));
        self.positions[idx] = Some(p);
        let cell = self.cell_of(p);
        self.cells.entry(cell.id(self.dim)).or_default().insert(oid);
    }

    fn update_position(&mut self, oid: ObjectId, new: Point) {
        let old = self.positions[oid.index()].take().expect("live object");
        let id = self.cell_of(old).id(self.dim);
        let occupants = self.cells.get_mut(&id).expect("cell entry");
        occupants.remove(&oid);
        if occupants.is_empty() {
            self.cells.remove(&id);
        }
        self.insert(oid, new);
    }

    #[inline]
    fn objects_in(&self, c: CellCoord) -> Option<&FastHashSet<ObjectId>> {
        self.cells.get(&c.id(self.dim))
    }
}

/// One pre-generated experiment input, identical for both layouts.
struct Workload {
    initial: Vec<(ObjectId, Point)>,
    /// Per cycle: `(oid, new_position)` moves.
    cycles: Vec<Vec<(ObjectId, Point)>>,
    queries: Vec<Point>,
}

fn build_workload(cfg: &GridStorageConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut positions = crate::movers::uniform_points(&mut rng, cfg.n_objects);
    let initial: Vec<(ObjectId, Point)> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| (ObjectId(i as u32), p))
        .collect();
    let movers = ((cfg.n_objects as f64 * cfg.move_fraction) as usize).max(1);
    let cycles = crate::movers::random_walk_cycles(&mut rng, &mut positions, cfg.cycles, movers)
        .into_iter()
        .map(|batch| {
            batch
                .into_iter()
                .map(|(i, to)| (ObjectId(i as u32), to))
                .collect()
        })
        .collect();
    let queries = crate::movers::uniform_points(&mut rng, cfg.queries);
    Workload {
        initial,
        cycles,
        queries,
    }
}

/// Read-only scan passes per lane; each lane reports its fastest pass.
const BENCH_PASSES: usize = 3;

/// Cells of the (clipped) `(2·scan_half+1)²` block around `center`.
fn scan_block(center: CellCoord, dim: u32, scan_half: i64) -> impl Iterator<Item = CellCoord> {
    (-scan_half..=scan_half).flat_map(move |dr| {
        (-scan_half..=scan_half).filter_map(move |dc| center.offset(dc, dr, dim))
    })
}

/// One layout's timings at one grid granularity.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Storage-layout label (`"dense-buckets"` / `"hash-sets"`).
    pub layout: &'static str,
    /// Grid granularity per axis.
    pub dim: u32,
    /// Nanoseconds per location update.
    pub update_ns: f64,
    /// Nanoseconds per object visited during neighborhood scans.
    pub scan_ns_per_obj: f64,
    /// Total objects visited by the scan phase.
    pub objects_scanned: u64,
    /// XOR checksum of scanned ids (validates both layouts saw the same
    /// object sets).
    pub checksum: u64,
}

fn bench_dense(dim: u32, cfg: &GridStorageConfig, w: &Workload) -> Measurement {
    let mut g = cpm_grid::GridBuilder::new(dim).build_uniform();
    for &(oid, p) in &w.initial {
        g.insert(oid, p);
    }
    // Best-of-passes, like the scan phase below: replaying the same
    // pre-generated cycles is the same workload (every transition after
    // each object's first move is identical), and the min discards
    // passes a scheduler preemption landed in.
    let mut update_total_ns = f64::INFINITY;
    for _ in 0..BENCH_PASSES {
        let start = Instant::now();
        for cycle in &w.cycles {
            for &(oid, to) in cycle {
                g.update_position(oid, to);
            }
        }
        update_total_ns = update_total_ns.min(start.elapsed().as_nanos() as f64);
    }
    let update_ns = update_total_ns / (w.cycles.len() as f64 * w.cycles[0].len() as f64);

    // The scan phase is read-only, so run it BENCH_PASSES times and keep
    // the fastest pass: a single scheduler preemption landing inside one
    // lane's only timed window would otherwise dominate the control
    // ratio on a busy host. Checksums/counts accumulate on pass 0 only.
    let mut checksum = 0u64;
    let mut objects_scanned = 0u64;
    let mut scan_ns = f64::INFINITY;
    for pass in 0..BENCH_PASSES {
        let start = Instant::now();
        for &q in &w.queries {
            for cell in scan_block(g.cell_of(q), dim, cfg.scan_half) {
                for &oid in g.objects_in(cell) {
                    if pass == 0 {
                        checksum ^= oid.0 as u64;
                        objects_scanned += 1;
                    } else {
                        std::hint::black_box(oid);
                    }
                }
            }
        }
        scan_ns = scan_ns.min(start.elapsed().as_nanos() as f64);
    }
    Measurement {
        layout: "dense-buckets",
        dim,
        update_ns,
        scan_ns_per_obj: scan_ns / objects_scanned.max(1) as f64,
        objects_scanned,
        checksum,
    }
}

fn bench_hashset(dim: u32, cfg: &GridStorageConfig, w: &Workload) -> Measurement {
    let mut g = HashSetGrid::new(dim);
    for &(oid, p) in &w.initial {
        g.insert(oid, p);
    }
    // Same best-of-passes protocol as the dense lane (see above).
    let mut update_total_ns = f64::INFINITY;
    for _ in 0..BENCH_PASSES {
        let start = Instant::now();
        for cycle in &w.cycles {
            for &(oid, to) in cycle {
                g.update_position(oid, to);
            }
        }
        update_total_ns = update_total_ns.min(start.elapsed().as_nanos() as f64);
    }
    let update_ns = update_total_ns / (w.cycles.len() as f64 * w.cycles[0].len() as f64);

    // Same best-of-passes protocol as the dense lane (see above).
    let mut checksum = 0u64;
    let mut objects_scanned = 0u64;
    let mut scan_ns = f64::INFINITY;
    for pass in 0..BENCH_PASSES {
        let start = Instant::now();
        for &q in &w.queries {
            for cell in scan_block(g.cell_of(q), dim, cfg.scan_half) {
                if let Some(objects) = g.objects_in(cell) {
                    for &oid in objects {
                        if pass == 0 {
                            checksum ^= oid.0 as u64;
                            objects_scanned += 1;
                        } else {
                            std::hint::black_box(oid);
                        }
                    }
                }
            }
        }
        scan_ns = scan_ns.min(start.elapsed().as_nanos() as f64);
    }
    Measurement {
        layout: "hash-sets",
        dim,
        update_ns,
        scan_ns_per_obj: scan_ns / objects_scanned.max(1) as f64,
        objects_scanned,
        checksum,
    }
}

/// Run the benchmark: per grid granularity, `(dense, hash-set)` timings.
/// Both layouts replay the identical pre-generated workload; their scan
/// checksums are asserted equal.
pub fn run(cfg: &GridStorageConfig) -> Vec<(Measurement, Measurement)> {
    let w = build_workload(cfg);
    cfg.dims
        .iter()
        .map(|&dim| {
            let dense = bench_dense(dim, cfg, &w);
            let hash = bench_hashset(dim, cfg, &w);
            assert_eq!(
                dense.checksum, hash.checksum,
                "layouts scanned different object sets at dim {dim}"
            );
            assert_eq!(dense.objects_scanned, hash.objects_scanned);
            (dense, hash)
        })
        .collect()
}

/// Render the `BENCH_grid.json` document for a run.
pub fn render_json(cfg: &GridStorageConfig, results: &[(Measurement, Measurement)]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_grid_storage\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n_objects\": {}, \"move_fraction\": {}, \
         \"cycles\": {}, \"queries\": {}, \"scan_block\": {}}},",
        cfg.n_objects,
        cfg.move_fraction,
        cfg.cycles,
        cfg.queries,
        2 * cfg.scan_half + 1
    );
    json.push_str("  \"results\": [\n");
    for (i, (dense, hash)) in results.iter().enumerate() {
        for m in [dense, hash] {
            let _ = write!(
                json,
                "    {{\"dim\": {}, \"layout\": \"{}\", \"update_ns_per_op\": {:.1}, \
                 \"scan_ns_per_object\": {:.3}, \"objects_scanned\": {}}}",
                m.dim, m.layout, m.update_ns, m.scan_ns_per_obj, m.objects_scanned
            );
            let last = i + 1 == results.len() && m.layout == hash.layout;
            json.push_str(if last { "\n" } else { ",\n" });
        }
    }
    json.push_str("  ],\n  \"speedup_dense_over_hashset\": [\n");
    for (i, (dense, hash)) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dim\": {}, \"update\": {:.2}, \"scan\": {:.2}}}",
            dense.dim,
            hash.update_ns / dense.update_ns,
            hash.scan_ns_per_obj / dense.scan_ns_per_obj
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_consistent_measurements() {
        let cfg = GridStorageConfig {
            n_objects: 500,
            cycles: 2,
            queries: 20,
            dims: vec![16],
            ..GridStorageConfig::default()
        };
        let results = run(&cfg);
        assert_eq!(results.len(), 1);
        let (dense, hash) = &results[0];
        assert_eq!(dense.objects_scanned, hash.objects_scanned);
        assert!(dense.update_ns > 0.0 && hash.update_ns > 0.0);
        let json = render_json(&cfg, &results);
        assert!(json.contains("\"dim\": 16"));
        assert!(json.contains("dense-buckets"));
    }
}
