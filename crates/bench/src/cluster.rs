//! Cluster-merge benchmark: wall time per cycle of a coordinator-routed
//! multi-worker cluster versus a single-node [`cpm_core::CpmServer`] on
//! the identical workload.
//!
//! The distributed path pays for routing (per-worker event translation),
//! wire framing (every batch and delta crosses a `cpm-wire` frame with a
//! CRC), worker scheduling and the epoch-aligned merge — in exchange for
//! spreading query maintenance over worker threads. Two ratios come out
//! of a run:
//!
//! * **`merge_over_single`** — the coordinator-side merge cost (payload
//!   reassembly + delta decode + canonical interleave, the `merge` slice
//!   of [`ClusterCoordinator::last_cycle_timings`]) over the single-node
//!   cycle. The merge is the only part of the distributed cycle that is
//!   *serial on the coordinator no matter how many cores the workers
//!   get*, so this is the machine-independent statistic the acceptance
//!   bar bounds: at `W = 4` it may cost at most
//!   [`crate::check::CLUSTER_MERGE_LIMIT`]× the single-node cycle it
//!   coordinates (both lanes timed in one process under the paired-cycle
//!   protocol).
//! * **`cluster_over_single`** — the full cluster cycle over the
//!   single-node cycle. Recorded as honest diagnostics next to the
//!   host's thread count (like the shard bench), **not** gated: on a
//!   1-thread container the workers time-slice one core, so routing +
//!   wakeup costs show with zero parallel payback, while a `≥ W`-core
//!   host can push this below 1.
//!
//! Every measured cycle doubles as a conformance check: the merged
//! cluster deltas are asserted **bit-identical** to the single-node
//! batch before the next pair runs.
//!
//! The `bench_cluster` binary records `BENCH_cluster.json`; the CI gate
//! (`bench_check`) re-runs [`ClusterBenchConfig::reduced`] and enforces
//! the merge bound (see [`crate::check::check_cluster`]).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cpm_cluster::{ClusterConfig, ClusterCoordinator};
use cpm_core::{AnyQuerySpec, CpmServerBuilder, CycleDeltas, PointQuery, SpecEvent};
use cpm_geom::{ObjectId, QueryId};
use cpm_grid::ObjectEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload parameters for one cluster-vs-single-node run.
#[derive(Debug, Clone)]
pub struct ClusterBenchConfig {
    /// Object population `N`.
    pub n_objects: usize,
    /// Installed k-NN queries (anchors uniform over the workspace).
    pub n_queries: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Fraction of objects moving per cycle.
    pub move_fraction: f64,
    /// Measured processing cycles.
    pub cycles: usize,
    /// Unmeasured warmup cycles replayed first (after the bootstrap
    /// populate/install cycles, which are also unmeasured).
    pub warmup_cycles: usize,
    /// Grid granularity per axis.
    pub grid_dim: u32,
    /// In-process cluster workers.
    pub workers: u32,
    /// Boundary-overlap margin in cells.
    pub overlap: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterBenchConfig {
    /// The acceptance-scale configuration recorded in
    /// `BENCH_cluster.json`: enough objects and queries that cycle cost
    /// is dominated by maintenance work, not per-message fixed costs.
    fn default() -> Self {
        Self {
            n_objects: 10_000,
            n_queries: 96,
            k: 16,
            move_fraction: 0.10,
            cycles: 40,
            warmup_cycles: 2,
            grid_dim: 32,
            workers: 4,
            overlap: 4,
            seed: 2005,
        }
    }
}

impl ClusterBenchConfig {
    /// The reduced-scale configuration the CI bench gate runs on every PR.
    pub fn reduced() -> Self {
        Self {
            n_objects: 4_000,
            n_queries: 48,
            cycles: 24,
            ..Self::default()
        }
    }
}

/// Timings for one execution lane.
#[derive(Debug, Clone, Copy)]
pub struct ClusterMeasurement {
    /// `"single-node"` or `"cluster"`.
    pub mode: &'static str,
    /// **Median** wall time per measured cycle, ms.
    pub ms_per_cycle: f64,
    /// Slowest single measured cycle, ms.
    pub max_cycle_ms: f64,
    /// Total result changes over the measured cycles (identical across
    /// lanes — asserted per cycle by [`run`]).
    pub result_changes: usize,
}

/// Outcome of one cluster-vs-single-node run.
#[derive(Debug, Clone)]
pub struct ClusterBenchRun {
    /// Per-lane measurements: `[single-node, cluster]`.
    pub modes: [ClusterMeasurement; 2],
    /// Median coordinator routing cost per cycle, ms (per-worker event
    /// translation + batch framing + send), from
    /// [`ClusterCoordinator::last_cycle_timings`].
    pub route_ms_per_cycle: f64,
    /// Median coordinator blocking-receive time per cycle, ms — the
    /// window the workers spend computing while the coordinator waits.
    pub worker_wait_ms_per_cycle: f64,
    /// Median coordinator merge cost per cycle, ms (the serial
    /// reassembly + decode + canonical-interleave step).
    pub merge_ms_per_cycle: f64,
    /// Median per-cycle-pair `merge ms / single-node ms`: the
    /// machine-independent coordinator overhead. The PR acceptance bar
    /// is ≤ [`crate::check::CLUSTER_MERGE_LIMIT`] at `W = 4`.
    pub merge_over_single: f64,
    /// Median per-cycle-pair `cluster ms / single-node ms`: the full
    /// price of the distributed path **on this host** — diagnostic
    /// only, since it depends on how many cores the workers get (see
    /// the [module docs](self)).
    pub cluster_over_single: f64,
}

fn median_ms(mut times: Vec<Duration>) -> (f64, f64) {
    times.sort_unstable();
    let median = times
        .get(times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    let max = times.last().copied().unwrap_or(Duration::ZERO);
    (median.as_secs_f64() * 1e3, max.as_secs_f64() * 1e3)
}

/// Run both lanes over the identical pre-generated workload and report
/// the cycle-cost ratio.
///
/// Paired-cycle protocol (see [`crate::deltas::run`] for why): each
/// event batch is processed by both lanes back to back in an order that
/// alternates every cycle, and the ratio is the **median of per-pair
/// ratios**, so transient host stalls inflate both sides of their pair
/// and cancel. After every measured pair the merged cluster deltas are
/// asserted bit-identical to the single-node batch (outside the timed
/// sections).
///
/// # Panics
/// On any cluster protocol error, or if the merged deltas ever diverge
/// from the single-node reference.
pub fn run(cfg: &ClusterBenchConfig) -> ClusterBenchRun {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut positions = crate::movers::uniform_points(&mut rng, cfg.n_objects);
    let appears: Vec<ObjectEvent> = positions
        .iter()
        .enumerate()
        .map(|(i, &pos)| ObjectEvent::Appear {
            id: ObjectId(i as u32),
            pos,
        })
        .collect();
    let installs: Vec<SpecEvent<AnyQuerySpec>> =
        crate::movers::uniform_points(&mut rng, cfg.n_queries)
            .into_iter()
            .enumerate()
            .map(|(i, p)| SpecEvent::Install {
                id: QueryId(i as u32),
                spec: AnyQuerySpec::Knn(PointQuery(p)),
                k: cfg.k,
            })
            .collect();
    let movers = ((cfg.n_objects as f64 * cfg.move_fraction) as usize).max(1);
    let total_cycles = cfg.warmup_cycles + cfg.cycles;
    let move_cycles: Vec<Vec<ObjectEvent>> =
        crate::movers::random_walk_cycles(&mut rng, &mut positions, total_cycles, movers)
            .into_iter()
            .map(|batch| {
                // Last-wins dedup: both lanes reject duplicate ids in a
                // batch.
                let mut seen = std::collections::HashSet::new();
                let mut events: Vec<ObjectEvent> = batch
                    .into_iter()
                    .rev()
                    .filter(|(i, _)| seen.insert(*i))
                    .map(|(i, to)| ObjectEvent::Move {
                        id: ObjectId(i as u32),
                        to,
                    })
                    .collect();
                events.reverse();
                events
            })
            .collect();

    let mut single = CpmServerBuilder::new(cfg.grid_dim)
        .deltas(true)
        .try_build()
        .expect("single-node server");
    let cluster_cfg = ClusterConfig::new(cfg.grid_dim, cfg.workers).overlap(cfg.overlap);
    let (mut coord, handles) =
        ClusterCoordinator::spawn_in_process(cluster_cfg).expect("spawn workers");

    // Bootstrap (unmeasured): objects appear, then queries install —
    // k-NN results must be fillable before any finite coverage can
    // certify them.
    let mut single_out = CycleDeltas::default();
    for (objects, queries) in [(&appears[..], &[][..]), (&[][..], &installs[..])] {
        single
            .process_cycle_with_deltas_into(objects, queries, &mut single_out)
            .expect("bootstrap cycle");
        let merged = coord
            .process_cycle(objects, queries)
            .expect("cluster bootstrap cycle");
        assert_eq!(merged, single_out, "bootstrap deltas diverged");
    }

    let warmup_n = cfg.warmup_cycles.min(move_cycles.len());
    let (warmup, measured) = move_cycles.split_at(warmup_n);
    for events in warmup {
        single
            .process_cycle_with_deltas_into(events, &[], &mut single_out)
            .expect("warmup cycle");
        coord.process_cycle(events, &[]).expect("warmup cycle");
    }

    let mut single_times = Vec::with_capacity(measured.len());
    let mut single_changes = 0usize;
    let mut cluster_times = Vec::with_capacity(measured.len());
    let mut route_times = Vec::with_capacity(measured.len());
    let mut wait_times = Vec::with_capacity(measured.len());
    let mut merge_times = Vec::with_capacity(measured.len());
    let mut cluster_changes = 0usize;
    for (i, events) in measured.iter().enumerate() {
        let mut merged = None;
        let mut time_single = |single: &mut cpm_core::CpmServer| {
            let start = Instant::now();
            single
                .process_cycle_with_deltas_into(events, &[], &mut single_out)
                .expect("measured cycle");
            single_times.push(start.elapsed());
            single_changes += single_out.changed.len();
        };
        let mut time_cluster = |coord: &mut ClusterCoordinator<_>| {
            let start = Instant::now();
            let out = coord.process_cycle(events, &[]).expect("measured cycle");
            cluster_times.push(start.elapsed());
            let stage = coord.last_cycle_timings();
            route_times.push(stage.route);
            wait_times.push(stage.worker_wait);
            merge_times.push(stage.merge);
            cluster_changes += out.changed.len();
            merged = Some(out);
        };
        if i % 2 == 0 {
            time_single(&mut single);
            time_cluster(&mut coord);
        } else {
            time_cluster(&mut coord);
            time_single(&mut single);
        }
        // Conformance, outside the timed sections: every merged batch is
        // bit-identical to the single-node one.
        assert_eq!(
            merged.expect("cluster lane ran"),
            single_out,
            "merged deltas diverged at measured cycle {i}"
        );
    }
    coord.shutdown().expect("clean shutdown");
    for h in handles {
        h.join().expect("worker thread").expect("worker exit");
    }

    let median_ratio = |others: &[Duration], singles: &[Duration]| {
        let mut ratios: Vec<f64> = singles
            .iter()
            .zip(others)
            .map(|(s, c)| c.as_secs_f64() / s.as_secs_f64())
            .collect();
        ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        ratios[ratios.len() / 2]
    };
    let cluster_over_single = median_ratio(&cluster_times, &single_times);
    let merge_over_single = median_ratio(&merge_times, &single_times);
    let (route_ms, _) = median_ms(route_times);
    let (wait_ms, _) = median_ms(wait_times);
    let (merge_ms, _) = median_ms(merge_times);

    let (single_ms, single_max) = median_ms(single_times);
    let (cluster_ms, cluster_max) = median_ms(cluster_times);
    assert_eq!(
        single_changes, cluster_changes,
        "lanes did different work on the same stream"
    );
    ClusterBenchRun {
        modes: [
            ClusterMeasurement {
                mode: "single-node",
                ms_per_cycle: single_ms,
                max_cycle_ms: single_max,
                result_changes: single_changes,
            },
            ClusterMeasurement {
                mode: "cluster",
                ms_per_cycle: cluster_ms,
                max_cycle_ms: cluster_max,
                result_changes: cluster_changes,
            },
        ],
        route_ms_per_cycle: route_ms,
        worker_wait_ms_per_cycle: wait_ms,
        merge_ms_per_cycle: merge_ms,
        merge_over_single,
        cluster_over_single,
    }
}

/// Render the `BENCH_cluster.json` document for a run.
pub fn render_json(cfg: &ClusterBenchConfig, run: &ClusterBenchRun) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_cluster\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n_objects\": {}, \"n_queries\": {}, \"k\": {}, \
         \"move_fraction\": {}, \"cycles\": {}, \"warmup_cycles\": {}, \"grid_dim\": {}, \
         \"workers\": {}, \"overlap\": {}}},",
        cfg.n_objects,
        cfg.n_queries,
        cfg.k,
        cfg.move_fraction,
        cfg.cycles,
        cfg.warmup_cycles,
        cfg.grid_dim,
        cfg.workers,
        cfg.overlap
    );
    let _ = writeln!(
        json,
        "  \"machine\": {{\"threads_available\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},",
        crate::shards::available_threads(),
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("  \"results\": [\n");
    for (i, m) in run.modes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"ms_per_cycle\": {:.3}, \"max_cycle_ms\": {:.3}, \
             \"result_changes\": {}}}",
            m.mode, m.ms_per_cycle, m.max_cycle_ms, m.result_changes
        );
        json.push_str(if i + 1 == run.modes.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"route_ms_per_cycle\": {:.4},",
        run.route_ms_per_cycle
    );
    let _ = writeln!(
        json,
        "  \"worker_wait_ms_per_cycle\": {:.4},",
        run.worker_wait_ms_per_cycle
    );
    let _ = writeln!(
        json,
        "  \"merge_ms_per_cycle\": {:.4},",
        run.merge_ms_per_cycle
    );
    let _ = writeln!(
        json,
        "  \"merge_over_single\": {:.4},",
        run.merge_over_single
    );
    let _ = writeln!(
        json,
        "  \"cluster_over_single\": {:.4}",
        run.cluster_over_single
    );
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_measures_both_lanes_consistently() {
        let cfg = ClusterBenchConfig {
            n_objects: 400,
            n_queries: 12,
            k: 3,
            cycles: 3,
            warmup_cycles: 1,
            grid_dim: 16,
            workers: 2,
            overlap: 4,
            ..ClusterBenchConfig::default()
        };
        // `run` itself asserts per-cycle bit-identical merged deltas.
        let run = run(&cfg);
        assert_eq!(run.modes[0].mode, "single-node");
        assert_eq!(run.modes[1].mode, "cluster");
        assert_eq!(run.modes[0].result_changes, run.modes[1].result_changes);
        assert!(run.cluster_over_single > 0.0);
        // The merge is one slice of the cluster cycle, so its ratio is
        // positive and can't exceed the whole cycle's.
        assert!(run.merge_over_single > 0.0);
        assert!(run.merge_over_single <= run.cluster_over_single);
        let json = render_json(&cfg, &run);
        assert!(json.contains("\"mode\": \"cluster\""));
        assert!(json.contains("merge_over_single"));
        assert!(json.contains("cluster_over_single"));
        assert!(json.contains("route_ms_per_cycle"));
        assert!(json.contains("worker_wait_ms_per_cycle"));
    }
}
