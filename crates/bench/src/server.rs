//! Unified-server benchmark: cycle cost of one [`cpm_core::CpmServer`]
//! hosting a mixed continuous-query workload (k-NN + range + constrained)
//! versus three dedicated single-kind engines over three separate grids —
//! the deployment shape the old one-engine-per-kind API forced.
//!
//! The workload is deliberately **update-ingest-bound** (default: 100K
//! uniform objects, 10% movers per cycle, a few hundred queries per
//! kind): the per-cycle grid ingest is the cost the server collapses from
//! three passes to one, while query maintenance is identical work on both
//! sides. Both modes replay the identical pre-generated stream under the
//! paired, order-alternating cycle protocol of [`crate::deltas`] (the
//! naive sequential-phase protocol swings ±15pp on a shared 1-vCPU box);
//! the reported speedup is the **median of per-cycle-pair ratios**.
//!
//! The `bench_server` binary records `BENCH_server.json`; the CI gate
//! (`bench_check`) re-runs [`ServerBenchConfig::reduced`] and enforces
//! the ≥ 1.3× acceptance bar (see [`crate::check::check_server`]).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cpm_core::{
    ConstrainedQuery, CpmServer, CpmServerBuilder, PointQuery, RangeQuery, ShardedCpmEngine,
};
use cpm_geom::{ObjectId, Point, QueryId, Rect};
use cpm_grid::ObjectEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload parameters for one unified-vs-split run.
#[derive(Debug, Clone)]
pub struct ServerBenchConfig {
    /// Object population `N`.
    pub n_objects: usize,
    /// Installed k-NN queries.
    pub knn_queries: usize,
    /// Installed range queries.
    pub range_queries: usize,
    /// Installed constrained queries.
    pub constrained_queries: usize,
    /// Neighbors per k-NN / constrained query.
    pub k: usize,
    /// Fraction of objects moving per cycle.
    pub move_fraction: f64,
    /// Measured processing cycles.
    pub cycles: usize,
    /// Unmeasured warmup cycles replayed first per mode.
    pub warmup_cycles: usize,
    /// Grid granularity per axis.
    pub grid_dim: u32,
    /// Query shards (1 = sequential maintenance) — applied to the server
    /// and to each dedicated engine alike.
    pub shards: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ServerBenchConfig {
    /// The acceptance-scale configuration recorded in `BENCH_server.json`
    /// (100K objects, 60 queries per kind, k = 8 — the pub/sub shape:
    /// a large moving population, a comparatively small continuous-query
    /// set, so the per-cycle cost is dominated by the ingest + record
    /// routing the server collapses from three passes to one).
    fn default() -> Self {
        Self {
            n_objects: 100_000,
            knn_queries: 60,
            range_queries: 60,
            constrained_queries: 60,
            k: 8,
            move_fraction: 0.10,
            cycles: 30,
            warmup_cycles: 2,
            grid_dim: 128,
            shards: 1,
            seed: 2005,
        }
    }
}

impl ServerBenchConfig {
    /// The reduced-scale configuration the CI bench gate runs on every PR.
    pub fn reduced() -> Self {
        Self {
            n_objects: 10_000,
            knn_queries: 20,
            range_queries: 20,
            constrained_queries: 20,
            cycles: 30,
            ..Self::default()
        }
    }
}

/// Timings for one result-serving mode.
#[derive(Debug, Clone, Copy)]
pub struct ServerMeasurement {
    /// `"unified"` (one `CpmServer`) or `"split"` (three engines).
    pub mode: &'static str,
    /// **Median** wall time per measured cycle (warmup excluded), ms.
    pub ms_per_cycle: f64,
    /// Slowest single measured cycle, ms.
    pub max_cycle_ms: f64,
    /// Total result changes over the measured cycles (identical across
    /// modes — asserted by [`run`]).
    pub result_changes: usize,
}

/// Outcome of one unified-vs-split run.
#[derive(Debug, Clone)]
pub struct ServerBenchRun {
    /// Per-mode measurements: `[unified, split]`.
    pub modes: [ServerMeasurement; 2],
    /// Median per-cycle-pair `split ms / unified ms`: how much faster one
    /// shared grid + one ingest is than three grids + three ingests. The
    /// PR acceptance bar is ≥ 1.3 on this ingest-bound workload.
    pub unified_speedup: f64,
}

struct Workload {
    objects: Vec<(ObjectId, Point)>,
    knn: Vec<(QueryId, Point)>,
    ranges: Vec<(QueryId, RangeQuery)>,
    constrained: Vec<(QueryId, ConstrainedQuery)>,
    cycles: Vec<Vec<ObjectEvent>>,
}

fn build_workload(cfg: &ServerBenchConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut positions = crate::movers::uniform_points(&mut rng, cfg.n_objects);
    let objects: Vec<(ObjectId, Point)> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| (ObjectId(i as u32), p))
        .collect();
    // Disjoint id bands per kind, far below the server's reserved band.
    let knn = crate::movers::uniform_points(&mut rng, cfg.knn_queries)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (QueryId(i as u32), p))
        .collect();
    let ranges = (0..cfg.range_queries)
        .map(|i| {
            let center = Point::new(rng.gen(), rng.gen());
            // Geofence-sized zones: a few tens of grid cells each, so the
            // influence tables stay sparse and the cycle stays
            // ingest-bound (the regime the server accelerates).
            let radius = 0.015 + rng.gen::<f64>() * 0.02;
            (
                QueryId(1_000_000 + i as u32),
                RangeQuery::circle(center, radius),
            )
        })
        .collect();
    let constrained = (0..cfg.constrained_queries)
        .map(|i| {
            let q = Point::new(rng.gen(), rng.gen());
            let w = 0.05 + rng.gen::<f64>() * 0.07;
            let lo = Point::new((q.x - w / 2.0).max(0.0), (q.y - w / 2.0).max(0.0));
            let hi = Point::new((lo.x + w).min(1.0), (lo.y + w).min(1.0));
            (
                QueryId(2_000_000 + i as u32),
                ConstrainedQuery::new(q, Rect::new(lo, hi)),
            )
        })
        .collect();
    let movers = ((cfg.n_objects as f64 * cfg.move_fraction) as usize).max(1);
    let total_cycles = cfg.warmup_cycles + cfg.cycles;
    let cycles = crate::movers::random_walk_cycles(&mut rng, &mut positions, total_cycles, movers)
        .into_iter()
        .map(|batch| {
            // The walk may step one object twice in a cycle; the server's
            // ingest validation rejects duplicate ids in a batch, so keep
            // only each object's final position — exactly what sequential
            // last-wins application produced before.
            let mut seen = std::collections::HashSet::new();
            let mut events: Vec<ObjectEvent> = batch
                .into_iter()
                .rev()
                .filter(|(i, _)| seen.insert(*i))
                .map(|(i, to)| ObjectEvent::Move {
                    id: ObjectId(i as u32),
                    to,
                })
                .collect();
            events.reverse();
            events
        })
        .collect();
    Workload {
        objects,
        knn,
        ranges,
        constrained,
        cycles,
    }
}

fn median_ms(mut times: Vec<Duration>) -> (f64, f64) {
    times.sort_unstable();
    let median = times
        .get(times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    let max = times.last().copied().unwrap_or(Duration::ZERO);
    (median.as_secs_f64() * 1e3, max.as_secs_f64() * 1e3)
}

/// The three dedicated single-kind engines of the pre-server API shape.
struct SplitEngines {
    knn: ShardedCpmEngine<PointQuery>,
    range: ShardedCpmEngine<RangeQuery>,
    constrained: ShardedCpmEngine<ConstrainedQuery>,
}

impl SplitEngines {
    fn cycle(&mut self, events: &[ObjectEvent]) -> usize {
        self.knn.process_cycle(events, &[]).len()
            + self.range.process_cycle(events, &[]).len()
            + self.constrained.process_cycle(events, &[]).len()
    }
}

/// Run both deployment shapes over the identical pre-generated workload
/// and report the unified-server speedup (median of per-cycle-pair
/// ratios; see the [module docs](self) for the pairing rationale).
///
/// Panics if the two modes report different result-change totals.
pub fn run(cfg: &ServerBenchConfig) -> ServerBenchRun {
    let w = build_workload(cfg);
    let warmup_n = cfg.warmup_cycles.min(w.cycles.len());

    let mut unified: CpmServer = CpmServerBuilder::new(cfg.grid_dim)
        .shards(cfg.shards)
        .build();
    unified.populate(w.objects.iter().copied());
    for &(qid, pos) in &w.knn {
        let _ = unified.install_knn(qid, pos, cfg.k).expect("fresh id");
    }
    for &(qid, q) in &w.ranges {
        let _ = unified.install_range(qid, q).expect("fresh id");
    }
    for (qid, q) in &w.constrained {
        let _ = unified
            .install_constrained(*qid, q.clone(), cfg.k)
            .expect("fresh id");
    }

    let mut split = SplitEngines {
        knn: ShardedCpmEngine::new(cfg.grid_dim, cfg.shards),
        range: ShardedCpmEngine::new(cfg.grid_dim, cfg.shards),
        constrained: ShardedCpmEngine::new(cfg.grid_dim, cfg.shards),
    };
    split.knn.populate(w.objects.iter().copied());
    split.range.populate(w.objects.iter().copied());
    split.constrained.populate(w.objects.iter().copied());
    for &(qid, pos) in &w.knn {
        split
            .knn
            .install(qid, PointQuery(pos), cfg.k)
            .expect("fresh id");
    }
    for &(qid, q) in &w.ranges {
        split
            .range
            .install(qid, q, RangeQuery::UNBOUNDED_K)
            .expect("fresh id");
    }
    for (qid, q) in &w.constrained {
        split
            .constrained
            .install(*qid, q.clone(), cfg.k)
            .expect("fresh id");
    }

    let (warmup, measured) = w.cycles.split_at(warmup_n);
    for events in warmup {
        let _ = unified.process_cycle(events, &[]).expect("no query events");
        split.cycle(events);
    }

    let mut unified_changes = 0usize;
    let mut unified_times = Vec::with_capacity(measured.len());
    let mut split_changes = 0usize;
    let mut split_times = Vec::with_capacity(measured.len());
    for (i, events) in measured.iter().enumerate() {
        let mut run_unified = |u: &mut CpmServer| {
            let start = Instant::now();
            let changed = u.process_cycle(events, &[]).expect("no query events");
            unified_times.push(start.elapsed());
            unified_changes += changed.len();
        };
        let mut run_split = |s: &mut SplitEngines| {
            let start = Instant::now();
            let changed = s.cycle(events);
            split_times.push(start.elapsed());
            split_changes += changed;
        };
        if i % 2 == 0 {
            run_unified(&mut unified);
            run_split(&mut split);
        } else {
            run_split(&mut split);
            run_unified(&mut unified);
        }
    }

    // Per-pair ratios: both sides of a pair share transient host
    // conditions, so noisy-neighbor stalls cancel in the ratio.
    let mut ratios: Vec<f64> = unified_times
        .iter()
        .zip(&split_times)
        .map(|(u, s)| s.as_secs_f64() / u.as_secs_f64())
        .collect();
    ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let unified_speedup = ratios[ratios.len() / 2];

    assert_eq!(
        unified_changes, split_changes,
        "modes did different work on the same stream"
    );
    let (u_ms, u_max) = median_ms(unified_times);
    let (s_ms, s_max) = median_ms(split_times);
    ServerBenchRun {
        modes: [
            ServerMeasurement {
                mode: "unified",
                ms_per_cycle: u_ms,
                max_cycle_ms: u_max,
                result_changes: unified_changes,
            },
            ServerMeasurement {
                mode: "split",
                ms_per_cycle: s_ms,
                max_cycle_ms: s_max,
                result_changes: split_changes,
            },
        ],
        unified_speedup,
    }
}

/// Render the `BENCH_server.json` document for a run.
pub fn render_json(cfg: &ServerBenchConfig, run: &ServerBenchRun) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_server\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n_objects\": {}, \"knn_queries\": {}, \"range_queries\": {}, \
         \"constrained_queries\": {}, \"k\": {}, \"move_fraction\": {}, \"cycles\": {}, \
         \"warmup_cycles\": {}, \"grid_dim\": {}, \"shards\": {}}},",
        cfg.n_objects,
        cfg.knn_queries,
        cfg.range_queries,
        cfg.constrained_queries,
        cfg.k,
        cfg.move_fraction,
        cfg.cycles,
        cfg.warmup_cycles,
        cfg.grid_dim,
        cfg.shards
    );
    let _ = writeln!(
        json,
        "  \"machine\": {{\"threads_available\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},",
        crate::shards::available_threads(),
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("  \"results\": [\n");
    for (i, m) in run.modes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"ms_per_cycle\": {:.3}, \"max_cycle_ms\": {:.3}, \
             \"result_changes\": {}}}",
            m.mode, m.ms_per_cycle, m.max_cycle_ms, m.result_changes
        );
        json.push_str(if i + 1 == run.modes.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"unified_speedup\": {:.4}", run.unified_speedup);
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_measures_both_modes_consistently() {
        let cfg = ServerBenchConfig {
            n_objects: 400,
            knn_queries: 6,
            range_queries: 6,
            constrained_queries: 6,
            k: 3,
            cycles: 3,
            warmup_cycles: 1,
            grid_dim: 16,
            ..ServerBenchConfig::default()
        };
        let run = run(&cfg);
        assert_eq!(run.modes[0].mode, "unified");
        assert_eq!(run.modes[1].mode, "split");
        assert_eq!(run.modes[0].result_changes, run.modes[1].result_changes);
        assert!(run.unified_speedup > 0.0);
        let json = render_json(&cfg, &run);
        assert!(json.contains("\"mode\": \"unified\""));
        assert!(json.contains("unified_speedup"));
    }
}
