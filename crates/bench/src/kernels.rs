//! Distance-kernel micro-benchmark: the batched struct-of-arrays kernel
//! (`cpm_grid::kernels::dist_into`) vs the pre-kernel scalar idiom (an
//! array-of-`Option<Point>` lookup plus one `Point::dist` per object —
//! the exact inner loop every monitor ran before the SoA refactor).
//!
//! Both lanes replay identical pre-generated bucket scans under a paired
//! protocol (lanes alternate per timed block, so host drift hits both
//! equally, and each lane reports its fastest block so scheduler
//! preemptions don't pollute the ratio) and their outputs are folded
//! into checksums that must match **bit-for-bit** — the bench doubles as
//! an end-to-end smoke test of the kernel-conformance guarantee.
//!
//! The sweep covers position-table sizes 64 / 256 / 1024 (spanning
//! cache-resident to gather-heavy) × bucket sizes 1–256 (including an
//! odd size for the SIMD tail lane). The `bench_kernels` binary runs
//! [`KernelBenchConfig::default`] and records `BENCH_kernels.json`; the
//! CI gate (`bench_check`) runs [`KernelBenchConfig::reduced`] and
//! enforces the ≥ 1.3× acceptance bar on dim-64 buckets of ≥ 32 objects
//! (`check_kernels`).

use std::fmt::Write as _;
use std::time::Instant;

use cpm_geom::{ObjectId, Point};
use cpm_grid::kernels::{self, Coords};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload parameters for one kernel benchmark run.
#[derive(Debug, Clone)]
pub struct KernelBenchConfig {
    /// Position-table sizes (slot counts) measured.
    pub dims: Vec<usize>,
    /// Bucket sizes measured (objects per cell scan).
    pub buckets: Vec<usize>,
    /// Distinct pre-generated buckets per (dim, bucket-size) cell.
    pub n_buckets: usize,
    /// Target distance evaluations per lane per cell (repetitions are
    /// derived from this so small buckets are not under-sampled).
    pub target_ops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KernelBenchConfig {
    /// The full sweep recorded in `BENCH_kernels.json`.
    fn default() -> Self {
        Self {
            dims: vec![64, 256, 1024],
            buckets: vec![1, 2, 4, 8, 16, 32, 33, 64, 128, 256],
            n_buckets: 64,
            target_ops: 8_000_000,
            seed: 2005,
        }
    }
}

impl KernelBenchConfig {
    /// The reduced configuration the CI bench gate runs on every PR:
    /// only the gated cells (dim 64, buckets ≥ 32 including the odd
    /// tail-lane size) at a lighter sampling budget.
    pub fn reduced() -> Self {
        Self {
            dims: vec![64],
            buckets: vec![32, 33, 64],
            target_ops: 1_500_000,
            ..Self::default()
        }
    }
}

/// Paired scalar/batched timings of one (table size, bucket size) cell.
#[derive(Debug, Clone, Copy)]
pub struct KernelMeasurement {
    /// Position-table slot count.
    pub dim: usize,
    /// Objects per bucket scan.
    pub bucket: usize,
    /// Nanoseconds per distance evaluation, scalar `Option<Point>` lane.
    pub scalar_ns: f64,
    /// Nanoseconds per distance evaluation, batched SoA-kernel lane.
    pub batched_ns: f64,
    /// `scalar_ns / batched_ns`.
    pub speedup: f64,
}

/// One (dim, bucket) cell's pre-generated inputs, identical for both
/// lanes: the position table in both layouts plus the gather patterns.
struct Cell {
    aos: Vec<Option<Point>>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    queries: Vec<Point>,
    buckets: Vec<Vec<ObjectId>>,
}

fn build_cell(rng: &mut StdRng, dim: usize, bucket: usize, n_buckets: usize) -> Cell {
    let points: Vec<Point> = (0..dim).map(|_| Point::new(rng.gen(), rng.gen())).collect();
    let (xs, ys) = points.iter().map(|p| (p.x, p.y)).unzip();
    let aos = points.into_iter().map(Some).collect();
    let queries = (0..n_buckets)
        .map(|_| Point::new(rng.gen(), rng.gen()))
        .collect();
    let buckets = (0..n_buckets)
        .map(|_| {
            (0..bucket)
                .map(|_| ObjectId(rng.gen_range(0..dim) as u32))
                .collect()
        })
        .collect();
    Cell {
        aos,
        xs,
        ys,
        queries,
        buckets,
    }
}

/// The pre-kernel scalar idiom, verbatim: decode the `Option<Point>` slot
/// per object and take one serial `Point::dist`.
#[inline(never)]
fn scalar_scan(aos: &[Option<Point>], q: Point, oids: &[ObjectId], out: &mut Vec<f64>) {
    out.clear();
    for &oid in oids {
        let p = aos[oid.index()].expect("indexed object has position");
        out.push(q.dist(p));
    }
}

fn fold(checksum: &mut u64, out: &[f64]) {
    for d in out {
        *checksum ^= d.to_bits();
    }
}

/// Measure one (dim, bucket) cell under the paired protocol.
fn bench_cell(
    rng: &mut StdRng,
    cfg: &KernelBenchConfig,
    dim: usize,
    bucket: usize,
) -> KernelMeasurement {
    let cell = build_cell(rng, dim, bucket, cfg.n_buckets);
    let coords = Coords::from_columns(&cell.xs, &cell.ys);
    let ops_per_rep = cfg.n_buckets * bucket;
    let reps = (cfg.target_ops / ops_per_rep.max(1)).clamp(50, 400_000);

    // Conformance first (outside timing): every bucket's outputs must
    // match bit-for-bit between the lanes, and the folded checksums pin
    // that for the whole cell. The inputs never change across
    // repetitions, so checking once covers every timed scan below.
    let mut out = Vec::new();
    let mut scalar_sum = 0u64;
    let mut batched_sum = 0u64;
    for (q, oids) in cell.queries.iter().zip(&cell.buckets) {
        scalar_scan(&cell.aos, *q, oids, &mut out);
        fold(&mut scalar_sum, &out);
        kernels::dist_into(coords, *q, oids, &mut out);
        fold(&mut batched_sum, &out);
    }
    assert_eq!(
        scalar_sum, batched_sum,
        "lanes diverged bitwise at dim {dim}, bucket {bucket}"
    );

    // Timed repetitions: the scans alone, with `black_box` keeping each
    // bucket's output live (folding checksums inside the timed region
    // would add a constant per-object cost to both lanes and compress
    // the measured ratio). The reps are split into blocks with the lanes
    // alternating per block, and each lane reports its *fastest* block:
    // one lane's timed window is only microseconds, so a single
    // millisecond-scale scheduler preemption landing inside it would
    // dominate a summed total, while the min statistic discards every
    // block a preemption hit. Block 0 is an untimed warm-up.
    const BLOCKS: usize = 25;
    let reps_per_block = (reps / BLOCKS).max(1);
    let block_ops = (reps_per_block * ops_per_rep).max(1) as f64;
    let mut scalar_ns = f64::INFINITY;
    let mut batched_ns = f64::INFINITY;
    for block in 0..BLOCKS + 1 {
        let start = Instant::now();
        for _ in 0..reps_per_block {
            for (q, oids) in cell.queries.iter().zip(&cell.buckets) {
                scalar_scan(&cell.aos, *q, oids, &mut out);
                std::hint::black_box(&mut out);
            }
        }
        if block > 0 {
            scalar_ns = scalar_ns.min(start.elapsed().as_nanos() as f64);
        }

        let start = Instant::now();
        for _ in 0..reps_per_block {
            for (q, oids) in cell.queries.iter().zip(&cell.buckets) {
                kernels::dist_into(coords, *q, oids, &mut out);
                std::hint::black_box(&mut out);
            }
        }
        if block > 0 {
            batched_ns = batched_ns.min(start.elapsed().as_nanos() as f64);
        }
    }
    let scalar = scalar_ns / block_ops;
    let batched = batched_ns / block_ops;
    KernelMeasurement {
        dim,
        bucket,
        scalar_ns: scalar,
        batched_ns: batched,
        speedup: scalar / batched,
    }
}

/// Run the sweep: one paired measurement per (dim, bucket-size) cell.
pub fn run(cfg: &KernelBenchConfig) -> Vec<KernelMeasurement> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut results = Vec::new();
    for &dim in &cfg.dims {
        for &bucket in &cfg.buckets {
            results.push(bench_cell(&mut rng, cfg, dim, bucket));
        }
    }
    results
}

/// The gate statistic: the *minimum* batched-vs-scalar speedup over the
/// dim-64 cells with buckets of ≥ 32 objects (the acceptance-bar cells).
/// `None` if the sweep measured no such cell.
pub fn gate_speedup(results: &[KernelMeasurement]) -> Option<f64> {
    results
        .iter()
        .filter(|m| m.dim == 64 && m.bucket >= 32)
        .map(|m| m.speedup)
        .min_by(|a, b| a.total_cmp(b))
}

/// Render the `BENCH_kernels.json` document for a run.
pub fn render_json(cfg: &KernelBenchConfig, results: &[KernelMeasurement]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"bench_kernels\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n_buckets\": {}, \"target_ops\": {}, \"seed\": {}, \
         \"simd_feature\": {}}},",
        cfg.n_buckets,
        cfg.target_ops,
        cfg.seed,
        cfg!(feature = "simd"),
    );
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dim\": {}, \"bucket\": {}, \"scalar_ns_per_obj\": {:.3}, \
             \"batched_ns_per_obj\": {:.3}, \"speedup\": {:.2}}}",
            m.dim, m.bucket, m.scalar_ns, m.batched_ns, m.speedup
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"gate_speedup_dim64_bucket32plus\": {:.2}\n}}",
        gate_speedup(results).unwrap_or(0.0)
    );
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_consistent_and_renders() {
        let cfg = KernelBenchConfig {
            dims: vec![64],
            buckets: vec![3, 32],
            n_buckets: 4,
            target_ops: 2_000,
            ..KernelBenchConfig::default()
        };
        let results = run(&cfg);
        assert_eq!(results.len(), 2);
        for m in &results {
            assert!(m.scalar_ns > 0.0 && m.batched_ns > 0.0);
        }
        assert!(gate_speedup(&results).is_some());
        let json = render_json(&cfg, &results);
        assert!(json.contains("\"bucket\": 32"));
        assert!(json.contains("gate_speedup_dim64_bucket32plus"));
    }

    #[test]
    fn gate_speedup_is_the_minimum_over_gated_cells() {
        let m = |dim, bucket, speedup| KernelMeasurement {
            dim,
            bucket,
            scalar_ns: 1.0,
            batched_ns: 1.0,
            speedup,
        };
        let results = [
            m(64, 16, 0.9),
            m(64, 32, 1.6),
            m(64, 64, 1.4),
            m(256, 64, 9.0),
        ];
        assert_eq!(gate_speedup(&results), Some(1.4));
        assert_eq!(gate_speedup(&[m(256, 64, 2.0)]), None);
    }
}
