//! Micro-benchmarks of the CPM building blocks: first-time NN computation
//! (Figure 3.4), one batched update-handling cycle (Figure 3.8), pinwheel
//! strip generation, search-heap churn and the id hasher.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use cpm_core::heap::SearchHeap;
use cpm_core::partition::{Direction, Pinwheel};
use cpm_core::CpmKnnMonitor;
use cpm_geom::{FastHashSet, ObjectId, Point, QueryId};
use cpm_grid::{CellCoord, ObjectEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn populated_monitor(n: usize, dim: u32, seed: u64) -> CpmKnnMonitor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = CpmKnnMonitor::new(dim);
    m.populate((0..n as u32).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
    m
}

fn bench_nn_computation(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_nn_computation");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for k in [1usize, 16, 256] {
        group.bench_with_input(BenchmarkId::new("install_k", k), &k, |b, &k| {
            b.iter_batched(
                || populated_monitor(10_000, 128, 1),
                |mut m| {
                    m.install_query(QueryId(0), Point::new(0.431, 0.557), k);
                    m
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_update_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_update_cycle");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for movers in [100usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("batch_moves", movers),
            &movers,
            |b, &movers| {
                let mut rng = StdRng::seed_from_u64(3);
                let events: Vec<ObjectEvent> = (0..movers as u32)
                    .map(|i| ObjectEvent::Move {
                        id: ObjectId(i * 7 % 10_000),
                        to: Point::new(rng.gen(), rng.gen()),
                    })
                    .collect();
                b.iter_batched(
                    || {
                        let mut rng = StdRng::seed_from_u64(4);
                        let mut m = populated_monitor(10_000, 128, 2);
                        for q in 0..50u32 {
                            m.install_query(QueryId(q), Point::new(rng.gen(), rng.gen()), 16);
                        }
                        m
                    },
                    |mut m| {
                        m.process_cycle(&events, &[]);
                        m
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_pinwheel(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_pinwheel");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));
    group.bench_function("strips_to_level_16", |b| {
        let pw = Pinwheel::around_cell(CellCoord::new(64, 64), 128);
        b.iter(|| {
            let mut cells = 0usize;
            for dir in Direction::ALL {
                for lvl in 0..16 {
                    if let Some(s) = pw.strip(dir, lvl) {
                        cells += s.cells().count();
                    }
                }
            }
            cells
        })
    });
    group.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_search_heap");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));
    group.bench_function("push_pop_1k", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let keys: Vec<f64> = (0..1_000).map(|_| rng.gen()).collect();
        b.iter(|| {
            let mut h = SearchHeap::new();
            for (i, &k) in keys.iter().enumerate() {
                h.push_cell(CellCoord::new(i as u32 % 128, i as u32 / 128), k);
            }
            let mut sum = 0.0;
            while let Some((k, _)) = h.pop() {
                sum += k;
            }
            sum
        })
    });
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_fxhash");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));
    group.bench_function("set_insert_lookup_10k", |b| {
        b.iter(|| {
            let mut s: FastHashSet<ObjectId> = FastHashSet::default();
            for i in 0..10_000u32 {
                s.insert(ObjectId(i));
            }
            let mut hits = 0usize;
            for i in 0..10_000u32 {
                if s.contains(&ObjectId(i.wrapping_mul(3) % 15_000)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_nn_computation,
    bench_update_cycle,
    bench_pinwheel,
    bench_heap,
    bench_hash
);
criterion_main!(benches);
