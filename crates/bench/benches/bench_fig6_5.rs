//! Criterion version of Figure 6.5: cost vs object agility (a) and query
//! agility (b).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_sim::{run, AlgoKind, SimParams, SimulationInput, WorkloadKind};

fn base() -> SimParams {
    SimParams {
        n_objects: 2_000,
        n_queries: 50,
        k: 8,
        timestamps: 5,
        workload: WorkloadKind::Network { grid_streets: 16 },
        ..SimParams::default()
    }
}

fn bench_object_agility(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_5a_object_agility");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for pct in [10u32, 30, 50] {
        let input = SimulationInput::generate(&SimParams {
            f_obj: pct as f64 / 100.0,
            ..base()
        });
        for algo in AlgoKind::CONTENDERS {
            group.bench_with_input(BenchmarkId::new(algo.label(), pct), &input, |b, input| {
                b.iter(|| run(algo, input))
            });
        }
    }
    group.finish();
}

fn bench_query_agility(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_5b_query_agility");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for pct in [10u32, 30, 50] {
        let input = SimulationInput::generate(&SimParams {
            f_qry: pct as f64 / 100.0,
            ..base()
        });
        for algo in AlgoKind::CONTENDERS {
            group.bench_with_input(BenchmarkId::new(algo.label(), pct), &input, |b, input| {
                b.iter(|| run(algo, input))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_object_agility, bench_query_agility);
criterion_main!(benches);
