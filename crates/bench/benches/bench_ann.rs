//! Criterion benches for the Section 5 extensions: aggregate-NN
//! monitoring per aggregate function, and constrained-NN monitoring.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_core::ann::{AggregateFn, AnnQuery, CpmAnnMonitor};
use cpm_core::constrained::{ConstrainedQuery, CpmConstrainedMonitor};
use cpm_geom::{Point, QueryId, Rect};
use cpm_sim::{SimParams, SimulationInput, WorkloadKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn input() -> SimulationInput {
    SimulationInput::generate(&SimParams {
        n_objects: 2_000,
        n_queries: 0,
        timestamps: 5,
        workload: WorkloadKind::Network { grid_streets: 16 },
        ..SimParams::default()
    })
}

fn ann_queries(rng: &mut StdRng, f: AggregateFn, count: usize) -> Vec<AnnQuery> {
    (0..count)
        .map(|_| {
            let c = Point::new(rng.gen(), rng.gen());
            let pts = (0..3)
                .map(|_| {
                    Point::new(
                        (c.x + rng.gen_range(-0.05..0.05)).clamp(0.0, 0.999),
                        (c.y + rng.gen_range(-0.05..0.05)).clamp(0.0, 0.999),
                    )
                })
                .collect();
            AnnQuery::new(pts, f)
        })
        .collect()
}

fn bench_ann(c: &mut Criterion) {
    let input = input();
    let mut group = c.benchmark_group("ann_monitoring");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for f in [AggregateFn::Sum, AggregateFn::Min, AggregateFn::Max] {
        group.bench_with_input(
            BenchmarkId::new("aggregate", format!("{f:?}")),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(9);
                    let mut m = CpmAnnMonitor::new(input.params.grid_dim);
                    m.populate(input.initial_objects.iter().copied());
                    for (i, q) in ann_queries(&mut rng, f, 20).into_iter().enumerate() {
                        m.install_query(QueryId(i as u32), q, 4);
                    }
                    for tick in &input.ticks {
                        m.process_cycle(&tick.object_events, &[]);
                    }
                    m
                })
            },
        );
    }
    group.finish();
}

fn bench_constrained(c: &mut Criterion) {
    let input = input();
    let mut group = c.benchmark_group("constrained_monitoring");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    group.bench_with_input(BenchmarkId::new("zone", "0.3"), &input, |b, input| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut m = CpmConstrainedMonitor::new(input.params.grid_dim);
            m.populate(input.initial_objects.iter().copied());
            for i in 0..20u32 {
                let q = Point::new(rng.gen(), rng.gen());
                let lo = Point::new((q.x - 0.15).clamp(0.0, 0.7), (q.y - 0.15).clamp(0.0, 0.7));
                let hi = Point::new(lo.x + 0.3, lo.y + 0.3);
                m.install_query(QueryId(i), ConstrainedQuery::new(q, Rect::new(lo, hi)), 4);
            }
            for tick in &input.ticks {
                m.process_cycle(&tick.object_events, &[]);
            }
            m
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ann, bench_constrained);
criterion_main!(benches);
