//! Criterion version of Figure 6.1: full-run cost of each algorithm as
//! the grid granularity varies (micro scale; the `experiments` binary
//! runs the paper-scale sweep).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_sim::{run, AlgoKind, SimParams, SimulationInput, WorkloadKind};

fn params() -> SimParams {
    SimParams {
        n_objects: 2_000,
        n_queries: 50,
        k: 8,
        timestamps: 5,
        workload: WorkloadKind::Network { grid_streets: 16 },
        ..SimParams::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut input = SimulationInput::generate(&params());
    let mut group = c.benchmark_group("fig6_1_grid_granularity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for dim in [32u32, 128, 1024] {
        input.params.grid_dim = dim;
        for algo in AlgoKind::CONTENDERS {
            group.bench_with_input(BenchmarkId::new(algo.label(), dim), &input, |b, input| {
                b.iter(|| run(algo, input))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
