//! Criterion version of Figure 6.4: cost vs object speed (a) and query
//! speed (b). The paper's headline: CPM is flat in both, the baselines
//! are not.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_gen::SpeedClass;
use cpm_sim::{run, AlgoKind, SimParams, SimulationInput, WorkloadKind};

fn base() -> SimParams {
    SimParams {
        n_objects: 2_000,
        n_queries: 50,
        k: 8,
        timestamps: 5,
        workload: WorkloadKind::Network { grid_streets: 16 },
        ..SimParams::default()
    }
}

fn bench_object_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_4a_object_speed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for speed in SpeedClass::ALL {
        let input = SimulationInput::generate(&SimParams {
            object_speed: speed,
            ..base()
        });
        for algo in AlgoKind::CONTENDERS {
            group.bench_with_input(
                BenchmarkId::new(algo.label(), speed.label()),
                &input,
                |b, input| b.iter(|| run(algo, input)),
            );
        }
    }
    group.finish();
}

fn bench_query_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_4b_query_speed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for speed in SpeedClass::ALL {
        let input = SimulationInput::generate(&SimParams {
            query_speed: speed,
            ..base()
        });
        for algo in AlgoKind::CONTENDERS {
            group.bench_with_input(
                BenchmarkId::new(algo.label(), speed.label()),
                &input,
                |b, input| b.iter(|| run(algo, input)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_object_speed, bench_query_speed);
criterion_main!(benches);
