//! Criterion bench for the Section 4.1 trade-off and the ablation study:
//! CPM cost across grid granularities on uniform data (the analysis
//! model's regime), and with each book-keeping optimization disabled.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_core::{CpmConfig, CpmKnnMonitor};
use cpm_sim::{run_boxed, SimParams, SimulationInput, WorkloadKind};

fn input(dim: u32) -> SimulationInput {
    SimulationInput::generate(&SimParams {
        n_objects: 2_000,
        n_queries: 50,
        k: 8,
        timestamps: 5,
        grid_dim: dim,
        workload: WorkloadKind::Uniform,
        ..SimParams::default()
    })
}

fn bench_delta_tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_delta_tradeoff");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for dim in [16u32, 64, 256] {
        let input = input(dim);
        group.bench_with_input(BenchmarkId::new("CPM", dim), &input, |b, input| {
            b.iter(|| {
                let mut m = CpmKnnMonitor::new(input.params.grid_dim);
                run_boxed(&mut m, input)
            })
        });
    }
    group.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let input = input(64);
    let mut group = c.benchmark_group("ablation_bookkeeping");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let configs = [
        ("full", CpmConfig::default()),
        (
            "no_merge",
            CpmConfig {
                merge_optimization: false,
                reuse_visit_list: true,
            },
        ),
        (
            "no_visit_reuse",
            CpmConfig {
                merge_optimization: true,
                reuse_visit_list: false,
            },
        ),
        (
            "neither",
            CpmConfig {
                merge_optimization: false,
                reuse_visit_list: false,
            },
        ),
    ];
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::new("config", name), &input, |b, input| {
            b.iter(|| {
                let mut m = CpmKnnMonitor::with_config(input.params.grid_dim, cfg);
                run_boxed(&mut m, input)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delta_tradeoff, bench_ablation);
criterion_main!(benches);
