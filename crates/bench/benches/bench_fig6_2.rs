//! Criterion version of Figure 6.2: scalability in the object population
//! N (a) and the query count n (b).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_sim::{run, AlgoKind, SimParams, SimulationInput, WorkloadKind};

fn base() -> SimParams {
    SimParams {
        n_objects: 2_000,
        n_queries: 50,
        k: 8,
        timestamps: 5,
        workload: WorkloadKind::Network { grid_streets: 16 },
        ..SimParams::default()
    }
}

fn bench_population(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_2a_population");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for n in [500usize, 2_000, 8_000] {
        let input = SimulationInput::generate(&SimParams {
            n_objects: n,
            ..base()
        });
        for algo in AlgoKind::CONTENDERS {
            group.bench_with_input(BenchmarkId::new(algo.label(), n), &input, |b, input| {
                b.iter(|| run(algo, input))
            });
        }
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_2b_queries");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for n in [20usize, 100, 400] {
        let input = SimulationInput::generate(&SimParams {
            n_queries: n,
            ..base()
        });
        for algo in AlgoKind::CONTENDERS {
            group.bench_with_input(BenchmarkId::new(algo.label(), n), &input, |b, input| {
                b.iter(|| run(algo, input))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_population, bench_queries);
criterion_main!(benches);
