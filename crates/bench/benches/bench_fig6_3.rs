//! Criterion version of Figure 6.3: cost as a function of k.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_sim::{run, AlgoKind, SimParams, SimulationInput, WorkloadKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_3_k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for k in [1usize, 16, 64] {
        let input = SimulationInput::generate(&SimParams {
            n_objects: 2_000,
            n_queries: 50,
            k,
            timestamps: 5,
            workload: WorkloadKind::Network { grid_streets: 16 },
            ..SimParams::default()
        });
        for algo in AlgoKind::CONTENDERS {
            group.bench_with_input(BenchmarkId::new(algo.label(), k), &input, |b, input| {
                b.iter(|| run(algo, input))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
