//! Criterion version of Figure 6.6: the NN computation module alone
//! (constantly moving queries; CPM vs YPK-CNN) and pure maintenance
//! (static queries; all three).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_sim::{run, AlgoKind, SimParams, SimulationInput, WorkloadKind};

fn base(n_objects: usize, f_qry: f64) -> SimParams {
    SimParams {
        n_objects,
        n_queries: 50,
        k: 8,
        timestamps: 5,
        f_qry,
        workload: WorkloadKind::Network { grid_streets: 16 },
        ..SimParams::default()
    }
}

fn bench_moving_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_6a_constantly_moving_queries");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for n in [1_000usize, 4_000] {
        let input = SimulationInput::generate(&base(n, 1.0));
        for algo in [AlgoKind::Cpm, AlgoKind::Ypk] {
            group.bench_with_input(BenchmarkId::new(algo.label(), n), &input, |b, input| {
                b.iter(|| run(algo, input))
            });
        }
    }
    group.finish();
}

fn bench_static_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_6b_static_queries");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for n in [1_000usize, 4_000] {
        let input = SimulationInput::generate(&base(n, 0.0));
        for algo in AlgoKind::CONTENDERS {
            group.bench_with_input(BenchmarkId::new(algo.label(), n), &input, |b, input| {
                b.iter(|| run(algo, input))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_moving_queries, bench_static_queries);
criterion_main!(benches);
