//! [`AnyQuerySpec`]: every query geometry of the suite behind one
//! [`QuerySpec`], so a single engine — and therefore a single grid and a
//! single per-cycle ingest — can host a heterogeneous continuous-query
//! population.
//!
//! The paper's framework never required one index per query *type*: the
//! book-keeping of Section 3 is per query, and Section 5 derives every
//! variant from the same machinery. `AnyQuerySpec` makes that explicit as
//! an enum whose [`QuerySpec`] implementation dispatches to the concrete
//! geometry, which is exactly what the [`crate::CpmServer`] facade and the
//! mixed-kind subscription hub run on. Dispatch only forwards — every
//! arithmetic path is the concrete spec's own — so results are
//! **bit-identical** to the dedicated single-kind engines (asserted by
//! `tests/unified_server.rs`).

use cpm_geom::{ObjectId, Point};
use cpm_grid::{CellCoord, Coords, GridGeom, QueryKind};

use crate::ann::AnnQuery;
use crate::constrained::ConstrainedQuery;
use crate::engine::{PointQuery, QuerySpec};
use crate::partition::{Direction, Pinwheel};
use crate::range::RangeQuery;
use crate::rnn::RnnQuery;

/// A query geometry of any supported kind; implements [`QuerySpec`] by
/// dispatching to the wrapped concrete spec.
#[derive(Debug, Clone)]
pub enum AnyQuerySpec {
    /// Plain point k-NN ([`PointQuery`], Section 3).
    Knn(PointQuery),
    /// Range membership ([`RangeQuery`]).
    Range(RangeQuery),
    /// Aggregate NN ([`AnnQuery`], Section 5).
    Ann(AnnQuery),
    /// Constrained NN ([`ConstrainedQuery`], Section 5).
    Constrained(ConstrainedQuery),
    /// One reverse-NN sector candidate ([`RnnQuery`]); server-level RNN
    /// registrations expand into six of these.
    Rnn(RnnQuery),
}

impl AnyQuerySpec {
    /// The concrete [`RangeQuery`], if this is a range spec.
    #[must_use]
    pub fn as_range(&self) -> Option<&RangeQuery> {
        match self {
            AnyQuerySpec::Range(q) => Some(q),
            _ => None,
        }
    }

    /// The concrete [`AnnQuery`], if this is an aggregate spec.
    #[must_use]
    pub fn as_ann(&self) -> Option<&AnnQuery> {
        match self {
            AnyQuerySpec::Ann(q) => Some(q),
            _ => None,
        }
    }

    /// The concrete [`ConstrainedQuery`], if this is a constrained spec.
    #[must_use]
    pub fn as_constrained(&self) -> Option<&ConstrainedQuery> {
        match self {
            AnyQuerySpec::Constrained(q) => Some(q),
            _ => None,
        }
    }

    /// The k-NN query point, if this is a point spec.
    #[must_use]
    pub fn as_knn(&self) -> Option<Point> {
        match self {
            AnyQuerySpec::Knn(q) => Some(q.0),
            _ => None,
        }
    }

    /// The reverse-NN sector candidate, if this is one.
    #[must_use]
    pub fn as_rnn(&self) -> Option<&RnnQuery> {
        match self {
            AnyQuerySpec::Rnn(q) => Some(q),
            _ => None,
        }
    }
}

impl From<PointQuery> for AnyQuerySpec {
    fn from(q: PointQuery) -> Self {
        AnyQuerySpec::Knn(q)
    }
}

impl From<RangeQuery> for AnyQuerySpec {
    fn from(q: RangeQuery) -> Self {
        AnyQuerySpec::Range(q)
    }
}

impl From<AnnQuery> for AnyQuerySpec {
    fn from(q: AnnQuery) -> Self {
        AnyQuerySpec::Ann(q)
    }
}

impl From<ConstrainedQuery> for AnyQuerySpec {
    fn from(q: ConstrainedQuery) -> Self {
        AnyQuerySpec::Constrained(q)
    }
}

impl From<RnnQuery> for AnyQuerySpec {
    fn from(q: RnnQuery) -> Self {
        AnyQuerySpec::Rnn(q)
    }
}

/// Lift a concrete-spec query event into the unified vocabulary (used by
/// the per-kind compat monitors to drive a [`crate::CpmServer`]).
pub fn wrap_event<S: Clone + Into<AnyQuerySpec>>(
    ev: &crate::SpecEvent<S>,
) -> crate::SpecEvent<AnyQuerySpec> {
    use crate::SpecEvent;
    match ev {
        SpecEvent::Install { id, spec, k } => SpecEvent::Install {
            id: *id,
            spec: spec.clone().into(),
            k: *k,
        },
        SpecEvent::Update { id, spec } => SpecEvent::Update {
            id: *id,
            spec: spec.clone().into(),
        },
        SpecEvent::Terminate { id } => SpecEvent::Terminate { id: *id },
    }
}

/// Forward one [`QuerySpec`] method to the wrapped concrete spec.
macro_rules! dispatch {
    ($self:expr, $q:ident => $body:expr) => {
        match $self {
            AnyQuerySpec::Knn($q) => $body,
            AnyQuerySpec::Range($q) => $body,
            AnyQuerySpec::Ann($q) => $body,
            AnyQuerySpec::Constrained($q) => $body,
            AnyQuerySpec::Rnn($q) => $body,
        }
    };
}

impl QuerySpec for AnyQuerySpec {
    #[inline]
    fn dist(&self, p: Point) -> f64 {
        dispatch!(self, q => q.dist(p))
    }

    // Forwarded explicitly (not left to the trait default) so the point
    // variant reaches `PointQuery`'s vectorized kernel override.
    #[inline]
    fn dist_batch(&self, coords: Coords<'_>, oids: &[ObjectId], out: &mut Vec<f64>) {
        dispatch!(self, q => q.dist_batch(coords, oids, out))
    }

    fn base_block(&self, geom: GridGeom) -> (CellCoord, CellCoord) {
        dispatch!(self, q => q.base_block(geom))
    }

    #[inline]
    fn cell_key(&self, geom: GridGeom, cell: CellCoord) -> f64 {
        dispatch!(self, q => q.cell_key(geom, cell))
    }

    #[inline]
    fn strip_key(&self, pw: &Pinwheel, dir: Direction, lvl: u32) -> f64 {
        dispatch!(self, q => q.strip_key(pw, dir, lvl))
    }

    #[inline]
    fn strip_increment(&self, delta: f64) -> f64 {
        dispatch!(self, q => q.strip_increment(delta))
    }

    #[inline]
    fn admits_cell(&self, geom: GridGeom, cell: CellCoord) -> bool {
        dispatch!(self, q => q.admits_cell(geom, cell))
    }

    #[inline]
    fn kind(&self) -> QueryKind {
        dispatch!(self, q => q.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_geom::Rect;

    /// Dispatch must agree with the wrapped spec on every trait method —
    /// this is what makes unified-engine results bit-identical to the
    /// dedicated engines.
    #[test]
    fn dispatch_forwards_every_method_exactly() {
        let grid = cpm_grid::GridBuilder::new(32).build_uniform();
        let geom = grid.geom();
        let range = RangeQuery::circle(Point::new(0.4, 0.6), 0.2);
        let any = AnyQuerySpec::from(range);
        let (lo, hi) = range.base_block(geom);
        assert_eq!(any.base_block(geom), (lo, hi));
        let pw = Pinwheel::around_block(lo, hi, grid.dim());
        for p in [Point::new(0.41, 0.61), Point::new(0.9, 0.9)] {
            assert!(any.dist(p).to_bits() == range.dist(p).to_bits());
        }
        let (xs, ys) = ([0.41, 0.9, 0.2], [0.61, 0.9, 0.7]);
        let coords = Coords::from_columns(&xs, &ys);
        let oids = [ObjectId(0), ObjectId(1), ObjectId(2)];
        let mut batched = Vec::new();
        any.dist_batch(coords, &oids, &mut batched);
        for (&oid, &d) in oids.iter().zip(&batched) {
            assert_eq!(d.to_bits(), range.dist(coords.point(oid)).to_bits());
        }
        for cell in [CellCoord::new(3, 3), CellCoord::new(20, 12)] {
            assert_eq!(
                any.cell_key(geom, cell).to_bits(),
                range.cell_key(geom, cell).to_bits()
            );
            assert_eq!(any.admits_cell(geom, cell), range.admits_cell(geom, cell));
        }
        for dir in Direction::ALL {
            assert_eq!(
                any.strip_key(&pw, dir, 1).to_bits(),
                range.strip_key(&pw, dir, 1).to_bits()
            );
        }
        assert_eq!(
            any.strip_increment(grid.delta()).to_bits(),
            range.strip_increment(grid.delta()).to_bits()
        );
        assert_eq!(any.kind(), QueryKind::Range);
    }

    #[test]
    fn kind_and_projections_match_the_variant() {
        let specs: Vec<(AnyQuerySpec, QueryKind)> = vec![
            (PointQuery(Point::new(0.1, 0.2)).into(), QueryKind::Knn),
            (
                RangeQuery::rect(Rect::new(Point::new(0.0, 0.0), Point::new(0.5, 0.5))).into(),
                QueryKind::Range,
            ),
            (
                AnnQuery::new(vec![Point::new(0.3, 0.3)], crate::AggregateFn::Sum).into(),
                QueryKind::Ann,
            ),
            (
                ConstrainedQuery::northeast_of(Point::new(0.5, 0.5)).into(),
                QueryKind::Constrained,
            ),
            (
                RnnQuery::new(Point::new(0.5, 0.5), 2).into(),
                QueryKind::Rnn,
            ),
        ];
        for (spec, kind) in &specs {
            assert_eq!(spec.kind(), *kind);
        }
        assert!(specs[0].0.as_knn().is_some() && specs[0].0.as_range().is_none());
        assert!(specs[1].0.as_range().is_some());
        assert!(specs[2].0.as_ann().is_some());
        assert!(specs[3].0.as_constrained().is_some());
        assert!(specs[4].0.as_rnn().is_some() && specs[4].0.as_knn().is_none());
    }
}
