//! Conceptual Partitioning Monitoring (CPM) — the primary contribution of
//! *"Conceptual Partitioning: An Efficient Method for Continuous Nearest
//! Neighbor Monitoring"* (Mouratidis, Hadjieleftheriou, Papadias; SIGMOD
//! 2005), implemented in full:
//!
//! * [`partition`] — the conceptual space partitioning into direction/level
//!   rectangles around a query (Section 3.1, Lemma 3.1), generalized to
//!   rectangular bases for aggregate queries (Section 5).
//! * [`knn`] — continuous k-NN monitoring: NN computation (Fig. 3.4),
//!   re-computation (Fig. 3.6), batched update handling with the
//!   incoming/outgoing optimization (Fig. 3.8), and the complete monitoring
//!   cycle (Fig. 3.9). Entry point: [`CpmKnnMonitor`].
//! * [`ann`] — continuous aggregate-NN monitoring for `sum`, `min` and
//!   `max` (Section 5). Entry point: [`CpmAnnMonitor`].
//! * [`constrained`] — constrained NN monitoring restricted to a
//!   rectangular region (Section 5). Entry point: [`CpmConstrainedMonitor`].
//! * [`range`] — continuous range monitoring (rectangle/circle
//!   membership), the subscription shape of location-aware pub/sub. Entry
//!   point: [`CpmRangeMonitor`].
//! * [`server`] — the **unified multi-query facade**: every kind above on
//!   one shared grid with a single per-cycle ingest, typed handles, and a
//!   [`CpmError`]-based registry surface. Entry point: [`CpmServer`] via
//!   [`CpmServerBuilder`]. The per-kind monitors are kept as thin
//!   compatibility shims over it.
//! * [`any`] — [`AnyQuerySpec`], the enum over every query geometry that
//!   lets the generic engines run heterogeneous query sets unchanged.
//! * [`error`] — the typed error surface ([`CpmError`]).
//! * [`shard`] — sharded parallel cycle processing: queries partitioned
//!   across worker threads over one shared grid, bit-identical to the
//!   sequential engine. Entry points: [`ShardedCpmEngine`],
//!   [`ShardedKnnMonitor`].
//! * [`delta`] — per-cycle result deltas ([`NeighborDelta`]), extracted
//!   inside the maintenance phase and merged deterministically across
//!   shards; the wire format of the [`cpm-sub`] subscription layer.
//! * [`analysis`] — the closed-form cost model of Section 4.1.
//! * [`snapshot`] — crash-consistent durability: logical snapshots, an
//!   append-only operation journal (over the [`cpm_wire`] codec), and the
//!   [`DurableCpmServer`] checkpoint/replay recovery wrapper.
//! * [`regrid`] — cost-model-driven **online re-gridding**: the engines
//!   re-evaluate their grid resolution against the observed workload at
//!   cycle boundaries ([`RegridPolicy`]), migrating the cell index and
//!   re-registering queries in one deterministic pass while results,
//!   changed lists and delta streams stay bit-identical to a from-scratch
//!   build at the new δ.
//!
//! [`cpm-sub`]: ../cpm_sub/index.html
//!
//! The substrate (grid index, influence lists, metrics) lives in
//! [`cpm_grid`]; geometry primitives in [`cpm_geom`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod ann;
pub mod any;
pub mod codec;
pub mod constrained;
pub mod delta;
pub mod engine;
pub mod error;
pub mod heap;
mod inlist;
pub mod knn;
pub mod neighbors;
pub mod partition;
pub mod range;
pub mod regrid;
pub mod rnn;
pub mod server;
pub mod shard;
pub mod snapshot;

pub use analysis::CostModel;
pub use ann::{AggregateFn, AnnQuery, CpmAnnMonitor};
pub use any::AnyQuerySpec;
pub use constrained::{ConstrainedQuery, CpmConstrainedMonitor};
pub use delta::{CycleDeltas, NeighborDelta};
pub use engine::{CpmEngine, PointQuery, QuerySpec, SpecEvent, SpecQueryState};
pub use error::CpmError;
pub use knn::{CpmConfig, CpmKnnMonitor, KnnQueryState};
pub use neighbors::{Neighbor, NeighborList};
pub use partition::{Direction, Pinwheel, Strip};
pub use range::{CpmRangeMonitor, RangeQuery, Region};
pub use regrid::{AutoRegridConfig, RegridController, RegridPolicy};
pub use rnn::{CpmRnnMonitor, RnnQuery};
pub use server::{
    AnnHandle, ConstrainedHandle, CpmServer, CpmServerBuilder, KnnHandle, QueryHandle, RangeHandle,
    RnnHandle,
};
pub use shard::{shard_of, ShardedCpmEngine, ShardedKnnMonitor};
pub use snapshot::{
    DurableCpmServer, EngineSnapshot, JournalRecord, RecoveryError, RecoveryReport, Snapshot,
};
