//! The closed-form cost model of Section 4.1.
//!
//! Under a uniformity assumption (objects and queries uniform in the unit
//! square), the paper derives estimates for the quantities that govern
//! CPM's space and time costs as functions of the cell side `δ`:
//!
//! * `best_dist ≈ √(k / (π·N))` — radius of the circle `Θ_q` expected to
//!   contain exactly `k` objects;
//! * `C_inf ≈ π·⌈best_dist/δ⌉²` — cells in the influence region;
//! * `O_inf = C_inf · N · δ²` — objects in those cells;
//! * `C_SH ≈ 4·⌈best_dist/δ⌉²` — cells held in the visit list + search
//!   heap.
//!
//! From these follow the space budget (`Space_CPM = 3N +
//! n·(15 + 2k + 3·C_SH + C_inf)` memory units) and the per-cycle time model
//! (`Time_CPM = 2·N·f_obj + n·f_qry·(C_SH·log C_SH + O_inf·log k + 2·C_inf)
//! + n·(1−f_qry)·k·log k` abstract operations).
//!
//! The `analysis` experiment (`experiments analysis`) and the
//! `bench_analysis` Criterion target compare these predictions against
//! measured values from live monitors — the Figure 4.1 discussion made
//! quantitative.

/// Parameters of the analytical model (Table 6.1 symbols).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Number of objects `N`.
    pub n_objects: usize,
    /// Number of queries `n`.
    pub n_queries: usize,
    /// Neighbors monitored per query `k`.
    pub k: usize,
    /// Cell side `δ` (grid is `1/δ × 1/δ`).
    pub delta: f64,
    /// Fraction of objects issuing an update per cycle (`f_obj ∈ [0,1]`).
    pub f_obj: f64,
    /// Fraction of queries issuing an update per cycle (`f_qry ∈ [0,1]`).
    pub f_qry: f64,
    /// Occupancy-concentration factor (`skew ≥ 1`): the ratio between the
    /// population of the cells a query actually visits and the uniform
    /// expectation `N·δ²`. `1` is the paper's uniformity assumption
    /// (Section 4.1); the re-grid controller raises it from observed
    /// [`cpm_grid::GridStats`] so a hotspot's true per-cell load — not
    /// just `N` — shapes the predicted cost.
    pub skew: f64,
}

impl CostModel {
    /// Expected `best_dist` for uniform data: the ratio of the area of
    /// `Θ_q` to the workspace equals `k/N`, so `best_dist = √(k/(π·N))`.
    pub fn best_dist(&self) -> f64 {
        (self.k as f64 / (std::f64::consts::PI * self.n_objects as f64)).sqrt()
    }

    /// Influence-circle radius in cells: `⌈best_dist/δ⌉`.
    pub fn radius_cells(&self) -> f64 {
        (self.best_dist() / self.delta).ceil()
    }

    /// `C_inf ≈ π·⌈best_dist/δ⌉²`: cells in the influence region.
    pub fn c_inf(&self) -> f64 {
        std::f64::consts::PI * self.radius_cells().powi(2)
    }

    /// `O_inf = C_inf·N·δ²·skew`: objects in the influence region (each
    /// cell holds `N·δ²` objects on average under uniformity; `skew`
    /// scales that for concentrated populations). Approaches `k` as
    /// `δ → 0`.
    pub fn o_inf(&self) -> f64 {
        self.c_inf() * self.n_objects as f64 * self.delta * self.delta * self.skew
    }

    /// `C_SH ≈ 4·⌈best_dist/δ⌉²`: cells kept in the visit list and search
    /// heap combined (the circumscribed square of `Θ_q`).
    pub fn c_sh(&self) -> f64 {
        4.0 * self.radius_cells().powi(2)
    }

    /// Grid-side space: `Space_G = 3·N + n·C_inf` memory units.
    pub fn space_grid(&self) -> f64 {
        3.0 * self.n_objects as f64 + self.n_queries as f64 * self.c_inf()
    }

    /// Query-table space: `Space_QT = n·(15 + 2k + 3·C_SH)` memory units
    /// (per entry: 3 for id + coordinates, `2k` for the result,
    /// `3·(C_SH + 4)` for visit list + heap incl. four boundary boxes).
    pub fn space_query_table(&self) -> f64 {
        self.n_queries as f64 * (15.0 + 2.0 * self.k as f64 + 3.0 * self.c_sh())
    }

    /// Total space `Space_CPM = Space_G + Space_QT`.
    pub fn space_total(&self) -> f64 {
        self.space_grid() + self.space_query_table()
    }

    /// `Time_mq = C_SH·log C_SH + O_inf·log k + 2·C_inf`: abstract cost of
    /// one NN computation (moving or new query).
    pub fn time_moving_query(&self) -> f64 {
        let c_sh = self.c_sh().max(2.0);
        let logk = (self.k as f64).max(2.0).log2();
        c_sh * c_sh.log2() + self.o_inf() * logk + 2.0 * self.c_inf()
    }

    /// `Time_sq = k·log k`: worst-case result maintenance for a static
    /// query under uniform drift (as many incomers as outgoers).
    pub fn time_static_query(&self) -> f64 {
        let k = self.k as f64;
        k * k.max(2.0).log2()
    }

    /// Per-cycle total:
    /// `Time_CPM = 2·N·f_obj + n·f_qry·Time_mq + n·(1−f_qry)·Time_sq`.
    pub fn time_cycle(&self) -> f64 {
        2.0 * self.n_objects as f64 * self.f_obj
            + self.n_queries as f64 * self.f_qry * self.time_moving_query()
            + self.n_queries as f64 * (1.0 - self.f_qry) * self.time_static_query()
    }

    /// The power-of-two grid resolution in `[min_dim, max_dim]` minimizing
    /// the predicted per-cycle cost [`CostModel::time_cycle`] for this
    /// model's workload (its own `delta` is ignored). Ties break toward
    /// the coarser grid, which is also the cheaper one in space.
    ///
    /// This is the Figure 4.1 discussion made operational: it is what the
    /// adaptive re-grid policy ([`crate::RegridPolicy::Auto`]) evaluates
    /// at cycle boundaries.
    ///
    /// # Panics
    /// Panics unless `1 ≤ min_dim ≤ max_dim ≤ 4096`.
    pub fn optimal_dim(&self, min_dim: u32, max_dim: u32) -> u32 {
        assert!(
            min_dim >= 1 && min_dim <= max_dim && max_dim <= 4096,
            "dim range out of bounds: [{min_dim}, {max_dim}]"
        );
        let mut best = (min_dim, f64::INFINITY);
        let mut dim = min_dim;
        loop {
            let candidate = CostModel {
                delta: 1.0 / dim as f64,
                ..*self
            };
            let cost = candidate.time_cycle();
            if cost < best.1 {
                best = (dim, cost);
            }
            match dim.checked_mul(2) {
                Some(next) if next <= max_dim => dim = next,
                _ => break,
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(delta: f64) -> CostModel {
        CostModel {
            n_objects: 100_000,
            n_queries: 5_000,
            k: 16,
            delta,
            f_obj: 0.5,
            f_qry: 0.3,
            skew: 1.0,
        }
    }

    #[test]
    fn best_dist_contains_k_objects_in_expectation() {
        let m = model(1.0 / 128.0);
        let bd = m.best_dist();
        // Area of the circle × N == k.
        let expected = std::f64::consts::PI * bd * bd * m.n_objects as f64;
        assert!((expected - m.k as f64).abs() < 1e-9);
    }

    #[test]
    fn figure_4_1_shape_small_delta_many_cells_few_objects() {
        // Figure 4.1: small δ → many influence cells, O_inf → k;
        // large δ → few cells, many objects.
        let fine = model(1.0 / 1024.0);
        let coarse = model(1.0 / 32.0);
        assert!(fine.c_inf() > coarse.c_inf());
        assert!(fine.o_inf() < coarse.o_inf());
        // O_inf approaches k from above as δ shrinks.
        assert!(fine.o_inf() >= fine.k as f64);
        assert!(fine.o_inf() < 2.0 * fine.k as f64);
    }

    #[test]
    fn space_is_inverse_quadratic_in_delta() {
        // Halving δ should roughly quadruple the per-query cell costs.
        let a = model(1.0 / 256.0);
        let b = model(1.0 / 512.0);
        let ratio = (b.c_inf() / a.c_inf()).sqrt();
        assert!((ratio - 2.0).abs() < 0.35, "ratio {ratio}");
        assert!(b.space_total() > a.space_total());
    }

    #[test]
    fn time_cycle_splits_match_components() {
        let m = model(1.0 / 128.0);
        let manual = 2.0 * 100_000.0 * 0.5
            + 5_000.0 * 0.3 * m.time_moving_query()
            + 5_000.0 * 0.7 * m.time_static_query();
        assert!((m.time_cycle() - manual).abs() < 1e-6);
    }

    #[test]
    fn optimal_dim_refines_as_the_population_grows() {
        let small = CostModel {
            n_objects: 2_000,
            ..model(1.0)
        };
        let large = CostModel {
            n_objects: 200_000,
            ..model(1.0)
        };
        let d_small = small.optimal_dim(16, 1024);
        let d_large = large.optimal_dim(16, 1024);
        assert!(
            d_large > d_small,
            "optimum must refine: {d_small} vs {d_large}"
        );
        // The optimum is genuinely the argmin over the sweep.
        for dim in [16u32, 32, 64, 128, 256, 512, 1024] {
            let candidate = CostModel {
                delta: 1.0 / dim as f64,
                ..large
            };
            let opt = CostModel {
                delta: 1.0 / d_large as f64,
                ..large
            };
            assert!(
                opt.time_cycle() <= candidate.time_cycle(),
                "beaten by {dim}"
            );
        }
        // A degenerate one-point range returns its only member.
        assert_eq!(large.optimal_dim(64, 64), 64);
    }

    #[test]
    fn skew_inflates_o_inf_and_refines_the_optimum() {
        // N and k are chosen so ⌈best_dist/δ⌉ crosses 1 → 2 → 3 over
        // dims 32 → 64 → 128: the non-doubling step at 128 means a finer
        // grid genuinely sheds influence objects (at a C_SH price), so
        // the argmin is skew-sensitive rather than plateaued.
        let uniform = CostModel {
            n_objects: 8_192,
            n_queries: 512,
            k: 8,
            delta: 1.0 / 64.0,
            f_obj: 0.5,
            f_qry: 0.3,
            skew: 1.0,
        };
        let skewed = CostModel {
            skew: 32.0,
            ..uniform
        };
        assert!((skewed.o_inf() - 32.0 * uniform.o_inf()).abs() < 1e-9);
        assert!(skewed.time_cycle() > uniform.time_cycle());
        // A concentrated population makes coarse cells more expensive to
        // scan, so the argmin moves toward a finer grid.
        let d_u = uniform.optimal_dim(16, 1024);
        let d_s = skewed.optimal_dim(16, 1024);
        assert!(d_s > d_u, "skew must refine: {d_u} vs {d_s}");
    }

    #[test]
    fn cost_grows_with_agility_and_population() {
        let base = model(1.0 / 128.0);
        let mut busier = base;
        busier.f_obj = 0.9;
        assert!(busier.time_cycle() > base.time_cycle());
        let mut bigger = base;
        bigger.n_objects = 200_000;
        assert!(bigger.time_cycle() > base.time_cycle());
    }
}
