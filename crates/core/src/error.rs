//! The typed error surface of the CPM engines and the [`crate::CpmServer`]
//! facade.
//!
//! Query registration is the one part of the system where caller mistakes
//! are *expected* in production — duplicate ids from retried requests,
//! terminations racing cancellations, k = 0 from defaulted config — so
//! those paths return [`CpmError`] instead of panicking. Programming
//! errors (processing a delta cycle without enabling capture, populating
//! after installs) remain panics: they are bugs in the embedding code, not
//! runtime conditions to handle.

use cpm_geom::{ObjectId, QueryId};
use cpm_grid::{GridConfigError, IndexKind, QueryKind};

/// Why a query-registry operation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpmError {
    /// `install` of an id that is already registered.
    DuplicateQuery(QueryId),
    /// `terminate`/`update_spec` of an id that is not registered.
    UnknownQuery(QueryId),
    /// A typed operation addressed a query of a different kind (e.g. a
    /// range update submitted for an installed k-NN query).
    KindMismatch {
        /// The addressed query.
        id: QueryId,
        /// The kind the operation expected.
        expected: QueryKind,
        /// The kind the query is actually registered as.
        actual: QueryKind,
    },
    /// `install` with `k == 0` (a continuous query must report at least
    /// one neighbor).
    InvalidK(QueryId),
    /// The id lies in the band the server reserves for internal queries
    /// (reverse-NN sector candidates), or outside the representable
    /// reverse-NN id range.
    ReservedId(QueryId),
    /// The operation addressed a composite reverse-NN registration
    /// through the single-spec surface (batched query events,
    /// `update_spec`): RNN registrations are managed through the
    /// dedicated calls (`install_rnn` / `update_rnn` / `terminate`).
    CompositeQuery(QueryId),
    /// An object event carried a NaN or infinite coordinate. The engines
    /// clamp out-of-range *finite* coordinates, but a non-finite position
    /// is always a corrupted producer; the server rejects the whole batch
    /// before any state changes.
    NonFiniteCoordinate(ObjectId),
    /// An object event placed an object outside the unit workspace. The
    /// legacy single-kind monitors clamp such positions to the boundary;
    /// the server surface treats them as hostile input and rejects the
    /// batch before any state changes.
    OutOfWorkspace(ObjectId),
    /// One batch contained two object events for the same id. Per-cycle
    /// semantics admit at most one event per object (the paper's update
    /// tuple replaces the object's position once per timestamp), so a
    /// duplicate means the producer double-sent; the batch is rejected
    /// before any state changes.
    DuplicateObject(ObjectId),
    /// A `regrid_to` named a resolution the active index backend rejects
    /// (out of `1..=4096`, or not a power of two under a quadtree index).
    /// Wraps the grid layer's [`GridConfigError`].
    InvalidDim(GridConfigError),
    /// A snapshot was restored under a different [`IndexKind`] than it was
    /// captured with. Recovery must rebuild the same structure the durable
    /// state describes; re-capture under the new kind instead.
    IndexMismatch {
        /// The kind recorded in the snapshot.
        expected: IndexKind,
        /// The kind the restoring server/engine is configured with.
        actual: IndexKind,
    },
}

impl From<GridConfigError> for CpmError {
    fn from(e: GridConfigError) -> Self {
        CpmError::InvalidDim(e)
    }
}

impl std::fmt::Display for CpmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CpmError::DuplicateQuery(id) => write!(f, "query {id} is already installed"),
            CpmError::UnknownQuery(id) => write!(f, "query {id} is not installed"),
            CpmError::KindMismatch {
                id,
                expected,
                actual,
            } => write!(
                f,
                "query {id} is a {actual} query, but the operation expected {expected}"
            ),
            CpmError::InvalidK(id) => write!(f, "query {id}: k must be at least 1"),
            CpmError::ReservedId(id) => write!(
                f,
                "query id {id} lies in (or would map into) the server's reserved internal band"
            ),
            CpmError::CompositeQuery(id) => write!(
                f,
                "query {id} is a composite reverse-NN registration: use install_rnn / \
                 update_rnn / terminate instead of the single-spec surface"
            ),
            CpmError::NonFiniteCoordinate(id) => {
                write!(f, "object {id}: event carries a NaN or infinite coordinate")
            }
            CpmError::OutOfWorkspace(id) => write!(
                f,
                "object {id}: event places the object outside the unit workspace"
            ),
            CpmError::DuplicateObject(id) => {
                write!(f, "object {id} appears more than once in the event batch")
            }
            CpmError::InvalidDim(e) => write!(f, "{e}"),
            CpmError::IndexMismatch { expected, actual } => write!(
                f,
                "snapshot was captured under the {expected} index but is being restored \
                 under {actual}"
            ),
        }
    }
}

impl std::error::Error for CpmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_query_and_the_kinds() {
        let e = CpmError::KindMismatch {
            id: QueryId(7),
            expected: QueryKind::Range,
            actual: QueryKind::Knn,
        };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains("range") && msg.contains("knn"));
        assert!(CpmError::DuplicateQuery(QueryId(1))
            .to_string()
            .contains("already installed"));
    }
}
