//! Sharded parallel cycle processing: the CPM engine partitioned over
//! worker threads.
//!
//! The per-cycle work of Section 4.1 is embarrassingly partitionable: a
//! query's re-evaluation touches only its influence region and its own
//! book-keeping, and the batched in/out update handling of Figure 3.8 is
//! independent across queries. [`ShardedCpmEngine`] exploits this by
//! hashing installed queries into `S` disjoint shards — each shard owns its
//! queries' [`SpecQueryState`]s *and* its own influence table — and running
//! each processing cycle in two phases:
//!
//! 1. **Sequential grid ingest.** The object-update batch is applied to the
//!    shared grid once, producing read-only [`UpdateRecord`]s
//!    ([`cpm_grid::apply_events`]). This is the only step that mutates the
//!    grid and it is cheap (`Time_ind = 2` per update).
//! 2. **Parallel per-shard maintenance.** Every shard, on its own
//!    `std::thread::scope` worker, derives its slice of the batch by
//!    probing its influence table at each record's old/new cell (records
//!    that touch no influenced cell are skipped for free), runs the
//!    departure/arrival and merge-or-recompute machinery against the now
//!    immutable grid, and applies its share of the query events.
//!
//! Results are merged deterministically: the changed-query lists are
//! concatenated in shard order and canonicalized by query id, and the
//! per-shard [`Metrics`] are summed with [`Metrics::merge`] (u64 addition —
//! associative and commutative, so totals are independent of scheduling).
//! Because each query's processing depends only on its own state, the
//! record batch in order, and the post-ingest grid, the per-query results
//! are **bit-identical** to the sequential engine's for every shard count —
//! a property the determinism suite (`tests/sharded_determinism.rs`) and
//! [`cpm_sim`'s oracle cross-check] assert on random workloads.
//!
//! [`cpm_sim`'s oracle cross-check]: ../../cpm_sim/runner/fn.verify_sharded_determinism.html

use cpm_geom::{ObjectId, Point, QueryId};
use cpm_grid::{
    apply_events, CellIndex, Grid, Metrics, ObjectEvent, QueryEvent, SpatialIndex, UpdateRecord,
};

use crate::delta::{CycleDeltas, NeighborDelta};
use crate::engine::{EngineCore, PointQuery, QuerySpec, SpecEvent, SpecQueryState};
use crate::error::CpmError;
use crate::neighbors::Neighbor;
use crate::regrid::{RegridController, RegridPolicy};

/// Deterministic shard assignment: an FxHash-style finalizer over the query
/// id, reduced modulo `shards`.
///
/// Purely a function of `(id, shards)` — never of installation order or
/// thread scheduling — so replaying a stream with the same shard count
/// always reproduces the same partition. The multiply spreads consecutive
/// ids (the common allocation pattern) across shards evenly.
#[inline]
pub fn shard_of(id: QueryId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let h = (id.0 as u64 ^ 0x517_cc1b).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % shards
}

/// One shard's share of a processing cycle: batched update handling over
/// the shared (now immutable) grid, then this shard's query events.
/// The returned delta list is empty unless the core collects deltas.
fn run_shard<S: QuerySpec, I: SpatialIndex>(
    core: &mut EngineCore<S>,
    grid: &Grid<I>,
    records: &[UpdateRecord],
    events: &[SpecEvent<S>],
) -> (Vec<QueryId>, Vec<(QueryId, NeighborDelta)>) {
    let mut changed = Vec::new();
    core.begin_cycle(events.iter().map(|ev| ev.id()));
    core.apply_records(grid, records, &mut changed);
    core.apply_query_events(grid, events, &mut changed);
    core.finish_regrid(&mut changed);
    (changed, core.take_deltas())
}

/// A conceptual-partitioning monitor whose per-cycle query maintenance runs
/// across `S` worker threads (see the [module docs](self) for the phase
/// structure).
///
/// Public surface mirrors [`crate::CpmEngine`]; the only observable
/// differences are that [`ShardedCpmEngine::process_cycle`] reports changed
/// queries in canonical (ascending id) order and that work counters are
/// read through merged snapshots ([`ShardedCpmEngine::metrics`]).
/// The second type parameter selects the [`SpatialIndex`] backend
/// (default: the paper-exact [`CellIndex`]); see [`crate::CpmEngine`] for
/// the backend-independence contract. Runtime-selected backends go through
/// [`ShardedCpmEngine::with_grid`] and a [`cpm_grid::DynIndex`] grid.
#[derive(Debug)]
pub struct ShardedCpmEngine<S: QuerySpec, I: SpatialIndex = CellIndex> {
    grid: Grid<I>,
    shards: Vec<EngineCore<S>>,
    /// Counters owned by the ingest phase (currently `updates_applied`),
    /// kept separate so the shared grid's work is counted exactly once no
    /// matter how many shards consume the batch.
    ingest_metrics: Metrics,
    records: Vec<UpdateRecord>,
    /// Scratch: per-shard query-event routing buffers, reused across
    /// cycles (one per shard; only used when `shards > 1`).
    event_bufs: Vec<Vec<SpecEvent<S>>>,
    /// Re-grid policy state. Every decision input is a function of the
    /// stream and the (shard-count-invariant) global engine state, so the
    /// controller decides identically at every shard count.
    regrid: RegridController,
}

impl<S: QuerySpec + Send + Sync> ShardedCpmEngine<S> {
    /// Create an engine over an empty `dim × dim` grid (default uniform
    /// backend) with `shards ≥ 1` query shards. `shards = 1` is the
    /// sequential engine (no worker threads are spawned).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(dim: u32, shards: usize) -> Self {
        Self::with_grid(cpm_grid::GridBuilder::new(dim).build_uniform(), shards)
    }
}

impl<S: QuerySpec + Send + Sync, I: SpatialIndex> ShardedCpmEngine<S, I> {
    /// Create an engine over a pre-built (typically empty) grid, keeping
    /// whatever index backend it was configured with, with `shards ≥ 1`
    /// query shards.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_grid(grid: Grid<I>, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard is required");
        let dim = grid.dim();
        Self {
            grid,
            shards: (0..shards).map(|_| EngineCore::new(dim)).collect(),
            ingest_metrics: Metrics::default(),
            records: Vec::new(),
            event_bufs: (0..shards).map(|_| Vec::new()).collect(),
            regrid: RegridController::new(RegridPolicy::Manual),
        }
    }

    /// Replace the re-grid policy (default: [`RegridPolicy::Manual`]).
    /// With [`RegridPolicy::Auto`], the cost model is evaluated at cycle
    /// boundaries against the observed workload; an applied re-grid
    /// migrates the shared grid once and re-registers every shard's
    /// queries before the cycle's ingest runs.
    pub fn set_regrid_policy(&mut self, policy: RegridPolicy) {
        self.regrid.set_policy(policy);
    }

    /// The active re-grid policy.
    #[must_use]
    pub fn regrid_policy(&self) -> &RegridPolicy {
        self.regrid.policy()
    }

    /// Re-grid to a new resolution *now*: rebuild the shared cell index
    /// from the (untouched) object store, then re-register every shard's
    /// queries against the new δ — in parallel across shards, each in
    /// ascending query-id order, so the resulting state is bit-identical
    /// to an engine built at `new_dim` from scratch, at every shard
    /// count. Returns the number of objects migrated (0 if `new_dim` is
    /// the current dimension).
    ///
    /// # Errors
    /// [`CpmError::InvalidDim`] if the active backend rejects `new_dim`
    /// (out of `1..=4096`, or not a power of two for a quadtree index).
    pub fn regrid_to(&mut self, new_dim: u32) -> Result<usize, CpmError> {
        if new_dim == self.grid.dim() {
            return Ok(0);
        }
        self.grid
            .index()
            .kind()
            .check_dim(new_dim)
            .map_err(CpmError::from)?;
        let migrated = self.grid.regrid(new_dim);
        // Grid-side work is owned by the ingest phase: one re-grid, one
        // migration count, no matter how many shards re-register.
        self.ingest_metrics.regrids += 1;
        self.ingest_metrics.regrid_objects_migrated += migrated as u64;
        let grid = &self.grid;
        if self.shards.len() == 1 {
            self.shards[0].rebind_grid(grid);
        } else {
            std::thread::scope(|scope| {
                for core in self.shards.iter_mut() {
                    scope.spawn(move || core.rebind_grid(grid));
                }
            });
        }
        Ok(migrated)
    }

    /// Evaluate the automatic policy at the cycle boundary (phase 0 of a
    /// processing cycle). Free under the default [`RegridPolicy::Manual`]
    /// — the observation and the O(queries) `k` sweep only run when a
    /// policy could act on them.
    fn maybe_auto_regrid(&mut self, object_events: usize, query_events: usize) {
        if !self.regrid.policy().is_auto() {
            return;
        }
        let n_objects = self.grid.len();
        let (mut n_queries, mut sum_k) = (0usize, 0usize);
        for core in &self.shards {
            let (n, k) = core.k_stats();
            n_queries += n;
            sum_k += k;
        }
        self.regrid
            .observe_cycle(object_events, query_events, n_objects, n_queries);
        self.regrid.observe_occupancy(self.grid.stats());
        let avg_k = sum_k / n_queries.max(1);
        if let Some(dim) =
            self.regrid
                .decide(self.epoch(), n_objects, n_queries, avg_k, self.grid.dim())
        {
            // Backend-rejected dims (non-pow2 on a quadtree) are skipped;
            // the policy re-evaluates next period.
            let _ = self.regrid_to(dim);
        }
    }

    /// Number of query shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns query `id`.
    #[must_use]
    pub fn owning_shard(&self, id: QueryId) -> usize {
        shard_of(id, self.shards.len())
    }

    /// The shared object index.
    #[must_use]
    pub fn grid(&self) -> &Grid<I> {
        &self.grid
    }

    /// Bulk-load objects before any query is installed.
    ///
    /// # Panics
    /// Panics if queries are already installed.
    pub fn populate<It: IntoIterator<Item = (ObjectId, Point)>>(&mut self, objects: It) {
        assert!(
            self.query_count() == 0,
            "populate() is only valid before queries are installed"
        );
        for (oid, pos) in objects {
            self.grid.insert(oid, pos);
        }
    }

    /// Number of installed queries across all shards.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.shards.iter().map(|s| s.query_count()).sum()
    }

    /// The current result of query `id`.
    #[must_use]
    pub fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.query_state(id).map(|st| st.result())
    }

    /// Full book-keeping state of query `id`.
    #[must_use]
    pub fn query_state(&self, id: QueryId) -> Option<&SpecQueryState<S>> {
        self.shards[self.owning_shard(id)].query_state(id)
    }

    /// Ids of every installed query, ascending — the deterministic
    /// iteration order snapshots and hub restores rely on.
    #[must_use]
    pub fn query_ids(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self.shards.iter().flat_map(|s| s.query_ids()).collect();
        ids.sort_unstable();
        ids
    }

    /// `true` once [`ShardedCpmEngine::enable_deltas`] was called.
    #[must_use]
    pub fn collects_deltas(&self) -> bool {
        self.shards[0].collects_deltas()
    }

    /// Install a query from a snapshot on its owning shard, reconciling
    /// the captured result against the recomputed one (see
    /// [`EngineCore::restore_query`]).
    pub(crate) fn restore_install(
        &mut self,
        id: QueryId,
        spec: S,
        k: usize,
        captured: &[Neighbor],
    ) -> Result<(), CpmError> {
        let shard = shard_of(id, self.shards.len());
        self.shards[shard].restore_query(&self.grid, id, spec, k, captured)
    }

    /// Overwrite every core's cycle counter during snapshot restore (all
    /// cores advance in lock-step, so one snapshot epoch covers them all).
    pub(crate) fn set_epoch_all(&mut self, epoch: u64) {
        for core in &mut self.shards {
            core.set_epoch(epoch);
        }
    }

    /// Overwrite the work counters with a snapshot's merged totals:
    /// rebuilding the queries polluted the per-shard counters with
    /// from-scratch computation work the crashed engine never reported,
    /// so restore zeroes the shards and parks the captured totals on the
    /// ingest side (merged reads are indistinguishable from the original
    /// split).
    pub(crate) fn restore_metrics(&mut self, merged: Metrics) {
        for core in &mut self.shards {
            core.take_metrics();
        }
        self.ingest_metrics = merged;
    }

    /// The re-grid controller, for snapshot capture/restore of its
    /// decision state.
    pub(crate) fn regrid_controller(&self) -> &RegridController {
        &self.regrid
    }

    /// Mutable access to the re-grid controller (snapshot restore).
    pub(crate) fn regrid_controller_mut(&mut self) -> &mut RegridController {
        &mut self.regrid
    }

    /// Install a new query on its owning shard and compute its initial
    /// result.
    ///
    /// # Errors
    /// [`CpmError::DuplicateQuery`] if `id` is already installed,
    /// [`CpmError::InvalidK`] if `k == 0`.
    pub fn install(&mut self, id: QueryId, spec: S, k: usize) -> Result<&[Neighbor], CpmError> {
        let shard = shard_of(id, self.shards.len());
        self.shards[shard].install(&self.grid, id, spec, k)
    }

    /// Terminate query `id`.
    ///
    /// # Errors
    /// [`CpmError::UnknownQuery`] if `id` is not installed.
    pub fn terminate(&mut self, id: QueryId) -> Result<(), CpmError> {
        let shard = shard_of(id, self.shards.len());
        self.shards[shard].terminate(id)
    }

    /// Replace the geometry of query `id` on its owning shard (terminate +
    /// reinstall, as in Section 3.3).
    ///
    /// With delta capture enabled, prefer submitting a
    /// [`SpecEvent::Update`] to `process_cycle_with_deltas` instead: this
    /// direct call changes the result *between* cycles, outside the delta
    /// stream (as do [`ShardedCpmEngine::install`] and
    /// [`ShardedCpmEngine::terminate`] — legitimate for pre-stream setup,
    /// lossy mid-stream).
    ///
    /// # Errors
    /// [`CpmError::UnknownQuery`] if `id` is not installed.
    pub fn update_spec(&mut self, id: QueryId, spec: S) -> Result<&[Neighbor], CpmError> {
        let shard = shard_of(id, self.shards.len());
        let grid = &self.grid;
        self.shards[shard].update_spec(grid, id, spec)
    }

    /// Merged snapshot of the work counters accumulated since the last
    /// [`ShardedCpmEngine::take_metrics`]: the sum of every shard's
    /// counters plus the ingest phase's.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut total = self.ingest_metrics;
        for shard in &self.shards {
            total.merge(shard.metrics());
        }
        total
    }

    /// Take and reset the work counters of the ingest phase and of every
    /// shard, returning the merged totals.
    pub fn take_metrics(&mut self) -> Metrics {
        let mut total = self.ingest_metrics.take();
        for shard in &mut self.shards {
            total.merge(&shard.take_metrics());
        }
        total
    }

    /// Run one processing cycle: sequential grid ingest, then parallel
    /// per-shard maintenance and query events, then a deterministic merge.
    /// Returns ids of queries whose result changed, ascending by id.
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<S>],
    ) -> Vec<QueryId> {
        assert!(
            !self.shards.iter().any(|c| c.collects_deltas()),
            "this engine collects deltas: use process_cycle_with_deltas, or the delta \
             stream silently loses this cycle's changes"
        );
        // Without delta capture the per-core delta buffers stay empty, so
        // the drain into this throwaway vector never allocates.
        let mut discard = Vec::new();
        let mut changed = Vec::new();
        self.run_cycle(object_events, query_events, &mut changed, &mut discard);
        changed
    }

    /// Turn per-cycle delta capture on, on every shard (see
    /// [`ShardedCpmEngine::process_cycle_with_deltas`]).
    pub fn enable_deltas(&mut self) {
        for core in &mut self.shards {
            core.set_collect_deltas(true);
        }
    }

    /// The processing-cycle counter: 0 before any cycle, incremented by
    /// every `process_cycle` call. Every shard advances it identically, so
    /// delta epochs are shard-count-invariant.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.shards[0].epoch()
    }

    /// Run one processing cycle and return the per-query result deltas
    /// alongside the changed-query list. Per-shard delta lists are
    /// concatenated in shard order and canonicalized by query id, so the
    /// batch is **bit-identical** to the sequential engine's for every
    /// shard count (asserted by the delta-replay suite).
    ///
    /// # Panics
    /// Panics if delta capture was not enabled with
    /// [`ShardedCpmEngine::enable_deltas`].
    pub fn process_cycle_with_deltas(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<S>],
    ) -> CycleDeltas {
        let mut out = CycleDeltas::default();
        self.process_cycle_with_deltas_into(object_events, query_events, &mut out);
        out
    }

    /// [`ShardedCpmEngine::process_cycle_with_deltas`], but refilling a
    /// caller-owned batch: `out`'s buffers are cleared and reused, so a
    /// steady-state caller that recycles the same [`CycleDeltas`] (the
    /// subscription hub, the delta benchmark) pays no per-cycle batch
    /// allocation.
    ///
    /// # Panics
    /// Panics if delta capture was not enabled with
    /// [`ShardedCpmEngine::enable_deltas`].
    pub fn process_cycle_with_deltas_into(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<S>],
        out: &mut CycleDeltas,
    ) {
        assert!(
            self.shards.iter().all(|c| c.collects_deltas()),
            "enable_deltas() must be called before processing cycles with deltas"
        );
        out.deltas.clear();
        out.changed.clear();
        self.run_cycle(
            object_events,
            query_events,
            &mut out.changed,
            &mut out.deltas,
        );
        out.canonicalize(self.epoch());
    }

    /// The shared cycle body behind [`ShardedCpmEngine::process_cycle`]
    /// and [`ShardedCpmEngine::process_cycle_with_deltas`]. Changed ids
    /// are appended to `changed` (left sorted); captured deltas are
    /// appended to `deltas_out` in shard order (nothing is appended
    /// unless capture is on). Both buffers are the caller's, so recycling
    /// callers allocate nothing per cycle.
    fn run_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<S>],
        changed: &mut Vec<QueryId>,
        deltas_out: &mut Vec<(QueryId, NeighborDelta)>,
    ) {
        let n = self.shards.len();

        // Phase 0: adaptive re-grid at the cycle boundary.
        self.maybe_auto_regrid(object_events.len(), query_events.len());

        // Phase 1: sequential grid ingest (the only grid mutation).
        self.records.clear();
        self.ingest_metrics.updates_applied +=
            apply_events(&mut self.grid, object_events, &mut self.records);

        let grid = &self.grid;
        let records = self.records.as_slice();

        if n == 1 {
            // Sequential path: no routing, no worker threads; deltas move
            // straight from the core's buffer into the caller's.
            let core = &mut self.shards[0];
            core.begin_cycle(query_events.iter().map(|ev| ev.id()));
            core.apply_records(grid, records, changed);
            core.apply_query_events(grid, query_events, changed);
            core.finish_regrid(changed);
            core.drain_deltas_into(deltas_out);
        } else {
            // Route each query event to the shard that owns its query
            // (scratch buffers persist across cycles to avoid steady-state
            // allocation).
            for buf in &mut self.event_bufs {
                buf.clear();
            }
            for ev in query_events {
                self.event_bufs[shard_of(ev.id(), n)].push(ev.clone());
            }
            let event_bufs = &self.event_bufs;

            // Phase 2: per-shard maintenance over the immutable grid.
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(event_bufs)
                    .map(|(core, events)| {
                        scope.spawn(move || run_shard(core, grid, records, events))
                    })
                    .collect();
                // Join in shard order: the merge is deterministic regardless
                // of which worker finishes first.
                for h in handles {
                    let (c, d) = h.join().expect("shard worker panicked");
                    changed.extend(c);
                    deltas_out.extend(d);
                }
            })
        }

        // Canonical order. Shards own disjoint query sets and a query with a
        // pending query event is ignored during update handling, so the
        // concatenation is duplicate-free and the sort is a total order.
        changed.sort_unstable();
    }

    /// Total memory footprint in the paper's memory units (Section 4.1):
    /// grid data plus, per shard, influence entries and query-table state.
    #[must_use]
    pub fn space_units(&self) -> usize {
        self.grid.space_units()
            + self
                .shards
                .iter()
                .map(|s| s.query_space_units())
                .sum::<usize>()
    }

    /// Verify all cross-structure invariants, including that every query
    /// lives on the shard its id hashes to (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.grid.check_integrity();
        for (i, shard) in self.shards.iter().enumerate() {
            shard.check_invariants(&self.grid);
            for qid in shard.query_ids() {
                assert_eq!(
                    shard_of(qid, self.shards.len()),
                    i,
                    "query {qid} stored on the wrong shard"
                );
            }
        }
    }
}

/// The sharded engine specialized to plain point k-NN queries — the
/// paper's core workload behind the same event vocabulary as
/// [`crate::CpmKnnMonitor`] ([`ObjectEvent`] + [`QueryEvent`]).
///
/// # Example
///
/// ```
/// use cpm_core::ShardedKnnMonitor;
/// use cpm_geom::{ObjectId, Point, QueryId};
/// use cpm_grid::ObjectEvent;
///
/// let mut monitor = ShardedKnnMonitor::new(64, 4);
/// monitor.populate((0..100).map(|i| {
///     (ObjectId(i), Point::new((i as f64 + 0.5) / 100.0, 0.5))
/// }));
/// monitor.install_query(QueryId(0), Point::new(0.1042, 0.5), 2);
/// let changed = monitor.process_cycle(
///     &[ObjectEvent::Move { id: ObjectId(50), to: Point::new(0.104, 0.5) }],
///     &[],
/// );
/// assert_eq!(changed, vec![QueryId(0)]);
/// assert_eq!(monitor.result(QueryId(0)).unwrap()[0].id, ObjectId(50));
/// ```
#[derive(Debug)]
pub struct ShardedKnnMonitor {
    engine: ShardedCpmEngine<PointQuery>,
    /// Scratch: the cycle's [`QueryEvent`]s translated to engine events.
    event_buf: Vec<SpecEvent<PointQuery>>,
}

impl ShardedKnnMonitor {
    /// Create a monitor over an empty `dim × dim` grid with `shards ≥ 1`
    /// query shards.
    pub fn new(dim: u32, shards: usize) -> Self {
        Self {
            engine: ShardedCpmEngine::new(dim, shards),
            event_buf: Vec::new(),
        }
    }

    /// Number of query shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.engine.shard_count()
    }

    /// The shared object index.
    #[must_use]
    pub fn grid(&self) -> &Grid {
        self.engine.grid()
    }

    /// Bulk-load objects before any query is installed.
    pub fn populate<I: IntoIterator<Item = (ObjectId, Point)>>(&mut self, objects: I) {
        self.engine.populate(objects);
    }

    /// Replace the re-grid policy (see
    /// [`ShardedCpmEngine::set_regrid_policy`]).
    pub fn set_regrid_policy(&mut self, policy: RegridPolicy) {
        self.engine.set_regrid_policy(policy);
    }

    /// The active re-grid policy.
    #[must_use]
    pub fn regrid_policy(&self) -> &RegridPolicy {
        self.engine.regrid_policy()
    }

    /// Re-grid to a new resolution now (see
    /// [`ShardedCpmEngine::regrid_to`]).
    ///
    /// # Panics
    /// Panics if `new_dim == 0` or `new_dim > 4096` (legacy monitor
    /// surface; the engine reports this as [`CpmError::InvalidDim`]).
    pub fn regrid_to(&mut self, new_dim: u32) -> usize {
        self.engine
            .regrid_to(new_dim)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of installed queries.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.engine.query_count()
    }

    /// Install a continuous k-NN query.
    ///
    /// # Panics
    /// Panics if `id` is already installed or `k == 0` (legacy monitor
    /// surface; the underlying [`ShardedCpmEngine::install`] reports both
    /// as [`crate::CpmError`]).
    pub fn install_query(&mut self, id: QueryId, pos: Point, k: usize) -> &[Neighbor] {
        self.engine
            .install(id, PointQuery(pos), k)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Terminate query `id`; returns `true` if it was installed.
    pub fn terminate_query(&mut self, id: QueryId) -> bool {
        self.engine.terminate(id).is_ok()
    }

    /// The current result of query `id`, ascending by distance.
    #[must_use]
    pub fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.engine.result(id)
    }

    /// Full book-keeping state of query `id`.
    #[must_use]
    pub fn query_state(&self, id: QueryId) -> Option<&SpecQueryState<PointQuery>> {
        self.engine.query_state(id)
    }

    /// Merged snapshot of the work counters (see
    /// [`ShardedCpmEngine::metrics`]).
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.engine.metrics()
    }

    /// Take and reset the work counters of every shard.
    pub fn take_metrics(&mut self) -> Metrics {
        self.engine.take_metrics()
    }

    /// Run one processing cycle over the paper's k-NN event vocabulary.
    /// Returns ids of queries whose result changed, ascending by id.
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[QueryEvent],
    ) -> Vec<QueryId> {
        self.event_buf.clear();
        self.event_buf
            .extend(query_events.iter().map(|ev| match *ev {
                QueryEvent::Install { id, pos, k } => SpecEvent::Install {
                    id,
                    spec: PointQuery(pos),
                    k,
                },
                QueryEvent::Move { id, to } => SpecEvent::Update {
                    id,
                    spec: PointQuery(to),
                },
                QueryEvent::Terminate { id } => SpecEvent::Terminate { id },
            }));
        let events = std::mem::take(&mut self.event_buf);
        let changed = self.engine.process_cycle(object_events, &events);
        self.event_buf = events;
        changed
    }

    /// Total memory footprint in the paper's memory units (Section 4.1).
    #[must_use]
    pub fn space_units(&self) -> usize {
        self.engine.space_units()
    }

    /// Verify all cross-structure invariants (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.engine.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpmKnnMonitor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn shard_assignment_is_deterministic_and_balanced() {
        for shards in [1usize, 2, 4, 8] {
            let mut counts = vec![0usize; shards];
            for id in 0..10_000u32 {
                let s = shard_of(QueryId(id), shards);
                assert_eq!(s, shard_of(QueryId(id), shards), "not deterministic");
                counts[s] += 1;
            }
            let expected = 10_000 / shards;
            for &c in &counts {
                assert!(
                    c as f64 > expected as f64 * 0.8 && (c as f64) < expected as f64 * 1.2,
                    "imbalanced shards: {counts:?}"
                );
            }
        }
    }

    /// The sharded monitor must agree bit-for-bit with the specialized
    /// sequential k-NN monitor on a random stream, for every shard count.
    #[test]
    fn sharded_matches_sequential_monitor() {
        let mut rng = StdRng::seed_from_u64(0x5AADED);
        for shards in [1usize, 2, 4, 8] {
            let mut seq = CpmKnnMonitor::new(16);
            let mut par = ShardedKnnMonitor::new(16, shards);
            let objects: Vec<(ObjectId, Point)> = (0..80u32)
                .map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen())))
                .collect();
            seq.populate(objects.iter().copied());
            par.populate(objects.iter().copied());
            for qi in 0..12u32 {
                let p = Point::new(rng.gen(), rng.gen());
                let k = 1 + qi as usize % 4;
                seq.install_query(QueryId(qi), p, k);
                par.install_query(QueryId(qi), p, k);
            }
            for _cycle in 0..25 {
                let mut events = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for _ in 0..rng.gen_range(0..10) {
                    let id = rng.gen_range(0..80u32);
                    if seen.insert(id) {
                        events.push(ObjectEvent::Move {
                            id: ObjectId(id),
                            to: Point::new(rng.gen(), rng.gen()),
                        });
                    }
                }
                let mut seq_changed = seq.process_cycle(&events, &[]);
                let par_changed = par.process_cycle(&events, &[]);
                seq_changed.sort_unstable();
                assert_eq!(seq_changed, par_changed, "changed sets diverged");
                par.check_invariants();
                for qi in 0..12u32 {
                    assert_eq!(
                        seq.result(QueryId(qi)).unwrap(),
                        par.result(QueryId(qi)).unwrap(),
                        "results diverged for query {qi} at {shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn metrics_merge_counts_ingest_once() {
        let mut m = ShardedKnnMonitor::new(8, 4);
        m.populate([
            (ObjectId(0), Point::new(0.1, 0.1)),
            (ObjectId(1), Point::new(0.9, 0.9)),
        ]);
        for qi in 0..8u32 {
            m.install_query(QueryId(qi), Point::new(0.5, 0.5), 1);
        }
        m.take_metrics();
        m.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(0),
                to: Point::new(0.2, 0.2),
            }],
            &[],
        );
        let metrics = m.take_metrics();
        // One grid update regardless of shard count.
        assert_eq!(metrics.updates_applied, 1);
        // And taking resets every shard: a fresh snapshot is all zeros.
        assert_eq!(m.metrics(), Metrics::default());
    }

    #[test]
    fn query_events_route_to_owning_shards() {
        let mut m = ShardedKnnMonitor::new(16, 4);
        m.populate((0..50u32).map(|i| (ObjectId(i), Point::new(i as f64 / 50.0, 0.5))));
        let installs: Vec<QueryEvent> = (0..20u32)
            .map(|i| QueryEvent::Install {
                id: QueryId(i),
                pos: Point::new(i as f64 / 20.0, 0.5),
                k: 3,
            })
            .collect();
        let changed = m.process_cycle(&[], &installs);
        assert_eq!(changed.len(), 20);
        assert!(changed.windows(2).all(|w| w[0] < w[1]), "not sorted");
        assert_eq!(m.query_count(), 20);
        m.check_invariants();

        let moves: Vec<QueryEvent> = (0..20u32)
            .step_by(2)
            .map(|i| QueryEvent::Move {
                id: QueryId(i),
                to: Point::new(1.0 - i as f64 / 20.0, 0.4),
            })
            .collect();
        let terminates: Vec<QueryEvent> = (1..20u32)
            .step_by(2)
            .map(|i| QueryEvent::Terminate { id: QueryId(i) })
            .collect();
        let mut events = moves;
        events.extend(terminates);
        let changed = m.process_cycle(&[], &events);
        assert_eq!(changed.len(), 10);
        assert_eq!(m.query_count(), 10);
        m.check_invariants();
        assert!(m.terminate_query(QueryId(0)));
        assert!(!m.terminate_query(QueryId(1)));
    }
}
