//! Per-cycle result deltas: the incremental view of a query's result that
//! the CPM maintenance phase computes for free.
//!
//! Each processing cycle touches a query's `best` list in place (Figure
//! 3.8), so the cycle-start and cycle-end lists are adjacent in memory at
//! the moment maintenance finishes. [`NeighborDelta::diff`] captures the
//! difference as three canonical components; [`NeighborDelta::apply_to`]
//! folds a delta back onto a result replica. The two are exact inverses —
//! folding the delta stream over the initial result reconstructs every
//! per-epoch result **bit-identically** (same ids, same `f64` distance
//! bits, same order), the property the delta-replay suite asserts against
//! the brute-force oracle.
//!
//! Deltas are what a subscription front end ships to clients
//! ([`cpm-sub`]): for `n` queries with mostly-stable results, a delta is
//! O(result churn) while the full list is O(k), which is the difference
//! between shipping a few entries and re-serializing every result every
//! cycle.
//!
//! [`cpm-sub`]: ../../cpm_sub/index.html

use cpm_geom::{ObjectId, QueryId};

use crate::neighbors::Neighbor;

/// The change to one query's result over one processing cycle (epoch).
///
/// All three components are canonical: `added` and `reordered` are in
/// ascending `(dist, id)` order (the result order), `removed` is in the
/// evicted entries' old result order. Equal deltas therefore compare equal
/// with `==`, and the sharded engine's merged delta batches are
/// bit-identical to the sequential engine's.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NeighborDelta {
    /// The cycle that produced this delta (1-based; epoch 0 is the state
    /// before any cycle ran).
    pub epoch: u64,
    /// Entries present at cycle end but not at cycle start.
    pub added: DeltaBuf<Neighbor>,
    /// Objects present at cycle start but evicted by cycle end.
    pub removed: DeltaBuf<ObjectId>,
    /// Entries retained across the cycle whose distance (and therefore
    /// rank) changed — the object moved but stayed in the result. Carries
    /// the **new** distance bits.
    pub reordered: DeltaBuf<Neighbor>,
}

/// Entries kept inline in a [`DeltaBuf`] before it spills to the heap.
const DELTA_BUF_INLINE: usize = 4;

/// A small-buffer vector for delta components.
///
/// The typical per-cycle delta carries one or two entries per component,
/// and the engine materializes hundreds of thousands of deltas per second
/// — heap-allocating three vectors for every one of them is the dominant
/// cost of delta emission. `DeltaBuf` stores a handful of entries inline
/// and only touches the allocator beyond that (bulk churn on range
/// subscriptions). It dereferences to a slice, so reading code treats it
/// exactly like a `Vec`.
#[derive(Clone)]
pub struct DeltaBuf<T: Copy + Default> {
    inline: [T; DELTA_BUF_INLINE],
    len: u8,
    /// Holds *all* entries once in use (the inline buffer is then dead).
    spill: Vec<T>,
}

impl<T: Copy + Default> DeltaBuf<T> {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Self {
            inline: [T::default(); DELTA_BUF_INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Append an entry, spilling to the heap past the inline capacity.
    pub fn push(&mut self, value: T) {
        if self.spill.is_empty() {
            if (self.len as usize) < DELTA_BUF_INLINE {
                self.inline[self.len as usize] = value;
                self.len += 1;
                return;
            }
            self.spill.reserve(DELTA_BUF_INLINE * 2);
            self.spill.extend_from_slice(&self.inline);
        }
        self.spill.push(value);
    }

    /// The entries as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// Remove all entries, keeping any spill capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The entries as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len as usize]
        } else {
            &mut self.spill
        }
    }
}

impl<T: Copy + Default> Default for DeltaBuf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default> std::ops::Deref for DeltaBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default> std::ops::DerefMut for DeltaBuf<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + std::fmt::Debug> std::fmt::Debug for DeltaBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + Default + PartialEq> PartialEq for DeltaBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq> PartialEq<Vec<T>> for DeltaBuf<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq> PartialEq<&[T]> for DeltaBuf<T> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<T: Copy + Default> From<Vec<T>> for DeltaBuf<T> {
    fn from(values: Vec<T>) -> Self {
        let mut buf = Self::new();
        for v in values {
            buf.push(v);
        }
        buf
    }
}

impl<T: Copy + Default> FromIterator<T> for DeltaBuf<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut buf = Self::new();
        for v in iter {
            buf.push(v);
        }
        buf
    }
}

impl<T: Copy + Default> Extend<T> for DeltaBuf<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<'a, T: Copy + Default> IntoIterator for &'a DeltaBuf<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl NeighborDelta {
    /// `true` when the delta carries no change (folding it is a no-op).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.reordered.is_empty()
    }

    /// Total entries across the three components (the "wire size" of the
    /// delta, what [`cpm-sub`] meters).
    ///
    /// [`cpm-sub`]: ../../cpm_sub/index.html
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len() + self.reordered.len()
    }

    /// Compute the delta from `old` to `new`, both ascending by
    /// `(dist, id)` as [`crate::NeighborList`] maintains them. Distances
    /// compare by bit pattern, so a retained object whose recomputed
    /// distance is bit-identical produces no entry.
    ///
    /// Cost is O(result length + window²) where the *window* is the
    /// changed region after trimming the bitwise-equal common prefix and
    /// suffix — typically one or two entries per cycle, so the hot path
    /// is a linear scan. This runs once per changed query per cycle on
    /// the engine's delta path, where the acceptance budget is < 10%
    /// cycle overhead versus full-list results.
    pub fn diff(epoch: u64, old: &[Neighbor], new: &[Neighbor]) -> Self {
        let mut delta = NeighborDelta {
            epoch,
            ..Self::default()
        };
        // Both lists are sorted by (dist, id), so churn is localized:
        // trim the bitwise-equal common prefix and suffix. Ids outside
        // the windows appear identically in both lists, so the membership
        // diff below only needs to look inside them.
        let (old_w, new_w) = trim_common(old, new);
        if old_w.is_empty() && new_w.is_empty() {
            return delta; // bit-identical lists — the hot quiet case
        }

        if old_w.len().max(new_w.len()) <= 32 {
            // Small window: direct membership scans.
            for o in old_w {
                if !new_w.iter().any(|n| n.id == o.id) {
                    delta.removed.push(o.id);
                }
            }
            for n in new_w {
                match old_w.iter().find(|o| o.id == n.id) {
                    None => delta.added.push(*n),
                    Some(o) if o.dist.to_bits() != n.dist.to_bits() => delta.reordered.push(*n),
                    Some(_) => {}
                }
            }
        } else {
            // Wide window (bulk churn, e.g. a moved range region):
            // id-sorted merge instead of the quadratic scan. Removed
            // entries keep their old distance so the canonical (old-order)
            // sort below is a single O(r log r) pass.
            let mut old_ids: Vec<Neighbor> = old_w.to_vec();
            old_ids.sort_unstable_by_key(|n| n.id);
            let mut new_ids: Vec<Neighbor> = new_w.to_vec();
            new_ids.sort_unstable_by_key(|n| n.id);
            let mut removed_pairs: Vec<Neighbor> = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < old_ids.len() || j < new_ids.len() {
                match (old_ids.get(i), new_ids.get(j)) {
                    (Some(o), Some(n)) if o.id == n.id => {
                        if o.dist.to_bits() != n.dist.to_bits() {
                            delta.reordered.push(*n);
                        }
                        i += 1;
                        j += 1;
                    }
                    (Some(o), Some(n)) if o.id < n.id => {
                        removed_pairs.push(*o);
                        i += 1;
                    }
                    (Some(_), Some(n)) => {
                        delta.added.push(*n);
                        j += 1;
                    }
                    (Some(o), None) => {
                        removed_pairs.push(*o);
                        i += 1;
                    }
                    (None, Some(n)) => {
                        delta.added.push(*n);
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            // Canonicalize to the documented orders (the merge walked in
            // id order; the old-list order is ascending (old dist, id)).
            delta
                .added
                .sort_unstable_by(|a, b| cmp_dist_id(a, b).expect("distances are never NaN"));
            delta
                .reordered
                .sort_unstable_by(|a, b| cmp_dist_id(a, b).expect("distances are never NaN"));
            removed_pairs
                .sort_unstable_by(|a, b| cmp_dist_id(a, b).expect("distances are never NaN"));
            delta.removed.extend(removed_pairs.iter().map(|n| n.id));
        }
        delta
    }

    /// Fold this delta onto `result` (ascending by `(dist, id)`),
    /// producing the cycle-end list bit-identically.
    ///
    /// Replays are order-sensitive: apply deltas in epoch order onto the
    /// result the first delta's cycle started from.
    pub fn apply_to(&self, result: &mut Vec<Neighbor>) {
        if self.is_empty() {
            return;
        }
        result.retain(|n| !self.removed.contains(&n.id));
        for r in &self.reordered {
            let entry = result
                .iter_mut()
                .find(|e| e.id == r.id)
                .expect("reordered entry must be in the replayed result");
            entry.dist = r.dist;
        }
        result.extend_from_slice(&self.added);
        result.sort_unstable_by(|a, b| cmp_dist_id(a, b).expect("distances are never NaN"));
    }
}

impl NeighborDelta {
    /// Compute the delta of one maintenance cycle **without materializing
    /// the cycle-start list** — the engine's hot path.
    ///
    /// The cycle-start ("old") list is defined implicitly by two pieces
    /// that are both cache-hot at finalize time:
    ///
    /// * `pre` — the query's post-departure, pre-resolution result (the
    ///   engine's finalize-phase snapshot, or the final list itself when
    ///   no merge/recompute ran);
    /// * `log` — `(id, cycle-start distance)` for every entry mutated *in
    ///   place* during departure handling, first mutation wins (a handful
    ///   of entries, recorded for free from the values `remove` /
    ///   `update_dist` already return).
    ///
    /// Old ids = pre ids ∪ log ids; an id's old distance is its logged
    /// value if present, else its `pre` distance. `fin` is the cycle-end
    /// list. Equivalent to `diff(materialized_old, fin)` (property-tested
    /// below) while never touching the cold cycle-start buffer a
    /// materializing implementation would have to keep around.
    pub(crate) fn from_log(
        epoch: u64,
        pre: &[Neighbor],
        log: &[(ObjectId, f64)],
        fin: &[Neighbor],
    ) -> Self {
        if log.is_empty() {
            // No in-place mutations: the pre-resolution list *is* the
            // cycle-start list.
            return Self::diff(epoch, pre, fin);
        }
        // Windows of positional churn between pre and fin. Ids outside the
        // windows form bitwise-equal pairs, so only logged ids can carry a
        // change there (handled in the dedicated log pass below).
        let (pre_w, fin_w) = trim_common(pre, fin);
        const SMALL: usize = 32;
        const LOG_SMALL: usize = 8;
        if pre_w.len() <= SMALL && fin_w.len() <= SMALL && log.len() <= LOG_SMALL {
            return Self::from_log_small(epoch, pre, log, pre_w, fin_w);
        }
        Self::from_log_general(epoch, pre, log, pre_w, fin_w)
    }

    /// The k-NN-sized hot path of [`NeighborDelta::from_log`]: membership
    /// tests run on stack-resident `u32` id arrays and the `removed`
    /// component is ordered on the stack with its old distances in hand,
    /// so the only heap traffic is the delta's own component vectors.
    fn from_log_small(
        epoch: u64,
        pre: &[Neighbor],
        log: &[(ObjectId, f64)],
        pre_w: &[Neighbor],
        fin_w: &[Neighbor],
    ) -> Self {
        let mut delta = NeighborDelta {
            epoch,
            ..Self::default()
        };
        let logged = |id: ObjectId| log.iter().find(|&&(l, _)| l == id).map(|&(_, d)| d);

        let mut pre_ids = [0u32; 32];
        for (i, o) in pre_w.iter().enumerate() {
            pre_ids[i] = o.id.0;
        }
        let pre_ids = &pre_ids[..pre_w.len()];
        let mut fin_ids = [0u32; 32];
        for (i, f) in fin_w.iter().enumerate() {
            fin_ids[i] = f.id.0;
        }
        let fin_ids = &fin_ids[..fin_w.len()];

        // Removed entries carry their cycle-start distance so the
        // canonical (old-order) sort below needs no lookups.
        let mut removed = [Neighbor {
            id: ObjectId(0),
            dist: 0.0,
        }; 40];
        let mut n_removed = 0usize;

        for f in fin_w {
            let old_dist = logged(f.id).or_else(|| {
                pre_ids
                    .iter()
                    .position(|&x| x == f.id.0)
                    .map(|i| pre_w[i].dist)
            });
            match old_dist {
                None => delta.added.push(*f),
                Some(od) if od.to_bits() != f.dist.to_bits() => delta.reordered.push(*f),
                Some(_) => {}
            }
        }
        for o in pre_w {
            if !fin_ids.contains(&o.id.0) {
                removed[n_removed] = Neighbor {
                    id: o.id,
                    dist: logged(o.id).unwrap_or(o.dist),
                };
                n_removed += 1;
            }
        }
        // Logged ids the windows did not see: either they sit in the
        // common region (survived with an unchanged post-departure
        // distance — still reordered versus their cycle-start distance),
        // or they were removed in place and never resurfaced.
        let mut appended_reorder = false;
        for &(lid, ld) in log {
            if pre_ids.contains(&lid.0) || fin_ids.contains(&lid.0) {
                continue;
            }
            match pre.iter().find(|o| o.id == lid) {
                Some(o) if o.dist.to_bits() != ld.to_bits() => {
                    delta.reordered.push(*o);
                    appended_reorder = true;
                }
                Some(_) => {}
                None => {
                    removed[n_removed] = Neighbor { id: lid, dist: ld };
                    n_removed += 1;
                }
            }
        }
        if appended_reorder {
            delta
                .reordered
                .sort_unstable_by(|a, b| cmp_dist_id(a, b).expect("distances are never NaN"));
        }
        // Canonical removed order = the old list's order, i.e. ascending
        // by (cycle-start distance, id).
        let removed = &mut removed[..n_removed];
        removed.sort_unstable_by(|a, b| cmp_dist_id(a, b).expect("distances are never NaN"));
        delta.removed.extend(removed.iter().map(|n| n.id));
        delta
    }

    /// Fallback for wide windows or long logs (bulk churn on range
    /// subscriptions): plain slice scans, no stack caps.
    fn from_log_general(
        epoch: u64,
        pre: &[Neighbor],
        log: &[(ObjectId, f64)],
        pre_w: &[Neighbor],
        fin_w: &[Neighbor],
    ) -> Self {
        let mut delta = NeighborDelta {
            epoch,
            ..Self::default()
        };
        let logged = |id: ObjectId| log.iter().find(|&&(l, _)| l == id).map(|&(_, d)| d);

        for f in fin_w {
            let old_dist =
                logged(f.id).or_else(|| pre_w.iter().find(|o| o.id == f.id).map(|o| o.dist));
            match old_dist {
                None => delta.added.push(*f),
                Some(od) if od.to_bits() != f.dist.to_bits() => delta.reordered.push(*f),
                Some(_) => {}
            }
        }
        // Removed entries carry their cycle-start distance so the
        // canonical (old-order) sort below is a single O(r log r) pass.
        let mut removed_pairs: Vec<Neighbor> = Vec::new();
        for o in pre_w {
            if !fin_w.iter().any(|f| f.id == o.id) {
                removed_pairs.push(Neighbor {
                    id: o.id,
                    dist: logged(o.id).unwrap_or(o.dist),
                });
            }
        }
        let mut appended_reorder = false;
        for &(lid, ld) in log {
            if pre_w.iter().any(|o| o.id == lid) || fin_w.iter().any(|f| f.id == lid) {
                continue;
            }
            match pre.iter().find(|o| o.id == lid) {
                Some(o) if o.dist.to_bits() != ld.to_bits() => {
                    delta.reordered.push(*o);
                    appended_reorder = true;
                }
                Some(_) => {}
                None => removed_pairs.push(Neighbor { id: lid, dist: ld }),
            }
        }
        if appended_reorder {
            delta
                .reordered
                .sort_unstable_by(|a, b| cmp_dist_id(a, b).expect("distances are never NaN"));
        }
        removed_pairs.sort_unstable_by(|a, b| cmp_dist_id(a, b).expect("distances are never NaN"));
        delta.removed.extend(removed_pairs.iter().map(|n| n.id));
        delta
    }
}

/// Trim the bitwise-equal common prefix and suffix of two `(dist, id)`
/// sorted result lists, returning the changed windows.
#[inline]
fn trim_common<'a>(old: &'a [Neighbor], new: &'a [Neighbor]) -> (&'a [Neighbor], &'a [Neighbor]) {
    let eq = |o: &Neighbor, n: &Neighbor| o.id == n.id && o.dist.to_bits() == n.dist.to_bits();
    let mut start = 0;
    while start < old.len() && start < new.len() && eq(&old[start], &new[start]) {
        start += 1;
    }
    let (mut old_end, mut new_end) = (old.len(), new.len());
    while old_end > start && new_end > start && eq(&old[old_end - 1], &new[new_end - 1]) {
        old_end -= 1;
        new_end -= 1;
    }
    (&old[start..old_end], &new[start..new_end])
}

#[inline]
fn cmp_dist_id(a: &Neighbor, b: &Neighbor) -> Option<std::cmp::Ordering> {
    (a.dist, a.id).partial_cmp(&(b.dist, b.id))
}

/// One processing cycle's full delta output, as returned by
/// `process_cycle_with_deltas` on both the sequential and the sharded
/// engine.
///
/// `deltas` holds at most one entry per query, ascending by query id (the
/// sharded engine merges per-shard outputs into this canonical order, so
/// the batch is bit-identical across shard counts). `changed` is the same
/// changed-query list `process_cycle` reports; a changed query whose final
/// list is bit-identical to its cycle-start list (an object moved without
/// altering any stored distance bits) appears in `changed` but produces no
/// delta.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleDeltas {
    /// The cycle number that produced this batch (1-based).
    pub epoch: u64,
    /// Queries whose result changed, ascending by id.
    pub changed: Vec<QueryId>,
    /// Per-query deltas, ascending by query id; empty deltas are omitted.
    pub deltas: Vec<(QueryId, NeighborDelta)>,
}

impl CycleDeltas {
    /// Canonicalize a freshly filled batch: sort the deltas by query id
    /// (they are born sorted unless query-event deltas were appended
    /// after the finalize pass — deltas are fat, so only sort when
    /// actually needed) and stamp the epoch. Used by both engines so the
    /// canonical-order contract cannot drift between them.
    ///
    /// One delta per query per cycle: callers must not submit two events
    /// for the same query in one batch (the subscription hub enforces
    /// this; replaying duplicate epochs breaks client folds).
    pub(crate) fn canonicalize(&mut self, epoch: u64) {
        if !self.deltas.windows(2).all(|w| w[0].0 <= w[1].0) {
            self.deltas.sort_unstable_by_key(|(qid, _)| *qid);
        }
        debug_assert!(
            self.deltas.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate query events in one batch produced duplicate deltas"
        );
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(id: u32, dist: f64) -> Neighbor {
        Neighbor {
            id: ObjectId(id),
            dist,
        }
    }

    #[test]
    fn diff_classifies_add_remove_reorder() {
        let old = [n(1, 0.1), n(2, 0.2), n(3, 0.3)];
        let new = [n(2, 0.05), n(4, 0.15), n(3, 0.3)];
        let d = NeighborDelta::diff(7, &old, &new);
        assert_eq!(d.epoch, 7);
        assert_eq!(d.removed, vec![ObjectId(1)]);
        assert_eq!(d.added, vec![n(4, 0.15)]);
        assert_eq!(d.reordered, vec![n(2, 0.05)]);
        assert_eq!(d.len(), 3);
        let mut replica = old.to_vec();
        d.apply_to(&mut replica);
        assert_eq!(replica, new);
    }

    #[test]
    fn identical_lists_produce_empty_delta() {
        let list = [n(5, 0.4), n(9, 0.8)];
        let d = NeighborDelta::diff(1, &list, &list);
        assert!(d.is_empty());
        let mut replica = list.to_vec();
        d.apply_to(&mut replica);
        assert_eq!(replica, list);
    }

    /// `from_log` must agree exactly with the reference semantics:
    /// materialize the cycle-start list from (pre, log) and diff it.
    #[test]
    fn from_log_matches_materialized_diff() {
        fn canon(ids: &[u32], dists: &[f64]) -> Vec<Neighbor> {
            let mut out: Vec<Neighbor> = ids
                .iter()
                .zip(dists.iter().cycle())
                .map(|(&id, &d)| n(id, d))
                .collect();
            out.sort_unstable_by_key(|e| e.id);
            out.dedup_by_key(|e| e.id);
            out.sort_unstable_by(|a, b| cmp_dist_id(a, b).unwrap());
            out
        }
        let mut runner = proptest::test_runner::TestRunner::default();
        runner
            .run(
                &(
                    proptest::collection::vec(0u32..60, 0..40),
                    proptest::collection::vec(0.0..1.0f64, 1..40),
                    proptest::collection::vec(0u32..60, 0..40),
                    proptest::collection::vec(0.0..1.0f64, 1..40),
                    proptest::collection::vec((0u32..60, 0.0..1.0f64), 0..8),
                ),
                |(pre_ids, pre_d, fin_ids, fin_d, raw_log)| {
                    let pre = canon(&pre_ids, &pre_d);
                    let fin = canon(&fin_ids, &fin_d);
                    let mut log: Vec<(ObjectId, f64)> = Vec::new();
                    for (id, d) in raw_log {
                        if log.iter().all(|&(l, _)| l != ObjectId(id)) {
                            log.push((ObjectId(id), d));
                        }
                    }
                    // Reference: the cycle-start list implied by (pre, log).
                    let mut old: Vec<Neighbor> = pre
                        .iter()
                        .map(|o| Neighbor {
                            id: o.id,
                            dist: log
                                .iter()
                                .find(|&&(l, _)| l == o.id)
                                .map(|&(_, d)| d)
                                .unwrap_or(o.dist),
                        })
                        .collect();
                    for &(lid, ld) in &log {
                        if pre.iter().all(|o| o.id != lid) {
                            old.push(Neighbor { id: lid, dist: ld });
                        }
                    }
                    old.sort_unstable_by(|a, b| cmp_dist_id(a, b).unwrap());

                    let fast = NeighborDelta::from_log(5, &pre, &log, &fin);
                    let reference = NeighborDelta::diff(5, &old, &fin);
                    prop_assert_eq!(
                        &fast,
                        &reference,
                        "pre {:?} log {:?} fin {:?} old {:?}",
                        pre,
                        log,
                        fin,
                        old
                    );
                    // And the fast delta folds the old list onto fin.
                    let mut replica = old.clone();
                    fast.apply_to(&mut replica);
                    prop_assert_eq!(replica, fin);
                    Ok(())
                },
            )
            .unwrap();
    }

    /// Random old/new pairs — including the >32-entry merge path — must
    /// round-trip bit-identically through diff + apply.
    #[test]
    fn diff_apply_roundtrip_property() {
        fn build(ids: &[u32], dists: &[f64]) -> Vec<Neighbor> {
            let mut out: Vec<Neighbor> = ids
                .iter()
                .zip(dists.iter().cycle())
                .map(|(&id, &d)| n(id, d))
                .collect();
            // Result lists hold each id at most once; dedup by id first,
            // then order by (dist, id) as NeighborList does.
            out.sort_unstable_by_key(|e| e.id);
            out.dedup_by_key(|e| e.id);
            out.sort_unstable_by(|a, b| cmp_dist_id(a, b).unwrap());
            out
        }
        let mut runner = proptest::test_runner::TestRunner::default();
        runner
            .run(
                &(
                    proptest::collection::vec(0u32..120, 0..64),
                    proptest::collection::vec(0.0..1.0f64, 1..64),
                    proptest::collection::vec(0u32..120, 0..64),
                    proptest::collection::vec(0.0..1.0f64, 1..64),
                ),
                |(old_ids, old_d, new_ids, new_d)| {
                    let old = build(&old_ids, &old_d);
                    let new = build(&new_ids, &new_d);
                    let d = NeighborDelta::diff(3, &old, &new);
                    let mut replica = old.clone();
                    d.apply_to(&mut replica);
                    prop_assert_eq!(&replica, &new, "delta {:?} old {:?}", d, old);
                    prop_assert_eq!(d.is_empty(), old == new);
                    // Components are disjoint by id.
                    for a in &d.added {
                        prop_assert!(!d.removed.contains(&a.id));
                        prop_assert!(d.reordered.iter().all(|r| r.id != a.id));
                    }
                    Ok(())
                },
            )
            .unwrap();
    }
}
