//! [`CpmServer`]: every continuous-query kind on **one grid, one cycle**.
//!
//! The paper's CPM framework is a single shared grid plus per-query
//! book-keeping that serves *all* registered queries per update cycle
//! (Figure 3.9); nothing in it is per query *type*. This facade makes the
//! public API match: a builder-configured server
//! (`CpmServerBuilder::new(dim).shards(4).build()`) hosts k-NN, range,
//! aggregate-NN, constrained and reverse-NN queries on a single
//! [`ShardedCpmEngine`]`<`[`AnyQuerySpec`]`>`, so a mixed workload pays the
//! grid — and the per-cycle ingest pass ([`cpm_grid::apply_events`]) —
//! exactly **once**, no matter how many kinds are registered. That is the
//! multiplexing shape location-aware pub/sub and distributed
//! range-monitoring systems assume, and what the road-map's
//! million-user target needs.
//!
//! # Typed handles
//!
//! `install_knn` returns a [`KnnHandle`], `install_range` a
//! [`RangeHandle`], and so on. A handle is a copyable, kind-tagged query
//! id: the typed update methods ([`CpmServer::update_knn`],
//! [`CpmServer::update_range`], …) take the matching handle type, so
//! addressing a range query with a k-NN update is a *compile-time* error
//! rather than a runtime surprise. The untyped surface
//! ([`CpmServer::result`], [`CpmServer::terminate`],
//! [`CpmServer::update_spec`]) remains available for dynamic callers and
//! reports kind confusion as [`CpmError::KindMismatch`].
//!
//! # Reverse-NN composition
//!
//! RNN is the one kind that is not a single [`QuerySpec`]: a registration
//! expands into six sector-constrained candidate queries
//! ([`crate::RnnQuery`]) on ids in a reserved internal band, plus a
//! per-cycle circle-verification pass over the shared grid. The server
//! owns that composition; internal ids never appear in changed lists,
//! deltas, or results. RNN registrations are managed through direct calls
//! ([`CpmServer::install_rnn`], [`CpmServer::update_rnn`],
//! [`CpmServer::terminate`]); the batched query-event path addresses the
//! single-spec kinds.
//!
//! [`cpm_grid::apply_events`]: cpm_grid::apply_events

use cpm_geom::{FastHashMap, FastHashSet, ObjectId, Point, QueryId};
use cpm_grid::{DynIndex, Grid, IndexKind, Metrics, ObjectEvent, QueryKind, SpatialIndex};

use crate::any::AnyQuerySpec;
use crate::delta::CycleDeltas;
use crate::engine::{PointQuery, QuerySpec, SpecEvent, SpecQueryState};
use crate::error::CpmError;
use crate::neighbors::Neighbor;
use crate::range::RangeQuery;
use crate::regrid::RegridPolicy;
use crate::rnn::RnnQuery;
use crate::shard::ShardedCpmEngine;
use crate::{AnnQuery, ConstrainedQuery};

/// Sectors per reverse-NN query (the six-region method).
pub(crate) const SECTORS: u32 = 6;

/// First id of the band the server reserves for internal queries (the
/// reverse-NN sector candidates). User query ids must stay below it.
pub const RESERVED_ID_BASE: u32 = 1 << 31;

/// Largest user id an RNN registration may use: its six sector ids
/// `RESERVED_ID_BASE + id·6 + s` must stay representable.
const RNN_MAX_ID: u32 = (u32::MAX - RESERVED_ID_BASE - (SECTORS - 1)) / SECTORS;

/// A kind-tagged query id, as returned by the typed `install_*` methods.
/// Handles are plain copyable ids — they do not borrow the server and
/// stay valid until the query is terminated. The typed *update* methods
/// re-check the registry, so a stale handle whose id was terminated (or
/// re-used for another kind) gets a typed error; the by-id *read*
/// surface ([`CpmServer::result`]) resolves whatever query currently
/// owns the id, so do not read through a handle you terminated.
pub trait QueryHandle: Copy {
    /// The underlying query id.
    fn id(&self) -> QueryId;
    /// The kind this handle is tagged with.
    fn kind(&self) -> QueryKind;
}

macro_rules! handle {
    ($(#[$doc:meta])* $name:ident, $kind:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[must_use = "a handle is the typed key to the query's results and updates"]
        pub struct $name(QueryId);

        impl QueryHandle for $name {
            fn id(&self) -> QueryId {
                self.0
            }
            fn kind(&self) -> QueryKind {
                $kind
            }
        }

        impl From<$name> for QueryId {
            fn from(h: $name) -> QueryId {
                h.0
            }
        }
    };
}

handle!(
    /// Typed handle to an installed continuous k-NN query.
    KnnHandle,
    QueryKind::Knn
);
handle!(
    /// Typed handle to an installed continuous range query.
    RangeHandle,
    QueryKind::Range
);
handle!(
    /// Typed handle to an installed continuous aggregate-NN query.
    AnnHandle,
    QueryKind::Ann
);
handle!(
    /// Typed handle to an installed continuous constrained-NN query.
    ConstrainedHandle,
    QueryKind::Constrained
);
handle!(
    /// Typed handle to an installed continuous reverse-NN query.
    RnnHandle,
    QueryKind::Rnn
);

/// Configures and builds a [`CpmServer`].
///
/// ```
/// use cpm_core::CpmServerBuilder;
///
/// let server = CpmServerBuilder::new(64).shards(4).deltas(true).build();
/// assert_eq!(server.shard_count(), 4);
/// ```
#[derive(Debug, Clone)]
#[must_use = "the builder does nothing until build() is called"]
pub struct CpmServerBuilder {
    dim: u32,
    shards: usize,
    deltas: bool,
    regrid: RegridPolicy,
    index: IndexKind,
}

impl CpmServerBuilder {
    /// Start configuring a server over an empty `dim × dim` grid
    /// (sequential maintenance, delta capture off, manual re-gridding,
    /// uniform dense-bucket index).
    pub fn new(dim: u32) -> Self {
        Self {
            dim,
            shards: 1,
            deltas: false,
            regrid: RegridPolicy::Manual,
            index: IndexKind::Uniform,
        }
    }

    /// Select the spatial-index backend behind the shared grid (default:
    /// [`IndexKind::Uniform`], the paper-exact dense-bucket cell index).
    /// Every exact query kind returns **bit-identical** results,
    /// changed lists and delta streams on every backend; the choice is
    /// purely a performance/space trade-off (see the
    /// [`cpm_grid::SpatialIndex`] docs).
    ///
    /// ```
    /// use cpm_core::CpmServerBuilder;
    /// use cpm_grid::IndexKind;
    ///
    /// let server = CpmServerBuilder::new(64)
    ///     .index(IndexKind::quadtree())
    ///     .build();
    /// assert_eq!(server.index_kind(), IndexKind::quadtree());
    /// ```
    pub fn index(mut self, kind: IndexKind) -> Self {
        self.index = kind;
        self
    }

    /// Run per-cycle query maintenance across `shards ≥ 1` worker threads
    /// (`1` = sequential; results are bit-identical for every shard
    /// count).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard is required");
        self.shards = shards;
        self
    }

    /// Capture per-cycle result deltas (cycles must then run through
    /// [`CpmServer::process_cycle_with_deltas_into`]).
    pub fn deltas(mut self, deltas: bool) -> Self {
        self.deltas = deltas;
        self
    }

    /// Set the online re-grid policy (default:
    /// [`RegridPolicy::Manual`]). With
    /// [`RegridPolicy::auto`](crate::RegridPolicy::auto) the server
    /// re-evaluates its grid resolution against the Section 4.1 cost
    /// model at cycle boundaries and migrates the index when the
    /// predicted gain clears the hysteresis bar — results, changed lists
    /// and delta streams stay bit-identical to a server built at the new
    /// δ from scratch.
    ///
    /// ```
    /// use cpm_core::{CpmServerBuilder, RegridPolicy};
    ///
    /// let server = CpmServerBuilder::new(64)
    ///     .regrid(RegridPolicy::auto())
    ///     .build();
    /// assert!(server.regrid_policy().is_auto());
    /// ```
    pub fn regrid(mut self, policy: RegridPolicy) -> Self {
        self.regrid = policy;
        self
    }

    /// Build the server, validating the grid configuration against the
    /// selected index backend.
    ///
    /// # Errors
    /// [`CpmError::InvalidDim`] when the backend rejects `dim` (out of
    /// range, or not a power of two under [`IndexKind::Quadtree`]).
    pub fn try_build(self) -> Result<CpmServer, CpmError> {
        let grid = cpm_grid::GridBuilder::new(self.dim)
            .index(self.index)
            .try_build()?;
        let mut engine = ShardedCpmEngine::with_grid(grid, self.shards);
        if self.deltas {
            engine.enable_deltas();
        }
        engine.set_regrid_policy(self.regrid);
        Ok(CpmServer {
            engine,
            collects: self.deltas,
            kinds: FastHashMap::default(),
            rnn: FastHashMap::default(),
            verify_metrics: Metrics::default(),
            event_scratch: Vec::new(),
        })
    }

    /// Build the server.
    ///
    /// # Panics
    /// Panics when the selected index backend rejects the configured
    /// grid dimension; use [`CpmServerBuilder::try_build`] to handle the
    /// error instead.
    pub fn build(self) -> CpmServer {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[derive(Debug)]
struct RnnState {
    q: Point,
    /// Last verified RNN set (sorted by object id).
    result: Vec<ObjectId>,
}

/// The unified multi-query monitoring server; see the
/// [module docs](self) for the design.
///
/// # Example
///
/// ```
/// use cpm_core::{CpmServerBuilder, RangeQuery};
/// use cpm_geom::{ObjectId, Point, QueryId, Rect};
/// use cpm_grid::ObjectEvent;
///
/// let mut server = CpmServerBuilder::new(64).build();
/// server.populate([
///     (ObjectId(0), Point::new(0.30, 0.30)),
///     (ObjectId(1), Point::new(0.52, 0.48)),
/// ]);
/// // Two kinds, one grid.
/// let knn = server.install_knn(QueryId(0), Point::new(0.5, 0.5), 1).unwrap();
/// let zone = RangeQuery::rect(Rect::new(Point::new(0.0, 0.0), Point::new(0.4, 0.4)));
/// let range = server.install_range(QueryId(1), zone).unwrap();
///
/// let changed = server
///     .process_cycle(
///         &[ObjectEvent::Move { id: ObjectId(0), to: Point::new(0.9, 0.9) }],
///         &[],
///     )
///     .unwrap();
/// assert_eq!(changed, vec![QueryId(1)]); // left the zone; k-NN unaffected
/// assert_eq!(server.result(knn).unwrap()[0].id, ObjectId(1));
/// assert!(server.result(range).unwrap().is_empty());
/// ```
#[derive(Debug)]
pub struct CpmServer {
    engine: ShardedCpmEngine<AnyQuerySpec, DynIndex>,
    /// Whether the engine captures per-cycle deltas (build-time choice).
    collects: bool,
    /// Kind registry of every *user-visible* query (RNN registrations
    /// appear here once, not per sector).
    kinds: FastHashMap<QueryId, QueryKind>,
    /// Reverse-NN composition state.
    rnn: FastHashMap<QueryId, RnnState>,
    /// RNN circle-verification work, kept apart from the engine's
    /// counters (merged into [`CpmServer::metrics`] snapshots).
    verify_metrics: Metrics,
    /// Scratch: validated + normalized query events, reused per cycle.
    event_scratch: Vec<SpecEvent<AnyQuerySpec>>,
}

/// The registry state [`CpmServer::export_registry`] hands to snapshot
/// capture: kind registry, RNN composition state (both ascending by
/// query id), and the RNN verification counters.
pub(crate) type ExportedRegistry = (
    Vec<(QueryId, QueryKind)>,
    Vec<(QueryId, Point, Vec<ObjectId>)>,
    Metrics,
);

/// Sanitize an object-event batch the way the legacy per-kind monitors
/// always behaved: out-of-range coordinates are clamped into the
/// workspace (a simulator convenience) and each object's events are
/// folded into their net effect, exactly what sequential application
/// produced — `Disappear` then `Appear` is a net `Move`, `Appear` then
/// `Disappear` cancels, later positions win. Results are only computed
/// after the whole batch lands, so the net event yields the same state
/// while satisfying the server's one-event-per-object ingest rule. The
/// server's own typed validation stays strict; this shim-side pass is
/// what keeps the compatibility monitors' forgiving surface. Non-finite
/// coordinates have no sensible clamp and still reach the server's
/// typed rejection (a documented monitor panic).
pub(crate) fn sanitize_object_events(events: &[ObjectEvent]) -> Vec<ObjectEvent> {
    use cpm_geom::clamp_coord;
    /// Net effect of an object's events so far within the batch.
    #[derive(Clone, Copy)]
    enum Net {
        Moved(Point),
        Appeared(Point),
        Disappeared,
        /// Appeared then disappeared: emit nothing.
        Cancelled,
    }
    let mut order: Vec<ObjectId> = Vec::new();
    let mut net: FastHashMap<ObjectId, Net> = FastHashMap::default();
    for ev in events {
        let id = ev.id();
        let so_far = net.get(&id).copied();
        let next = match (*ev, so_far) {
            (ObjectEvent::Move { to, .. }, Some(Net::Appeared(_))) => Net::Appeared(to),
            (ObjectEvent::Move { to, .. }, _) => Net::Moved(to),
            (ObjectEvent::Appear { pos, .. }, None | Some(Net::Cancelled)) => Net::Appeared(pos),
            // The object was live at batch start and transiently removed;
            // reappearing nets out to a move.
            (ObjectEvent::Appear { pos, .. }, _) => Net::Moved(pos),
            (ObjectEvent::Disappear { .. }, Some(Net::Appeared(_))) => Net::Cancelled,
            (ObjectEvent::Disappear { .. }, _) => Net::Disappeared,
        };
        if so_far.is_none() {
            order.push(id);
        }
        net.insert(id, next);
    }
    let mut out = Vec::with_capacity(order.len());
    for id in order {
        out.push(match net[&id] {
            Net::Moved(p) => ObjectEvent::Move {
                id,
                to: Point::new(clamp_coord(p.x), clamp_coord(p.y)),
            },
            Net::Appeared(p) => ObjectEvent::Appear {
                id,
                pos: Point::new(clamp_coord(p.x), clamp_coord(p.y)),
            },
            Net::Disappeared => ObjectEvent::Disappear { id },
            Net::Cancelled => continue,
        });
    }
    out
}

impl CpmServer {
    pub(crate) fn sector_id(id: QueryId, sector: u32) -> QueryId {
        QueryId(RESERVED_ID_BASE + id.0 * SECTORS + sector)
    }

    // ---- durability surface (used by crate::snapshot) ----

    /// The underlying engine (snapshot capture and the subscription hub's
    /// restore path read it directly).
    #[doc(hidden)]
    #[must_use]
    pub fn engine(&self) -> &ShardedCpmEngine<AnyQuerySpec, DynIndex> {
        &self.engine
    }

    /// Export the server-side registry state for a snapshot: the kind
    /// registry and the reverse-NN composition state, both ascending by
    /// query id, plus the RNN verification counters.
    pub(crate) fn export_registry(&self) -> ExportedRegistry {
        let mut kinds: Vec<(QueryId, QueryKind)> =
            self.kinds.iter().map(|(&id, &k)| (id, k)).collect();
        kinds.sort_unstable_by_key(|&(id, _)| id);
        let mut rnn: Vec<(QueryId, Point, Vec<ObjectId>)> = self
            .rnn
            .iter()
            .map(|(&id, st)| (id, st.q, st.result.clone()))
            .collect();
        rnn.sort_unstable_by_key(|&(id, _, _)| id);
        (kinds, rnn, self.verify_metrics)
    }

    /// Reassemble a server from restored parts (the snapshot restore
    /// path; the decode layer has already cross-validated them).
    pub(crate) fn assemble(
        engine: ShardedCpmEngine<AnyQuerySpec, DynIndex>,
        collects: bool,
        kinds: Vec<(QueryId, QueryKind)>,
        rnn: Vec<(QueryId, Point, Vec<ObjectId>)>,
        verify_metrics: Metrics,
    ) -> Self {
        CpmServer {
            engine,
            collects,
            kinds: kinds.into_iter().collect(),
            rnn: rnn
                .into_iter()
                .map(|(id, q, result)| (id, RnnState { q, result }))
                .collect(),
            verify_metrics,
            event_scratch: Vec::new(),
        }
    }

    fn check_fresh(&self, id: QueryId) -> Result<(), CpmError> {
        if id.0 >= RESERVED_ID_BASE {
            return Err(CpmError::ReservedId(id));
        }
        if self.kinds.contains_key(&id) {
            return Err(CpmError::DuplicateQuery(id));
        }
        Ok(())
    }

    fn check_kind(&self, id: QueryId, expected: QueryKind) -> Result<(), CpmError> {
        match self.kinds.get(&id) {
            None => Err(CpmError::UnknownQuery(id)),
            Some(&actual) if actual != expected => Err(CpmError::KindMismatch {
                id,
                expected,
                actual,
            }),
            Some(_) => Ok(()),
        }
    }

    // ---- population & introspection ----

    /// Bulk-load objects before any query is installed.
    ///
    /// # Panics
    /// Panics if queries are already installed.
    pub fn populate<I: IntoIterator<Item = (ObjectId, Point)>>(&mut self, objects: I) {
        self.engine.populate(objects);
    }

    /// The shared object index.
    #[must_use]
    pub fn grid(&self) -> &Grid<DynIndex> {
        self.engine.grid()
    }

    /// The spatial-index backend the server was built with (via
    /// [`CpmServerBuilder::index`]). Snapshots record it; restoring under
    /// a different kind is [`CpmError::IndexMismatch`].
    #[must_use]
    pub fn index_kind(&self) -> IndexKind {
        self.engine.grid().index().kind()
    }

    /// Number of query shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.engine.shard_count()
    }

    /// The active re-grid policy (set at build time via
    /// [`CpmServerBuilder::regrid`]).
    #[must_use]
    pub fn regrid_policy(&self) -> &RegridPolicy {
        self.engine.regrid_policy()
    }

    /// Re-grid to a new resolution now, regardless of policy (see
    /// [`crate::ShardedCpmEngine::regrid_to`]). Returns the number of
    /// objects migrated.
    ///
    /// # Errors
    /// [`CpmError::InvalidDim`] when the active index backend rejects
    /// `new_dim` (out of range, or not a power of two under a quadtree
    /// index); the grid is untouched on error.
    pub fn regrid_to(&mut self, new_dim: u32) -> Result<usize, CpmError> {
        self.engine.regrid_to(new_dim)
    }

    /// Whether cycles capture per-cycle result deltas (set at build time
    /// via [`CpmServerBuilder::deltas`]).
    #[must_use]
    pub fn collects_deltas(&self) -> bool {
        self.collects
    }

    /// Number of installed user-visible queries (an RNN registration
    /// counts once).
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.kinds.len()
    }

    /// The kind of query `id`, if installed.
    #[must_use]
    pub fn kind_of(&self, id: QueryId) -> Option<QueryKind> {
        self.kinds.get(&id).copied()
    }

    /// Re-attach a typed handle to installed k-NN query `id` (`None` if
    /// `id` is unknown or of another kind). Handles are normally kept
    /// from `install_*`; this is the recovery path for callers that only
    /// persisted the id.
    #[must_use]
    pub fn knn_handle(&self, id: QueryId) -> Option<KnnHandle> {
        (self.kind_of(id) == Some(QueryKind::Knn)).then_some(KnnHandle(id))
    }

    /// Re-attach a typed handle to installed range query `id`.
    #[must_use]
    pub fn range_handle(&self, id: QueryId) -> Option<RangeHandle> {
        (self.kind_of(id) == Some(QueryKind::Range)).then_some(RangeHandle(id))
    }

    /// Re-attach a typed handle to installed aggregate-NN query `id`.
    #[must_use]
    pub fn ann_handle(&self, id: QueryId) -> Option<AnnHandle> {
        (self.kind_of(id) == Some(QueryKind::Ann)).then_some(AnnHandle(id))
    }

    /// Re-attach a typed handle to installed constrained query `id`.
    #[must_use]
    pub fn constrained_handle(&self, id: QueryId) -> Option<ConstrainedHandle> {
        (self.kind_of(id) == Some(QueryKind::Constrained)).then_some(ConstrainedHandle(id))
    }

    /// Re-attach a typed handle to installed reverse-NN query `id`.
    #[must_use]
    pub fn rnn_handle(&self, id: QueryId) -> Option<RnnHandle> {
        (self.kind_of(id) == Some(QueryKind::Rnn)).then_some(RnnHandle(id))
    }

    /// The processing-cycle counter: 0 before any cycle, incremented by
    /// every cycle.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// The current result of query `id`, ascending by (aggregate)
    /// distance. `None` for unknown ids and for reverse-NN registrations
    /// (whose results are object sets — see [`CpmServer::rnn_result`]).
    #[must_use]
    pub fn result(&self, id: impl Into<QueryId>) -> Option<&[Neighbor]> {
        let id = id.into();
        match self.kinds.get(&id) {
            Some(QueryKind::Rnn) | None => None,
            Some(_) => self.engine.result(id),
        }
    }

    /// The current reverse-NN set of registration `id`, sorted by object
    /// id. `None` for unknown ids and non-RNN queries.
    #[must_use]
    pub fn rnn_result(&self, id: impl Into<QueryId>) -> Option<&[ObjectId]> {
        self.rnn.get(&id.into()).map(|st| st.result.as_slice())
    }

    /// Full engine book-keeping state of (non-RNN) query `id`.
    #[must_use]
    pub fn query_state(&self, id: QueryId) -> Option<&SpecQueryState<AnyQuerySpec>> {
        match self.kinds.get(&id) {
            Some(QueryKind::Rnn) | None => None,
            Some(_) => self.engine.query_state(id),
        }
    }

    /// Merged snapshot of the work counters (engine + RNN verification),
    /// including the per-kind breakdown ([`Metrics::by_kind`]).
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut m = self.engine.metrics();
        m.merge(&self.verify_metrics);
        m
    }

    /// Take and reset the work counters.
    pub fn take_metrics(&mut self) -> Metrics {
        let mut m = self.engine.take_metrics();
        m.merge(&self.verify_metrics.take());
        m
    }

    /// Total memory footprint in the paper's memory units (Section 4.1).
    #[must_use]
    pub fn space_units(&self) -> usize {
        self.engine.space_units()
    }

    // ---- typed installs ----

    /// Install a continuous k-NN query: the `k` objects nearest `pos`.
    ///
    /// # Errors
    /// [`CpmError::ReservedId`], [`CpmError::DuplicateQuery`],
    /// [`CpmError::InvalidK`].
    pub fn install_knn(
        &mut self,
        id: QueryId,
        pos: Point,
        k: usize,
    ) -> Result<KnnHandle, CpmError> {
        self.check_fresh(id)?;
        self.engine
            .install(id, AnyQuerySpec::Knn(PointQuery(pos)), k)?;
        self.kinds.insert(id, QueryKind::Knn);
        Ok(KnnHandle(id))
    }

    /// Install a continuous range query: every object inside the region.
    ///
    /// # Errors
    /// [`CpmError::ReservedId`], [`CpmError::DuplicateQuery`].
    pub fn install_range(
        &mut self,
        id: QueryId,
        query: RangeQuery,
    ) -> Result<RangeHandle, CpmError> {
        self.check_fresh(id)?;
        self.engine
            .install(id, AnyQuerySpec::Range(query), RangeQuery::UNBOUNDED_K)?;
        self.kinds.insert(id, QueryKind::Range);
        Ok(RangeHandle(id))
    }

    /// Install a continuous aggregate-NN query (Section 5).
    ///
    /// # Errors
    /// [`CpmError::ReservedId`], [`CpmError::DuplicateQuery`],
    /// [`CpmError::InvalidK`].
    pub fn install_ann(
        &mut self,
        id: QueryId,
        query: AnnQuery,
        k: usize,
    ) -> Result<AnnHandle, CpmError> {
        self.check_fresh(id)?;
        self.engine.install(id, AnyQuerySpec::Ann(query), k)?;
        self.kinds.insert(id, QueryKind::Ann);
        Ok(AnnHandle(id))
    }

    /// Install a continuous constrained-NN query (Section 5).
    ///
    /// # Errors
    /// [`CpmError::ReservedId`], [`CpmError::DuplicateQuery`],
    /// [`CpmError::InvalidK`].
    pub fn install_constrained(
        &mut self,
        id: QueryId,
        query: ConstrainedQuery,
        k: usize,
    ) -> Result<ConstrainedHandle, CpmError> {
        self.check_fresh(id)?;
        self.engine
            .install(id, AnyQuerySpec::Constrained(query), k)?;
        self.kinds.insert(id, QueryKind::Constrained);
        Ok(ConstrainedHandle(id))
    }

    /// Install a continuous reverse-NN query at `pos`: six sector
    /// candidates on reserved internal ids plus circle verification.
    ///
    /// # Errors
    /// [`CpmError::ReservedId`] (also when `id` is too large for the
    /// sector-id mapping), [`CpmError::DuplicateQuery`].
    pub fn install_rnn(&mut self, id: QueryId, pos: Point) -> Result<RnnHandle, CpmError> {
        self.check_fresh(id)?;
        if id.0 > RNN_MAX_ID {
            return Err(CpmError::ReservedId(id));
        }
        for sector in 0..SECTORS {
            self.engine
                .install(
                    Self::sector_id(id, sector),
                    AnyQuerySpec::Rnn(RnnQuery::new(pos, sector)),
                    1,
                )
                .expect("reserved sector ids are fresh");
        }
        let result = Self::verify_rnn(&self.engine, &mut self.verify_metrics, id);
        self.kinds.insert(id, QueryKind::Rnn);
        self.rnn.insert(id, RnnState { q: pos, result });
        Ok(RnnHandle(id))
    }

    // ---- typed updates ----

    /// Move k-NN query `h` to `pos`; returns the recomputed result.
    ///
    /// # Errors
    /// [`CpmError::UnknownQuery`] if the query was terminated,
    /// [`CpmError::KindMismatch`] if the id was re-used for another kind.
    pub fn update_knn(&mut self, h: KnnHandle, pos: Point) -> Result<&[Neighbor], CpmError> {
        self.check_kind(h.id(), QueryKind::Knn)?;
        self.engine
            .update_spec(h.id(), AnyQuerySpec::Knn(PointQuery(pos)))
    }

    /// Replace the region of range query `h`.
    ///
    /// # Errors
    /// See [`CpmServer::update_knn`].
    pub fn update_range(
        &mut self,
        h: RangeHandle,
        query: RangeQuery,
    ) -> Result<&[Neighbor], CpmError> {
        self.check_kind(h.id(), QueryKind::Range)?;
        self.engine.update_spec(h.id(), AnyQuerySpec::Range(query))
    }

    /// Replace the point set / aggregate of ANN query `h`.
    ///
    /// # Errors
    /// See [`CpmServer::update_knn`].
    pub fn update_ann(&mut self, h: AnnHandle, query: AnnQuery) -> Result<&[Neighbor], CpmError> {
        self.check_kind(h.id(), QueryKind::Ann)?;
        self.engine.update_spec(h.id(), AnyQuerySpec::Ann(query))
    }

    /// Replace the point and/or region of constrained query `h`.
    ///
    /// # Errors
    /// See [`CpmServer::update_knn`].
    pub fn update_constrained(
        &mut self,
        h: ConstrainedHandle,
        query: ConstrainedQuery,
    ) -> Result<&[Neighbor], CpmError> {
        self.check_kind(h.id(), QueryKind::Constrained)?;
        self.engine
            .update_spec(h.id(), AnyQuerySpec::Constrained(query))
    }

    /// Move reverse-NN query `h` to `pos`; returns the re-verified RNN
    /// set.
    ///
    /// # Errors
    /// See [`CpmServer::update_knn`].
    pub fn update_rnn(&mut self, h: RnnHandle, pos: Point) -> Result<&[ObjectId], CpmError> {
        let id = h.id();
        self.move_rnn_sectors(id, pos)?;
        let result = Self::verify_rnn(&self.engine, &mut self.verify_metrics, id);
        let st = self.rnn.get_mut(&id).expect("kind-checked RNN state");
        st.result = result;
        Ok(&st.result)
    }

    /// Move the six sector candidates of RNN query `id` without the
    /// verification pass. The cached RNN set is left stale on purpose —
    /// only for callers that run a cycle (whose end-of-cycle
    /// re-verification refreshes it) before the result is read again;
    /// the [`CpmRnnMonitor`] compat shim's `Move` path.
    ///
    /// [`CpmRnnMonitor`]: crate::CpmRnnMonitor
    pub(crate) fn move_rnn_sectors(&mut self, id: QueryId, pos: Point) -> Result<(), CpmError> {
        self.check_kind(id, QueryKind::Rnn)?;
        for sector in 0..SECTORS {
            self.engine
                .update_spec(
                    Self::sector_id(id, sector),
                    AnyQuerySpec::Rnn(RnnQuery::new(pos, sector)),
                )
                .expect("sector queries track the registration");
        }
        self.rnn.get_mut(&id).expect("kind-checked RNN state").q = pos;
        Ok(())
    }

    // ---- untyped registry surface ----

    /// Replace the geometry of (non-RNN) query `id` with a spec of the
    /// *same kind*.
    ///
    /// # Errors
    /// [`CpmError::UnknownQuery`]; [`CpmError::KindMismatch`] when the
    /// spec's kind differs from the registered kind;
    /// [`CpmError::CompositeQuery`] when `id` is (or the spec addresses)
    /// a reverse-NN registration, which is updated via
    /// [`CpmServer::update_rnn`].
    pub fn update_spec(
        &mut self,
        id: QueryId,
        spec: AnyQuerySpec,
    ) -> Result<&[Neighbor], CpmError> {
        self.check_kind(id, spec.kind())?;
        if spec.kind() == QueryKind::Rnn {
            // A bare sector spec can never address a composite
            // registration.
            return Err(CpmError::CompositeQuery(id));
        }
        self.engine.update_spec(id, spec)
    }

    /// Install a (non-RNN) query from its unified spec — the
    /// programmatic twin of a batched [`SpecEvent::Install`], for
    /// routing layers (e.g. a cluster worker) that carry
    /// [`AnyQuerySpec`] values instead of typed handles. Range installs
    /// have `k` normalized to [`RangeQuery::UNBOUNDED_K`], matching the
    /// batched event surface. Returns the freshly computed result.
    ///
    /// # Errors
    /// [`CpmError::ReservedId`], [`CpmError::DuplicateQuery`],
    /// [`CpmError::InvalidK`]; [`CpmError::CompositeQuery`] for an RNN
    /// sector spec (composite queries install via
    /// [`CpmServer::install_rnn`]).
    pub fn install_spec(
        &mut self,
        id: QueryId,
        spec: AnyQuerySpec,
        k: usize,
    ) -> Result<&[Neighbor], CpmError> {
        self.check_fresh(id)?;
        let kind = spec.kind();
        if kind == QueryKind::Rnn {
            return Err(CpmError::CompositeQuery(id));
        }
        let k = if kind == QueryKind::Range {
            RangeQuery::UNBOUNDED_K
        } else {
            k
        };
        self.engine.install(id, spec, k)?;
        self.kinds.insert(id, kind);
        Ok(self.engine.result(id).expect("just installed"))
    }

    /// Terminate query `id`, of any kind.
    ///
    /// # Errors
    /// [`CpmError::UnknownQuery`] if `id` is not installed.
    pub fn terminate(&mut self, id: impl Into<QueryId>) -> Result<(), CpmError> {
        let id = id.into();
        match self.kinds.get(&id) {
            None => Err(CpmError::UnknownQuery(id)),
            Some(QueryKind::Rnn) => {
                for sector in 0..SECTORS {
                    self.engine
                        .terminate(Self::sector_id(id, sector))
                        .expect("sector queries track the registration");
                }
                self.rnn.remove(&id);
                self.kinds.remove(&id);
                Ok(())
            }
            Some(_) => {
                self.engine.terminate(id)?;
                self.kinds.remove(&id);
                Ok(())
            }
        }
    }

    // ---- cycles ----

    /// Validate a cycle's query-event batch against the registry without
    /// touching any state, and stage a normalized copy in
    /// `event_scratch`. Events address the single-spec kinds; RNN
    /// registrations are managed through the direct calls
    /// ([`CpmError::CompositeQuery`] otherwise). Range installs have `k`
    /// normalized to [`RangeQuery::UNBOUNDED_K`] (range results are
    /// membership sets, never capped).
    fn stage_events(&mut self, query_events: &[SpecEvent<AnyQuerySpec>]) -> Result<(), CpmError> {
        let Self {
            kinds,
            event_scratch,
            ..
        } = self;
        event_scratch.clear();
        // One event per query per batch (the subscription hub's rule,
        // promoted to a typed error): a second event for the same id
        // would make changed-list and delta ordering ambiguous.
        let mut seen: FastHashSet<QueryId> = FastHashSet::default();
        for ev in query_events {
            if !seen.insert(ev.id()) {
                return Err(CpmError::DuplicateQuery(ev.id()));
            }
            match ev {
                SpecEvent::Install { id, spec, k } => {
                    if id.0 >= RESERVED_ID_BASE {
                        return Err(CpmError::ReservedId(*id));
                    }
                    if kinds.contains_key(id) {
                        return Err(CpmError::DuplicateQuery(*id));
                    }
                    let kind = spec.kind();
                    if kind == QueryKind::Rnn {
                        // A bare sector spec is an internal detail of the
                        // composite registration.
                        return Err(CpmError::CompositeQuery(*id));
                    }
                    // Range results are unbounded; normalize the sentinel
                    // so callers cannot accidentally cap a region.
                    let k = if kind == QueryKind::Range {
                        RangeQuery::UNBOUNDED_K
                    } else {
                        *k
                    };
                    if k == 0 {
                        return Err(CpmError::InvalidK(*id));
                    }
                    event_scratch.push(SpecEvent::Install {
                        id: *id,
                        spec: spec.clone(),
                        k,
                    });
                }
                SpecEvent::Update { id, spec } => {
                    let expected = spec.kind();
                    match kinds.get(id).copied() {
                        None => return Err(CpmError::UnknownQuery(*id)),
                        Some(QueryKind::Rnn) => return Err(CpmError::CompositeQuery(*id)),
                        Some(actual) if actual != expected => {
                            return Err(CpmError::KindMismatch {
                                id: *id,
                                expected,
                                actual,
                            })
                        }
                        Some(_) => {}
                    }
                    event_scratch.push(ev.clone());
                }
                SpecEvent::Terminate { id } => {
                    match kinds.get(id).copied() {
                        None => return Err(CpmError::UnknownQuery(*id)),
                        Some(QueryKind::Rnn) => return Err(CpmError::CompositeQuery(*id)),
                        Some(_) => {}
                    }
                    event_scratch.push(ev.clone());
                }
            }
        }
        Ok(())
    }

    /// Validate an object-event batch before any state changes. The
    /// legacy single-kind monitors clamp out-of-range coordinates (a
    /// simulator convenience); the server is the production surface, so a
    /// NaN/infinite coordinate, a position outside the unit workspace, or
    /// two events for one object in a batch are typed errors and the
    /// whole batch is rejected — a corrupted producer cannot half-apply a
    /// cycle.
    fn validate_object_events(object_events: &[ObjectEvent]) -> Result<(), CpmError> {
        let mut seen: FastHashSet<ObjectId> = FastHashSet::default();
        for ev in object_events {
            let id = ev.id();
            if !seen.insert(id) {
                return Err(CpmError::DuplicateObject(id));
            }
            if let Some(p) = ev.position() {
                if !p.x.is_finite() || !p.y.is_finite() {
                    return Err(CpmError::NonFiniteCoordinate(id));
                }
                if !(0.0..=1.0).contains(&p.x) || !(0.0..=1.0).contains(&p.y) {
                    return Err(CpmError::OutOfWorkspace(id));
                }
            }
        }
        Ok(())
    }

    /// Fold a staged (validated) event batch into the kind registry.
    fn apply_registry(&mut self) {
        for i in 0..self.event_scratch.len() {
            match &self.event_scratch[i] {
                SpecEvent::Install { id, spec, .. } => {
                    self.kinds.insert(*id, spec.kind());
                }
                SpecEvent::Terminate { id } => {
                    self.kinds.remove(id);
                }
                SpecEvent::Update { .. } => {}
            }
        }
    }

    /// Re-verify every RNN registration after a cycle, appending the ids
    /// whose set changed.
    fn reverify_rnn(&mut self, changed: &mut Vec<QueryId>) {
        if self.rnn.is_empty() {
            return;
        }
        let ids: Vec<QueryId> = self.rnn.keys().copied().collect();
        for id in ids {
            let fresh = Self::verify_rnn(&self.engine, &mut self.verify_metrics, id);
            let st = self.rnn.get_mut(&id).expect("registered");
            if fresh != st.result {
                st.result = fresh;
                changed.push(id);
            }
        }
    }

    /// Run one processing cycle: **one** grid ingest pass over
    /// `object_events`, parallel per-shard maintenance of every installed
    /// query of every kind, this cycle's query events, then RNN
    /// re-verification. Returns the user-visible queries whose result
    /// changed, ascending by id.
    ///
    /// Both event batches are validated *before* any state changes; on
    /// `Err` the cycle did not run.
    ///
    /// # Errors
    /// [`CpmError::DuplicateQuery`] / [`CpmError::UnknownQuery`] /
    /// [`CpmError::KindMismatch`] / [`CpmError::InvalidK`] /
    /// [`CpmError::ReservedId`] for an invalid query-event batch;
    /// [`CpmError::NonFiniteCoordinate`] / [`CpmError::OutOfWorkspace`] /
    /// [`CpmError::DuplicateObject`] for an invalid object-event batch.
    ///
    /// # Panics
    /// Panics if the server was built with
    /// [`CpmServerBuilder::deltas`]`(true)` — use
    /// [`CpmServer::process_cycle_with_deltas_into`].
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<AnyQuerySpec>],
    ) -> Result<Vec<QueryId>, CpmError> {
        Self::validate_object_events(object_events)?;
        self.stage_events(query_events)?;
        let events = std::mem::take(&mut self.event_scratch);
        let mut changed = self.engine.process_cycle(object_events, &events);
        self.event_scratch = events;
        self.apply_registry();
        changed.retain(|q| q.0 < RESERVED_ID_BASE);
        self.reverify_rnn(&mut changed);
        changed.sort_unstable();
        Ok(changed)
    }

    /// Run one processing cycle and refill `out` with the cycle's
    /// [`crate::NeighborDelta`]s alongside the changed list (both
    /// ascending by query id; internal RNN candidate ids never appear).
    /// RNN registrations report membership changes in the changed list
    /// but emit no deltas (their results are object sets, not neighbor
    /// lists).
    ///
    /// # Errors
    /// As [`CpmServer::process_cycle`]; on `Err` the cycle did not run.
    ///
    /// # Panics
    /// Panics unless the server was built with
    /// [`CpmServerBuilder::deltas`]`(true)`.
    pub fn process_cycle_with_deltas_into(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<AnyQuerySpec>],
        out: &mut CycleDeltas,
    ) -> Result<(), CpmError> {
        Self::validate_object_events(object_events)?;
        self.stage_events(query_events)?;
        let events = std::mem::take(&mut self.event_scratch);
        self.engine
            .process_cycle_with_deltas_into(object_events, &events, out);
        self.event_scratch = events;
        self.apply_registry();
        out.changed.retain(|q| q.0 < RESERVED_ID_BASE);
        out.deltas.retain(|(q, _)| q.0 < RESERVED_ID_BASE);
        self.reverify_rnn(&mut out.changed);
        out.changed.sort_unstable();
        Ok(())
    }

    /// Collect the sector candidates of RNN query `id` and keep those
    /// whose verification circle contains no other object.
    fn verify_rnn(
        engine: &ShardedCpmEngine<AnyQuerySpec, DynIndex>,
        metrics: &mut Metrics,
        id: QueryId,
    ) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let mut dist_buf = Vec::new();
        for sector in 0..SECTORS {
            let Some(result) = engine.result(Self::sector_id(id, sector)) else {
                continue;
            };
            let Some(candidate) = result.first() else {
                continue;
            };
            let (cid, cdist) = (candidate.id, candidate.dist);
            let cpos = engine.grid().position(cid).expect("candidate is live");
            if Self::circle_is_empty(engine.grid(), metrics, cpos, cdist, cid, &mut dist_buf) {
                out.push(cid);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `true` if no object other than `exclude` lies strictly within
    /// `radius` of `center`.
    fn circle_is_empty(
        grid: &Grid<DynIndex>,
        metrics: &mut Metrics,
        center: Point,
        radius: f64,
        exclude: ObjectId,
        dist_buf: &mut Vec<f64>,
    ) -> bool {
        let rnn = QueryKind::Rnn as usize;
        for cell in grid.cells_in_circle(center, radius) {
            metrics.cell_accesses += 1;
            metrics.by_kind[rnn].cell_accesses += 1;
            // Distances come from the shared batched kernel; the consume
            // loop below keeps the pre-kernel early-exit semantics (and
            // work counters) exactly: `exclude` is skipped before
            // counting, and the first hit stops the scan mid-bucket.
            let oids = grid.objects_in(cell);
            cpm_grid::kernels::dist_into(grid.coords(), center, oids, dist_buf);
            for (&oid, &d) in oids.iter().zip(dist_buf.iter()) {
                if oid == exclude {
                    continue;
                }
                metrics.objects_processed += 1;
                metrics.by_kind[rnn].objects_processed += 1;
                if d < radius {
                    return false;
                }
            }
        }
        true
    }

    /// Verify engine invariants plus server registry consistency (test
    /// helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.engine.check_invariants();
        let mut engine_queries = 0usize;
        for (&id, &kind) in &self.kinds {
            assert!(id.0 < RESERVED_ID_BASE, "user id in the reserved band");
            if kind == QueryKind::Rnn {
                assert!(self.rnn.contains_key(&id), "RNN registration without state");
                for sector in 0..SECTORS {
                    let st = self
                        .engine
                        .query_state(Self::sector_id(id, sector))
                        .expect("sector query installed");
                    assert_eq!(st.spec.kind(), QueryKind::Rnn);
                }
                engine_queries += SECTORS as usize;
            } else {
                let st = self.engine.query_state(id).expect("registered query");
                assert_eq!(st.spec.kind(), kind, "registry kind out of sync");
                engine_queries += 1;
            }
        }
        assert_eq!(self.rnn.len(), {
            self.kinds
                .values()
                .filter(|&&k| k == QueryKind::Rnn)
                .count()
        });
        assert_eq!(
            engine_queries,
            self.engine.query_count(),
            "stray engine queries"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggregateFn;
    use cpm_geom::Rect;

    fn small_server(shards: usize) -> CpmServer {
        let mut s = CpmServerBuilder::new(16).shards(shards).build();
        s.populate((0..40u32).map(|i| {
            let t = i as f64 / 40.0;
            (ObjectId(i), Point::new(t, (t * 7.0) % 1.0))
        }));
        s
    }

    #[test]
    fn typed_installs_reject_registry_misuse() {
        let mut s = small_server(1);
        let h = s.install_knn(QueryId(0), Point::new(0.5, 0.5), 3).unwrap();
        assert_eq!(
            s.install_range(QueryId(0), RangeQuery::circle(Point::new(0.5, 0.5), 0.1))
                .unwrap_err(),
            CpmError::DuplicateQuery(QueryId(0))
        );
        assert_eq!(
            s.install_knn(QueryId(1), Point::new(0.5, 0.5), 0)
                .unwrap_err(),
            CpmError::InvalidK(QueryId(1))
        );
        assert_eq!(
            s.install_knn(QueryId(RESERVED_ID_BASE), Point::new(0.5, 0.5), 1)
                .unwrap_err(),
            CpmError::ReservedId(QueryId(RESERVED_ID_BASE))
        );
        // Kind confusion through the untyped surface is a typed error...
        assert_eq!(
            s.update_spec(
                QueryId(0),
                AnyQuerySpec::Range(RangeQuery::circle(Point::new(0.1, 0.1), 0.1))
            )
            .unwrap_err(),
            CpmError::KindMismatch {
                id: QueryId(0),
                expected: QueryKind::Range,
                actual: QueryKind::Knn,
            }
        );
        // ...while the typed surface keeps it out of the program entirely
        // (update_knn only accepts a KnnHandle).
        assert_eq!(s.update_knn(h, Point::new(0.2, 0.2)).unwrap().len(), 3);
        assert_eq!(
            s.terminate(QueryId(9)).unwrap_err(),
            CpmError::UnknownQuery(QueryId(9))
        );
        s.terminate(h).unwrap();
        assert_eq!(
            s.update_knn(h, Point::new(0.3, 0.3)).unwrap_err(),
            CpmError::UnknownQuery(QueryId(0))
        );
        s.check_invariants();
    }

    #[test]
    fn every_kind_coexists_on_one_grid() {
        for shards in [1usize, 4] {
            let mut s = small_server(shards);
            let knn = s.install_knn(QueryId(0), Point::new(0.5, 0.5), 3).unwrap();
            let range = s
                .install_range(
                    QueryId(1),
                    RangeQuery::rect(Rect::new(Point::new(0.2, 0.2), Point::new(0.7, 0.7))),
                )
                .unwrap();
            let ann = s
                .install_ann(
                    QueryId(2),
                    AnnQuery::new(
                        vec![Point::new(0.3, 0.3), Point::new(0.6, 0.6)],
                        AggregateFn::Sum,
                    ),
                    2,
                )
                .unwrap();
            let con = s
                .install_constrained(
                    QueryId(3),
                    ConstrainedQuery::northeast_of(Point::new(0.4, 0.4)),
                    2,
                )
                .unwrap();
            let rnn = s.install_rnn(QueryId(4), Point::new(0.55, 0.45)).unwrap();
            assert_eq!(s.query_count(), 5);
            assert_eq!(s.kind_of(QueryId(4)), Some(QueryKind::Rnn));
            assert!(s.result(knn).is_some());
            assert!(s.result(range).is_some());
            assert!(s.result(ann).is_some());
            assert!(s.result(con).is_some());
            assert!(s.result(QueryId(4)).is_none(), "RNN results are sets");
            assert!(s.rnn_result(rnn).is_some());
            s.check_invariants();

            // One cycle, one ingest: updates_applied counts each event
            // exactly once no matter how many kinds are registered.
            s.take_metrics();
            let events: Vec<ObjectEvent> = (0..10u32)
                .map(|i| ObjectEvent::Move {
                    id: ObjectId(i),
                    to: Point::new(0.9 - i as f64 / 40.0, 0.1),
                })
                .collect();
            s.process_cycle(&events, &[]).unwrap();
            let m = s.take_metrics();
            assert_eq!(m.updates_applied, events.len() as u64);
            s.check_invariants();

            s.terminate(rnn).unwrap();
            s.terminate(con).unwrap();
            assert_eq!(s.query_count(), 3);
            s.check_invariants();
        }
    }

    #[test]
    fn event_batches_are_validated_before_running() {
        let mut s = small_server(2);
        let _ = s.install_knn(QueryId(0), Point::new(0.5, 0.5), 2).unwrap();
        let epoch = s.epoch();
        // Unknown update: rejected, cycle did not run.
        let err = s
            .process_cycle(
                &[],
                &[SpecEvent::Update {
                    id: QueryId(7),
                    spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.1, 0.1))),
                }],
            )
            .unwrap_err();
        assert_eq!(err, CpmError::UnknownQuery(QueryId(7)));
        assert_eq!(
            s.epoch(),
            epoch,
            "failed batches must not advance the epoch"
        );
        // Two events for one id in a batch would make delta ordering
        // ambiguous: rejected up front.
        assert_eq!(
            s.process_cycle(
                &[],
                &[
                    SpecEvent::Install {
                        id: QueryId(1),
                        spec: AnyQuerySpec::Range(RangeQuery::circle(Point::new(0.4, 0.4), 0.2)),
                        k: 1,
                    },
                    SpecEvent::Update {
                        id: QueryId(1),
                        spec: AnyQuerySpec::Range(RangeQuery::circle(Point::new(0.5, 0.5), 0.3)),
                    },
                ],
            )
            .unwrap_err(),
            CpmError::DuplicateQuery(QueryId(1))
        );
        // A batched install lands in the registry, with range k normalized
        // to the unbounded sentinel.
        let changed = s
            .process_cycle(
                &[],
                &[SpecEvent::Install {
                    id: QueryId(1),
                    spec: AnyQuerySpec::Range(RangeQuery::circle(Point::new(0.5, 0.5), 0.3)),
                    k: 1, // normalized
                }],
            )
            .unwrap();
        assert_eq!(changed, vec![QueryId(1)]);
        let st = s.query_state(QueryId(1)).unwrap();
        assert_eq!(st.k(), RangeQuery::UNBOUNDED_K);
        assert_eq!(
            s.process_cycle(
                &[],
                &[SpecEvent::Install {
                    id: QueryId(1),
                    spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.5, 0.5))),
                    k: 1,
                }],
            )
            .unwrap_err(),
            CpmError::DuplicateQuery(QueryId(1))
        );
        // Terminate through the batch updates the registry.
        s.process_cycle(&[], &[SpecEvent::Terminate { id: QueryId(1) }])
            .unwrap();
        assert_eq!(s.kind_of(QueryId(1)), None);
        // Composite RNN registrations cannot be addressed through the
        // single-spec event surface.
        let _ = s.install_rnn(QueryId(3), Point::new(0.5, 0.5)).unwrap();
        assert_eq!(
            s.process_cycle(&[], &[SpecEvent::Terminate { id: QueryId(3) }])
                .unwrap_err(),
            CpmError::CompositeQuery(QueryId(3))
        );
        assert_eq!(
            s.update_spec(
                QueryId(3),
                AnyQuerySpec::Rnn(RnnQuery::new(Point::new(0.1, 0.1), 0))
            )
            .unwrap_err(),
            CpmError::CompositeQuery(QueryId(3))
        );
        s.terminate(QueryId(3)).unwrap();
        s.check_invariants();
    }

    #[test]
    fn per_kind_metrics_partition_the_flat_counters() {
        let mut s = small_server(1);
        let _ = s.install_knn(QueryId(0), Point::new(0.5, 0.5), 4).unwrap();
        let _ = s
            .install_range(
                QueryId(1),
                RangeQuery::rect(Rect::new(Point::new(0.1, 0.1), Point::new(0.6, 0.6))),
            )
            .unwrap();
        let _ = s.install_rnn(QueryId(2), Point::new(0.4, 0.6)).unwrap();
        for step in 0..8u32 {
            let events: Vec<ObjectEvent> = (0..8u32)
                .map(|i| ObjectEvent::Move {
                    id: ObjectId(i * 4 % 40),
                    to: Point::new(
                        (step as f64 * 0.11 + i as f64 * 0.07) % 1.0,
                        (step as f64 * 0.05 + i as f64 * 0.13) % 1.0,
                    ),
                })
                .collect();
            s.process_cycle(&events, &[]).unwrap();
        }
        let m = s.metrics();
        assert!(m.for_kind(QueryKind::Knn).computations >= 1);
        assert!(m.for_kind(QueryKind::Range).computations >= 1);
        assert!(m.for_kind(QueryKind::Rnn).computations >= 6);
        // The by-kind breakdown partitions every query-side counter.
        let sum = |f: fn(&cpm_grid::KindMetrics) -> u64| -> u64 {
            QueryKind::ALL.iter().map(|&k| f(m.for_kind(k))).sum()
        };
        assert_eq!(sum(|k| k.computations), m.computations);
        assert_eq!(sum(|k| k.cell_accesses), m.cell_accesses);
        assert_eq!(sum(|k| k.objects_processed), m.objects_processed);
        assert_eq!(sum(|k| k.heap_pushes), m.heap_pushes);
        assert_eq!(sum(|k| k.heap_pops), m.heap_pops);
        assert_eq!(sum(|k| k.recomputations), m.recomputations);
        assert_eq!(sum(|k| k.merge_resolutions), m.merge_resolutions);
    }

    #[test]
    fn delta_cycles_never_leak_internal_ids() {
        let mut s = CpmServerBuilder::new(16).shards(2).deltas(true).build();
        assert!(s.collects_deltas());
        s.populate((0..30u32).map(|i| (ObjectId(i), Point::new(i as f64 / 30.0, 0.5))));
        let _ = s.install_knn(QueryId(0), Point::new(0.05, 0.5), 3).unwrap();
        let _ = s.install_rnn(QueryId(1), Point::new(0.8, 0.5)).unwrap();
        let mut out = CycleDeltas::default();
        for step in 0..6u32 {
            s.process_cycle_with_deltas_into(
                &[ObjectEvent::Move {
                    id: ObjectId(step % 30),
                    to: Point::new(0.8 - step as f64 / 60.0, 0.5),
                }],
                &[],
                &mut out,
            )
            .unwrap();
            for qid in &out.changed {
                assert!(qid.0 < RESERVED_ID_BASE, "internal id leaked: {qid}");
            }
            for (qid, _) in &out.deltas {
                assert!(qid.0 < RESERVED_ID_BASE, "internal delta leaked: {qid}");
            }
        }
        s.check_invariants();
    }
}
