//! Wire codecs ([`Encode`]/[`Decode`]) for the core query, delta and
//! policy types, so snapshots and journal records can carry them across
//! the durability boundary.
//!
//! Every invariant a constructor would enforce by panicking — finite
//! coordinates, non-empty ANN point sets, sector indices below the wedge
//! count, ordered regrid bounds — is re-checked here and reported as a
//! typed [`WireError::Invalid`] with the offending byte offset, so a
//! corrupted artifact can never smuggle a panic (or a silently wrong
//! value) into a recovered engine.

use cpm_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::ann::{AggregateFn, AnnQuery};
use crate::any::AnyQuerySpec;
use crate::constrained::ConstrainedQuery;
use crate::delta::{CycleDeltas, DeltaBuf, NeighborDelta};
use crate::engine::{PointQuery, SpecEvent};
use crate::neighbors::Neighbor;
use crate::range::{RangeQuery, Region};
use crate::regrid::{AutoRegridConfig, RegridPolicy};
use crate::rnn::RnnQuery;

impl Encode for Neighbor {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        w.put_f64(self.dist);
    }
}

impl Decode for Neighbor {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = cpm_geom::ObjectId::decode(r)?;
        let at = r.offset();
        let dist = r.take_f64()?;
        // Result distances are never NaN (the lists sort by partial_cmp),
        // but +∞ is legitimate transient state for restricted specs.
        if dist.is_nan() {
            return Err(WireError::Invalid {
                offset: at,
                what: "NaN neighbor distance",
            });
        }
        Ok(Neighbor { id, dist })
    }
}

/// `DeltaBuf` encodes exactly like the slice it wraps; decoding pushes
/// entries back one by one (re-spilling past the inline capacity).
impl<T: Copy + Default + Encode> Encode for DeltaBuf<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(u32::try_from(self.len()).expect("delta component fits a u32 length prefix"));
        for item in self.as_slice() {
            item.encode(w);
        }
    }
}

impl<T: Copy + Default + Decode> Decode for DeltaBuf<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.take_len(1)?;
        let mut buf = DeltaBuf::new();
        for _ in 0..len {
            buf.push(T::decode(r)?);
        }
        Ok(buf)
    }
}

impl Encode for NeighborDelta {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        self.added.encode(w);
        self.removed.encode(w);
        self.reordered.encode(w);
    }
}

impl Decode for NeighborDelta {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NeighborDelta {
            epoch: r.take_u64()?,
            added: DeltaBuf::decode(r)?,
            removed: DeltaBuf::decode(r)?,
            reordered: DeltaBuf::decode(r)?,
        })
    }
}

impl Encode for CycleDeltas {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        self.changed.encode(w);
        self.deltas.encode(w);
    }
}

impl Decode for CycleDeltas {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CycleDeltas {
            epoch: r.take_u64()?,
            changed: Vec::decode(r)?,
            deltas: Vec::decode(r)?,
        })
    }
}

impl Encode for PointQuery {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for PointQuery {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PointQuery(cpm_geom::Point::decode(r)?))
    }
}

impl Encode for Region {
    fn encode(&self, w: &mut Writer) {
        match *self {
            Region::Rect(rect) => {
                w.put_u8(0);
                rect.encode(w);
            }
            Region::Circle { center, radius } => {
                w.put_u8(1);
                center.encode(w);
                w.put_f64(radius);
            }
        }
    }
}

impl Decode for Region {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        match r.take_u8()? {
            0 => Ok(Region::Rect(cpm_geom::Rect::decode(r)?)),
            1 => {
                let center = cpm_geom::Point::decode(r)?;
                let radius_at = r.offset();
                let radius = r.take_f64()?;
                if !radius.is_finite() || radius < 0.0 {
                    return Err(WireError::Invalid {
                        offset: radius_at,
                        what: "circle radius must be finite and non-negative",
                    });
                }
                Ok(Region::Circle { center, radius })
            }
            _ => Err(WireError::Invalid {
                offset: at,
                what: "unknown region tag",
            }),
        }
    }
}

impl Encode for RangeQuery {
    fn encode(&self, w: &mut Writer) {
        self.region.encode(w);
    }
}

impl Decode for RangeQuery {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RangeQuery {
            region: Region::decode(r)?,
        })
    }
}

impl Encode for AggregateFn {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            AggregateFn::Sum => 0,
            AggregateFn::Min => 1,
            AggregateFn::Max => 2,
        });
    }
}

impl Decode for AggregateFn {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        match r.take_u8()? {
            0 => Ok(AggregateFn::Sum),
            1 => Ok(AggregateFn::Min),
            2 => Ok(AggregateFn::Max),
            _ => Err(WireError::Invalid {
                offset: at,
                what: "unknown aggregate-function tag",
            }),
        }
    }
}

impl Encode for AnnQuery {
    fn encode(&self, w: &mut Writer) {
        self.points().to_vec().encode(w);
        self.aggregate().encode(w);
    }
}

impl Decode for AnnQuery {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        let points: Vec<cpm_geom::Point> = Vec::decode(r)?;
        if points.is_empty() {
            return Err(WireError::Invalid {
                offset: at,
                what: "ANN query needs at least one point",
            });
        }
        let f = AggregateFn::decode(r)?;
        Ok(AnnQuery::new(points, f))
    }
}

impl Encode for ConstrainedQuery {
    fn encode(&self, w: &mut Writer) {
        self.q.encode(w);
        self.region.encode(w);
    }
}

impl Decode for ConstrainedQuery {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ConstrainedQuery {
            q: cpm_geom::Point::decode(r)?,
            region: cpm_geom::Rect::decode(r)?,
        })
    }
}

impl Encode for RnnQuery {
    fn encode(&self, w: &mut Writer) {
        self.q().encode(w);
        w.put_u8(self.sector() as u8);
    }
}

impl Decode for RnnQuery {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let q = cpm_geom::Point::decode(r)?;
        let at = r.offset();
        let sector = r.take_u8()? as u32;
        // Six 60° wedges partition the plane (Lemma in Section 6 of the
        // paper); RnnQuery::new panics past that.
        if sector >= 6 {
            return Err(WireError::Invalid {
                offset: at,
                what: "reverse-NN sector index out of range",
            });
        }
        Ok(RnnQuery::new(q, sector))
    }
}

impl Encode for AnyQuerySpec {
    fn encode(&self, w: &mut Writer) {
        match self {
            AnyQuerySpec::Knn(q) => {
                w.put_u8(0);
                q.encode(w);
            }
            AnyQuerySpec::Range(q) => {
                w.put_u8(1);
                q.encode(w);
            }
            AnyQuerySpec::Ann(q) => {
                w.put_u8(2);
                q.encode(w);
            }
            AnyQuerySpec::Constrained(q) => {
                w.put_u8(3);
                q.encode(w);
            }
            AnyQuerySpec::Rnn(q) => {
                w.put_u8(4);
                q.encode(w);
            }
        }
    }
}

impl Decode for AnyQuerySpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        match r.take_u8()? {
            0 => Ok(AnyQuerySpec::Knn(PointQuery::decode(r)?)),
            1 => Ok(AnyQuerySpec::Range(RangeQuery::decode(r)?)),
            2 => Ok(AnyQuerySpec::Ann(AnnQuery::decode(r)?)),
            3 => Ok(AnyQuerySpec::Constrained(ConstrainedQuery::decode(r)?)),
            4 => Ok(AnyQuerySpec::Rnn(RnnQuery::decode(r)?)),
            _ => Err(WireError::Invalid {
                offset: at,
                what: "unknown query-spec tag",
            }),
        }
    }
}

impl<S: Encode> Encode for SpecEvent<S> {
    fn encode(&self, w: &mut Writer) {
        match self {
            SpecEvent::Install { id, spec, k } => {
                w.put_u8(0);
                id.encode(w);
                spec.encode(w);
                k.encode(w);
            }
            SpecEvent::Update { id, spec } => {
                w.put_u8(1);
                id.encode(w);
                spec.encode(w);
            }
            SpecEvent::Terminate { id } => {
                w.put_u8(2);
                id.encode(w);
            }
        }
    }
}

impl<S: Decode> Decode for SpecEvent<S> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        match r.take_u8()? {
            0 => {
                let id = cpm_geom::QueryId::decode(r)?;
                let spec = S::decode(r)?;
                let k_at = r.offset();
                let k = usize::decode(r)?;
                if k == 0 {
                    return Err(WireError::Invalid {
                        offset: k_at,
                        what: "install event with k = 0",
                    });
                }
                Ok(SpecEvent::Install { id, spec, k })
            }
            1 => Ok(SpecEvent::Update {
                id: cpm_geom::QueryId::decode(r)?,
                spec: S::decode(r)?,
            }),
            2 => Ok(SpecEvent::Terminate {
                id: cpm_geom::QueryId::decode(r)?,
            }),
            _ => Err(WireError::Invalid {
                offset: at,
                what: "unknown query-event tag",
            }),
        }
    }
}

impl Encode for AutoRegridConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.min_dim);
        w.put_u32(self.max_dim);
        w.put_u64(self.check_every);
        w.put_f64(self.hysteresis);
        w.put_u64(self.cooldown);
        w.put_f64(self.skew_threshold);
    }
}

impl Decode for AutoRegridConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        let cfg = AutoRegridConfig {
            min_dim: r.take_u32()?,
            max_dim: r.take_u32()?,
            check_every: r.take_u64()?,
            hysteresis: r.take_f64()?,
            cooldown: r.take_u64()?,
            skew_threshold: r.take_f64()?,
        };
        if cfg.min_dim < 1 || cfg.min_dim > cfg.max_dim || cfg.max_dim > 4096 {
            return Err(WireError::Invalid {
                offset: at,
                what: "regrid dimension bounds out of order or out of range",
            });
        }
        if cfg.check_every < 1 {
            return Err(WireError::Invalid {
                offset: at,
                what: "regrid check interval must be at least one cycle",
            });
        }
        if !(cfg.hysteresis.is_finite() && cfg.hysteresis > 1.0) {
            return Err(WireError::Invalid {
                offset: at,
                what: "regrid hysteresis must be finite and greater than 1",
            });
        }
        // `∞` is a legal threshold (it disables the occupancy signal);
        // NaN and sub-unit values are not.
        if cfg.skew_threshold.is_nan() || cfg.skew_threshold < 1.0 {
            return Err(WireError::Invalid {
                offset: at,
                what: "regrid skew threshold must be at least 1",
            });
        }
        Ok(cfg)
    }
}

impl Encode for RegridPolicy {
    fn encode(&self, w: &mut Writer) {
        match self {
            RegridPolicy::Manual => w.put_u8(0),
            RegridPolicy::Auto(cfg) => {
                w.put_u8(1);
                cfg.encode(w);
            }
        }
    }
}

impl Decode for RegridPolicy {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.offset();
        match r.take_u8()? {
            0 => Ok(RegridPolicy::Manual),
            1 => Ok(RegridPolicy::Auto(AutoRegridConfig::decode(r)?)),
            _ => Err(WireError::Invalid {
                offset: at,
                what: "unknown regrid-policy tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_geom::{ObjectId, Point, QueryId, Rect};

    fn n(id: u32, dist: f64) -> Neighbor {
        Neighbor {
            id: ObjectId(id),
            dist,
        }
    }

    #[test]
    fn specs_roundtrip() {
        let specs = vec![
            AnyQuerySpec::Knn(PointQuery(Point::new(0.25, 0.75))),
            AnyQuerySpec::Range(RangeQuery::circle(Point::new(0.5, 0.5), 0.1)),
            AnyQuerySpec::Range(RangeQuery::rect(Rect::new(
                Point::new(0.1, 0.2),
                Point::new(0.3, 0.4),
            ))),
            AnyQuerySpec::Ann(AnnQuery::new(
                vec![Point::new(0.1, 0.1), Point::new(0.9, 0.2)],
                AggregateFn::Max,
            )),
            AnyQuerySpec::Constrained(ConstrainedQuery::northeast_of(Point::new(0.4, 0.4))),
            AnyQuerySpec::Rnn(RnnQuery::new(Point::new(0.6, 0.6), 5)),
        ];
        let got = Vec::<AnyQuerySpec>::decode_all(&specs.encode_to_vec()).unwrap();
        assert_eq!(got.len(), specs.len());
        for (g, s) in got.iter().zip(&specs) {
            // Specs lack PartialEq; bit-compare their encodings instead.
            assert_eq!(g.encode_to_vec(), s.encode_to_vec());
        }
    }

    #[test]
    fn deltas_roundtrip_bit_exact() {
        let mut delta = NeighborDelta {
            epoch: 9,
            ..Default::default()
        };
        // Push past the inline capacity so the spill path decodes too.
        for i in 0..7 {
            delta.added.push(n(i, 0.125 * f64::from(i)));
        }
        delta.removed.push(ObjectId(40));
        delta.reordered.push(n(41, 0.5));
        let batch = CycleDeltas {
            epoch: 9,
            changed: vec![QueryId(1), QueryId(3)],
            deltas: vec![(QueryId(1), delta.clone())],
        };
        let got = CycleDeltas::decode_all(&batch.encode_to_vec()).unwrap();
        assert_eq!(got, batch);
        assert_eq!(
            NeighborDelta::decode_all(&delta.encode_to_vec()).unwrap(),
            delta
        );
    }

    #[test]
    fn events_and_policies_roundtrip() {
        let events: Vec<SpecEvent<AnyQuerySpec>> = vec![
            SpecEvent::Install {
                id: QueryId(1),
                spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.2, 0.3))),
                k: 4,
            },
            SpecEvent::Update {
                id: QueryId(1),
                spec: AnyQuerySpec::Knn(PointQuery(Point::new(0.4, 0.3))),
            },
            SpecEvent::Terminate { id: QueryId(1) },
        ];
        let got = Vec::<SpecEvent<AnyQuerySpec>>::decode_all(&events.encode_to_vec()).unwrap();
        assert_eq!(got.len(), 3);
        assert!(matches!(got[0], SpecEvent::Install { k: 4, .. }));
        assert!(matches!(got[2], SpecEvent::Terminate { id } if id == QueryId(1)));

        for policy in [RegridPolicy::Manual, RegridPolicy::auto()] {
            let got = RegridPolicy::decode_all(&policy.encode_to_vec()).unwrap();
            assert_eq!(got, policy);
        }
    }

    #[test]
    fn corrupted_values_are_typed_errors() {
        // k = 0 install.
        let ev = SpecEvent::Install {
            id: QueryId(1),
            spec: PointQuery(Point::new(0.1, 0.1)),
            k: 1,
        };
        let mut bytes = ev.encode_to_vec();
        let klen = bytes.len();
        bytes[klen - 8..].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            SpecEvent::<PointQuery>::decode_all(&bytes),
            Err(WireError::Invalid { .. })
        ));
        // Negative circle radius.
        let mut w = Writer::new();
        w.put_u8(1);
        Point::new(0.5, 0.5).encode(&mut w);
        w.put_f64(-0.25);
        assert!(matches!(
            Region::decode_all(w.as_slice()),
            Err(WireError::Invalid { .. })
        ));
        // Empty ANN point set.
        let mut w = Writer::new();
        w.put_u32(0);
        AggregateFn::Sum.encode(&mut w);
        assert!(matches!(
            AnnQuery::decode_all(w.as_slice()),
            Err(WireError::Invalid { .. })
        ));
        // Sector ≥ 6.
        let mut w = Writer::new();
        Point::new(0.5, 0.5).encode(&mut w);
        w.put_u8(6);
        assert!(matches!(
            RnnQuery::decode_all(w.as_slice()),
            Err(WireError::Invalid { .. })
        ));
        // NaN neighbor distance.
        let mut w = Writer::new();
        ObjectId(1).encode(&mut w);
        w.put_f64(f64::NAN);
        assert!(matches!(
            Neighbor::decode_all(w.as_slice()),
            Err(WireError::Invalid { .. })
        ));
        // Inverted regrid bounds.
        let cfg = AutoRegridConfig {
            min_dim: 64,
            max_dim: 8,
            ..Default::default()
        };
        assert!(matches!(
            AutoRegridConfig::decode_all(&cfg.encode_to_vec()),
            Err(WireError::Invalid { .. })
        ));
    }
}
