//! The `best_NN` list: the k best neighbors found so far, sorted by
//! distance (Table 3.1).
//!
//! The paper's analysis assumes a balanced tree (`log k` updates); for the
//! experimental range `k ≤ 256` a sorted vector with binary-search insertion
//! is faster in practice (see DESIGN.md §3). Membership tests — the hottest
//! operation during update handling — are O(1) through a side hash set.

use cpm_geom::{FastHashSet, ObjectId};

/// One result entry: object id plus its (aggregate) distance to the query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Neighbor {
    /// The object.
    pub id: ObjectId,
    /// Its current (aggregate) distance to the query.
    pub dist: f64,
}

/// A capacity-`k` list of the best neighbors found so far, ascending by
/// `(dist, id)`; ties broken by id for determinism.
#[derive(Debug, Clone, Default)]
pub struct NeighborList {
    k: usize,
    entries: Vec<Neighbor>,
    members: FastHashSet<ObjectId>,
}

impl NeighborList {
    /// An empty list with capacity `k ≥ 1`.
    ///
    /// The allocation hint is bounded: range subscriptions use a huge `k`
    /// as an "unbounded result" sentinel ([`crate::range::RangeQuery`]),
    /// and the entry vector must grow to the actual result size, not to
    /// the sentinel.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            k,
            entries: Vec::with_capacity(k.min(256)),
            members: FastHashSet::default(),
        }
    }

    /// The capacity `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of neighbors (≤ k).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no neighbors are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when the list holds `k` neighbors.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.k
    }

    /// `best_dist`: distance of the k-th neighbor, or `+∞` while the list
    /// is not yet full (so every candidate qualifies, as in Figure 3.4
    /// line 1).
    #[inline]
    pub fn best_dist(&self) -> f64 {
        if self.is_full() {
            self.entries[self.k - 1].dist
        } else {
            f64::INFINITY
        }
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, id: ObjectId) -> bool {
        self.members.contains(&id)
    }

    /// The neighbors, ascending by distance.
    #[inline]
    pub fn neighbors(&self) -> &[Neighbor] {
        &self.entries
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.members.clear();
    }

    fn insertion_point(&self, n: Neighbor) -> usize {
        self.entries
            .partition_point(|e| (e.dist, e.id) < (n.dist, n.id))
    }

    /// Offer a candidate: inserted if the list is not full or if it beats
    /// the current k-th neighbor (which is then evicted). Returns `true`
    /// if the list changed.
    ///
    /// # Panics
    /// Debug-panics if `id` is already a member — callers distinguish
    /// candidate insertion from [`NeighborList::update_dist`].
    pub fn offer(&mut self, id: ObjectId, dist: f64) -> bool {
        debug_assert!(!self.contains(id), "offer of existing member {id}");
        let n = Neighbor { id, dist };
        if self.is_full() {
            let last = self.entries[self.k - 1];
            if (dist, id) >= (last.dist, last.id) {
                return false;
            }
            self.entries.pop();
            self.members.remove(&last.id);
        }
        let at = self.insertion_point(n);
        self.entries.insert(at, n);
        self.members.insert(id);
        true
    }

    /// Remove a member (an outgoing NN). Returns its entry if present.
    pub fn remove(&mut self, id: ObjectId) -> Option<Neighbor> {
        if !self.members.remove(&id) {
            return None;
        }
        let idx = self
            .entries
            .iter()
            .position(|e| e.id == id)
            .expect("member set out of sync");
        Some(self.entries.remove(idx))
    }

    /// Update the stored distance of a member that moved but remains in the
    /// result ("update the order in `q.best_NN`", Figure 3.8 line 9).
    /// Returns the replaced entry (with its previous distance) — the delta
    /// path logs it as the cycle-start state.
    ///
    /// # Panics
    /// Panics if `id` is not a member.
    pub fn update_dist(&mut self, id: ObjectId, dist: f64) -> Neighbor {
        let old = self.remove(id).expect("update_dist of non-member");
        let at = self.insertion_point(Neighbor { id, dist });
        self.entries.insert(at, Neighbor { id, dist });
        self.members.insert(id);
        old
    }

    /// Rebuild from an iterator of candidates, keeping the best `k`.
    /// Used by the merge step of update handling (Figure 3.8 lines 19–20).
    pub fn rebuild_from<I: IntoIterator<Item = Neighbor>>(&mut self, candidates: I) {
        self.clear();
        let mut all: Vec<Neighbor> = candidates.into_iter().collect();
        all.sort_unstable_by(|a, b| {
            (a.dist, a.id)
                .partial_cmp(&(b.dist, b.id))
                .expect("distances are never NaN")
        });
        all.dedup_by_key(|n| n.id);
        all.truncate(self.k);
        for n in &all {
            self.members.insert(n.id);
        }
        self.entries = all;
    }

    /// Verify internal invariants (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert!(self.entries.len() <= self.k);
        assert_eq!(self.entries.len(), self.members.len());
        for w in self.entries.windows(2) {
            assert!(
                (w[0].dist, w[0].id) <= (w[1].dist, w[1].id),
                "entries out of order"
            );
        }
        for e in &self.entries {
            assert!(self.members.contains(&e.id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fills_then_evicts_worst() {
        let mut l = NeighborList::new(2);
        assert_eq!(l.best_dist(), f64::INFINITY);
        assert!(l.offer(ObjectId(1), 0.5));
        assert!(l.offer(ObjectId(2), 0.3));
        assert!(l.is_full());
        assert_eq!(l.best_dist(), 0.5);
        // Worse candidate rejected.
        assert!(!l.offer(ObjectId(3), 0.6));
        // Better candidate evicts the current 2nd.
        assert!(l.offer(ObjectId(4), 0.1));
        assert_eq!(l.best_dist(), 0.3);
        assert!(!l.contains(ObjectId(1)));
        l.check_invariants();
    }

    #[test]
    fn remove_and_update_dist() {
        let mut l = NeighborList::new(3);
        l.offer(ObjectId(1), 0.1);
        l.offer(ObjectId(2), 0.2);
        l.offer(ObjectId(3), 0.3);
        l.update_dist(ObjectId(1), 0.25);
        assert_eq!(l.neighbors()[1].id, ObjectId(1));
        let removed = l.remove(ObjectId(2)).unwrap();
        assert_eq!(removed.dist, 0.2);
        assert_eq!(l.len(), 2);
        assert_eq!(l.best_dist(), f64::INFINITY); // no longer full
        l.check_invariants();
    }

    #[test]
    fn ties_break_by_id() {
        let mut l = NeighborList::new(2);
        l.offer(ObjectId(9), 0.5);
        l.offer(ObjectId(3), 0.5);
        assert_eq!(l.neighbors()[0].id, ObjectId(3));
        // Equal (dist, id) worse than last => rejected.
        assert!(!l.offer(ObjectId(10), 0.5));
        // Equal dist, smaller id => accepted.
        assert!(l.offer(ObjectId(1), 0.5));
        assert_eq!(l.neighbors()[1].id, ObjectId(3));
    }

    #[test]
    fn rebuild_keeps_best_k_and_dedups() {
        let mut l = NeighborList::new(2);
        l.rebuild_from(vec![
            Neighbor {
                id: ObjectId(1),
                dist: 0.9,
            },
            Neighbor {
                id: ObjectId(2),
                dist: 0.1,
            },
            Neighbor {
                id: ObjectId(2),
                dist: 0.1,
            },
            Neighbor {
                id: ObjectId(3),
                dist: 0.5,
            },
        ]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.neighbors()[0].id, ObjectId(2));
        assert_eq!(l.neighbors()[1].id, ObjectId(3));
        l.check_invariants();
    }

    proptest! {
        #[test]
        fn offer_stream_matches_sort(
            k in 1usize..8,
            dists in proptest::collection::vec(0.0..1.0f64, 0..64),
        ) {
            let mut l = NeighborList::new(k);
            for (i, d) in dists.iter().enumerate() {
                l.offer(ObjectId(i as u32), *d);
                l.check_invariants();
            }
            let mut expect: Vec<(f64, u32)> = dists
                .iter()
                .enumerate()
                .map(|(i, d)| (*d, i as u32))
                .collect();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            expect.truncate(k);
            let got: Vec<(f64, u32)> =
                l.neighbors().iter().map(|n| (n.dist, n.id.0)).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
