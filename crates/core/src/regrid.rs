//! Online re-gridding policy: when should the engine change its cell side
//! `δ`?
//!
//! The Section 4.1 cost model makes CPM's per-cycle cost an explicit
//! function of `δ` given the observed workload (object count `N`, query
//! count `n`, result size `k`, agilities `f_obj`/`f_qry`) — yet a grid
//! built at a fixed `δ` serves a workload that grows, shrinks or drifts at
//! a stale resolution forever. [`RegridPolicy`] closes that loop:
//!
//! * [`RegridPolicy::Manual`] — never re-grid automatically; the operator
//!   calls `regrid_to` explicitly.
//! * [`RegridPolicy::Auto`] — at cycle boundaries (every
//!   [`AutoRegridConfig::check_every`] cycles), plug the *observed*
//!   workload into the [`CostModel`], find the power-of-two resolution
//!   minimizing the predicted per-cycle cost, and re-grid when the
//!   predicted improvement clears a **hysteresis** factor — so an
//!   oscillating load sitting near a cost-curve crossover does not thrash
//!   — and a **cooldown** has elapsed since the last re-grid.
//!
//! Agilities are not knowable a priori, so the engine feeds every cycle's
//! event-batch sizes into [`RegridController::observe_cycle`], which keeps
//! exponential moving averages of `f_obj` and `f_qry`. All controller
//! inputs are functions of the update stream and the engine's own state —
//! never of thread scheduling — so sharded engines make **identical
//! decisions at every shard count**, keeping the determinism contract of
//! [`crate::ShardedCpmEngine`].
//!
//! The paper's uniform-data model alone *underestimates* the benefit of
//! refining under skew: cell occupancy near a hotspot is far above
//! `N·δ²`, so a concentration spike that leaves `N` unchanged looks free.
//! The controller therefore also folds the grid's occupancy signals
//! ([`cpm_grid::GridStats`]: hot-cell maximum and occupied-cell count,
//! both maintained incrementally by the index backends) into a **skew
//! EMA** via [`RegridController::observe_occupancy`]. Only skew beyond
//! [`AutoRegridConfig::skew_threshold`] reaches the model — a dead band
//! that keeps mildly non-uniform workloads on the paper-exact uniform
//! prediction — and the hysteresis bar still applies on top, so the
//! policy errs toward staying put, never toward thrashing.

use crate::analysis::CostModel;
use cpm_grid::GridStats;

/// Default smallest resolution the auto policy will pick.
const DEFAULT_MIN_DIM: u32 = 16;
/// Default largest resolution the auto policy will pick (the paper's
/// largest evaluated granularity).
const DEFAULT_MAX_DIM: u32 = 1024;
/// Default evaluation period, in processing cycles.
const DEFAULT_CHECK_EVERY: u64 = 8;
/// Default hysteresis: predicted cost at the current `δ` must exceed the
/// predicted cost at the candidate `δ` by this factor.
const DEFAULT_HYSTERESIS: f64 = 1.2;
/// Default cooldown between applied re-grids, in processing cycles.
const DEFAULT_COOLDOWN: u64 = 16;
/// Default skew dead band: observed concentration below this factor never
/// perturbs the uniform model.
const DEFAULT_SKEW_THRESHOLD: f64 = 4.0;

/// EMA smoothing for the observed agilities.
const AGILITY_ALPHA: f64 = 0.25;

/// Cap on the instantaneous skew observation: one pathological cycle
/// (e.g. a near-empty grid) cannot swing the EMA arbitrarily.
const SKEW_CLAMP_MAX: f64 = 64.0;

/// Configuration of the cost-model-driven automatic re-grid policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoRegridConfig {
    /// Smallest candidate resolution (cells per axis).
    pub min_dim: u32,
    /// Largest candidate resolution (cells per axis).
    pub max_dim: u32,
    /// Evaluate the model every this many processing cycles.
    pub check_every: u64,
    /// Re-grid only when `predicted_cost(current) ≥ hysteresis ×
    /// predicted_cost(candidate)` (must be `> 1`): the anti-thrashing
    /// dead band for loads oscillating around a cost crossover.
    pub hysteresis: f64,
    /// Minimum number of cycles between two applied re-grids.
    pub cooldown: u64,
    /// Observed-skew dead band (must be `≥ 1`, may be
    /// [`f64::INFINITY`] to ignore occupancy entirely): the skew EMA is
    /// divided by this threshold (floored at 1) before it reaches the
    /// cost model, so only concentration beyond the threshold — a real
    /// hotspot, not sampling noise — can trigger a resolution change.
    pub skew_threshold: f64,
}

impl Default for AutoRegridConfig {
    fn default() -> Self {
        Self {
            min_dim: DEFAULT_MIN_DIM,
            max_dim: DEFAULT_MAX_DIM,
            check_every: DEFAULT_CHECK_EVERY,
            hysteresis: DEFAULT_HYSTERESIS,
            cooldown: DEFAULT_COOLDOWN,
            skew_threshold: DEFAULT_SKEW_THRESHOLD,
        }
    }
}

/// When (if ever) an engine re-grids on its own; see the
/// [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RegridPolicy {
    /// Never re-grid automatically (the default). `regrid_to` remains
    /// available for operator-driven resolution changes.
    #[default]
    Manual,
    /// Cost-model-driven automatic re-gridding.
    Auto(AutoRegridConfig),
}

impl RegridPolicy {
    /// The automatic policy with default tuning
    /// ([`AutoRegridConfig::default`]).
    pub fn auto() -> Self {
        RegridPolicy::Auto(AutoRegridConfig::default())
    }

    /// The manual policy.
    pub fn manual() -> Self {
        RegridPolicy::Manual
    }

    /// `true` for [`RegridPolicy::Auto`].
    pub fn is_auto(&self) -> bool {
        matches!(self, RegridPolicy::Auto(_))
    }

    /// Check the policy's configuration, so a bad config fails where it
    /// is written rather than inside a later `process_cycle`.
    ///
    /// # Panics
    /// For [`RegridPolicy::Auto`], panics unless
    /// `1 ≤ min_dim ≤ max_dim ≤ 4096` (the grid's supported range),
    /// `hysteresis > 1` (a dead band of 1 or less re-grids on every
    /// eligible evaluation), `check_every ≥ 1`, and `skew_threshold ≥ 1`
    /// and not NaN (`∞` disables the occupancy signal).
    pub(crate) fn validate(&self) {
        if let RegridPolicy::Auto(cfg) = self {
            assert!(
                cfg.min_dim >= 1 && cfg.min_dim <= cfg.max_dim && cfg.max_dim <= 4096,
                "auto re-grid dim range out of bounds: [{}, {}]",
                cfg.min_dim,
                cfg.max_dim
            );
            assert!(
                cfg.hysteresis > 1.0,
                "auto re-grid hysteresis must exceed 1 (got {})",
                cfg.hysteresis
            );
            assert!(cfg.check_every >= 1, "check_every must be at least 1");
            assert!(
                cfg.skew_threshold >= 1.0,
                "skew_threshold must be at least 1 (got {})",
                cfg.skew_threshold
            );
        }
    }
}

/// The per-engine decision state behind a [`RegridPolicy`]: observed
/// agilities plus the evaluation/cooldown clocks. Engines feed it once per
/// cycle and ask for a decision at the cycle boundary; everything it
/// computes is a deterministic function of the stream.
#[derive(Debug, Clone)]
pub struct RegridController {
    policy: RegridPolicy,
    /// EMA of the observed object agility `f_obj` (updates / N per cycle).
    f_obj: f64,
    /// EMA of the observed query agility `f_qry` (query events / n).
    f_qry: f64,
    /// EMA of the observed occupancy skew (hot-cell population over the
    /// uniform per-cell expectation); `1` = uniform.
    skew: f64,
    /// Whether the EMAs have seen at least one cycle.
    primed: bool,
    last_eval: u64,
    last_regrid: u64,
}

impl RegridController {
    /// A controller with the given policy and no observations yet.
    ///
    /// # Panics
    /// Panics on an invalid [`RegridPolicy::Auto`] configuration (dim
    /// range outside `1..=4096`, `hysteresis ≤ 1`, or `check_every = 0`).
    pub fn new(policy: RegridPolicy) -> Self {
        policy.validate();
        Self {
            policy,
            f_obj: 0.0,
            f_qry: 0.0,
            skew: 1.0,
            primed: false,
            last_eval: 0,
            last_regrid: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &RegridPolicy {
        &self.policy
    }

    /// Replace the policy, keeping the observed agilities.
    ///
    /// # Panics
    /// Panics on an invalid [`RegridPolicy::Auto`] configuration (dim
    /// range outside `1..=4096`, `hysteresis ≤ 1`, or `check_every = 0`).
    pub fn set_policy(&mut self, policy: RegridPolicy) {
        policy.validate();
        self.policy = policy;
    }

    /// The controller's full decision state, for snapshot capture:
    /// `(f_obj EMA, f_qry EMA, skew EMA, primed, last_eval, last_regrid)`.
    pub(crate) fn export_state(&self) -> (f64, f64, f64, bool, u64, u64) {
        (
            self.f_obj,
            self.f_qry,
            self.skew,
            self.primed,
            self.last_eval,
            self.last_regrid,
        )
    }

    /// Overwrite the decision state with a captured snapshot (the inverse
    /// of [`RegridController::export_state`]); the policy is unchanged.
    pub(crate) fn import_state(&mut self, state: (f64, f64, f64, bool, u64, u64)) {
        (
            self.f_obj,
            self.f_qry,
            self.skew,
            self.primed,
            self.last_eval,
            self.last_regrid,
        ) = state;
    }

    /// Fold one cycle's event-batch sizes into the agility EMAs.
    pub fn observe_cycle(
        &mut self,
        object_events: usize,
        query_events: usize,
        n_objects: usize,
        n_queries: usize,
    ) {
        let f_obj = object_events as f64 / n_objects.max(1) as f64;
        let f_qry = query_events as f64 / n_queries.max(1) as f64;
        if self.primed {
            self.f_obj += AGILITY_ALPHA * (f_obj - self.f_obj);
            self.f_qry += AGILITY_ALPHA * (f_qry - self.f_qry);
        } else {
            self.f_obj = f_obj;
            self.f_qry = f_qry;
            self.primed = true;
        }
    }

    /// Fold one cycle's grid-occupancy snapshot into the skew EMA. The
    /// instantaneous observation is the hot cell's population over the
    /// uniform per-cell expectation `live / total_cells`, clamped to
    /// `[1, 64]` so a near-empty grid cannot swing the average; empty
    /// grids are skipped. Index backends maintain [`GridStats`]
    /// incrementally, so engines can afford to call this every cycle.
    pub fn observe_occupancy(&mut self, stats: GridStats) {
        if stats.live_objects == 0 || stats.total_cells == 0 {
            return;
        }
        let uniform_per_cell = stats.live_objects as f64 / stats.total_cells as f64;
        let observed = (stats.hot_cell_max as f64 / uniform_per_cell).clamp(1.0, SKEW_CLAMP_MAX);
        self.skew += AGILITY_ALPHA * (observed - self.skew);
    }

    /// The skew EMA (`1` = uniform occupancy); diagnostics surface.
    #[must_use]
    pub fn observed_skew(&self) -> f64 {
        self.skew
    }

    /// The skew factor the cost model actually sees: the EMA divided by
    /// the policy's dead-band threshold, floored at 1. Manual policies
    /// (no threshold) stay on the uniform model.
    fn effective_skew(&self) -> f64 {
        match self.policy {
            RegridPolicy::Auto(cfg) => {
                let s = self.skew / cfg.skew_threshold;
                if s > 1.0 {
                    s
                } else {
                    1.0
                }
            }
            RegridPolicy::Manual => 1.0,
        }
    }

    /// The cost model for the current observation at cell side
    /// `1/dim` — also what diagnostics and tests inspect.
    pub fn model(&self, n_objects: usize, n_queries: usize, avg_k: usize, dim: u32) -> CostModel {
        CostModel {
            n_objects,
            n_queries,
            k: avg_k.max(1),
            delta: 1.0 / dim as f64,
            // Floors keep the model's δ-sensitive terms alive on quiet
            // streams: a fully static query set still pays recomputations
            // through merge failures, which the pure model prices at zero.
            f_obj: self.f_obj.clamp(0.01, 1.0),
            f_qry: self.f_qry.clamp(0.05, 1.0),
            skew: self.effective_skew(),
        }
    }

    /// Evaluate the policy at a cycle boundary (`epoch` = completed
    /// cycles). Returns the resolution to re-grid to, or `None` to stay
    /// put. Callers apply the returned dimension immediately; the
    /// controller assumes they do (it starts the cooldown clock).
    pub fn decide(
        &mut self,
        epoch: u64,
        n_objects: usize,
        n_queries: usize,
        avg_k: usize,
        current_dim: u32,
    ) -> Option<u32> {
        let RegridPolicy::Auto(cfg) = self.policy else {
            return None;
        };
        if epoch < self.last_eval.saturating_add(cfg.check_every) {
            return None;
        }
        self.last_eval = epoch;
        if n_objects == 0 || n_queries == 0 {
            return None;
        }
        let current = self.model(n_objects, n_queries, avg_k, current_dim);
        let best_dim = current.optimal_dim(cfg.min_dim, cfg.max_dim);
        if best_dim == current_dim {
            return None;
        }
        let best = CostModel {
            delta: 1.0 / best_dim as f64,
            ..current
        };
        if current.time_cycle() < cfg.hysteresis * best.time_cycle() {
            return None;
        }
        if self.last_regrid != 0 && epoch < self.last_regrid.saturating_add(cfg.cooldown) {
            return None;
        }
        self.last_regrid = epoch;
        Some(best_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "dim range out of bounds")]
    fn invalid_dim_range_fails_at_configuration_time() {
        let _ = RegridController::new(RegridPolicy::Auto(AutoRegridConfig {
            max_dim: 8192,
            ..AutoRegridConfig::default()
        }));
    }

    #[test]
    #[should_panic(expected = "hysteresis must exceed 1")]
    fn degenerate_hysteresis_fails_at_configuration_time() {
        let mut c = RegridController::new(RegridPolicy::manual());
        c.set_policy(RegridPolicy::Auto(AutoRegridConfig {
            hysteresis: 1.0,
            ..AutoRegridConfig::default()
        }));
    }

    #[test]
    fn manual_never_decides() {
        let mut c = RegridController::new(RegridPolicy::manual());
        c.observe_cycle(500, 10, 1_000, 50);
        assert_eq!(c.decide(100, 1_000, 50, 8, 16), None);
        assert!(!c.policy().is_auto());
    }

    #[test]
    fn auto_moves_toward_the_model_optimum() {
        let mut c = RegridController::new(RegridPolicy::auto());
        // Prime agilities: half the objects and a third of the queries
        // move per cycle (the paper's defaults).
        for _ in 0..4 {
            c.observe_cycle(50_000, 1_500, 100_000, 5_000);
        }
        // A 16² grid is far too coarse for 100K objects; the model must
        // ask for a much finer resolution.
        let dim = c
            .decide(100, 100_000, 5_000, 16, 16)
            .expect("gross mismatch must trigger a re-grid");
        assert!(dim >= 64, "picked {dim}");
        // Immediately after, the cooldown blocks another re-grid even at
        // the next evaluation point.
        assert_eq!(c.decide(108, 100_000, 5_000, 16, 16), None);
    }

    #[test]
    fn hysteresis_holds_near_the_crossover() {
        let mut c = RegridController::new(RegridPolicy::auto());
        c.observe_cycle(500, 15, 1_000, 50);
        // Find the model's optimum, then sit one power of two away: the
        // predicted gain is small, so the dead band must hold.
        let opt = c.model(1_000, 50, 8, 64).optimal_dim(16, 1024);
        let near = if opt > 16 { opt / 2 } else { opt * 2 };
        let current = c.model(1_000, 50, 8, near);
        let best = c.model(1_000, 50, 8, opt);
        if current.time_cycle() < 1.2 * best.time_cycle() {
            assert_eq!(
                c.decide(100, 1_000, 50, 8, near),
                None,
                "thrashed at {near}"
            );
        }
    }

    #[test]
    fn evaluation_respects_check_every() {
        let mut c = RegridController::new(RegridPolicy::Auto(AutoRegridConfig {
            check_every: 10,
            ..AutoRegridConfig::default()
        }));
        c.observe_cycle(50_000, 1_500, 100_000, 5_000);
        assert_eq!(c.decide(9, 100_000, 5_000, 16, 16), None, "too early");
        assert!(c.decide(10, 100_000, 5_000, 16, 16).is_some());
    }

    #[test]
    fn empty_workloads_never_regrid() {
        let mut c = RegridController::new(RegridPolicy::auto());
        c.observe_cycle(0, 0, 0, 0);
        assert_eq!(c.decide(100, 0, 5, 8, 16), None);
        assert_eq!(c.decide(200, 1_000, 0, 8, 16), None);
    }

    #[test]
    #[should_panic(expected = "skew_threshold must be at least 1")]
    fn sub_unit_skew_threshold_fails_at_configuration_time() {
        let _ = RegridController::new(RegridPolicy::Auto(AutoRegridConfig {
            skew_threshold: 0.5,
            ..AutoRegridConfig::default()
        }));
    }

    fn stats(total_cells: usize, live_objects: usize, hot_cell_max: usize) -> GridStats {
        GridStats {
            total_cells,
            occupied_cells: total_cells.min(live_objects),
            live_objects,
            hot_cell_max,
        }
    }

    #[test]
    fn mild_skew_stays_inside_the_dead_band() {
        let mut c = RegridController::new(RegridPolicy::auto());
        c.observe_cycle(500, 15, 1_000, 50);
        for _ in 0..32 {
            // Hot cell at 2× the uniform expectation: below the default
            // threshold of 4, so the model must stay paper-exact.
            c.observe_occupancy(stats(256, 1_024, 8));
        }
        assert!(c.observed_skew() > 1.5, "EMA should track the stream");
        let skew = c.model(1_000, 50, 8, 16).skew;
        assert!((skew - 1.0).abs() < 1e-12, "dead band breached: {skew}");
    }

    #[test]
    fn a_concentration_spike_can_trigger_refinement_alone() {
        // Two controllers, identical agilities and population; only the
        // occupancy stream differs.
        let mut uniform = RegridController::new(RegridPolicy::auto());
        let mut skewed = RegridController::new(RegridPolicy::auto());
        for _ in 0..4 {
            uniform.observe_cycle(4_096, 154, 8_192, 512);
            skewed.observe_cycle(4_096, 154, 8_192, 512);
            // Hot cell at 2× uniform expectation: inside the dead band.
            uniform.observe_occupancy(stats(4_096, 8_192, 4));
            // Everything piled into a handful of cells.
            skewed.observe_occupancy(stats(4_096, 8_192, 2_048));
        }
        let base = uniform.decide(100, 8_192, 512, 8, 64);
        let hot = skewed.decide(100, 8_192, 512, 8, 64);
        assert!(
            skewed.observed_skew() > uniform.observed_skew(),
            "skew EMA must separate the lanes"
        );
        let d_u = base.unwrap_or(64);
        let d_s = hot.unwrap_or(64);
        assert!(d_s > d_u, "hotspot must refine further: {d_u} vs {d_s}");
    }

    #[test]
    fn observe_occupancy_clamps_and_skips_degenerate_grids() {
        let mut c = RegridController::new(RegridPolicy::auto());
        c.observe_occupancy(stats(256, 0, 0)); // empty: skipped
        assert!((c.observed_skew() - 1.0).abs() < 1e-12);
        for _ in 0..200 {
            // 2 objects, one cell holds both: raw ratio would be 128.
            c.observe_occupancy(stats(256, 2, 2));
        }
        assert!(c.observed_skew() <= 64.0 + 1e-9, "clamp failed");
    }

    #[test]
    fn agility_ema_tracks_the_stream() {
        let mut c = RegridController::new(RegridPolicy::auto());
        c.observe_cycle(100, 0, 1_000, 10);
        let m = c.model(1_000, 10, 8, 64);
        assert!((m.f_obj - 0.1).abs() < 1e-12);
        // A jump moves the EMA partway, not all the way.
        c.observe_cycle(1_000, 0, 1_000, 10);
        let m = c.model(1_000, 10, 8, 64);
        assert!(m.f_obj > 0.1 && m.f_obj < 1.0);
    }
}
