//! The complete CPM continuous k-NN monitor (Figures 3.8 and 3.9).
//!
//! [`CpmKnnMonitor`] owns the object grid, the per-cell influence lists and
//! the query table. Each processing cycle consumes a batch of object events
//! and a batch of query events:
//!
//! 1. Object updates are applied to the grid. Through the influence lists,
//!    only queries whose influence region is touched do any work: outgoing
//!    NNs bump `out_count`, incoming objects enter the capped `in_list`.
//! 2. Per touched query, if the incomers can cover the outgoers the new
//!    result is merged directly from `best_NN − O ∪ I` — *no grid access at
//!    all*. Otherwise the re-computation module resumes the stored visit
//!    list / search heap.
//! 3. Query terminations, movements (terminate + reinstall) and new
//!    installations run last, using the NN computation module.
//!
//! Queries that received an update in the same cycle are ignored during
//! object-update handling "to avoid waste of computations for obsolete
//! queries" (Section 3.3).

use cpm_geom::{FastHashMap, FastHashSet, ObjectId, Point, QueryId};
use cpm_grid::{Grid, InfluenceTable, Metrics, ObjectEvent, QueryEvent};

use crate::knn::search::{compute_from_scratch, recompute, sync_influence};
use crate::knn::state::KnnQueryState;
use crate::neighbors::Neighbor;

/// Ablation switches for the two book-keeping optimizations the paper
/// introduces on top of plain conceptual-partitioning search. Both default
/// to on; the `ablation` experiment of the bench crate measures what each
/// buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpmConfig {
    /// Resolve updates from `best_NN − O ∪ I` when `|I| ≥ |O|` (Section
    /// 3.3, Figure 3.8 lines 18-22). Off = every affected query searches
    /// the grid again.
    pub merge_optimization: bool,
    /// Re-computation resumes the stored visit list and search heap
    /// (Figure 3.6). Off = affected queries recompute from scratch with
    /// Figure 3.4 (the paper's own memory-pressure fallback, Section 3.3
    /// last paragraph).
    pub reuse_visit_list: bool,
}

impl Default for CpmConfig {
    fn default() -> Self {
        Self {
            merge_optimization: true,
            reuse_visit_list: true,
        }
    }
}

/// A continuous k-NN monitor implementing Conceptual Partitioning
/// Monitoring over a uniform grid index.
///
/// # Example
///
/// ```
/// use cpm_core::CpmKnnMonitor;
/// use cpm_geom::{ObjectId, Point, QueryId};
/// use cpm_grid::ObjectEvent;
///
/// let mut monitor = CpmKnnMonitor::new(64);
/// monitor.populate((0..100).map(|i| {
///     (ObjectId(i), Point::new((i as f64 + 0.5) / 100.0, 0.5))
/// }));
/// monitor.install_query(QueryId(0), Point::new(0.1042, 0.5), 2);
/// let nn = monitor.result(QueryId(0)).unwrap();
/// assert_eq!(nn[0].id, ObjectId(10)); // object at x = 0.105
///
/// // One object teleports right next to the query point.
/// let changed = monitor.process_cycle(
///     &[ObjectEvent::Move { id: ObjectId(50), to: Point::new(0.104, 0.5) }],
///     &[],
/// );
/// assert_eq!(changed, vec![QueryId(0)]);
/// assert_eq!(monitor.result(QueryId(0)).unwrap()[0].id, ObjectId(50));
/// ```
#[derive(Debug)]
pub struct CpmKnnMonitor {
    grid: Grid,
    influence: InfluenceTable,
    queries: FastHashMap<QueryId, KnnQueryState>,
    metrics: Metrics,
    epoch: u64,
    /// Queries touched by the current batch (have valid transient fields).
    touched: Vec<QueryId>,
    /// Queries with pending query-events this cycle (skipped during object
    /// update handling).
    ignored: FastHashSet<QueryId>,
    /// Scratch: query ids copied out of an influence list.
    qid_buf: Vec<QueryId>,
    /// Scratch: result snapshot for change detection.
    snapshot: Vec<Neighbor>,
    config: CpmConfig,
}

impl CpmKnnMonitor {
    /// Create a monitor over an empty `dim × dim` grid (δ = 1/dim).
    pub fn new(dim: u32) -> Self {
        Self::with_config(dim, CpmConfig::default())
    }

    /// Create a monitor with explicit ablation switches.
    pub fn with_config(dim: u32, config: CpmConfig) -> Self {
        Self {
            grid: cpm_grid::GridBuilder::new(dim).build_uniform(),
            influence: InfluenceTable::new(dim),
            queries: FastHashMap::default(),
            metrics: Metrics::default(),
            epoch: 0,
            touched: Vec::new(),
            ignored: FastHashSet::default(),
            qid_buf: Vec::new(),
            snapshot: Vec::new(),
            config,
        }
    }

    /// Bulk-load objects before any query is installed (initial dataset).
    ///
    /// # Panics
    /// Panics if queries are already installed — later arrivals must go
    /// through [`ObjectEvent::Appear`] so results stay consistent.
    pub fn populate<I: IntoIterator<Item = (ObjectId, Point)>>(&mut self, objects: I) {
        assert!(
            self.queries.is_empty(),
            "populate() is only valid before queries are installed"
        );
        for (oid, pos) in objects {
            self.grid.insert(oid, pos);
        }
    }

    /// The object index.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of installed queries.
    #[inline]
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Iterate over installed query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.keys().copied()
    }

    /// The current result of query `id` (ascending by distance), if
    /// installed.
    pub fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.queries.get(&id).map(|st| st.result())
    }

    /// Full book-keeping state of query `id`, if installed.
    pub fn query_state(&self, id: QueryId) -> Option<&KnnQueryState> {
        self.queries.get(&id)
    }

    /// Work counters accumulated since the last [`CpmKnnMonitor::take_metrics`].
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Take and reset the work counters.
    pub fn take_metrics(&mut self) -> Metrics {
        self.metrics.take()
    }

    /// Install a new continuous k-NN query and compute its initial result.
    ///
    /// # Panics
    /// Panics if `id` is already installed or `k == 0`.
    pub fn install_query(&mut self, id: QueryId, pos: Point, k: usize) -> &[Neighbor] {
        assert!(
            !self.queries.contains_key(&id),
            "query {id} is already installed"
        );
        let mut st = KnnQueryState::new(id, pos, k, self.grid.dim());
        compute_from_scratch(&self.grid, &mut self.influence, &mut st, &mut self.metrics);
        self.queries.entry(id).or_insert(st).result()
    }

    /// Terminate query `id`, removing all its book-keeping.
    /// Returns `true` if it was installed.
    pub fn terminate_query(&mut self, id: QueryId) -> bool {
        match self.queries.remove(&id) {
            Some(st) => {
                for &(cell, _) in &st.visit_list[..st.influence_len] {
                    self.influence.remove(cell, id);
                }
                true
            }
            None => false,
        }
    }

    /// Move query `id` to a new location: terminate + reinstall with the
    /// same `k` (Section 3.3).
    ///
    /// # Panics
    /// Panics if the query is not installed.
    pub fn move_query(&mut self, id: QueryId, to: Point) -> &[Neighbor] {
        let st = self
            .queries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("move of unknown query {id}"));
        for &(cell, _) in &st.visit_list[..st.influence_len] {
            self.influence.remove(cell, id);
        }
        st.influence_len = 0;
        st.q = to;
        compute_from_scratch(&self.grid, &mut self.influence, st, &mut self.metrics);
        st.result()
    }

    /// Run one processing cycle (Figure 3.9): apply all object events with
    /// batched update handling, then all query events. Returns the ids of
    /// queries whose reported result changed this cycle (including new and
    /// moved queries; terminated queries are not reported).
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[QueryEvent],
    ) -> Vec<QueryId> {
        self.ignored.clear();
        for ev in query_events {
            self.ignored.insert(ev.id());
        }

        let mut changed = Vec::new();
        self.handle_object_updates(object_events, &mut changed);

        for ev in query_events {
            match *ev {
                QueryEvent::Terminate { id } => {
                    self.terminate_query(id);
                }
                QueryEvent::Move { id, to } => {
                    self.move_query(id, to);
                    changed.push(id);
                }
                QueryEvent::Install { id, pos, k } => {
                    self.install_query(id, pos, k);
                    changed.push(id);
                }
            }
        }
        changed
    }

    /// The update-handling module (Figure 3.8) over a batch `U_P`.
    fn handle_object_updates(&mut self, events: &[ObjectEvent], changed: &mut Vec<QueryId>) {
        self.epoch += 1;
        self.touched.clear();

        for ev in events {
            match *ev {
                ObjectEvent::Move { id, to } => {
                    let (_, old_cell, new_cell) = self.grid.update_position(id, to);
                    self.metrics.updates_applied += 1;
                    let new_pos = self.grid.position(id).expect("just inserted");
                    self.process_departure(id, old_cell, Some(new_pos));
                    self.process_arrival(id, new_cell, new_pos);
                }
                ObjectEvent::Appear { id, pos } => {
                    let cell = self.grid.insert(id, pos);
                    self.metrics.updates_applied += 1;
                    let pos = self.grid.position(id).expect("just inserted");
                    self.process_arrival(id, cell, pos);
                }
                ObjectEvent::Disappear { id } => {
                    let (_, cell) = self
                        .grid
                        .remove(id)
                        .unwrap_or_else(|| panic!("disappear of off-line object {id}"));
                    self.metrics.updates_applied += 1;
                    self.process_departure(id, cell, None);
                }
            }
        }

        self.finalize_touched(changed);
    }

    /// Old-cell side of an update (Figure 3.8 lines 5-12). `new_pos` is
    /// `None` when the object went off-line, which is treated as an
    /// outgoing NN (Section 4.2).
    fn process_departure(
        &mut self,
        id: ObjectId,
        old_cell: cpm_grid::CellCoord,
        new_pos: Option<Point>,
    ) {
        let qids = self.influence.queries_at(old_cell);
        if qids.is_empty() {
            return;
        }
        self.qid_buf.clear();
        self.qid_buf
            .extend(qids.iter().copied().filter(|q| !self.ignored.contains(q)));
        for i in 0..self.qid_buf.len() {
            let qid = self.qid_buf[i];
            let st = self.queries.get_mut(&qid).expect("influence list in sync");
            Self::touch(st, self.epoch, &mut self.touched);
            if st.in_list.remove(id) {
                st.in_removed = true;
            }
            if st.best.contains(id) {
                match new_pos {
                    Some(p) => {
                        let d = st.q.dist(p);
                        if d <= st.bd_orig {
                            // p remains in the NN set; update its rank.
                            st.best.update_dist(id, d);
                        } else {
                            // Outgoing NN.
                            st.best.remove(id);
                            st.out_count += 1;
                        }
                    }
                    None => {
                        // Off-line NN = outgoing NN.
                        st.best.remove(id);
                        st.out_count += 1;
                    }
                }
                st.dirty = true;
            }
        }
    }

    /// New-cell side of an update (Figure 3.8 lines 13-16).
    fn process_arrival(&mut self, id: ObjectId, new_cell: cpm_grid::CellCoord, new_pos: Point) {
        let qids = self.influence.queries_at(new_cell);
        if qids.is_empty() {
            return;
        }
        self.qid_buf.clear();
        self.qid_buf
            .extend(qids.iter().copied().filter(|q| !self.ignored.contains(q)));
        for i in 0..self.qid_buf.len() {
            let qid = self.qid_buf[i];
            let st = self.queries.get_mut(&qid).expect("influence list in sync");
            Self::touch(st, self.epoch, &mut self.touched);
            let d = st.q.dist(new_pos);
            if d <= st.bd_orig && !st.best.contains(id) {
                st.in_list.update(id, d);
            }
        }
    }

    /// Reset the transient batch fields on first contact in this cycle
    /// (Figure 3.8 lines 1-3, done lazily per touched query).
    fn touch(st: &mut KnnQueryState, epoch: u64, touched: &mut Vec<QueryId>) {
        if st.epoch != epoch {
            st.epoch = epoch;
            st.bd_orig = st.best_dist();
            st.out_count = 0;
            st.in_list.clear();
            st.in_removed = false;
            st.dirty = false;
            touched.push(st.id);
        }
    }

    /// Per-query resolution after the whole batch (Figure 3.8 lines 17-24).
    fn finalize_touched(&mut self, changed: &mut Vec<QueryId>) {
        let touched = std::mem::take(&mut self.touched);
        for &qid in &touched {
            let st = self.queries.get_mut(&qid).expect("touched query installed");

            // A removal from an overflowed in_list may have discarded a
            // candidate that now belongs in the merge set; fall back to
            // re-computation (conservative; unreachable with one update per
            // object per cycle).
            let unsound_in_list = st.in_list.evicted_since_clear() && st.in_removed;
            // Ablation: with the merge optimization disabled, any touched
            // query with a potential result change searches the grid.
            let forced = !self.config.merge_optimization
                && (st.out_count > 0 || st.in_list.len() > 0 || st.dirty);

            if forced || unsound_in_list || st.in_list.len() < st.out_count {
                // Line 23-24: not enough incoming objects.
                self.snapshot.clear();
                self.snapshot.extend_from_slice(st.best.neighbors());
                if self.config.reuse_visit_list {
                    recompute(&self.grid, &mut self.influence, st, &mut self.metrics);
                } else {
                    // Memory-pressure fallback of Section 3.3: drop the
                    // book-kept search state and run Figure 3.4 afresh.
                    for i in 0..st.influence_len {
                        self.influence.remove(st.visit_list[i].0, qid);
                    }
                    st.influence_len = 0;
                    compute_from_scratch(&self.grid, &mut self.influence, st, &mut self.metrics);
                    self.metrics.recomputations += 1;
                    self.metrics.computations -= 1;
                }
                // `dirty` covers in-place departure mutations: the
                // snapshot here is *post*-departure, so a result that
                // shrank and refilled nothing compares equal to it even
                // though it changed versus the cycle start.
                if st.dirty || self.snapshot != st.best.neighbors() {
                    changed.push(qid);
                }
            } else if st.out_count > 0 || st.in_list.len() > 0 {
                // Lines 18-22: merge best_NN − O with the incomers.
                self.snapshot.clear();
                self.snapshot.extend_from_slice(st.best.neighbors());
                let mut candidates = Vec::with_capacity(self.snapshot.len() + st.in_list.len());
                candidates.extend_from_slice(&self.snapshot);
                candidates.extend_from_slice(st.in_list.entries());
                st.best.rebuild_from(candidates);
                self.metrics.merge_resolutions += 1;
                sync_influence(&mut self.influence, st);
                if st.dirty || self.snapshot != st.best.neighbors() {
                    changed.push(qid);
                }
            } else if st.dirty {
                // Only rank changes among surviving NNs; the result set is
                // unchanged but the reported order (and best_dist) may be.
                sync_influence(&mut self.influence, st);
                changed.push(qid);
            }
        }
        self.touched = touched;
    }

    /// Total memory footprint in the paper's memory units (Section 4.1):
    /// `3·N` for the grid data, one unit per influence-list entry, and
    /// `3 + 2k + 3·(C_SH + 4)` per query-table entry.
    pub fn space_units(&self) -> usize {
        let grid_units = self.grid.space_units() + self.influence.total_entries();
        let qt_units: usize = self
            .queries
            .values()
            .map(|st| {
                let c_sh = st.visit_list.len() + st.heap.cell_entries();
                3 + 2 * st.k() + 3 * (c_sh + 4)
            })
            .sum();
        grid_units + qt_units
    }

    /// Verify all cross-structure invariants (test helper; O(total state)).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        for (qid, st) in &self.queries {
            assert_eq!(*qid, st.id);
            st.check_invariants();
            // Registered prefix must match the influence table.
            for (i, &(cell, _)) in st.visit_list.iter().enumerate() {
                let registered = self.influence.contains(cell, *qid);
                assert_eq!(
                    registered,
                    i < st.influence_len,
                    "query {qid} cell {cell}: registration mismatch"
                );
            }
            // Every reported neighbor must be live and at the recorded
            // distance.
            for n in st.result() {
                let p = self
                    .grid
                    .position(n.id)
                    .unwrap_or_else(|| panic!("result contains off-line object {}", n.id));
                assert!((st.q.dist(p) - n.dist).abs() < 1e-9, "stale distance");
            }
        }
        // No dangling registrations: every influence entry belongs to an
        // installed query's current prefix.
        let total: usize = self.queries.values().map(|st| st.influence_len).sum();
        assert_eq!(self.influence.total_entries(), total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force k-NN over the monitor's own grid.
    fn oracle(grid: &Grid, q: Point, k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = grid.iter_objects().map(|(_, p)| q.dist(p)).collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.truncate(k);
        d
    }

    fn assert_matches_oracle(m: &CpmKnnMonitor, qid: QueryId) {
        let st = m.query_state(qid).unwrap();
        let expect = oracle(m.grid(), st.q, st.k());
        let got: Vec<f64> = st.result().iter().map(|n| n.dist).collect();
        assert_eq!(got.len(), expect.len().min(st.k()), "result size");
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!(
                (g - e).abs() < 1e-9,
                "distance mismatch: {got:?} vs {expect:?}"
            );
        }
    }

    /// δ = 1/8 grid with the Figure 3.2 layout (coordinates scaled by δ):
    /// q = (4.2, 4.9)·δ in cell c4,4; p1 ∈ c3,3; p2 ∈ c2,4 is the NN.
    fn fig_3_2_monitor() -> CpmKnnMonitor {
        let d = 1.0 / 8.0;
        let mut m = CpmKnnMonitor::new(8);
        m.populate([
            (ObjectId(1), Point::new(3.3 * d, 3.5 * d)), // p1
            (ObjectId(2), Point::new(2.9 * d, 4.5 * d)), // p2 (the NN)
            (ObjectId(3), Point::new(2.2 * d, 6.5 * d)), // p3, farther
            (ObjectId(4), Point::new(5.5 * d, 6.6 * d)), // p4, farther
        ]);
        m.install_query(QueryId(0), Point::new(4.2 * d, 4.9 * d), 1);
        m
    }

    #[test]
    fn nn_computation_example_fig_3_2() {
        let m = fig_3_2_monitor();
        let res = m.result(QueryId(0)).unwrap();
        assert_eq!(res[0].id, ObjectId(2));
        assert_matches_oracle(&m, QueryId(0));
        m.check_invariants();
        let st = m.query_state(QueryId(0)).unwrap();
        // The search processed only a neighborhood, not the whole grid.
        assert!(st.visit_list.len() < 30, "visited {}", st.visit_list.len());
        assert!(st.heap.boundary_boxes() <= 4);
    }

    #[test]
    fn update_outside_best_dist_changes_nothing_fig_3_5a() {
        let mut m = fig_3_2_monitor();
        let d = 1.0 / 8.0;
        m.take_metrics();
        // p4 moves from c5,6 into the influence region's vicinity (c5,3)
        // but farther than best_dist: no result change, no recomputation.
        let changed = m.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(4),
                to: Point::new(5.5 * d, 3.4 * d),
            }],
            &[],
        );
        assert!(changed.is_empty());
        assert_eq!(m.metrics().recomputations, 0);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(2));
        m.check_invariants();
    }

    #[test]
    fn outgoing_nn_triggers_recomputation_fig_3_5b() {
        let mut m = fig_3_2_monitor();
        let d = 1.0 / 8.0;
        // First p4 comes nearer (as in Figure 3.5a): outside best_dist but
        // closer to q than p1, so it becomes the NN once p2 departs.
        m.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(4),
                to: Point::new(4.6 * d, 3.5 * d),
            }],
            &[],
        );
        m.take_metrics();
        // Then the current NN p2 moves far away: q is affected and the
        // re-computation module must find p4 as the new NN.
        let changed = m.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(2),
                to: Point::new(0.5 * d, 6.5 * d),
            }],
            &[],
        );
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(m.metrics().recomputations, 1);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(4));
        assert_matches_oracle(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn incomer_covers_outgoer_without_recomputation_fig_3_7() {
        let mut m = fig_3_2_monitor();
        let d = 1.0 / 8.0;
        m.take_metrics();
        // p2 (the NN) leaves; p3 moves closer than best_dist in the same
        // batch. CPM must resolve this by merging, without grid search.
        let changed = m.process_cycle(
            &[
                ObjectEvent::Move {
                    id: ObjectId(2),
                    to: Point::new(0.5 * d, 6.5 * d),
                },
                ObjectEvent::Move {
                    id: ObjectId(3),
                    to: Point::new(3.6 * d, 4.5 * d),
                },
            ],
            &[],
        );
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(m.metrics().recomputations, 0);
        assert_eq!(m.metrics().merge_resolutions, 1);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(3));
        assert_matches_oracle(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn offline_nn_is_treated_as_outgoing() {
        let mut m = fig_3_2_monitor();
        let changed = m.process_cycle(&[ObjectEvent::Disappear { id: ObjectId(2) }], &[]);
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        assert_matches_oracle(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn appearing_object_can_become_nn() {
        let mut m = fig_3_2_monitor();
        let d = 1.0 / 8.0;
        let changed = m.process_cycle(
            &[ObjectEvent::Appear {
                id: ObjectId(9),
                pos: Point::new(4.3 * d, 4.8 * d),
            }],
            &[],
        );
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(9));
        assert_matches_oracle(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn query_move_recomputes_from_scratch() {
        let mut m = fig_3_2_monitor();
        let d = 1.0 / 8.0;
        m.take_metrics();
        let changed = m.process_cycle(
            &[],
            &[QueryEvent::Move {
                id: QueryId(0),
                to: Point::new(5.4 * d, 6.4 * d),
            }],
        );
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(m.metrics().computations, 1);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(4));
        assert_matches_oracle(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn moving_query_is_ignored_during_object_updates() {
        let mut m = fig_3_2_monitor();
        let d = 1.0 / 8.0;
        m.take_metrics();
        // The NN departs *and* the query moves in the same cycle; the
        // object update must not trigger work for the obsolete query.
        let changed = m.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(2),
                to: Point::new(0.5 * d, 6.5 * d),
            }],
            &[QueryEvent::Move {
                id: QueryId(0),
                to: Point::new(5.4 * d, 6.4 * d),
            }],
        );
        assert_eq!(changed, vec![QueryId(0)]);
        assert_eq!(m.metrics().recomputations, 0, "obsolete query recomputed");
        assert_eq!(m.metrics().computations, 1);
        assert_matches_oracle(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn terminate_clears_all_bookkeeping() {
        let mut m = fig_3_2_monitor();
        assert!(m.terminate_query(QueryId(0)));
        assert!(!m.terminate_query(QueryId(0)));
        assert_eq!(m.query_count(), 0);
        m.check_invariants(); // influence table must be empty again
        assert_eq!(m.space_units(), m.grid().space_units());
    }

    #[test]
    fn k_larger_than_population() {
        let mut m = CpmKnnMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.1, 0.1)),
            (ObjectId(1), Point::new(0.9, 0.9)),
        ]);
        m.install_query(QueryId(0), Point::new(0.5, 0.5), 5);
        assert_eq!(m.result(QueryId(0)).unwrap().len(), 2);
        assert!(m.query_state(QueryId(0)).unwrap().best_dist().is_infinite());
        m.check_invariants();
        // A third object appears and must join the (still unfull) result.
        m.process_cycle(
            &[ObjectEvent::Appear {
                id: ObjectId(2),
                pos: Point::new(0.51, 0.5),
            }],
            &[],
        );
        assert_eq!(m.result(QueryId(0)).unwrap().len(), 3);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(2));
        assert_matches_oracle(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn empty_grid_query_is_legal() {
        let mut m = CpmKnnMonitor::new(8);
        m.install_query(QueryId(0), Point::new(0.5, 0.5), 3);
        assert!(m.result(QueryId(0)).unwrap().is_empty());
        m.check_invariants();
        m.process_cycle(
            &[ObjectEvent::Appear {
                id: ObjectId(0),
                pos: Point::new(0.2, 0.2),
            }],
            &[],
        );
        assert_eq!(m.result(QueryId(0)).unwrap().len(), 1);
        m.check_invariants();
    }

    #[test]
    fn ablated_configurations_remain_exact() {
        // Correctness must not depend on either optimization.
        let mut rng = StdRng::seed_from_u64(0xAB1A);
        for config in [
            CpmConfig {
                merge_optimization: false,
                reuse_visit_list: true,
            },
            CpmConfig {
                merge_optimization: true,
                reuse_visit_list: false,
            },
            CpmConfig {
                merge_optimization: false,
                reuse_visit_list: false,
            },
        ] {
            let mut m = CpmKnnMonitor::with_config(16, config);
            m.populate(
                (0..40u32).map(|i| (ObjectId(i), Point::new(rng.gen::<f64>(), rng.gen::<f64>()))),
            );
            m.install_query(QueryId(0), Point::new(0.5, 0.5), 5);
            for _ in 0..20 {
                let mut events = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for _ in 0..rng.gen_range(1..8) {
                    let id = rng.gen_range(0..40u32);
                    if seen.insert(id) {
                        events.push(ObjectEvent::Move {
                            id: ObjectId(id),
                            to: Point::new(rng.gen(), rng.gen()),
                        });
                    }
                }
                m.process_cycle(&events, &[]);
                m.check_invariants();
                assert_matches_oracle(&m, QueryId(0));
            }
        }
    }

    #[test]
    fn randomized_stream_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for trial in 0..8 {
            let dim = [4u32, 8, 16, 64][trial % 4];
            let n_obj = 60;
            let mut m = CpmKnnMonitor::new(dim);
            m.populate(
                (0..n_obj).map(|i| (ObjectId(i), Point::new(rng.gen::<f64>(), rng.gen::<f64>()))),
            );
            for qi in 0..6u32 {
                let k = 1 + (qi as usize % 5) * 3;
                m.install_query(
                    QueryId(qi),
                    Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                    k,
                );
            }
            let mut live: Vec<u32> = (0..n_obj).collect();
            let mut next_id = n_obj;
            for _cycle in 0..30 {
                let mut events = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for _ in 0..rng.gen_range(0..12) {
                    match rng.gen_range(0..10) {
                        0 if !live.is_empty() => {
                            let idx = rng.gen_range(0..live.len());
                            let id = live.swap_remove(idx);
                            if seen.insert(id) {
                                events.push(ObjectEvent::Disappear { id: ObjectId(id) });
                            } else {
                                live.push(id);
                            }
                        }
                        1 => {
                            let id = next_id;
                            next_id += 1;
                            live.push(id);
                            seen.insert(id);
                            events.push(ObjectEvent::Appear {
                                id: ObjectId(id),
                                pos: Point::new(rng.gen(), rng.gen()),
                            });
                        }
                        _ if !live.is_empty() => {
                            let id = live[rng.gen_range(0..live.len())];
                            if seen.insert(id) {
                                // Mix of local jitters and teleports.
                                let to = if rng.gen_bool(0.7) {
                                    let p = m.grid().position(ObjectId(id)).unwrap();
                                    Point::new(
                                        (p.x + rng.gen_range(-0.05..0.05)).clamp(0.0, 0.999),
                                        (p.y + rng.gen_range(-0.05..0.05)).clamp(0.0, 0.999),
                                    )
                                } else {
                                    Point::new(rng.gen(), rng.gen())
                                };
                                events.push(ObjectEvent::Move {
                                    id: ObjectId(id),
                                    to,
                                });
                            }
                        }
                        _ => {}
                    }
                }
                let mut qevents = Vec::new();
                if rng.gen_bool(0.2) {
                    qevents.push(QueryEvent::Move {
                        id: QueryId(rng.gen_range(0..6)),
                        to: Point::new(rng.gen(), rng.gen()),
                    });
                }
                m.process_cycle(&events, &qevents);
                m.check_invariants();
                for qid in 0..6u32 {
                    assert_matches_oracle(&m, QueryId(qid));
                }
            }
        }
    }
}
