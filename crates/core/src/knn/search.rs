//! The NN computation (Figure 3.4) and re-computation (Figure 3.6) modules.
//!
//! Both share one best-first loop over the search heap; re-computation
//! first replays the visit list (whose `mindist` values are all ≤ the keys
//! left in the heap) before touching the heap, which is what makes it
//! cheaper than a search from scratch: the stored `mindist` values are
//! reused and heap operations are mostly avoided.
//!
//! One deliberate deviation from the paper's pseudo-code: the loops here
//! terminate when the next key is *strictly greater* than `best_dist`
//! (the paper stops at `≥`). Processing equal-key cells costs nothing in
//! non-degenerate configurations (exact ties have measure zero) and makes
//! the visit list cover *every* cell of the closed influence circle, so a
//! neighbor sitting at distance exactly `best_dist` always lives in a
//! registered cell and its future updates cannot be missed.

use cpm_grid::{kernels, Grid, InfluenceTable, Metrics};

use crate::heap::HeapEntry;
use crate::knn::state::KnnQueryState;
use crate::partition::{Direction, Pinwheel};

/// Compute the result of `st` from scratch (Figure 3.4): used for newly
/// installed queries and for queries that changed location.
///
/// The caller must have cleared any previous influence-region
/// registrations (see `CpmKnnMonitor::unregister_influence`).
pub(crate) fn compute_from_scratch(
    grid: &Grid,
    inf: &mut InfluenceTable,
    st: &mut KnnQueryState,
    metrics: &mut Metrics,
) {
    debug_assert_eq!(st.influence_len, 0, "stale influence registrations");
    st.best.clear();
    st.visit_list.clear();
    st.heap.clear();

    let cq = grid.cell_of(st.q);
    st.pinwheel = Pinwheel::around_cell(cq, grid.dim());

    // Line 4: the query cell with key mindist(c_q, q) = 0.
    st.heap.push_cell(cq, 0.0);
    metrics.heap_pushes += 1;
    // Line 5: the level-zero rectangle of every (non-exhausted) direction.
    for dir in Direction::ALL {
        if st.pinwheel.strip(dir, 0).is_some() {
            st.heap
                .push_rect(dir, 0, st.pinwheel.strip_mindist(dir, 0, st.q));
            metrics.heap_pushes += 1;
        }
    }

    drain_heap(grid, st, metrics);
    metrics.computations += 1;
    sync_influence(inf, st);
}

/// Re-compute the result of an affected query (Figure 3.6): replay the
/// visit list, then resume the heap search if still short of `k`.
pub(crate) fn recompute(
    grid: &Grid,
    inf: &mut InfluenceTable,
    st: &mut KnnQueryState,
    metrics: &mut Metrics,
) {
    st.best.clear();

    // Lines 2-6: sequential scan of the visit list (O(1) per "get next").
    let mut exhausted = true;
    for i in 0..st.visit_list.len() {
        let (cell, md) = st.visit_list[i];
        if md > st.best.best_dist() {
            exhausted = false;
            break;
        }
        metrics.cell_accesses += 1;
        let oids = grid.objects_in(cell);
        kernels::dist_into(grid.coords(), st.q, oids, &mut st.dist_buf);
        metrics.objects_processed += oids.len() as u64;
        for (&oid, &d) in oids.iter().zip(&st.dist_buf) {
            st.best.offer(oid, d);
        }
    }

    // Lines 7-8: continue into the search heap only if it could still
    // contribute (its smallest key is within best_dist).
    if exhausted {
        drain_heap(grid, st, metrics);
    }
    metrics.recomputations += 1;
    sync_influence(inf, st);
}

/// The shared best-first loop (Figure 3.4 lines 7-17): pop cells and
/// rectangles in ascending key order until the next key exceeds
/// `best_dist`; processed cells are appended to the visit list.
fn drain_heap(grid: &Grid, st: &mut KnnQueryState, metrics: &mut Metrics) {
    let delta = grid.delta();
    while let Some(key) = st.heap.peek_key() {
        if key > st.best.best_dist() {
            break;
        }
        let (key, entry) = st.heap.pop().expect("peeked entry");
        metrics.heap_pops += 1;
        match entry {
            HeapEntry::Cell(cell) => {
                metrics.cell_accesses += 1;
                let oids = grid.objects_in(cell);
                kernels::dist_into(grid.coords(), st.q, oids, &mut st.dist_buf);
                metrics.objects_processed += oids.len() as u64;
                for (&oid, &d) in oids.iter().zip(&st.dist_buf) {
                    st.best.offer(oid, d);
                }
                st.visit_list.push((cell, key));
            }
            HeapEntry::Rect(dir, lvl) => {
                let strip = st.pinwheel.strip(dir, lvl).expect("en-heaped strip exists");
                for cell in strip.cells() {
                    st.heap.push_cell(cell, grid.mindist(cell, st.q));
                    metrics.heap_pushes += 1;
                }
                // Line 16: next-level rectangle with key + δ (Lemma 3.1).
                if st.pinwheel.strip(dir, lvl + 1).is_some() {
                    st.heap.push_rect(dir, lvl + 1, key + delta);
                    metrics.heap_pushes += 1;
                }
            }
        }
    }
}

/// Synchronize the influence-region registrations with the current
/// `best_dist`: exactly the visit-list prefix with `mindist ≤ best_dist`
/// is registered (grows after re-computation, shrinks after a merge —
/// Figure 3.8 line 22).
pub(crate) fn sync_influence(inf: &mut InfluenceTable, st: &mut KnnQueryState) {
    let bd = st.best.best_dist();
    let new_len = if bd.is_finite() {
        st.visit_list.partition_point(|&(_, md)| md <= bd)
    } else {
        st.visit_list.len()
    };
    for i in st.influence_len..new_len {
        inf.add(st.visit_list[i].0, st.id);
    }
    for i in new_len..st.influence_len {
        inf.remove(st.visit_list[i].0, st.id);
    }
    st.influence_len = new_len;
}
