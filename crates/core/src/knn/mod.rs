//! Continuous k-NN monitoring with Conceptual Partitioning (Section 3).
//!
//! * [`state`] — the query-table entry (best_NN, visit list, search heap).
//! * `search` (private) — NN computation (Fig. 3.4) and re-computation
//!   (Fig. 3.6).
//! * [`monitor`] — the full update-handling pipeline (Figs. 3.8, 3.9).

pub mod monitor;
mod search;
pub mod state;

pub use monitor::{CpmConfig, CpmKnnMonitor};
pub use state::KnnQueryState;
