//! Per-query book-keeping: the query-table entry of Figure 3.3a.

#[cfg(test)]
use cpm_geom::ObjectId;
use cpm_geom::{Point, QueryId};
use cpm_grid::CellCoord;

use crate::heap::SearchHeap;
use crate::inlist::InList;
use crate::neighbors::{Neighbor, NeighborList};
use crate::partition::Pinwheel;

/// The complete query-table entry for one continuous k-NN query:
/// coordinates, current result, `best_dist`, visit list and search heap
/// (Section 3.1), plus the transient per-batch fields of Figure 3.8.
#[derive(Debug, Clone)]
pub struct KnnQueryState {
    /// Query identifier.
    pub id: QueryId,
    /// Query point.
    pub q: Point,
    /// Current result (`best_NN`), ascending by distance.
    pub best: NeighborList,
    /// Cells processed during NN (re-)computation, ascending by `mindist`.
    /// Always a superset of the influence region (Section 3.3).
    pub visit_list: Vec<(CellCoord, f64)>,
    /// Length of the visit-list prefix currently registered in the
    /// influence table (exactly the cells with `mindist ≤ best_dist`).
    pub influence_len: usize,
    /// Entries en-heaped but not processed during the last search.
    pub heap: SearchHeap,
    /// The conceptual partitioning around the query cell.
    pub pinwheel: Pinwheel,

    // --- transient per-batch fields (Figure 3.8 lines 1-3) ---
    /// Batch stamp: fields below are valid only when this equals the
    /// monitor's current epoch.
    pub(crate) epoch: u64,
    /// `best_dist` recorded before the batch (Section 3.3).
    pub(crate) bd_orig: f64,
    /// Number of outgoing NNs (`q.out_count`).
    pub(crate) out_count: usize,
    /// The k best incoming objects (`q.in_list`).
    pub(crate) in_list: InList,
    /// An entry was removed from `in_list` this batch (multi-update guard;
    /// see [`InList::evicted_since_clear`]).
    pub(crate) in_removed: bool,
    /// Result contents changed during the batch (evictions/reorders).
    pub(crate) dirty: bool,
    /// Reused output buffer for the batched distance kernel
    /// ([`cpm_grid::kernels::dist_into`]); scratch only, never part of
    /// the observable query state.
    pub(crate) dist_buf: Vec<f64>,
}

impl KnnQueryState {
    /// Fresh state for a query at `q` with parameter `k`, on a `dim×dim`
    /// grid. The result is empty until the first NN computation.
    pub fn new(id: QueryId, q: Point, k: usize, dim: u32) -> Self {
        Self {
            id,
            q,
            best: NeighborList::new(k),
            visit_list: Vec::new(),
            influence_len: 0,
            heap: SearchHeap::new(),
            pinwheel: Pinwheel::around_cell(CellCoord::new(0, 0), dim),
            epoch: 0,
            bd_orig: f64::INFINITY,
            out_count: 0,
            in_list: InList::with_cap(k),
            in_removed: false,
            dirty: false,
            dist_buf: Vec::new(),
        }
    }

    /// The monitored `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.best.k()
    }

    /// `best_dist`: distance of the k-th NN (`+∞` while fewer than `k`
    /// objects exist).
    #[inline]
    pub fn best_dist(&self) -> f64 {
        self.best.best_dist()
    }

    /// Current result, ascending by distance.
    #[inline]
    pub fn result(&self) -> &[Neighbor] {
        self.best.neighbors()
    }

    /// Verify book-keeping invariants (test helper): visit list sorted,
    /// influence prefix consistent with `best_dist`, at most four boundary
    /// boxes in the heap.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.best.check_invariants();
        for w in self.visit_list.windows(2) {
            assert!(w[0].1 <= w[1].1, "visit list out of order");
        }
        assert!(self.influence_len <= self.visit_list.len());
        let bd = self.best_dist();
        if bd.is_finite() {
            for (i, &(_, md)) in self.visit_list.iter().enumerate() {
                if i < self.influence_len {
                    assert!(md <= bd, "registered cell beyond best_dist");
                } else {
                    assert!(md > bd, "unregistered cell inside influence region");
                }
            }
        } else {
            assert_eq!(self.influence_len, self.visit_list.len());
        }
        assert!(
            self.heap.boundary_boxes() <= 4,
            "more than 4 boundary boxes"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_list_keeps_best_cap_by_distance() {
        let mut l = InList::with_cap(2);
        l.update(ObjectId(1), 0.5);
        l.update(ObjectId(2), 0.3);
        l.update(ObjectId(3), 0.4); // evicts 0.5
        assert_eq!(l.len(), 2);
        assert!(l.evicted_since_clear());
        let ids: Vec<u32> = l.entries().iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn in_list_replaces_on_repeated_update() {
        let mut l = InList::with_cap(4);
        l.update(ObjectId(1), 0.5);
        l.update(ObjectId(1), 0.1);
        assert_eq!(l.len(), 1);
        assert_eq!(l.entries()[0].dist, 0.1);
        assert!(l.remove(ObjectId(1)));
        assert!(!l.remove(ObjectId(1)));
        assert!(!l.evicted_since_clear());
    }

    #[test]
    fn worse_than_full_list_sets_evicted() {
        let mut l = InList::with_cap(1);
        l.update(ObjectId(1), 0.1);
        l.update(ObjectId(2), 0.9);
        assert_eq!(l.len(), 1);
        assert_eq!(l.entries()[0].id, ObjectId(1));
        assert!(l.evicted_since_clear());
        l.clear();
        assert!(!l.evicted_since_clear());
    }

    #[test]
    fn fresh_state_invariants() {
        let st = KnnQueryState::new(QueryId(0), Point::new(0.5, 0.5), 4, 64);
        st.check_invariants();
        assert_eq!(st.k(), 4);
        assert!(st.best_dist().is_infinite());
        assert!(st.result().is_empty());
    }
}
