//! Continuous *range* monitoring: report every object inside a query
//! rectangle or circle, maintained incrementally by the CPM machinery.
//!
//! Range queries are the workload of the distributed continuous-query
//! monitors CPM is contrasted with in Table 2.1 (Q-index, MQM, Mobieyes,
//! SINA all monitor ranges), and the natural subscription shape for a
//! location-aware pub/sub front end ([`cpm-sub`]): "notify me about every
//! object inside this region".
//!
//! The adaptation degenerates gracefully from the k-NN case:
//!
//! * **No best-dist bookkeeping.** A range result is never "full", so
//!   `best_dist` stays `+∞`: the initial search drains the heap completely
//!   rather than stopping at a k-th neighbor. [`QuerySpec::admits_cell`]
//!   restricts the drain to cells intersecting the region, so the visit
//!   list is exactly the region's cell cover.
//! * **Influence region = the region itself.** With an infinite
//!   `best_dist` the influence prefix is the whole visit list — precisely
//!   the cells overlapping the query rectangle/circle. An update outside
//!   the region costs nothing, as for k-NN.
//! * **Objects outside the region never qualify**: their distance is `+∞`
//!   (the constrained-query convention of Section 5).
//!
//! Results are ordered ascending by `(distance to the region's anchor
//! point, id)` — the same canonical order every other monitor uses — so
//! deltas, sharding and replay behave identically for range and k-NN
//! subscriptions.
//!
//! [`cpm-sub`]: ../../cpm_sub/index.html

use cpm_geom::{ObjectId, Point, QueryId, Rect};
use cpm_grid::{CellCoord, Grid, GridGeom, Metrics, ObjectEvent};

use crate::engine::{QuerySpec, SpecEvent, SpecQueryState};
use crate::neighbors::Neighbor;
use crate::partition::{Direction, Pinwheel};

/// The monitored region of a [`RangeQuery`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Region {
    /// A closed axis-aligned rectangle.
    Rect(Rect),
    /// A closed disk.
    Circle {
        /// Disk center.
        center: Point,
        /// Disk radius (≥ 0).
        radius: f64,
    },
}

impl Region {
    /// `true` if `p` lies inside the closed region.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        match *self {
            Region::Rect(r) => r.contains(p),
            Region::Circle { center, radius } => center.dist_sq(p) <= radius * radius,
        }
    }

    /// The region's bounding rectangle (clamped to the workspace).
    pub fn bbox(&self) -> Rect {
        match *self {
            Region::Rect(r) => r,
            Region::Circle { center, radius } => Rect::new(
                Point::new((center.x - radius).max(0.0), (center.y - radius).max(0.0)),
                Point::new((center.x + radius).min(1.0), (center.y + radius).min(1.0)),
            ),
        }
    }

    /// The anchor point results are ordered around: the rectangle center
    /// or the disk center.
    #[inline]
    pub fn anchor(&self) -> Point {
        match *self {
            Region::Rect(r) => r.center(),
            Region::Circle { center, .. } => center,
        }
    }

    /// `true` if the region intersects `rect`.
    #[inline]
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        match *self {
            Region::Rect(r) => r.intersects(rect),
            Region::Circle { center, radius } => rect.intersects_circle(center, radius),
        }
    }
}

/// A continuous range query: report every object inside [`Region`],
/// ascending by `(distance to the region anchor, id)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQuery {
    /// The monitored region.
    pub region: Region,
}

impl RangeQuery {
    /// The `k` a range query is installed with: an unbounded-result
    /// sentinel far above any realistic object population, so the result
    /// list never fills and `best_dist` stays `+∞` (no best-dist
    /// bookkeeping). [`crate::NeighborList`] bounds its allocation hint,
    /// so the sentinel costs nothing.
    pub const UNBOUNDED_K: usize = 1 << 24;

    /// Monitor a rectangle.
    pub fn rect(region: Rect) -> Self {
        Self {
            region: Region::Rect(region),
        }
    }

    /// Monitor a disk.
    pub fn circle(center: Point, radius: f64) -> Self {
        assert!(radius >= 0.0, "negative radius");
        Self {
            region: Region::Circle { center, radius },
        }
    }
}

impl QuerySpec for RangeQuery {
    #[inline]
    fn dist(&self, p: Point) -> f64 {
        if self.region.contains(p) {
            self.region.anchor().dist(p)
        } else {
            f64::INFINITY
        }
    }

    fn base_block(&self, geom: GridGeom) -> (CellCoord, CellCoord) {
        let bbox = self.region.bbox();
        (geom.cell_of(bbox.lo), geom.cell_of(bbox.hi))
    }

    #[inline]
    fn cell_key(&self, geom: GridGeom, cell: CellCoord) -> f64 {
        geom.mindist(cell, self.region.anchor())
    }

    #[inline]
    fn strip_key(&self, pw: &Pinwheel, dir: Direction, lvl: u32) -> f64 {
        pw.strip_mindist(dir, lvl, self.region.anchor())
    }

    #[inline]
    fn strip_increment(&self, delta: f64) -> f64 {
        delta
    }

    #[inline]
    fn admits_cell(&self, geom: GridGeom, cell: CellCoord) -> bool {
        self.region.intersects_rect(&geom.cell_rect(cell))
    }

    #[inline]
    fn kind(&self) -> cpm_grid::QueryKind {
        cpm_grid::QueryKind::Range
    }
}

/// Continuous range monitor — a single-kind **compatibility shim** over
/// [`crate::CpmServer`]. New code should use the server directly
/// ([`crate::CpmServer::install_range`]), which hosts range queries next
/// to every other kind on one shared grid; this type keeps the original
/// per-kind surface (panicking on registry misuse where the server
/// returns [`crate::CpmError`]).
///
/// User query ids must stay below the server's reserved internal band
/// (`2³¹`, [`crate::server::RESERVED_ID_BASE`]) — ids above it are
/// rejected, where the old dedicated engines accepted the full `u32`
/// range.
///
/// # Example
///
/// ```
/// use cpm_core::range::{CpmRangeMonitor, RangeQuery};
/// use cpm_geom::{ObjectId, Point, QueryId, Rect};
/// use cpm_grid::ObjectEvent;
///
/// let mut monitor = CpmRangeMonitor::new(64);
/// monitor.populate([
///     (ObjectId(0), Point::new(0.40, 0.40)), // inside
///     (ObjectId(1), Point::new(0.90, 0.90)), // outside
/// ]);
/// let region = Rect::new(Point::new(0.25, 0.25), Point::new(0.75, 0.75));
/// monitor.install_query(QueryId(0), RangeQuery::rect(region));
/// assert_eq!(monitor.result(QueryId(0)).unwrap().len(), 1);
///
/// // The outsider drives into the region.
/// let changed = monitor.process_cycle(
///     &[ObjectEvent::Move { id: ObjectId(1), to: Point::new(0.6, 0.6) }],
///     &[],
/// );
/// assert_eq!(changed, vec![QueryId(0)]);
/// assert_eq!(monitor.result(QueryId(0)).unwrap().len(), 2);
/// ```
#[derive(Debug)]
pub struct CpmRangeMonitor {
    server: crate::CpmServer,
    /// Scratch: this cycle's events lifted to the unified vocabulary.
    event_buf: Vec<SpecEvent<crate::AnyQuerySpec>>,
}

impl CpmRangeMonitor {
    /// Create a sequential monitor over an empty `dim × dim` grid.
    pub fn new(dim: u32) -> Self {
        Self::new_sharded(dim, 1)
    }

    /// Create a monitor whose per-cycle maintenance runs across
    /// `shards ≥ 1` worker threads (`shards = 1` is sequential).
    pub fn new_sharded(dim: u32, shards: usize) -> Self {
        Self {
            server: crate::CpmServerBuilder::new(dim).shards(shards).build(),
            event_buf: Vec::new(),
        }
    }

    /// Bulk-load objects before any query is installed.
    pub fn populate<I: IntoIterator<Item = (ObjectId, Point)>>(&mut self, objects: I) {
        self.server.populate(objects);
    }

    /// Install a continuous range query and compute its initial result.
    ///
    /// # Panics
    /// Panics if `id` is already installed.
    pub fn install_query(&mut self, id: QueryId, query: RangeQuery) -> &[Neighbor] {
        let h = self
            .server
            .install_range(id, query)
            .unwrap_or_else(|e| panic!("{e}"));
        self.server.result(h).expect("just installed")
    }

    /// Terminate a query; `true` if it was installed.
    pub fn terminate_query(&mut self, id: QueryId) -> bool {
        self.server.terminate(id).is_ok()
    }

    /// Run one processing cycle over object and query events. Install
    /// events should carry `k =` [`RangeQuery::UNBOUNDED_K`]; any other
    /// `k` is normalized to it by the underlying server (range results
    /// are membership sets, never capped).
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<RangeQuery>],
    ) -> Vec<QueryId> {
        self.event_buf.clear();
        // Legacy surface: a batched terminate of an id that is already
        // gone stays a benign no-op (the server's typed surface reports
        // it as `UnknownQuery`).
        self.event_buf.extend(
            query_events
                .iter()
                .filter(|ev| {
                    !matches!(ev, SpecEvent::Terminate { id }
                        if self.server.kind_of(*id).is_none())
                })
                .map(crate::any::wrap_event),
        );
        let events = std::mem::take(&mut self.event_buf);
        // Legacy monitor surface: clamp stray coordinates and keep each
        // object's final event, as sequential application always did,
        // before the server's strict ingest validation.
        let object_events = crate::server::sanitize_object_events(object_events);
        let changed = self
            .server
            .process_cycle(&object_events, &events)
            .unwrap_or_else(|e| panic!("{e}"));
        self.event_buf = events;
        changed
    }

    /// Current result of query `id`: every object inside the region,
    /// ascending by `(distance to the region anchor, id)`.
    #[must_use]
    pub fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.server.result(id)
    }

    /// Full book-keeping state of query `id`.
    #[must_use]
    pub fn query_state(&self, id: QueryId) -> Option<&SpecQueryState<crate::AnyQuerySpec>> {
        self.server.query_state(id)
    }

    /// The object index.
    #[must_use]
    pub fn grid(&self) -> &Grid<cpm_grid::DynIndex> {
        self.server.grid()
    }

    /// Number of installed queries.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.server.query_count()
    }

    /// Merged snapshot of the work counters.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.server.metrics()
    }

    /// Take and reset the work counters.
    pub fn take_metrics(&mut self) -> Metrics {
        self.server.take_metrics()
    }

    /// Verify internal invariants (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.server.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Ground truth: objects inside the region, ascending by
    /// `(anchor distance, id)`.
    fn brute_force(m: &CpmRangeMonitor, q: &RangeQuery) -> Vec<Neighbor> {
        let anchor = q.region.anchor();
        let mut out: Vec<Neighbor> = m
            .grid()
            .iter_objects()
            .filter(|&(_, p)| q.region.contains(p))
            .map(|(id, p)| Neighbor {
                id,
                dist: anchor.dist(p),
            })
            .collect();
        out.sort_unstable_by(|a, b| {
            (a.dist, a.id)
                .partial_cmp(&(b.dist, b.id))
                .expect("finite distances")
        });
        out
    }

    fn assert_matches(m: &CpmRangeMonitor, qid: QueryId) {
        let st = m.query_state(qid).unwrap();
        let expect = brute_force(m, st.spec.as_range().expect("range monitor query"));
        assert_eq!(st.result(), expect.as_slice(), "query {qid}");
    }

    #[test]
    fn rect_region_reports_exact_membership() {
        let mut m = CpmRangeMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.3, 0.3)),
            (ObjectId(1), Point::new(0.5, 0.5)),
            (ObjectId(2), Point::new(0.74, 0.74)),
            (ObjectId(3), Point::new(0.76, 0.76)), // just outside
        ]);
        let q = RangeQuery::rect(Rect::new(Point::new(0.25, 0.25), Point::new(0.75, 0.75)));
        m.install_query(QueryId(0), q);
        let ids: Vec<ObjectId> = m.result(QueryId(0)).unwrap().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![ObjectId(1), ObjectId(0), ObjectId(2)]);
        assert_matches(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn circle_region_boundary_is_closed() {
        let mut m = CpmRangeMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.5, 0.7)), // exactly on the boundary
            (ObjectId(1), Point::new(0.5, 0.71)),
        ]);
        m.install_query(QueryId(0), RangeQuery::circle(Point::new(0.5, 0.5), 0.2));
        let ids: Vec<ObjectId> = m.result(QueryId(0)).unwrap().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![ObjectId(0)]);
    }

    #[test]
    fn influence_region_is_the_region_cover() {
        let mut m = CpmRangeMonitor::new(8);
        m.populate([(ObjectId(0), Point::new(0.4, 0.4))]);
        let region = Rect::new(Point::new(0.30, 0.30), Point::new(0.60, 0.60));
        m.install_query(QueryId(0), RangeQuery::rect(region));
        let st = m.query_state(QueryId(0)).unwrap();
        // Every visited cell is influence-registered (best_dist = +∞) and
        // intersects the region.
        assert_eq!(st.influence_len, st.visit_list.len());
        for &(cell, _) in &st.visit_list {
            assert!(m.grid().cell_rect(cell).intersects(&region));
        }
        // And the cover is complete: 0.30..0.60 on an 8-grid spans cells
        // 2..=4 per axis.
        assert_eq!(st.visit_list.len(), 9);
        m.check_invariants();
    }

    #[test]
    fn randomized_churn_tracks_brute_force() {
        let mut rng = StdRng::seed_from_u64(0x7A4);
        for shards in [1usize, 4] {
            let mut m = CpmRangeMonitor::new_sharded(16, shards);
            m.populate((0..60u32).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
            m.install_query(
                QueryId(0),
                RangeQuery::rect(Rect::new(Point::new(0.2, 0.3), Point::new(0.7, 0.8))),
            );
            m.install_query(QueryId(1), RangeQuery::circle(Point::new(0.6, 0.4), 0.25));
            let mut live: Vec<u32> = (0..60).collect();
            let mut next = 60u32;
            for _ in 0..30 {
                let mut evs = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for _ in 0..rng.gen_range(0..10) {
                    match rng.gen_range(0..8) {
                        0 if live.len() > 3 => {
                            let id = live.swap_remove(rng.gen_range(0..live.len()));
                            if seen.insert(id) {
                                evs.push(ObjectEvent::Disappear { id: ObjectId(id) });
                            } else {
                                live.push(id);
                            }
                        }
                        1 => {
                            live.push(next);
                            seen.insert(next);
                            evs.push(ObjectEvent::Appear {
                                id: ObjectId(next),
                                pos: Point::new(rng.gen(), rng.gen()),
                            });
                            next += 1;
                        }
                        _ => {
                            let id = live[rng.gen_range(0..live.len())];
                            if seen.insert(id) {
                                evs.push(ObjectEvent::Move {
                                    id: ObjectId(id),
                                    to: Point::new(rng.gen(), rng.gen()),
                                });
                            }
                        }
                    }
                }
                m.process_cycle(&evs, &[]);
                m.check_invariants();
                assert_matches(&m, QueryId(0));
                assert_matches(&m, QueryId(1));
            }
        }
    }

    #[test]
    fn moving_the_region_recomputes() {
        let mut m = CpmRangeMonitor::new(16);
        m.populate([
            (ObjectId(0), Point::new(0.2, 0.2)),
            (ObjectId(1), Point::new(0.8, 0.8)),
        ]);
        m.install_query(
            QueryId(0),
            RangeQuery::rect(Rect::new(Point::new(0.1, 0.1), Point::new(0.3, 0.3))),
        );
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(0));
        m.process_cycle(
            &[],
            &[SpecEvent::Update {
                id: QueryId(0),
                spec: RangeQuery::rect(Rect::new(Point::new(0.7, 0.7), Point::new(0.9, 0.9))),
            }],
        );
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        assert_matches(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn empty_region_yields_empty_result() {
        let mut m = CpmRangeMonitor::new(8);
        m.populate([(ObjectId(0), Point::new(0.9, 0.9))]);
        m.install_query(QueryId(0), RangeQuery::circle(Point::new(0.1, 0.1), 0.05));
        assert!(m.result(QueryId(0)).unwrap().is_empty());
        m.check_invariants();
    }
}
