//! Constrained NN monitoring: k nearest neighbors inside a user-specified
//! region (Section 5, after Figure 5.2; the static-data problem is due to
//! Ferhatosmanoglu et al. \[FSAA01\]).
//!
//! "The adaptation of CPM to this problem inserts into the search heap only
//! cells and conceptual rectangles that intersect the constraint region."
//! We filter cells at en-heap time through [`QuerySpec::admits_cell`];
//! rectangle markers are kept (they are four cheap heap entries and their
//! levels may re-enter the region), while objects outside the region are
//! excluded by an infinite distance. Update handling is untouched: an
//! object leaving the region is an outgoing NN, one entering it is an
//! incomer.

use cpm_geom::{Point, QueryId, Rect};
use cpm_grid::{CellCoord, Grid, GridGeom, Metrics, ObjectEvent};

use crate::engine::{QuerySpec, SpecEvent, SpecQueryState};
use crate::neighbors::Neighbor;
use crate::partition::{Direction, Pinwheel};

/// A point query with a rectangular constraint region: report the k objects
/// inside `region` that lie closest to `q`.
#[derive(Debug, Clone)]
pub struct ConstrainedQuery {
    /// The query point.
    pub q: Point,
    /// The constraint region (objects outside never qualify).
    pub region: Rect,
}

impl ConstrainedQuery {
    /// Build a constrained query.
    pub fn new(q: Point, region: Rect) -> Self {
        Self { q, region }
    }

    /// Convenience: the quadrant of the workspace to the north-east of `q`
    /// (the example of Figure 5.3).
    pub fn northeast_of(q: Point) -> Self {
        Self::new(q, Rect::new(q, Point::new(1.0, 1.0)))
    }
}

impl QuerySpec for ConstrainedQuery {
    #[inline]
    fn dist(&self, p: Point) -> f64 {
        if self.region.contains(p) {
            self.q.dist(p)
        } else {
            f64::INFINITY
        }
    }

    fn base_block(&self, geom: GridGeom) -> (CellCoord, CellCoord) {
        let c = geom.cell_of(self.q);
        (c, c)
    }

    #[inline]
    fn cell_key(&self, geom: GridGeom, cell: CellCoord) -> f64 {
        geom.mindist(cell, self.q)
    }

    #[inline]
    fn strip_key(&self, pw: &Pinwheel, dir: Direction, lvl: u32) -> f64 {
        pw.strip_mindist(dir, lvl, self.q)
    }

    #[inline]
    fn strip_increment(&self, delta: f64) -> f64 {
        delta
    }

    #[inline]
    fn admits_cell(&self, geom: GridGeom, cell: CellCoord) -> bool {
        geom.cell_rect(cell).intersects(&self.region)
    }

    #[inline]
    fn kind(&self) -> cpm_grid::QueryKind {
        cpm_grid::QueryKind::Constrained
    }
}

/// Continuous constrained-NN monitor — a single-kind **compatibility
/// shim** over [`crate::CpmServer`]. New code should use the server
/// directly ([`crate::CpmServer::install_constrained`]), which hosts
/// constrained queries next to every other kind on one shared grid; this
/// type keeps the original per-kind surface (panicking on registry misuse
/// where the server returns [`crate::CpmError`]).
///
/// User query ids must stay below the server's reserved internal band
/// (`2³¹`, [`crate::server::RESERVED_ID_BASE`]) — ids above it are
/// rejected, where the old dedicated engines accepted the full `u32`
/// range.
///
/// # Example
///
/// ```
/// use cpm_core::constrained::{ConstrainedQuery, CpmConstrainedMonitor};
/// use cpm_geom::{ObjectId, Point, QueryId};
///
/// let mut monitor = CpmConstrainedMonitor::new(64);
/// monitor.populate([
///     (ObjectId(0), Point::new(0.49, 0.49)), // closest, but south-west
///     (ObjectId(1), Point::new(0.60, 0.60)), // the constrained NN
/// ]);
/// let q = ConstrainedQuery::northeast_of(Point::new(0.5, 0.5));
/// monitor.install_query(QueryId(0), q, 1);
/// assert_eq!(monitor.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
/// ```
#[derive(Debug)]
pub struct CpmConstrainedMonitor {
    server: crate::CpmServer,
    /// Scratch: this cycle's events lifted to the unified vocabulary.
    event_buf: Vec<SpecEvent<crate::AnyQuerySpec>>,
}

impl CpmConstrainedMonitor {
    /// Create a sequential monitor over an empty `dim × dim` grid.
    pub fn new(dim: u32) -> Self {
        Self::new_sharded(dim, 1)
    }

    /// Create a monitor whose per-cycle maintenance runs across
    /// `shards ≥ 1` worker threads (`shards = 1` is sequential; results
    /// are bit-identical for every shard count — see
    /// [`crate::ShardedCpmEngine`]).
    pub fn new_sharded(dim: u32, shards: usize) -> Self {
        Self {
            server: crate::CpmServerBuilder::new(dim).shards(shards).build(),
            event_buf: Vec::new(),
        }
    }

    /// Bulk-load objects before any query is installed.
    pub fn populate<I: IntoIterator<Item = (cpm_geom::ObjectId, Point)>>(&mut self, objects: I) {
        self.server.populate(objects);
    }

    /// Install a continuous constrained k-NN query.
    ///
    /// # Panics
    /// Panics if `id` is already installed or `k == 0`.
    pub fn install_query(&mut self, id: QueryId, query: ConstrainedQuery, k: usize) -> &[Neighbor] {
        let h = self
            .server
            .install_constrained(id, query, k)
            .unwrap_or_else(|e| panic!("{e}"));
        self.server.result(h).expect("just installed")
    }

    /// Terminate a query; `true` if it was installed.
    pub fn terminate_query(&mut self, id: QueryId) -> bool {
        self.server.terminate(id).is_ok()
    }

    /// Replace the query point and/or constraint region.
    ///
    /// # Panics
    /// Panics if the query is not installed.
    pub fn move_query(&mut self, id: QueryId, query: ConstrainedQuery) -> &[Neighbor] {
        self.server
            .update_spec(id, crate::AnyQuerySpec::Constrained(query))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run one processing cycle over object and query events.
    pub fn process_cycle(
        &mut self,
        object_events: &[ObjectEvent],
        query_events: &[SpecEvent<ConstrainedQuery>],
    ) -> Vec<QueryId> {
        self.event_buf.clear();
        // Legacy surface: a batched terminate of an id that is already
        // gone stays a benign no-op (the server's typed surface reports
        // it as `UnknownQuery`).
        self.event_buf.extend(
            query_events
                .iter()
                .filter(|ev| {
                    !matches!(ev, SpecEvent::Terminate { id }
                        if self.server.kind_of(*id).is_none())
                })
                .map(crate::any::wrap_event),
        );
        let events = std::mem::take(&mut self.event_buf);
        // Legacy monitor surface: clamp stray coordinates and keep each
        // object's final event, as sequential application always did,
        // before the server's strict ingest validation.
        let object_events = crate::server::sanitize_object_events(object_events);
        let changed = self
            .server
            .process_cycle(&object_events, &events)
            .unwrap_or_else(|e| panic!("{e}"));
        self.event_buf = events;
        changed
    }

    /// Current result of query `id`.
    #[must_use]
    pub fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.server.result(id)
    }

    /// Full book-keeping state of query `id`.
    #[must_use]
    pub fn query_state(&self, id: QueryId) -> Option<&SpecQueryState<crate::AnyQuerySpec>> {
        self.server.query_state(id)
    }

    /// The object index.
    #[must_use]
    pub fn grid(&self) -> &Grid<cpm_grid::DynIndex> {
        self.server.grid()
    }

    /// Merged snapshot of the work counters.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.server.metrics()
    }

    /// Take and reset the work counters.
    pub fn take_metrics(&mut self) -> Metrics {
        self.server.take_metrics()
    }

    /// Verify internal invariants (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.server.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_geom::ObjectId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_force(m: &CpmConstrainedMonitor, q: &ConstrainedQuery, k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = m
            .grid()
            .iter_objects()
            .filter(|&(_, p)| q.region.contains(p))
            .map(|(_, p)| q.q.dist(p))
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.truncate(k);
        d
    }

    fn assert_matches(m: &CpmConstrainedMonitor, qid: QueryId) {
        let st = m.query_state(qid).unwrap();
        let expect = brute_force(
            m,
            st.spec.as_constrained().expect("constrained monitor query"),
            st.k(),
        );
        let got: Vec<f64> = st.result().iter().map(|n| n.dist).collect();
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "{got:?} vs {expect:?}");
        }
    }

    /// Figure 5.3: monitoring the NN to the north-east of q. The
    /// unconstrained NN (west of q) must not be reported.
    #[test]
    fn northeast_constraint_fig_5_3() {
        let mut m = CpmConstrainedMonitor::new(8);
        m.populate([
            (ObjectId(1), Point::new(0.45, 0.55)), // p1: unconstrained NN, NW
            (ObjectId(2), Point::new(0.58, 0.45)), // p2: east but south
            (ObjectId(3), Point::new(0.70, 0.70)), // p3: the constrained NN
        ]);
        let q = ConstrainedQuery::northeast_of(Point::new(0.52, 0.52));
        m.install_query(QueryId(0), q, 1);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(3));
        assert_matches(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn object_leaving_region_is_outgoing() {
        let mut m = CpmConstrainedMonitor::new(8);
        m.populate([
            (ObjectId(1), Point::new(0.6, 0.6)),
            (ObjectId(2), Point::new(0.8, 0.8)),
        ]);
        let q = ConstrainedQuery::northeast_of(Point::new(0.5, 0.5));
        m.install_query(QueryId(0), q, 1);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        // The NN drifts out of the constraint region (still near q!).
        m.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(1),
                to: Point::new(0.45, 0.55),
            }],
            &[],
        );
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(2));
        assert_matches(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn object_entering_region_is_incoming() {
        let mut m = CpmConstrainedMonitor::new(8);
        m.populate([
            (ObjectId(1), Point::new(0.9, 0.9)),
            (ObjectId(2), Point::new(0.45, 0.55)),
        ]);
        let q = ConstrainedQuery::northeast_of(Point::new(0.5, 0.5));
        m.install_query(QueryId(0), q, 1);
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(1));
        m.process_cycle(
            &[ObjectEvent::Move {
                id: ObjectId(2),
                to: Point::new(0.55, 0.56),
            }],
            &[],
        );
        assert_eq!(m.result(QueryId(0)).unwrap()[0].id, ObjectId(2));
        assert_matches(&m, QueryId(0));
        m.check_invariants();
    }

    #[test]
    fn region_with_too_few_objects_returns_partial_result() {
        let mut m = CpmConstrainedMonitor::new(8);
        m.populate([
            (ObjectId(1), Point::new(0.1, 0.1)),
            (ObjectId(2), Point::new(0.7, 0.7)),
        ]);
        let q = ConstrainedQuery::northeast_of(Point::new(0.5, 0.5));
        m.install_query(QueryId(0), q, 4);
        assert_eq!(m.result(QueryId(0)).unwrap().len(), 1);
        m.check_invariants();
    }

    #[test]
    fn randomized_stream_matches_filtered_oracle() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let region = Rect::new(Point::new(0.3, 0.2), Point::new(0.8, 0.7));
        let mut m = CpmConstrainedMonitor::new(16);
        m.populate((0..50u32).map(|i| (ObjectId(i), Point::new(rng.gen(), rng.gen()))));
        m.install_query(
            QueryId(0),
            ConstrainedQuery::new(Point::new(0.5, 0.5), region),
            3,
        );
        // A second query whose point lies *outside* its region.
        m.install_query(
            QueryId(1),
            ConstrainedQuery::new(Point::new(0.05, 0.95), region),
            2,
        );
        for _ in 0..25 {
            let mut evs = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(1..8) {
                let id = rng.gen_range(0..50u32);
                if seen.insert(id) {
                    evs.push(ObjectEvent::Move {
                        id: ObjectId(id),
                        to: Point::new(rng.gen(), rng.gen()),
                    });
                }
            }
            m.process_cycle(&evs, &[]);
            m.check_invariants();
            assert_matches(&m, QueryId(0));
            assert_matches(&m, QueryId(1));
        }
    }
}
