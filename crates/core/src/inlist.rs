//! The capped incoming-object list of batched update handling
//! (`q.in_list`, Figure 3.8). Shared by the specialized k-NN monitor and
//! the generic CPM engine.

use cpm_geom::ObjectId;

use crate::neighbors::Neighbor;

/// The sorted list of the k best *incoming* objects collected while
/// processing an update batch (`q.in_list` of Figure 3.8).
///
/// Capped at `k` entries: the merged result can absorb at most `k`
/// incomers. Entries are keyed by object id so repeated updates of one
/// object within a batch replace rather than duplicate (the paper assumes
/// one update per object per cycle; we stay correct without it — see
/// [`InList::evicted_since_clear`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct InList {
    cap: usize,
    entries: Vec<Neighbor>,
    /// `true` if any candidate has been dropped because the list was full.
    /// If a later removal hits the list after an eviction, the dropped
    /// candidate might have belonged in the merge set, so update handling
    /// must fall back to re-computation.
    evicted: bool,
}

impl InList {
    pub(crate) fn with_cap(cap: usize) -> Self {
        Self {
            cap,
            entries: Vec::new(),
            evicted: false,
        }
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.evicted = false;
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn entries(&self) -> &[Neighbor] {
        &self.entries
    }

    pub(crate) fn evicted_since_clear(&self) -> bool {
        self.evicted
    }

    /// Remove the entry for `id`, if present. Returns `true` if removed.
    pub(crate) fn remove(&mut self, id: ObjectId) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| e.id == id) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Insert or replace the entry for `id`, keeping the best `cap`
    /// candidates by `(dist, id)`.
    pub(crate) fn update(&mut self, id: ObjectId, dist: f64) {
        self.remove(id);
        let at = self
            .entries
            .partition_point(|e| (e.dist, e.id) < (dist, id));
        if at == self.cap {
            self.evicted = true;
            return; // worse than all retained candidates
        }
        self.entries.insert(at, Neighbor { id, dist });
        if self.entries.len() > self.cap {
            self.entries.pop();
            self.evicted = true;
        }
    }
}
